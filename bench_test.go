// Benchmarks regenerating every table and figure of the paper's evaluation,
// one testing.B target per artifact. Each bench runs its experiment harness
// end to end at a laptop-fast scale; `cmd/repbench -scale medium|paper`
// grows the datasets toward the paper's sizes.
package graphrep_test

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"graphrep"
	"graphrep/internal/experiments"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// benchScale keeps every artifact bench in the low seconds.
var benchScale = experiments.Scale{
	Name: "bench", N: 120, SweepN: []int{60, 120},
	Ks: []int{5, 10}, Samples: 600, NumVPs: 5, Refines: 2,
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 2: motivation — DisC growth and simple-greedy cost.
func BenchmarkFig2aDisCGrowth(b *testing.B)   { runExperiment(b, "fig2a") }
func BenchmarkFig2bSimpleGreedy(b *testing.B) { runExperiment(b, "fig2b") }

// Table 4: answer quality across models.
func BenchmarkTable4Quality(b *testing.B) { runExperiment(b, "table4") }

// Fig. 5: distance distributions, FPR, query time vs θ, grid sparsity.
func BenchmarkFig5Distances(b *testing.B)        { runExperiment(b, "fig5ab") }
func BenchmarkFig5FPR(b *testing.B)              { runExperiment(b, "fig5fh") }
func BenchmarkFig5QueryTimeVsTheta(b *testing.B) { runExperiment(b, "fig5ik") }
func BenchmarkFig5lThresholdGap(b *testing.B)    { runExperiment(b, "fig5l") }

// Fig. 6: scaling, refinement, and index costs.
func BenchmarkFig6SizeScaling(b *testing.B)        { runExperiment(b, "fig6bd") }
func BenchmarkFig6KScaling(b *testing.B)           { runExperiment(b, "fig6eg") }
func BenchmarkFig6hDimensions(b *testing.B)        { runExperiment(b, "fig6h") }
func BenchmarkFig6iRefinement(b *testing.B)        { runExperiment(b, "fig6i") }
func BenchmarkFig6jRefinementScaling(b *testing.B) { runExperiment(b, "fig6j") }
func BenchmarkFig6kConstruction(b *testing.B)      { runExperiment(b, "fig6k") }
func BenchmarkFig6lFootprint(b *testing.B)         { runExperiment(b, "fig6l") }

// Fig. 7: qualitative traditional vs representative comparison.
func BenchmarkFig7Qualitative(b *testing.B) { runExperiment(b, "fig7") }

// Extensions: design-choice ablations and the empirical (1−1/e) check.
func BenchmarkExtAblation(b *testing.B) { runExperiment(b, "ext-ablation") }
func BenchmarkExtApprox(b *testing.B)   { runExperiment(b, "ext-approx") }

// Micro-benchmarks of the public API, for users sizing deployments.

func BenchmarkOpenEngine(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphrep.Open(db, graphrep.Options{Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild measures index construction at several worker counts on the
// medium synthetic dataset; the output is byte-identical at every count, so
// the subbenchmarks differ only in wall time.
func BenchmarkBuild(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > counts[len(counts)-1] {
		counts = append(counts, p)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graphrep.Open(db, graphrep.Options{Seed: 2, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildShards measures index construction at several shard counts;
// answers are byte-identical at every count, so the subbenchmarks trade only
// build wall time (shards build concurrently) and lock granularity.
func BenchmarkBuildShards(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graphrep.Open(db, graphrep.Options{Seed: 2, Shards: s}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopKShards measures steady-state query latency against a session
// over a multi-shard index (the scatter-gather coordinator path).
func BenchmarkTopKShards(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			engine, err := graphrep.Open(db, graphrep.Options{Seed: 2, Shards: s})
			if err != nil {
				b.Fatal(err)
			}
			sess, err := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.TopK(8, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTopKRepresentative(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	rel := graphrep.FirstQuartileRelevance(db, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TopKRepresentative(graphrep.Query{Relevance: rel, Theta: 10, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// Cache vs Matrix: the two ways to avoid recomputing distances. Matrix pays
// O(n²) distances and memory up front for branch-free O(1) lookups; Cache
// pays nothing up front, costs a lock-guarded map probe per lookup, and only
// ever materializes the pairs a workload touches. The benchmarks record the
// steady-state lookup gap (run with -benchmem to see the allocation side);
// the construction benchmarks record the up-front cost the Matrix amortizes.
// Rule of thumb from these numbers: Matrix wins for small, long-lived,
// uniformly accessed databases (experiments); Cache wins everywhere else,
// which is why Open wires Cache in by default.

func benchLookupDB(b *testing.B) (*graphrep.Database, []graph.ID) {
	b.Helper()
	db, err := graphrep.GenerateDataset("dud", 200, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pairs := make([]graph.ID, 2048)
	for i := range pairs {
		pairs[i] = graph.ID(rng.Intn(db.Len()))
	}
	return db, pairs
}

func BenchmarkCacheLookup(b *testing.B) {
	db, pairs := benchLookupDB(b)
	cache := metric.NewCache(metric.Star(db))
	// Warm every benchmarked pair so the measured loop is pure hit path.
	for i := 0; i < len(pairs); i += 2 {
		cache.Distance(pairs[i], pairs[i+1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i * 2) % len(pairs)
		cache.Distance(pairs[j], pairs[j+1])
	}
}

func BenchmarkMatrixLookup(b *testing.B) {
	db, pairs := benchLookupDB(b)
	mat := metric.NewMatrix(db, metric.Star(db), 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i * 2) % len(pairs)
		mat.Distance(pairs[j], pairs[j+1])
	}
}

func BenchmarkCacheConstruction(b *testing.B) {
	db, _ := benchLookupDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metric.NewCache(metric.Star(db))
	}
}

func BenchmarkMatrixConstruction(b *testing.B) {
	db, _ := benchLookupDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metric.NewMatrix(db, metric.Star(db), 4)
	}
}

func BenchmarkSessionRefinement(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.TopK(10, 10); err != nil {
		b.Fatal(err)
	}
	thetas := []float64{9, 11, 10, 8, 12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.TopK(thetas[i%len(thetas)], 10); err != nil {
			b.Fatal(err)
		}
	}
}
