// Benchmarks regenerating every table and figure of the paper's evaluation,
// one testing.B target per artifact. Each bench runs its experiment harness
// end to end at a laptop-fast scale; `cmd/repbench -scale medium|paper`
// grows the datasets toward the paper's sizes.
package graphrep_test

import (
	"io"
	"testing"

	"graphrep"
	"graphrep/internal/experiments"
)

// benchScale keeps every artifact bench in the low seconds.
var benchScale = experiments.Scale{
	Name: "bench", N: 120, SweepN: []int{60, 120},
	Ks: []int{5, 10}, Samples: 600, NumVPs: 5, Refines: 2,
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 2: motivation — DisC growth and simple-greedy cost.
func BenchmarkFig2aDisCGrowth(b *testing.B)   { runExperiment(b, "fig2a") }
func BenchmarkFig2bSimpleGreedy(b *testing.B) { runExperiment(b, "fig2b") }

// Table 4: answer quality across models.
func BenchmarkTable4Quality(b *testing.B) { runExperiment(b, "table4") }

// Fig. 5: distance distributions, FPR, query time vs θ, grid sparsity.
func BenchmarkFig5Distances(b *testing.B)        { runExperiment(b, "fig5ab") }
func BenchmarkFig5FPR(b *testing.B)              { runExperiment(b, "fig5fh") }
func BenchmarkFig5QueryTimeVsTheta(b *testing.B) { runExperiment(b, "fig5ik") }
func BenchmarkFig5lThresholdGap(b *testing.B)    { runExperiment(b, "fig5l") }

// Fig. 6: scaling, refinement, and index costs.
func BenchmarkFig6SizeScaling(b *testing.B)        { runExperiment(b, "fig6bd") }
func BenchmarkFig6KScaling(b *testing.B)           { runExperiment(b, "fig6eg") }
func BenchmarkFig6hDimensions(b *testing.B)        { runExperiment(b, "fig6h") }
func BenchmarkFig6iRefinement(b *testing.B)        { runExperiment(b, "fig6i") }
func BenchmarkFig6jRefinementScaling(b *testing.B) { runExperiment(b, "fig6j") }
func BenchmarkFig6kConstruction(b *testing.B)      { runExperiment(b, "fig6k") }
func BenchmarkFig6lFootprint(b *testing.B)         { runExperiment(b, "fig6l") }

// Fig. 7: qualitative traditional vs representative comparison.
func BenchmarkFig7Qualitative(b *testing.B) { runExperiment(b, "fig7") }

// Extensions: design-choice ablations and the empirical (1−1/e) check.
func BenchmarkExtAblation(b *testing.B) { runExperiment(b, "ext-ablation") }
func BenchmarkExtApprox(b *testing.B)   { runExperiment(b, "ext-approx") }

// Micro-benchmarks of the public API, for users sizing deployments.

func BenchmarkOpenEngine(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphrep.Open(db, graphrep.Options{Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKRepresentative(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	rel := graphrep.FirstQuartileRelevance(db, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TopKRepresentative(graphrep.Query{Relevance: rel, Theta: 10, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionRefinement(b *testing.B) {
	db, err := graphrep.GenerateDataset("dud", 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.TopK(10, 10); err != nil {
		b.Fatal(err)
	}
	thetas := []float64{9, 11, 10, 8, 12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.TopK(thetas[i%len(thetas)], 10); err != nil {
			b.Fatal(err)
		}
	}
}
