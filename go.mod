module graphrep

go 1.22
