// Package graphrep answers top-k representative queries on graph databases,
// implementing Ranu, Hoang & Singh, "Answering Top-k Representative Queries
// on Graph Databases" (SIGMOD 2014).
//
// Given a database of labelled graphs tagged with feature vectors, a
// query-time relevance function, a distance threshold θ, and a budget k, a
// top-k representative query returns the k relevant graphs that together
// represent (lie within θ of) as many relevant graphs as possible. The
// problem is NP-hard; the greedy answer computed here carries the best
// possible polynomial-time guarantee of (1 − 1/e) of the optimum.
//
// The Engine type wraps the paper's NB-Index: a combination of vantage
// orderings (a Lipschitz embedding of the graph metric space) and the
// NB-Tree (a hierarchical clustering carrying representative-power upper
// bounds), which answers queries with a small fraction of the graph distance
// computations a direct implementation needs, and supports interactive
// refinement of θ at a fraction of the initial query cost.
//
// Basic use:
//
//	db, _ := graphrep.GenerateDataset("dud", 1000, 42)
//	engine, _ := graphrep.Open(db)
//	res, _ := engine.TopKRepresentative(graphrep.Query{
//		Relevance: func(f []float64) bool { return f[0] > 0.8 },
//		Theta:     10,
//		K:         5,
//	})
//
// For repeated queries with the same relevance function (e.g. tuning θ),
// open a Session:
//
//	sess, _ := engine.NewSession(relevance)
//	res1, _ := sess.TopK(10, 5)
//	res2, _ := sess.TopK(9, 5) // refinement: far cheaper than a new query
package graphrep

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"time"

	"graphrep/internal/core"
	"graphrep/internal/dataset"
	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/mmapfile"
	"graphrep/internal/nbindex"
	"graphrep/internal/pool"
	"graphrep/internal/shard"
	"graphrep/internal/telemetry"
)

// Re-exported core types. Graphs are immutable; Database is the indexed
// collection all queries run against.
type (
	// Graph is an immutable labelled undirected graph with a feature vector.
	Graph = graph.Graph
	// ID identifies a graph within a Database.
	ID = graph.ID
	// Label identifies a vertex or edge type.
	Label = graph.Label
	// Builder assembles a Graph.
	Builder = graph.Builder
	// Database is an ordered collection of graphs.
	Database = graph.Database
	// Relevance classifies a graph as relevant from its feature vector.
	Relevance = core.Relevance
	// Score ranks graphs for traditional top-k queries.
	Score = core.Score
	// Query is one top-k representative query.
	Query = core.Query
	// Result is the answer to a top-k representative query.
	Result = core.Result
)

// NewBuilder returns a graph builder pre-sized for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewDatabase assembles a database from graphs whose IDs equal their
// positions.
func NewDatabase(graphs []*Graph) (*Database, error) { return graph.NewDatabase(graphs) }

// ReadDatabase parses the text exchange format produced by WriteDatabase.
func ReadDatabase(r io.Reader) (*Database, error) { return graph.ReadDatabase(r) }

// WriteDatabase writes db in the text exchange format.
func WriteDatabase(w io.Writer, db *Database) error { return graph.WriteDatabase(w, db) }

// SaveDatabase writes db in the GRDB001 flat container format: an
// offset-tabled, 8-byte-aligned binary layout that OpenDatabaseFile serves
// zero-copy from a read-only mapping. Deterministic — the same database
// always produces the same bytes.
func SaveDatabase(w io.Writer, db *Database) error { return graph.SaveDatabase(w, db) }

// OpenDatabaseFile opens a GRDB001 container previously written by
// SaveDatabase. The file is memory-mapped (unless Options.DisableMmap is set
// or the platform lacks support) and graph content is served zero-copy: the
// open cost is independent of the corpus size and the heap retains only
// per-graph handles materialized on demand. Structural validation of the
// content is deferred — session creation, Insert, and Validate run it once on
// first use — so a hostile file fails either at open (malformed layout) or on
// the first validated access, never with undefined behavior. Graphs appended
// afterwards live on the heap; the mapped prefix stays immutable. Call
// Database.Close when no reads remain in flight to release the mapping.
func OpenDatabaseFile(path string, opts ...Options) (*Database, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	return graph.OpenDatabaseFile(path, o.DisableMmap)
}

// LoadDatabaseFile opens a database file of either supported format,
// dispatching on content: files starting with the GRDB001 magic open through
// OpenDatabaseFile (zero-copy mapping, O(1) open), anything else parses as
// the text exchange format onto the heap. This is what the command-line
// tools call, so a .grdb corpus drops into any -in flag that previously took
// a text file.
func LoadDatabaseFile(path string, opts ...Options) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		f.Close()
		return nil, err
	}
	if n == len(magic) && magic == graph.GRDBMagic {
		f.Close()
		return OpenDatabaseFile(path, opts...)
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return graph.ReadDatabase(f)
}

// GenerateDataset builds one of the synthetic datasets emulating the paper's
// corpora: "dud" (molecules), "dblp" (collaboration neighborhoods), or
// "amazon" (co-purchase neighborhoods). Deterministic in (n, seed).
func GenerateDataset(name string, n int, seed int64) (*Database, error) {
	return dataset.ByName(name, n, seed)
}

// Distance computes the star-matching graph distance — the metric d(g, g')
// used by the engine (a true metric approximating graph edit distance; see
// internal/ged).
func Distance(g1, g2 *Graph) float64 { return ged.StarDistance(g1, g2) }

// Metric computes the distance between two database graphs. Custom metrics
// supplied to Open must be symmetric, non-negative, zero on identical IDs,
// and satisfy the triangle inequality — every pruning theorem the index
// relies on assumes it. The star-matching default always qualifies.
type Metric interface {
	Distance(a, b ID) float64
}

// MetricFunc adapts a plain function to the Metric interface.
type MetricFunc func(a, b ID) float64

// Distance implements Metric.
func (f MetricFunc) Distance(a, b ID) float64 { return f(a, b) }

// Options configure Open.
type Options struct {
	// NumVPs is the number of vantage points; 0 picks a default scaled to
	// the database size.
	NumVPs int
	// Branching is the NB-Tree fan-out; 0 defaults to 4.
	Branching int
	// ThetaGrid lists thresholds to index in the π̂-vectors; nil derives a
	// grid from the sampled distance distribution (§7.1).
	ThetaGrid []float64
	// Seed drives index construction randomness; the default is 1.
	Seed int64
	// Metric overrides the database distance; nil uses the star-matching
	// metric. Custom metrics must satisfy the triangle inequality. Wrap
	// expensive metrics in a memoizing layer if repeated queries matter;
	// the default metric is cached automatically.
	Metric Metric
	// Workers bounds the goroutines used for index construction (the θ-grid
	// sampling, the vantage distance matrix, the NB-Tree partition fills)
	// and session initialization; ≤ 0 means GOMAXPROCS. The index bytes and
	// every answer are identical for any value — all randomized decisions
	// stay single-threaded and parallel work is pre-partitioned — so Workers
	// trades nothing but wall time. Custom metrics must be safe for
	// concurrent use (the built-in ones are).
	Workers int
	// Shards partitions the database into that many contiguous ID ranges,
	// each owning its own vantage rows and NB-Tree, built concurrently and
	// queried by a scatter-gather coordinator. Values ≤ 1 mean one shard
	// (the classic layout); counts beyond the database size are clamped.
	// Answers are byte-identical for any shard count — shards share one
	// global vantage point set and θ grid, so bounds compose exactly — while
	// builds parallelize per shard and internal/server can confine Insert's
	// write lock to the one shard it lands in. Per-query work counters
	// (QueryStats) do vary with the shard count, since each count's forest
	// has its own shape.
	Shards int
	// DisableBoundedKernel turns off the threshold-aware distance kernel:
	// every candidate test d(q, g) ≤ θ falls back to a full exact distance
	// computation instead of the bound cascade (precomputed-embedding filter,
	// row-minima, greedy upper bound, Hungarian dual early exit).
	// Answers, sweeps, and index bytes are byte-identical either way — the
	// kernel only ever changes how a decision is reached, never the decision —
	// so this switch exists for baseline benchmarks (repbench -bench-kernel
	// measures the savings against it) and for bisecting a suspected kernel
	// difference.
	DisableBoundedKernel bool
	// DisableMmap makes OpenWithIndexFile read the index file into memory
	// instead of memory-mapping it. Queries, answers, and statistics are
	// identical either way — only residency changes: a mapped index is paged
	// in on demand and shared between processes, a read one is private heap.
	// Platforms without mmap support always read; this forces the same on
	// platforms that have it.
	DisableMmap bool
}

// Engine answers top-k representative queries over one database through an
// NB-Index. Queries (TopKRepresentative, Session.TopK, SweepTheta) are safe
// to run concurrently from any number of goroutines; Insert is the only
// mutating operation and must be externally excluded from in-flight queries.
type Engine struct {
	db  *Database
	m   metric.Metric
	set *shard.Set
	tel *Telemetry
	// closer releases the index file mapping when the engine came from
	// OpenWithIndexFile; nil otherwise. Guarded only by the Close contract:
	// callers must not close while queries are in flight.
	closer io.Closer
}

// Close releases the engine's resources — today, the index file mapping held
// by an engine opened with OpenWithIndexFile. It is a no-op for engines from
// Open or OpenWithIndex. No queries, sessions, or sweeps may be in flight or
// issued afterwards: their data lives in the mapping being unmapped.
func (e *Engine) Close() error {
	if e.closer == nil {
		return nil
	}
	c := e.closer
	e.closer = nil
	return c.Close()
}

// Open indexes db and returns a query engine. It is OpenContext with no
// cancellation.
func Open(db *Database, opts ...Options) (*Engine, error) {
	return OpenContext(context.Background(), db, opts...)
}

// OpenContext indexes db and returns a query engine, observing ctx
// throughout construction: the θ-grid sampling, the vantage matrix fill,
// and the NB-Tree clustering all check cancellation at phase boundaries and
// per work batch, so a cancelled or expired context makes OpenContext
// return ctx.Err() promptly with no engine. Construction parallelism is
// bounded by Options.Workers; the resulting index is byte-identical for any
// worker count.
func OpenContext(ctx context.Context, db *Database, opts ...Options) (*Engine, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("graphrep: empty database")
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	m, counter, cache, stages, err := instrumentMetric(db, o.Metric)
	if err != nil {
		return nil, err
	}
	if o.DisableBoundedKernel {
		// Hide the bounded capability: every threshold test below this point
		// computes a full exact distance. The counting and caching layers
		// above keep working unchanged (they sit inside the wrapper).
		m = metric.ExactOnly(m)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	gridStart := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	grid := o.ThetaGrid
	if grid == nil {
		samples := db.Len() * 8
		if samples > 20000 {
			samples = 20000
		}
		grid, err = nbindex.ChooseGridContext(ctx, db, m, 10, samples, o.Workers, rng)
		if err != nil {
			return nil, err
		}
		if len(grid) == 0 {
			grid = []float64{1}
		}
	}
	gridTime := time.Since(gridStart)
	numVPs := o.NumVPs
	if numVPs <= 0 {
		numVPs = 4
		for n := db.Len(); n > 100; n /= 10 {
			numVPs *= 2 // 4 VPs per decade of database size
		}
		if numVPs > 100 {
			numVPs = 100
		}
	}
	if numVPs > db.Len() {
		numVPs = db.Len()
	}
	branching := o.Branching
	if branching == 0 {
		branching = 4
	}
	set, err := shard.BuildContext(ctx, db, m, shard.Options{
		Shards:    o.Shards,
		NumVPs:    numVPs,
		Branching: branching,
		ThetaGrid: grid,
		Workers:   o.Workers,
	}, rng)
	if err != nil {
		return nil, err
	}
	primeEmbeddings(set, stages)
	tel, err := newEngineTelemetry(db, set, counter, cache, stages, gridTime, o.Workers)
	if err != nil {
		return nil, err
	}
	return &Engine{db: db, m: m, set: set, tel: tel}, nil
}

// primeEmbeddings hands the per-shard filter embeddings carried by the index
// (built or loaded) to the default metric, so threshold tests on far pairs
// resolve from the cached vectors without ever materializing a star
// signature. View-backed shards (v4, typically mmapped) prime their encoded
// table instead — the metric decodes records lazily on first use, so opening
// a large index stays O(1) while the decoded values (and therefore every
// decision and stage counter) are identical to eager priming. A no-op for
// custom metrics (stages is nil) — they have no embedding tier.
func primeEmbeddings(set *shard.Set, stages metric.StageCounter) {
	for i := 0; i < set.Shards(); i++ {
		part := set.Part(i)
		if tab := part.EmbeddingTable(); tab != nil {
			if tp, ok := stages.(metric.EmbeddingTablePrimer); ok {
				tp.PrimeEmbeddingTable(part.Base(), tab)
			}
			continue
		}
		if p, ok := stages.(metric.EmbeddingPrimer); ok {
			p.PrimeEmbeddings(part.Base(), part.Embeddings())
		}
	}
}

// instrumentMetric wraps the configured metric for observability: a counting
// layer (distance computations are the paper's central cost measure) and,
// for the default star metric, a memoizing cache whose hit/miss totals feed
// the same telemetry. Custom metrics are sanity-checked before wrapping so
// the spot-check probes don't pollute the counters.
func instrumentMetric(db *Database, custom Metric) (metric.Metric, *metric.Counter, *metric.Cache, metric.StageCounter, error) {
	if custom == nil {
		star := metric.Star(db)
		counter := metric.NewCounter(star)
		cache := metric.NewCache(counter)
		// The star metric tracks which cascade stage resolved each bounded
		// threshold test; surface that breakdown to the telemetry layer.
		stages, _ := star.(metric.StageCounter)
		return cache, counter, cache, stages, nil
	}
	// Catch broken custom metrics early: a handful of cheap spot checks on
	// the properties every index theorem assumes.
	if err := sanityCheckMetric(db, custom); err != nil {
		return nil, nil, nil, nil, err
	}
	counter := metric.NewCounter(custom)
	return counter, counter, nil, nil, nil
}

// OpenWithIndex reopens a database with an index previously persisted by
// SaveIndex, skipping index construction entirely. The database must be the
// same one the index was built over. It is OpenWithIndexContext with no
// cancellation. Current (v4, the zero-copy container), embedded-gob (v3),
// pre-embedding (v2), and pre-shard (v1) index files all load and answer
// identically; pre-embedding files come up with their embeddings recomputed
// from the database (v1 as a single shard). To map the index file instead of
// streaming it, use OpenWithIndexFile.
func OpenWithIndex(db *Database, r io.Reader, opts ...Options) (*Engine, error) {
	return OpenWithIndexContext(context.Background(), db, r, opts...)
}

// OpenWithIndexContext is OpenWithIndex with cancellation: the load observes
// ctx at every shard-section boundary, so a cancelled or expired context
// makes it return ctx.Err() promptly with no engine.
func OpenWithIndexContext(ctx context.Context, db *Database, r io.Reader, opts ...Options) (*Engine, error) {
	return openWithIndex(db, opts, func(m metric.Metric) (*shard.Set, io.Closer, error) {
		set, err := shard.ReadContext(ctx, r, db, m)
		return set, nil, err
	})
}

// OpenWithIndexFile reopens a database with an index file previously written
// by SaveIndex. v4 files are memory-mapped (unless Options.DisableMmap is
// set or the platform lacks support) and served zero-copy: the open cost is
// independent of the index size, pages fault in on first use, and concurrent
// queries share one read-only mapping. Call Engine.Close when done to
// release the mapping — after no queries remain in flight. Legacy formats
// (v1–v3) are decoded to the heap as OpenWithIndex would; Close is then a
// no-op. It is OpenWithIndexFileContext with no cancellation.
func OpenWithIndexFile(db *Database, path string, opts ...Options) (*Engine, error) {
	return OpenWithIndexFileContext(context.Background(), db, path, opts...)
}

// OpenWithIndexFileContext is OpenWithIndexFile with cancellation, observed
// at every shard boundary of the load.
func OpenWithIndexFileContext(ctx context.Context, db *Database, path string, opts ...Options) (*Engine, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	return openWithIndex(db, opts, func(m metric.Metric) (*shard.Set, io.Closer, error) {
		f, err := openIndexFile(path, o.DisableMmap)
		if err != nil {
			return nil, nil, err
		}
		data := f.Bytes()
		if len(data) >= 8 && string(data[:8]) == "NBIDX004" {
			set, err := shard.ReadBytesContext(ctx, data, db, m)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			// The set serves queries from views over data; the mapping must
			// outlive it, so hand the file to the engine.
			return set, f, nil
		}
		// Legacy stream format: decode copies everything to the heap, so the
		// file can be released immediately.
		set, err := shard.ReadContext(ctx, bytes.NewReader(data), db, m)
		f.Close()
		return set, nil, err
	})
}

// openIndexFile maps path read-only, or reads it when mapping is disabled or
// unsupported.
func openIndexFile(path string, disableMmap bool) (*mmapfile.File, error) {
	if disableMmap {
		return mmapfile.OpenReadAll(path)
	}
	return mmapfile.Open(path)
}

// openWithIndex is the shared tail of every index-loading open: instrument
// the metric, run the format-specific load, prime embeddings, and wire
// telemetry.
func openWithIndex(db *Database, opts []Options, load func(metric.Metric) (*shard.Set, io.Closer, error)) (*Engine, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("graphrep: empty database")
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	m, counter, cache, stages, err := instrumentMetric(db, o.Metric)
	if err != nil {
		return nil, err
	}
	if o.DisableBoundedKernel {
		m = metric.ExactOnly(m)
	}
	set, closer, err := load(m)
	if err != nil {
		return nil, err
	}
	// No construction happened, but session initialization still fans out;
	// honor the Workers option for it. Build-phase gauges read as zero.
	set.SetWorkers(o.Workers)
	primeEmbeddings(set, stages)
	tel, err := newEngineTelemetry(db, set, counter, cache, stages, 0, o.Workers)
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, err
	}
	return &Engine{db: db, m: m, set: set, tel: tel, closer: closer}, nil
}

// SaveIndex persists the engine's NB-Index so a later OpenWithIndex (or
// OpenWithIndexFile, which memory-maps it) can skip construction — the
// offline step of Fig. 6(k). The format (v4) is a flat offset-tabled layout
// recording every shard along with its filter embeddings, readable in place.
func (e *Engine) SaveIndex(w io.Writer) error { return e.set.Encode(w) }

// SaveIndexV3 persists the index in the legacy v3 gob layout, for
// interoperability with older tooling. OpenWithIndex loads either format and
// answers identically.
func (e *Engine) SaveIndexV3(w io.Writer) error { return e.set.EncodeV3(w) }

// Shards returns the number of index shards (1 unless Options.Shards asked
// for more, or the loaded index file recorded more).
func (e *Engine) Shards() int { return e.set.Shards() }

// ShardFor returns the index (0 ≤ p < Shards()) of the shard owning graph
// id. Inserts always land in the last shard; internal/server uses this to
// scope read locks to the one shard a request touches.
func (e *Engine) ShardFor(id ID) int { return e.set.PartFor(id) }

// Insert appends a graph to the database and extends the index
// incrementally — |V| vantage distances plus a tree descent instead of a
// rebuild. The graph's ID must equal Database().Len(). Cluster bounds
// loosen slightly as inserts accumulate (answers stay exact; queries slow
// gradually), so rebuild with Open after heavy insert volume. Not safe
// concurrently with queries — the caller must exclude in-flight queries
// externally; internal/server is the worked example, holding a
// sync.RWMutex write lock around Insert while every query path reads under
// RLock. Fields accessed under such a lock are annotated
// `// guarded by <mu>` in their struct declarations; the lockguard analyzer
// (cmd/replint) then enforces that only functions which lock that mutex —
// or are named *Locked to declare the caller holds it — touch them.
// Sessions created before an Insert do not see the new graph.
func (e *Engine) Insert(g *Graph) error {
	if err := e.db.Append(g); err != nil {
		return err
	}
	if err := e.set.Insert(g.ID()); err != nil {
		return err
	}
	// Only the last shard grew: refresh its gauges and hand the new graph's
	// filter embedding to the metric (already-cached vectors are kept).
	last := e.set.Shards() - 1
	e.tel.setShardGauges(e.set, last)
	if p, ok := e.tel.stages.(metric.EmbeddingPrimer); ok {
		part := e.set.Part(last)
		p.PrimeEmbeddings(part.Base(), part.Embeddings())
	}
	return nil
}

// QueryStats describes the work one indexed TopK call performed: priority
// queue pops, exactly verified leaves, candidate scans, and exact distance
// computations — the efficiency measures of the paper's §8.
type QueryStats = nbindex.QueryStats

// TelemetryRegistry collects the engine's metrics and renders them in the
// Prometheus text exposition format. See Engine.Telemetry.
type TelemetryRegistry = telemetry.Registry

// Telemetry exposes the engine's cumulative observability state: distance
// computation and cache totals, and per-phase NB-Index work histograms
// folded in from every completed query. All counters update atomically on
// the query path; reading them (Snapshot, WritePrometheus) is safe at any
// time, concurrent with queries.
type Telemetry struct {
	reg     *telemetry.Registry
	counter *metric.Counter
	cache   *metric.Cache       // nil when a custom metric is configured
	stages  metric.StageCounter // nil when a custom metric is configured
	nb      *nbindex.Telemetry
	// Per-shard gauges, labelled by decimal shard index. Values are set at
	// Open and refreshed for the last shard by Insert.
	shardGraphs *telemetry.GaugeVec
	shardBytes  *telemetry.GaugeVec
}

// setShardGauges refreshes shard p's size gauges from the set.
func (t *Telemetry) setShardGauges(set *shard.Set, p int) {
	label := strconv.Itoa(p)
	part := set.Part(p)
	t.shardGraphs.With(label).Set(float64(part.Count()))
	t.shardBytes.With(label).Set(float64(part.Bytes()))
}

// newEngineTelemetry builds the engine's metric registry: distance-layer
// counters bridged from metric.Counter/metric.Cache, database and index
// gauges, build-phase wall times, and the nbindex per-query work
// histograms. gridTime is the θ-grid sampling phase (measured by Open,
// which runs it before Build); workers is the configured Options.Workers.
func newEngineTelemetry(db *Database, set *shard.Set, counter *metric.Counter, cache *metric.Cache, stages metric.StageCounter, gridTime time.Duration, workers int) (*Telemetry, error) {
	reg := telemetry.NewRegistry()
	t := &Telemetry{reg: reg, counter: counter, cache: cache, stages: stages}
	var err error
	if err := reg.NewCounterFunc("graphrep_distance_computations_total",
		"Exact graph distance computations issued (including index construction).",
		counter.Count); err != nil {
		return nil, err
	}
	if stages != nil {
		// Bound-cascade breakdown of the default metric's threshold tests.
		// Each stage name is a literal so the metricname analyzer can audit
		// the namespace; the closures re-read the atomic counters per scrape.
		if err := reg.NewCounterFunc("graphrep_metric_prune_embedding_total",
			"Threshold tests resolved by the precomputed-embedding lower bound.",
			func() int64 { return stages.PruneStats().Embedding }); err != nil {
			return nil, err
		}
		if err := reg.NewCounterFunc("graphrep_metric_prune_rowmin_total",
			"Threshold tests decided by the row-minima lower bound.",
			func() int64 { return stages.PruneStats().RowMin }); err != nil {
			return nil, err
		}
		if err := reg.NewCounterFunc("graphrep_metric_rowmin_solved_total",
			"Row-minima decisions that also completed a hardening Hungarian solve.",
			func() int64 { return stages.PruneStats().RowMinSolved }); err != nil {
			return nil, err
		}
		if err := reg.NewCounterFunc("graphrep_metric_prune_greedy_total",
			"Threshold tests resolved by the greedy-assignment upper bound.",
			func() int64 { return stages.PruneStats().Greedy }); err != nil {
			return nil, err
		}
		if err := reg.NewCounterFunc("graphrep_metric_prune_dual_total",
			"Threshold tests resolved by the Hungarian dual-objective early exit.",
			func() int64 { return stages.PruneStats().Dual }); err != nil {
			return nil, err
		}
		if err := reg.NewCounterFunc("graphrep_metric_bounded_exact_total",
			"Threshold tests that needed a completed Hungarian solve.",
			func() int64 { return stages.PruneStats().BoundedExact }); err != nil {
			return nil, err
		}
		if err := reg.NewCounterFunc("graphrep_metric_greedy_tried_total",
			"Threshold tests on which the greedy upper-bound tier ran (adaptive gate attempt denominator).",
			func() int64 { return stages.PruneStats().GreedyTried }); err != nil {
			return nil, err
		}
		if err := reg.NewCounterFunc("graphrep_metric_dual_armed_total",
			"Exact solves run with the dual abort armed (adaptive gate attempt denominator).",
			func() int64 { return stages.PruneStats().DualArmed }); err != nil {
			return nil, err
		}
	}
	if cache != nil {
		if err := reg.NewCounterFunc("graphrep_distance_cache_hits_total",
			"Distance lookups answered from the memo table.", cache.Hits); err != nil {
			return nil, err
		}
		if err := reg.NewCounterFunc("graphrep_distance_cache_misses_total",
			"Distance lookups that computed a fresh distance.", cache.Misses); err != nil {
			return nil, err
		}
		if err := reg.NewGaugeFunc("graphrep_distance_cache_entries",
			"Memoized distance pairs resident in the cache.",
			func() float64 { return float64(cache.Size()) }); err != nil {
			return nil, err
		}
	}
	if err := reg.NewGaugeFunc("graphrep_graphs",
		"Graphs in the database.",
		func() float64 { return float64(db.Len()) }); err != nil {
		return nil, err
	}
	if err := reg.NewGaugeFunc("graphrep_index_bytes",
		"Approximate NB-Index memory footprint.",
		func() float64 { return float64(set.Bytes()) }); err != nil {
		return nil, err
	}
	if err := reg.NewGaugeFunc("graphrep_shards",
		"Index shards (contiguous ID-range partitions).",
		func() float64 { return float64(set.Shards()) }); err != nil {
		return nil, err
	}
	t.shardGraphs, err = reg.NewGaugeVec("graphrep_shard_graphs",
		"Graphs owned by each index shard.", "shard")
	if err != nil {
		return nil, err
	}
	t.shardBytes, err = reg.NewGaugeVec("graphrep_shard_index_bytes",
		"Approximate memory footprint of each index shard.", "shard")
	if err != nil {
		return nil, err
	}
	shardBuild, err := reg.NewGaugeVec("graphrep_shard_build_seconds",
		"Wall time spent building each shard's vantage rows and NB-Tree.", "shard")
	if err != nil {
		return nil, err
	}
	for p := 0; p < set.Shards(); p++ {
		t.setShardGauges(set, p)
		pt := set.Part(p).Timing()
		shardBuild.With(strconv.Itoa(p)).Set((pt.Vantage + pt.Tree).Seconds())
	}
	// Build-phase wall times: fixed after Open, so the closures capture the
	// computed values. All zero when the index was loaded from disk. Each
	// registration passes its name as a literal so the metricname analyzer can
	// audit the full namespace at build time.
	timing := set.Timing()
	secsGauge := func(d time.Duration) func() float64 {
		secs := d.Seconds()
		return func() float64 { return secs }
	}
	if err := reg.NewGaugeFunc("graphrep_build_grid_seconds",
		"Wall time of the θ-grid distance sampling phase.",
		secsGauge(gridTime)); err != nil {
		return nil, err
	}
	if err := reg.NewGaugeFunc("graphrep_build_vpselect_seconds",
		"Wall time of the vantage point selection phase.",
		secsGauge(timing.VPSelect)); err != nil {
		return nil, err
	}
	if err := reg.NewGaugeFunc("graphrep_build_vantage_seconds",
		"Wall time of the vantage distance-matrix phase.",
		secsGauge(timing.Vantage)); err != nil {
		return nil, err
	}
	if err := reg.NewGaugeFunc("graphrep_build_tree_seconds",
		"Wall time of the NB-Tree clustering phase.",
		secsGauge(timing.Tree)); err != nil {
		return nil, err
	}
	if err := reg.NewGaugeFunc("graphrep_build_total_seconds",
		"Wall time of index construction (grid sampling plus NB-Index build).",
		secsGauge(gridTime+timing.Total)); err != nil {
		return nil, err
	}
	if err := reg.NewGaugeFunc("graphrep_build_workers",
		"Worker goroutines the build and session-initialization pools are bounded by.",
		func() float64 { return float64(pool.Resolve(workers)) }); err != nil {
		return nil, err
	}
	nb, err := nbindex.NewTelemetry(reg)
	if err != nil {
		return nil, err
	}
	set.SetTelemetry(nb)
	t.nb = nb
	return t, nil
}

// Telemetry returns the engine's observability state. The same registry is
// shared by internal/server to expose HTTP metrics alongside the engine's,
// so one GET /metrics scrape covers the whole process.
func (e *Engine) Telemetry() *Telemetry { return e.tel }

// Registry returns the underlying metric registry, for callers that want to
// register additional metrics (the HTTP server does) or render exposition
// output themselves.
func (t *Telemetry) Registry() *TelemetryRegistry { return t.reg }

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format.
func (t *Telemetry) WritePrometheus(w io.Writer) error { return t.reg.WritePrometheus(w) }

// TelemetrySnapshot is a point-in-time copy of the engine's headline
// aggregates, for programmatic consumption (cmd/repquery --stats prints
// one). Counters are cumulative since Open.
type TelemetrySnapshot struct {
	// DistanceComputations counts exact distance computations issued,
	// including those spent building the index.
	DistanceComputations int64
	// CacheHits / CacheMisses / CacheEntries describe the distance memo
	// table; all zero when a custom metric is configured (no cache layer).
	CacheHits, CacheMisses int64
	CacheEntries           int
	// Queries counts completed indexed TopK calls across all sessions.
	Queries int64
	// QueryTotals sums the per-query QueryStats of those calls.
	QueryTotals QueryStats
	// Prune is the bound-cascade breakdown of the default metric's threshold
	// tests — which stage resolved each Within decision, and how many needed
	// a completed Hungarian solve. All zero when a custom metric is
	// configured (no cascade) or DisableBoundedKernel is set (no bounded
	// tests are ever issued).
	Prune PruneStats
}

// PruneStats is the bound-cascade breakdown tracked by the default star
// metric; see TelemetrySnapshot.Prune.
type PruneStats = metric.PruneStats

// Snapshot copies the current aggregate values. Individual fields are read
// atomically but not as one transaction; under concurrent load the fields
// may be mutually inconsistent by at most the queries in flight.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	s := TelemetrySnapshot{
		DistanceComputations: t.counter.Count(),
		Queries:              t.nb.Queries.Value(),
		QueryTotals:          t.nb.Totals(),
	}
	if t.cache != nil {
		s.CacheHits = t.cache.Hits()
		s.CacheMisses = t.cache.Misses()
		s.CacheEntries = t.cache.Size()
	}
	if t.stages != nil {
		s.Prune = t.stages.PruneStats()
	}
	return s
}

// sanityCheckMetric spot-checks identity, non-negativity, symmetry, and the
// triangle inequality on a few pairs. It cannot prove a metric correct, but
// it catches the common mistakes (asymmetric or unnormalized distances)
// before they silently corrupt index pruning.
func sanityCheckMetric(db *Database, m metric.Metric) error {
	n := db.Len()
	pick := func(i int) ID { return ID(i % n) }
	for i := 0; i < 5 && i < n; i++ {
		a := pick(i * 7)
		if d := m.Distance(a, a); d != 0 {
			return fmt.Errorf("graphrep: custom metric: d(%d,%d) = %v, want 0", a, a, d)
		}
		b, c := pick(i*13+1), pick(i*29+2)
		dab, dba := m.Distance(a, b), m.Distance(b, a)
		if dab < 0 {
			return fmt.Errorf("graphrep: custom metric: d(%d,%d) = %v < 0", a, b, dab)
		}
		if dab != dba {
			return fmt.Errorf("graphrep: custom metric: d(%d,%d)=%v ≠ d(%d,%d)=%v", a, b, dab, b, a, dba)
		}
		if dac, dbc := m.Distance(a, c), m.Distance(b, c); dac > dab+dbc+1e-9 {
			return fmt.Errorf("graphrep: custom metric: triangle inequality violated on (%d,%d,%d)", a, b, c)
		}
	}
	return nil
}

// Database returns the engine's database.
func (e *Engine) Database() *Database { return e.db }

// IndexBytes approximates the index memory footprint.
func (e *Engine) IndexBytes() int64 { return e.set.Bytes() }

// TopKRepresentative answers q through the NB-Index. For repeated queries
// with the same relevance function, use NewSession instead.
func (e *Engine) TopKRepresentative(q Query) (*Result, error) {
	return e.TopKRepresentativeContext(context.Background(), q)
}

// TopKRepresentativeContext is TopKRepresentative with cancellation: both
// the session initialization and the search observe ctx and return
// ctx.Err() promptly once it is cancelled or its deadline passes.
func (e *Engine) TopKRepresentativeContext(ctx context.Context, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	s, err := e.set.NewSessionContext(ctx, q.Relevance)
	if err != nil {
		return nil, err
	}
	return s.TopKContext(ctx, q.Theta, q.K)
}

// TopKRepresentativeExact answers q with the simple quadratic greedy
// (Alg. 1), bypassing the index. Useful for validation and for tiny
// databases where index construction does not pay off. The answer is
// identical to TopKRepresentative.
func (e *Engine) TopKRepresentativeExact(q Query) (*Result, error) {
	// This path bypasses session creation, so settle a mapped database's
	// deferred content validation here (cached after the first call).
	if err := e.db.EnsureValid(); err != nil {
		return nil, err
	}
	return core.BaselineGreedy(e.db, e.m, q)
}

// TopKRepresentativePolished answers q with the exact greedy followed by
// swap local search: answer members are exchanged for non-members while
// coverage strictly improves. Costs a full pairwise scan of the relevant set
// (like TopKRepresentativeExact) plus the swap rounds; π is ≥ the greedy's.
// Use when answer quality matters more than latency.
func (e *Engine) TopKRepresentativePolished(q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := e.db.EnsureValid(); err != nil {
		return nil, err
	}
	rel := core.Relevant(e.db, q.Relevance)
	nb := core.PairwiseNeighborhoods(e.db, e.m, rel, q.Theta)
	res := core.Greedy(nb, q.K)
	improved, _ := core.LocalSearchImprove(nb, res, 0)
	return improved, nil
}

// TraditionalTopK returns the k highest-scoring graphs — the classical
// formulation the paper's qualitative comparison contrasts with.
func (e *Engine) TraditionalTopK(score Score, k int) []ID {
	return core.TraditionalTopK(e.db, score, k)
}

// Relevant returns the IDs the relevance function selects.
func (e *Engine) Relevant(rel Relevance) []ID { return core.Relevant(e.db, rel) }

// Power evaluates π_θ(answer): the fraction of relevant graphs within θ of
// the answer set. Useful for scoring answer sets from other systems.
func (e *Engine) Power(rel Relevance, answer []ID, theta float64) float64 {
	relevant := core.Relevant(e.db, rel)
	p, _ := core.Power(e.db, e.m, relevant, answer, theta)
	return p
}

// Explain assigns every relevant graph covered by the answer to its nearest
// answer member: the map lists, per exemplar, the graphs it stands for
// (itself included). Costs |answer|·|L_q| distance computations.
func (e *Engine) Explain(rel Relevance, answer []ID, theta float64) map[ID][]ID {
	relevant := core.Relevant(e.db, rel)
	return core.AssignRepresentatives(e.db, e.m, relevant, answer, theta)
}

// Session is the reusable initialization for one relevance function: any
// number of TopK calls at different θ (interactive refinement) amortize it.
type Session struct {
	s shard.QuerySession
}

// NewSession prepares a session for the relevance function.
func (e *Engine) NewSession(rel Relevance) (*Session, error) {
	return e.NewSessionContext(context.Background(), rel)
}

// NewSessionContext is NewSession with cancellation: initialization (one
// vantage scan per relevant graph, run on the engine's worker pool) checks
// ctx between batches and returns ctx.Err() when it fires.
func (e *Engine) NewSessionContext(ctx context.Context, rel Relevance) (*Session, error) {
	if rel == nil {
		return nil, fmt.Errorf("graphrep: nil relevance function")
	}
	s, err := e.set.NewSessionContext(ctx, rel)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// TopK answers a top-k representative query at threshold theta. It is safe
// to call concurrently with other queries on the same or other sessions.
// Arguments are validated (k must be ≥ 1, theta non-negative and not NaN)
// so the session path rejects malformed queries just like
// Engine.TopKRepresentative does.
func (s *Session) TopK(theta float64, k int) (*Result, error) { return s.s.TopK(theta, k) }

// TopKContext is TopK with cancellation: the search checks ctx at every
// greedy pick and periodically inside the best-first loop, returning
// ctx.Err() promptly after it fires.
func (s *Session) TopKContext(ctx context.Context, theta float64, k int) (*Result, error) {
	return s.s.TopKContext(ctx, theta, k)
}

// LastStats returns the work statistics of the most recently completed TopK
// call on this session.
func (s *Session) LastStats() QueryStats { return s.s.LastStats() }

// ThetaPoint is one row of a threshold sweep: the quality of the answer the
// engine returns at one θ.
type ThetaPoint = nbindex.ThetaPoint

// SweepTheta answers the query at every indexed threshold (plus any extras)
// and returns the coverage/granularity trade-off curve — the "zoom level"
// explorer of the paper's §7.
func (s *Session) SweepTheta(k int, extra ...float64) ([]ThetaPoint, error) {
	return s.s.SweepTheta(k, extra...)
}

// SweepThetaContext is SweepTheta with cancellation: ctx flows into every
// per-threshold query, so an expired deadline aborts the sweep mid-curve
// with ctx.Err().
func (s *Session) SweepThetaContext(ctx context.Context, k int, extra ...float64) ([]ThetaPoint, error) {
	return s.s.SweepThetaContext(ctx, k, extra...)
}

// SuggestTheta picks the knee of a sweep curve: the threshold past which a
// larger radius buys little extra coverage.
func SuggestTheta(points []ThetaPoint) (ThetaPoint, error) { return nbindex.SuggestTheta(points) }

// RelevantCount returns |L_q| for the session.
func (s *Session) RelevantCount() int { return s.s.RelevantCount() }

// FirstQuartileRelevance returns the paper's default relevance function: a
// graph is relevant when its mean feature score (over dims, or all
// dimensions when dims is nil) falls in the top quartile of the database.
func FirstQuartileRelevance(db *Database, dims []int) Relevance {
	return core.FirstQuartileRelevance(db, dims)
}

// DimensionScore scores a feature vector as the mean over the chosen
// dimensions (all when dims is nil).
func DimensionScore(dims []int) Score { return core.DimensionScore(dims) }

// TopicScore is the cascade query function (Table 1, example 2): the soft
// Jaccard similarity between a graph's topic-weight vector and a query
// topic set.
func TopicScore(topics []int) Score { return core.TopicScore(topics) }

// TopicRelevance classifies a graph as relevant when its TopicScore against
// the query topics reaches tau.
func TopicRelevance(topics []int, tau float64) Relevance { return core.TopicRelevance(topics, tau) }

// WeightedScore is the bug-analysis query function (Table 1, example 3):
// wᵀ·features, e.g. recency-weighted occurrence counts.
func WeightedScore(w []float64) Score { return core.WeightedScore(w) }

// WeightedRelevance classifies a graph as relevant when its WeightedScore
// reaches tau.
func WeightedRelevance(w []float64, tau float64) Relevance { return core.WeightedRelevance(w, tau) }

// WLHash returns a Weisfeiler–Lehman hash of the graph: equal hashes mean
// isomorphic with high probability. Useful for detecting duplicates and
// grouping answer sets into structural families.
func WLHash(g *Graph, rounds int) uint64 { return g.WLHash(rounds) }
