package graphrep_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"graphrep"
)

// The v4 (zero-copy mmap) persistence contract, as tests:
//
//   - a v4 index opened from a mapped file answers byte-identically —
//     answers, sweep curves, AND QueryStats — to the same index loaded from
//     a v3 stream, for every shard count × worker count combination;
//   - one shared mapping serves any number of concurrent query goroutines
//     (the -race build is the real assertion);
//   - DisableMmap (and platforms without mmap) read the file instead, with
//     identical results;
//   - every committed golden blob (v1..v4, same dud-120 seed-7 database)
//     loads, answers identically to a fresh build, and re-saves to the same
//     v4 bytes a fresh engine writes.

// saveBoth persists engine in both formats: the legacy v3 stream and a v4
// file on disk.
func saveBoth(t *testing.T, engine *graphrep.Engine, dir string, tag string) ([]byte, string) {
	t.Helper()
	var v3 bytes.Buffer
	if err := engine.SaveIndexV3(&v3); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, tag+".nbx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return v3.Bytes(), path
}

// TestV4MmapEqualsV3Loaded is the tentpole acceptance matrix: the same index
// opened from a v3 stream and from a v4 memory mapping must produce
// byte-identical answers, sweep curves, and per-query work statistics — the
// view-backed query path does exactly the work the heap-backed one does —
// for shard counts 1, 2, 4 and session workers 1 and GOMAXPROCS.
func TestV4MmapEqualsV3Loaded(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, shards := range []int{1, 2, 4} {
		engine, err := graphrep.Open(db, graphrep.Options{Seed: 5, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		v3blob, v4path := saveBoth(t, engine, dir, fmt.Sprintf("s%d", shards))
		wantAnswers, _, wantPoints := collectAnswers(t, engine, 5)
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			opts := graphrep.Options{Workers: workers}
			fromV3, err := graphrep.OpenWithIndex(db, bytes.NewReader(v3blob), opts)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: v3 load: %v", shards, workers, err)
			}
			fromV4, err := graphrep.OpenWithIndexFile(db, v4path, opts)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: v4 open: %v", shards, workers, err)
			}
			v3Answers, v3Stats, v3Points := collectAnswers(t, fromV3, 5)
			v4Answers, v4Stats, v4Points := collectAnswers(t, fromV4, 5)
			for _, e := range []struct {
				name    string
				engine  *graphrep.Engine
				answers []answer
				points  []graphrep.ThetaPoint
			}{{"v3-loaded", fromV3, v3Answers, v3Points}, {"v4-mmapped", fromV4, v4Answers, v4Points}} {
				if e.engine.Shards() != shards {
					t.Fatalf("%s engine has %d shards, want %d", e.name, e.engine.Shards(), shards)
				}
				if !reflect.DeepEqual(e.answers, wantAnswers) {
					t.Errorf("shards=%d workers=%d: %s answers differ from the built engine:\n got %+v\nwant %+v",
						shards, workers, e.name, e.answers, wantAnswers)
				}
				if !reflect.DeepEqual(e.points, wantPoints) {
					t.Errorf("shards=%d workers=%d: %s sweep curve differs from the built engine",
						shards, workers, e.name)
				}
			}
			// QueryStats are compared between the two LOADED engines, not
			// against the builder: a fresh build leaves the distance cache
			// warm, which legitimately shifts the pruned/exact split. The two
			// cold-started engines must match each other field for field —
			// the zero-copy path does exactly the work the heap path does.
			if !reflect.DeepEqual(v4Stats, v3Stats) {
				t.Errorf("shards=%d workers=%d: v4-mmapped query stats differ from v3-loaded:\n got %+v\nwant %+v",
					shards, workers, v4Stats, v3Stats)
			}
			// A v4-mmapped engine re-saves to the exact bytes on disk.
			var again bytes.Buffer
			if err := fromV4.SaveIndex(&again); err != nil {
				t.Fatal(err)
			}
			disk, err := os.ReadFile(v4path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Bytes(), disk) {
				t.Errorf("shards=%d workers=%d: v4-mmapped re-save differs from the file it was opened from",
					shards, workers)
			}
			if err := fromV4.Close(); err != nil {
				t.Errorf("shards=%d workers=%d: close: %v", shards, workers, err)
			}
		}
	}
}

// TestV4ConcurrentQueriesSharedMapping runs many query goroutines — separate
// sessions and a shared session — against one mapped index. Under -race this
// is the data-race acceptance test for the zero-copy read path, including
// the lazily-decoded embedding table.
func TestV4ConcurrentQueriesSharedMapping(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 7, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	_, v4path := saveBoth(t, engine, dir, "conc")
	wantAnswers, _, wantPoints := collectAnswers(t, engine, 5)

	mapped, err := graphrep.OpenWithIndexFile(db, v4path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	rel := graphrep.FirstQuartileRelevance(db, nil)
	shared, err := mapped.NewSession(rel)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := shared
			if g%2 == 0 {
				var err error
				if sess, err = mapped.NewSession(rel); err != nil {
					errs <- err
					return
				}
			}
			for i, theta := range equalityThetas {
				res, err := sess.TopK(theta, 5)
				if err != nil {
					errs <- err
					return
				}
				got := answer{Answer: res.Answer, Gains: res.Gains,
					Covered: res.Covered, Relevant: res.Relevant, Power: res.Power}
				if !reflect.DeepEqual(got, wantAnswers[i]) {
					errs <- fmt.Errorf("goroutine %d theta=%v: answer differs from built engine", g, theta)
					return
				}
			}
			points, err := sess.SweepTheta(5)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(points, wantPoints) {
				errs <- fmt.Errorf("goroutine %d: sweep curve differs from built engine", g)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestOpenWithIndexFileDisableMmap checks the read fallback: with mapping
// disabled the same file produces identical answers, and Close stays safe
// (idempotent, and a no-op for heap-backed engines).
func TestOpenWithIndexFileDisableMmap(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v3blob, v4path := saveBoth(t, engine, dir, "fallback")
	// Baseline: the mapped open. (Not the builder — its warm distance cache
	// legitimately shifts the pruned/exact stats split.)
	mapped, err := graphrep.OpenWithIndexFile(db, v4path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	wantAnswers, wantStats, _ := collectAnswers(t, mapped, 4)

	noMmap, err := graphrep.OpenWithIndexFile(db, v4path, graphrep.Options{DisableMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	answers, stats, _ := collectAnswers(t, noMmap, 4)
	if !reflect.DeepEqual(answers, wantAnswers) || !reflect.DeepEqual(stats, wantStats) {
		t.Error("DisableMmap engine answers or stats differ from the mapped engine")
	}
	if err := noMmap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := noMmap.Close(); err != nil {
		t.Fatal(err)
	}

	// A legacy v3 file also opens through the file API (decoded to the heap).
	v3path := filepath.Join(dir, "legacy_v3.nbx")
	if err := os.WriteFile(v3path, v3blob, 0o644); err != nil {
		t.Fatal(err)
	}
	legacy, err := graphrep.OpenWithIndexFile(db, v3path)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	answers, stats, _ = collectAnswers(t, legacy, 4)
	if !reflect.DeepEqual(answers, wantAnswers) || !reflect.DeepEqual(stats, wantStats) {
		t.Error("v3-file engine answers or stats differ from the mapped engine")
	}
}

// TestIndexCompatMatrix loads every committed golden blob — one per format
// generation, all over the same dud-120 seed-7 database — and checks the
// full compatibility contract: each loads with its original shard layout,
// answers exactly like a fresh build, and re-saves to the same v4 bytes a
// fresh engine of the same shard count writes. (v1 predates sharding, so it
// compares against a 1-shard save; v2–v4 were written with two shards.)
func TestIndexCompatMatrix(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	freshSaves := map[int][]byte{}
	var wantAnswers []answer
	var wantPoints []graphrep.ThetaPoint
	for _, shards := range []int{1, 2} {
		fresh, err := graphrep.Open(db, graphrep.Options{Seed: 7, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fresh.SaveIndex(&buf); err != nil {
			t.Fatal(err)
		}
		freshSaves[shards] = buf.Bytes()
		if shards == 2 {
			wantAnswers, _, wantPoints = collectAnswers(t, fresh, 5)
		}
	}
	for _, tc := range []struct {
		file   string
		shards int
	}{
		{"index_v1_dud120_seed7.nbx", 1},
		{"index_v2_dud120_seed7.nbx", 2},
		{"index_v3_dud120_seed7.nbx", 2},
		{"index_v4_dud120_seed7.nbx", 2},
	} {
		blob, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := graphrep.OpenWithIndex(db, bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s no longer loads: %v", tc.file, err)
		}
		if loaded.Shards() != tc.shards {
			t.Fatalf("%s loaded as %d shards, want %d", tc.file, loaded.Shards(), tc.shards)
		}
		answers, _, points := collectAnswers(t, loaded, 5)
		if !reflect.DeepEqual(answers, wantAnswers) {
			t.Errorf("%s answers differ from a fresh build:\n got %+v\nwant %+v", tc.file, answers, wantAnswers)
		}
		if !reflect.DeepEqual(points, wantPoints) {
			t.Errorf("%s sweep curve differs from a fresh build", tc.file)
		}
		var resave bytes.Buffer
		if err := loaded.SaveIndex(&resave); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resave.Bytes(), freshSaves[tc.shards]) {
			t.Errorf("%s re-saved bytes differ from a fresh %d-shard v4 save", tc.file, tc.shards)
		}
	}
}
