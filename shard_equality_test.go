package graphrep_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"graphrep"
)

// The sharding determinism contract, as tests:
//
//   - answers (Answer, Gains, Covered, Power) are byte-identical for any
//     shard count — the global vantage point set and θ grid make per-shard
//     bounds compose exactly;
//   - at a fixed shard count, everything — answers, SaveIndex bytes, and
//     QueryStats — is identical for any Workers value;
//   - a v2 index file round-trips through SaveIndex/OpenWithIndex with its
//     shard count intact;
//   - a v1 index file (committed golden blob from the pre-shard engine)
//     still loads, comes up as one shard, and answers identically to a
//     fresh build.
//
// QueryStats totals are deliberately NOT compared across different shard
// counts: each count's forest has its own shape, so the search does a
// different (equally correct) amount of bookkeeping work.

var equalityThetas = []float64{4, 6, 8, 11}

type answer struct {
	Answer   []graphrep.ID
	Gains    []int
	Covered  int
	Relevant int
	Power    float64
}

// collectAnswers runs TopK at every test θ plus a full sweep, recording the
// results and per-query stats.
func collectAnswers(t *testing.T, engine *graphrep.Engine, k int) ([]answer, []graphrep.QueryStats, []graphrep.ThetaPoint) {
	t.Helper()
	rel := graphrep.FirstQuartileRelevance(engine.Database(), nil)
	sess, err := engine.NewSession(rel)
	if err != nil {
		t.Fatal(err)
	}
	var answers []answer
	var stats []graphrep.QueryStats
	for _, theta := range equalityThetas {
		res, err := sess.TopK(theta, k)
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, answer{
			Answer: res.Answer, Gains: res.Gains,
			Covered: res.Covered, Relevant: res.Relevant, Power: res.Power,
		})
		stats = append(stats, sess.LastStats())
	}
	points, err := sess.SweepTheta(k)
	if err != nil {
		t.Fatal(err)
	}
	return answers, stats, points
}

// TestShardCountAnswerEquality builds the same database at 1, 2, and 4
// shards and checks every answer — TopK at several θ and the full sweep
// curve — is identical.
func TestShardCountAnswerEquality(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	type run struct {
		shards  int
		answers []answer
		points  []graphrep.ThetaPoint
	}
	var runs []run
	for _, shards := range []int{1, 2, 4} {
		engine, err := graphrep.Open(db, graphrep.Options{Seed: 5, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if engine.Shards() != shards {
			t.Fatalf("engine has %d shards, want %d", engine.Shards(), shards)
		}
		answers, _, points := collectAnswers(t, engine, 5)
		runs = append(runs, run{shards, answers, points})
	}
	for _, r := range runs[1:] {
		if !reflect.DeepEqual(r.answers, runs[0].answers) {
			t.Errorf("shards=%d answers differ from shards=1:\n got %+v\nwant %+v",
				r.shards, r.answers, runs[0].answers)
		}
		if !reflect.DeepEqual(r.points, runs[0].points) {
			t.Errorf("shards=%d sweep curve differs from shards=1", r.shards)
		}
	}
}

// TestShardWorkerEquality fixes the shard count and varies Workers: answers,
// QueryStats, and the persisted index bytes must all be identical — the
// parallelism is pre-partitioned and every randomized decision is pinned
// before any fan-out.
func TestShardWorkerEquality(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 140, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		type run struct {
			workers int
			answers []answer
			stats   []graphrep.QueryStats
			blob    []byte
		}
		var runs []run
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			engine, err := graphrep.Open(db, graphrep.Options{Seed: 9, Shards: shards, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := engine.SaveIndex(&buf); err != nil {
				t.Fatal(err)
			}
			answers, stats, _ := collectAnswers(t, engine, 4)
			runs = append(runs, run{workers, answers, stats, buf.Bytes()})
		}
		for _, r := range runs[1:] {
			if !bytes.Equal(r.blob, runs[0].blob) {
				t.Errorf("shards=%d: index bytes differ between workers=%d and workers=%d",
					shards, r.workers, runs[0].workers)
			}
			if !reflect.DeepEqual(r.answers, runs[0].answers) {
				t.Errorf("shards=%d: answers differ between workers=%d and workers=%d",
					shards, r.workers, runs[0].workers)
			}
			if !reflect.DeepEqual(r.stats, runs[0].stats) {
				t.Errorf("shards=%d: query stats differ between workers=%d and workers=%d:\n got %+v\nwant %+v",
					shards, r.workers, runs[0].workers, r.stats, runs[0].stats)
			}
		}
	}
}

// TestBoundedKernelAnswerEquality is the kernel's core acceptance contract:
// with the bounded distance kernel on (default) and off
// (DisableBoundedKernel), answers, sweep curves, and persisted index bytes
// are byte-identical — at every shard count and worker count. The kernel may
// only change how a threshold decision is reached, never the decision.
func TestBoundedKernelAnswerEquality(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			type run struct {
				disabled bool
				answers  []answer
				stats    []graphrep.QueryStats
				points   []graphrep.ThetaPoint
				blob     []byte
			}
			var runs []run
			for _, disabled := range []bool{false, true} {
				engine, err := graphrep.Open(db, graphrep.Options{
					Seed: 5, Shards: shards, Workers: workers,
					DisableBoundedKernel: disabled,
				})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := engine.SaveIndex(&buf); err != nil {
					t.Fatal(err)
				}
				answers, stats, points := collectAnswers(t, engine, 5)
				runs = append(runs, run{disabled, answers, stats, points, buf.Bytes()})
				snap := engine.Telemetry().Snapshot()
				if disabled && snap.Prune.Pruned()+snap.Prune.BoundedExact != 0 {
					t.Errorf("shards=%d workers=%d: disabled kernel still made bounded decisions: %+v",
						shards, workers, snap.Prune)
				}
				if !disabled && snap.QueryTotals.PrunedDistances == 0 {
					t.Errorf("shards=%d workers=%d: bounded kernel pruned nothing on the query path",
						shards, workers)
				}
			}
			on, off := runs[0], runs[1]
			if !bytes.Equal(on.blob, off.blob) {
				t.Errorf("shards=%d workers=%d: index bytes differ with kernel on vs off", shards, workers)
			}
			if !reflect.DeepEqual(on.answers, off.answers) {
				t.Errorf("shards=%d workers=%d: answers differ with kernel on vs off:\n on %+v\noff %+v",
					shards, workers, on.answers, off.answers)
			}
			if !reflect.DeepEqual(on.points, off.points) {
				t.Errorf("shards=%d workers=%d: sweep curves differ with kernel on vs off", shards, workers)
			}
			// The split between pruned and exact differs by design, but the
			// total candidate tests per query must not.
			for i := range on.stats {
				a, b := on.stats[i], off.stats[i]
				if a.PQPops != b.PQPops || a.VerifiedLeaves != b.VerifiedLeaves ||
					a.CandidateScans != b.CandidateScans ||
					a.ExactDistances+a.PrunedDistances != b.ExactDistances+b.PrunedDistances {
					t.Errorf("shards=%d workers=%d query %d: work shape differs with kernel on vs off:\n on %+v\noff %+v",
						shards, workers, i, a, b)
				}
				if b.PrunedDistances != 0 {
					t.Errorf("shards=%d workers=%d query %d: disabled kernel reported pruned distances", shards, workers, i)
				}
			}
		}
	}
}

// TestSaveIndexShardRoundTrip persists a multi-shard index and reloads it:
// the shard count survives, the answers match the original engine, and
// re-saving reproduces the same bytes.
func TestSaveIndexShardRoundTrip(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 130, 3)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 3, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), buf.Bytes()...)

	loaded, err := graphrep.OpenWithIndex(db, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 3 {
		t.Fatalf("loaded engine has %d shards, want 3", loaded.Shards())
	}
	wantAnswers, _, _ := collectAnswers(t, engine, 5)
	gotAnswers, _, _ := collectAnswers(t, loaded, 5)
	if !reflect.DeepEqual(gotAnswers, wantAnswers) {
		t.Errorf("loaded engine answers differ:\n got %+v\nwant %+v", gotAnswers, wantAnswers)
	}
	var again bytes.Buffer
	if err := loaded.SaveIndex(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), blob) {
		t.Error("re-saved index bytes differ from the original")
	}
}

// TestV1IndexGolden loads the committed pre-shard (format v1) index blob —
// generated by the engine as it existed before sharding, over dud n=120
// seed=7 — and checks it comes up as a single shard answering exactly like a
// fresh build. This is the backward-compatibility contract: stored v1
// indexes keep working unchanged.
func TestV1IndexGolden(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "index_v1_dud120_seed7.nbx"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrep.GenerateDataset("dud", 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := graphrep.OpenWithIndex(db, bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("v1 index blob no longer loads: %v", err)
	}
	if loaded.Shards() != 1 {
		t.Fatalf("v1 index loaded as %d shards, want 1", loaded.Shards())
	}
	fresh, err := graphrep.Open(db, graphrep.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantAnswers, _, wantPoints := collectAnswers(t, fresh, 5)
	gotAnswers, _, gotPoints := collectAnswers(t, loaded, 5)
	if !reflect.DeepEqual(gotAnswers, wantAnswers) {
		t.Errorf("v1-loaded engine answers differ from fresh build:\n got %+v\nwant %+v", gotAnswers, wantAnswers)
	}
	if !reflect.DeepEqual(gotPoints, wantPoints) {
		t.Error("v1-loaded engine sweep curve differs from fresh build")
	}
	// A re-save upgrades to the current format and still round-trips.
	var upBuf bytes.Buffer
	if err := loaded.SaveIndex(&upBuf); err != nil {
		t.Fatal(err)
	}
	upgraded, err := graphrep.OpenWithIndex(db, &upBuf)
	if err != nil {
		t.Fatalf("re-saved v1 index does not reload: %v", err)
	}
	gotAnswers, _, _ = collectAnswers(t, upgraded, 5)
	if !reflect.DeepEqual(gotAnswers, wantAnswers) {
		t.Error("upgraded (v1→current) index answers differ")
	}
}

// TestV2IndexGolden loads the committed pre-embedding (format v2) index
// blob — generated by the engine as it existed before the filter-embedding
// tier, over dud n=120 seed=7 with two shards — and checks the compat path:
// it loads with its shard layout intact, the embeddings are recomputed from
// the database, answers match a fresh build exactly, and a re-save upgrades
// to bytes identical to a fresh save in the current format (embeddings are
// a pure function of the graphs, so the recomputed vectors equal the ones a
// fresh build persists).
func TestV2IndexGolden(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "index_v2_dud120_seed7.nbx"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrep.GenerateDataset("dud", 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := graphrep.OpenWithIndex(db, bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("v2 index blob no longer loads: %v", err)
	}
	if loaded.Shards() != 2 {
		t.Fatalf("v2 index loaded as %d shards, want 2", loaded.Shards())
	}
	fresh, err := graphrep.Open(db, graphrep.Options{Seed: 7, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantAnswers, _, wantPoints := collectAnswers(t, fresh, 5)
	gotAnswers, _, gotPoints := collectAnswers(t, loaded, 5)
	if !reflect.DeepEqual(gotAnswers, wantAnswers) {
		t.Errorf("v2-loaded engine answers differ from fresh build:\n got %+v\nwant %+v", gotAnswers, wantAnswers)
	}
	if !reflect.DeepEqual(gotPoints, wantPoints) {
		t.Error("v2-loaded engine sweep curve differs from fresh build")
	}
	var upgraded, freshSave bytes.Buffer
	if err := loaded.SaveIndex(&upgraded); err != nil {
		t.Fatal(err)
	}
	if err := fresh.SaveIndex(&freshSave); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(upgraded.Bytes(), freshSave.Bytes()) {
		t.Error("upgraded (v2→current) index bytes differ from a fresh save")
	}
}

// TestOpenWithIndexContextCancel checks the satellite contract on the load
// path: a pre-cancelled context aborts OpenWithIndexContext with ctx.Err().
func TestOpenWithIndexContextCancel(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := graphrep.OpenWithIndexContext(ctx, db, &buf); err != context.Canceled {
		t.Fatalf("cancelled OpenWithIndexContext returned %v, want context.Canceled", err)
	}
}

// TestGraphStoreEquality is the mapped-corpus acceptance contract: the same
// dataset served from the heap (text-loaded) and from a GRDB001 container
// (memory-mapped) must produce byte-identical answers, sweep curves,
// QueryStats, and persisted index bytes — at every shard count and worker
// count. The storage layer may only change where the bytes live, never what
// any query computes. The mapped engines at a given shard count all share ONE
// mapped database, so running this test under -race also checks that
// concurrent sessions over a single shared mapping are safe.
func TestGraphStoreEquality(t *testing.T) {
	heap, err := graphrep.GenerateDataset("dud", 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.grdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphrep.SaveDatabase(f, heap); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mapped, err := graphrep.OpenDatabaseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Log("corpus opened without a mapping (heap-copy fallback); equality checks still apply")
	}
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			type run struct {
				store   string
				db      *graphrep.Database
				answers []answer
				stats   []graphrep.QueryStats
				points  []graphrep.ThetaPoint
				blob    []byte
			}
			runs := []run{{store: "heap", db: heap}, {store: "mapped", db: mapped}}
			for i := range runs {
				engine, err := graphrep.Open(runs[i].db, graphrep.Options{Seed: 5, Shards: shards, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := engine.SaveIndex(&buf); err != nil {
					t.Fatal(err)
				}
				runs[i].answers, runs[i].stats, runs[i].points = collectAnswers(t, engine, 5)
				runs[i].blob = buf.Bytes()
			}
			h, m := runs[0], runs[1]
			if !bytes.Equal(m.blob, h.blob) {
				t.Errorf("shards=%d workers=%d: index bytes differ heap vs mapped", shards, workers)
			}
			if !reflect.DeepEqual(m.answers, h.answers) {
				t.Errorf("shards=%d workers=%d: answers differ heap vs mapped:\n heap %+v\nmapped %+v",
					shards, workers, h.answers, m.answers)
			}
			if !reflect.DeepEqual(m.stats, h.stats) {
				t.Errorf("shards=%d workers=%d: query stats differ heap vs mapped:\n heap %+v\nmapped %+v",
					shards, workers, h.stats, m.stats)
			}
			if !reflect.DeepEqual(m.points, h.points) {
				t.Errorf("shards=%d workers=%d: sweep curves differ heap vs mapped", shards, workers)
			}
		}
	}
}

// TestGraphStoreExactAndPolished covers the engine paths that bypass session
// creation (and therefore carry their own deferred-validation trigger): exact
// and polished answers over a mapped corpus must equal the heap answers.
func TestGraphStoreExactAndPolished(t *testing.T) {
	heap, err := graphrep.GenerateDataset("dud", 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.grdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphrep.SaveDatabase(f, heap); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mapped, err := graphrep.OpenDatabaseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	he, err := graphrep.Open(heap, graphrep.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	me, err := graphrep.Open(mapped, graphrep.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := graphrep.Query{Theta: 6, K: 4, Relevance: graphrep.FirstQuartileRelevance(heap, nil)}
	wantExact, err := he.TopKRepresentativeExact(q)
	if err != nil {
		t.Fatal(err)
	}
	gotExact, err := me.TopKRepresentativeExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotExact, wantExact) {
		t.Errorf("exact answers differ heap vs mapped:\n heap %+v\nmapped %+v", wantExact, gotExact)
	}
	wantPol, err := he.TopKRepresentativePolished(q)
	if err != nil {
		t.Fatal(err)
	}
	gotPol, err := me.TopKRepresentativePolished(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPol, wantPol) {
		t.Errorf("polished answers differ heap vs mapped:\n heap %+v\nmapped %+v", wantPol, gotPol)
	}
}
