package graphrep_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"graphrep"
)

func openSmall(t testing.TB) (*graphrep.Database, *graphrep.Engine) {
	if t != nil {
		t.Helper()
	}
	db, err := graphrep.GenerateDataset("dud", 120, 1)
	if err != nil {
		panic(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	return db, engine
}

func TestOpenErrors(t *testing.T) {
	if _, err := graphrep.Open(nil); err == nil {
		t.Error("nil database accepted")
	}
	empty, _ := graphrep.NewDatabase(nil)
	if _, err := graphrep.Open(empty); err == nil {
		t.Error("empty database accepted")
	}
}

func TestGenerateDatasetNames(t *testing.T) {
	for _, name := range []string{"dud", "dblp", "amazon"} {
		db, err := graphrep.GenerateDataset(name, 30, 3)
		if err != nil || db.Len() != 30 {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := graphrep.GenerateDataset("bogus", 10, 1); err == nil {
		t.Error("bogus dataset accepted")
	}
}

func TestTopKRepresentativeMatchesExact(t *testing.T) {
	_, engine := openSmall(t)
	q := graphrep.Query{
		Relevance: graphrep.FirstQuartileRelevance(engine.Database(), nil),
		Theta:     8,
		K:         5,
	}
	fast, err := engine.TopKRepresentative(q)
	if err != nil {
		t.Fatalf("TopKRepresentative: %v", err)
	}
	exact, err := engine.TopKRepresentativeExact(q)
	if err != nil {
		t.Fatalf("TopKRepresentativeExact: %v", err)
	}
	if !reflect.DeepEqual(fast.Answer, exact.Answer) {
		t.Errorf("answers differ: %v vs %v", fast.Answer, exact.Answer)
	}
	if fast.Power != exact.Power {
		t.Errorf("powers differ: %v vs %v", fast.Power, exact.Power)
	}
	if len(fast.Answer) == 0 || fast.Power <= 0 {
		t.Errorf("degenerate result %+v", fast)
	}
}

func TestTopKRepresentativeValidation(t *testing.T) {
	_, engine := openSmall(t)
	if _, err := engine.TopKRepresentative(graphrep.Query{Theta: 1, K: 1}); err == nil {
		t.Error("nil relevance accepted")
	}
	if _, err := engine.TopKRepresentative(graphrep.Query{
		Relevance: func([]float64) bool { return true }, Theta: -1, K: 1,
	}); err == nil {
		t.Error("negative theta accepted")
	}
}

func TestSessionRefinement(t *testing.T) {
	_, engine := openSmall(t)
	rel := graphrep.FirstQuartileRelevance(engine.Database(), nil)
	sess, err := engine.NewSession(rel)
	if err != nil {
		t.Fatal(err)
	}
	if sess.RelevantCount() <= 0 {
		t.Fatal("no relevant graphs")
	}
	for _, theta := range []float64{8, 7.2, 8.8} {
		res, err := sess.TopK(theta, 5)
		if err != nil {
			t.Fatalf("TopK(%v): %v", theta, err)
		}
		want, err := engine.TopKRepresentativeExact(graphrep.Query{Relevance: rel, Theta: theta, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Answer, want.Answer) {
			t.Errorf("θ=%v: refined answer %v, want %v", theta, res.Answer, want.Answer)
		}
	}
	if _, err := engine.NewSession(nil); err == nil {
		t.Error("nil relevance session accepted")
	}
}

func TestTopKRepresentativePolished(t *testing.T) {
	db, engine := openSmall(t)
	q := graphrep.Query{
		Relevance: graphrep.FirstQuartileRelevance(db, nil),
		Theta:     8,
		K:         4,
	}
	plain, err := engine.TopKRepresentative(q)
	if err != nil {
		t.Fatal(err)
	}
	polished, err := engine.TopKRepresentativePolished(q)
	if err != nil {
		t.Fatal(err)
	}
	if polished.Power < plain.Power-1e-12 {
		t.Errorf("polished π %v below greedy π %v", polished.Power, plain.Power)
	}
	if len(polished.Answer) != len(plain.Answer) {
		t.Errorf("polish changed answer size: %d vs %d", len(polished.Answer), len(plain.Answer))
	}
	if _, err := engine.TopKRepresentativePolished(graphrep.Query{Theta: 1, K: 1}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestTraditionalTopKAndPower(t *testing.T) {
	_, engine := openSmall(t)
	score := graphrep.DimensionScore([]int{0})
	top := engine.TraditionalTopK(score, 5)
	if len(top) != 5 {
		t.Fatalf("top-5 has %d entries", len(top))
	}
	rel := graphrep.FirstQuartileRelevance(engine.Database(), []int{0})
	p := engine.Power(rel, top, 8)
	if p < 0 || p > 1 {
		t.Errorf("power = %v", p)
	}
	if len(engine.Relevant(rel)) == 0 {
		t.Error("no relevant graphs")
	}
}

func TestDistanceIsMetricAtAPILevel(t *testing.T) {
	db, _ := openSmall(t)
	a, b, c := db.Graph(0), db.Graph(1), db.Graph(2)
	dab, dba := graphrep.Distance(a, b), graphrep.Distance(b, a)
	if dab != dba || dab < 0 {
		t.Errorf("distance not symmetric/non-negative: %v %v", dab, dba)
	}
	if graphrep.Distance(a, a) != 0 {
		t.Error("d(a,a) != 0")
	}
	if graphrep.Distance(a, c) > dab+graphrep.Distance(b, c)+1e-9 {
		t.Error("triangle inequality violated")
	}
}

func TestDatabaseRoundTripThroughAPI(t *testing.T) {
	db, _ := openSmall(t)
	var buf bytes.Buffer
	if err := graphrep.WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := graphrep.ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip len %d, want %d", got.Len(), db.Len())
	}
	// Engines opened on the round-tripped database answer identically.
	e1, err := graphrep.Open(db, graphrep.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := graphrep.Open(got, graphrep.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rel := graphrep.FirstQuartileRelevance(db, nil)
	q := graphrep.Query{Relevance: rel, Theta: 8, K: 4}
	r1, err := e1.TopKRepresentative(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.TopKRepresentative(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Answer, r2.Answer) {
		t.Errorf("answers differ after round trip: %v vs %v", r1.Answer, r2.Answer)
	}
}

func TestBuilderThroughAPI(t *testing.T) {
	b := graphrep.NewBuilder(2)
	b.AddVertex(1)
	b.AddVertex(2)
	b.AddEdge(0, 1, 3)
	b.SetFeatures([]float64{0.5})
	g, err := b.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := graphrep.NewDatabase([]*graphrep.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatal("len != 1")
	}
	// A singleton database still opens and answers.
	engine, err := graphrep.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.TopKRepresentative(graphrep.Query{
		Relevance: func([]float64) bool { return true }, Theta: 1, K: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answer) != 1 || math.Abs(res.Power-1) > 1e-12 {
		t.Errorf("singleton result %+v", res)
	}
}

func TestSaveAndReopenIndex(t *testing.T) {
	db, engine := openSmall(t)
	var buf bytes.Buffer
	if err := engine.SaveIndex(&buf); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	reopened, err := graphrep.OpenWithIndex(db, &buf)
	if err != nil {
		t.Fatalf("OpenWithIndex: %v", err)
	}
	rel := graphrep.FirstQuartileRelevance(db, nil)
	q := graphrep.Query{Relevance: rel, Theta: 8, K: 5}
	want, err := engine.TopKRepresentative(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.TopKRepresentative(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answer, want.Answer) || got.Power != want.Power {
		t.Errorf("reopened engine differs: %v vs %v", got.Answer, want.Answer)
	}
	// Error paths.
	if _, err := graphrep.OpenWithIndex(nil, &bytes.Buffer{}); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := graphrep.OpenWithIndex(db, bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage index accepted")
	}
}

func TestIndexBytes(t *testing.T) {
	_, engine := openSmall(t)
	if engine.IndexBytes() <= 0 {
		t.Error("IndexBytes <= 0")
	}
}

func TestEngineInsert(t *testing.T) {
	db, engine := openSmall(t)
	rel := graphrep.FirstQuartileRelevance(db, nil)
	before, err := engine.TopKRepresentative(graphrep.Query{Relevance: rel, Theta: 8, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Insert 5 new molecules cloned (with fresh IDs) from another dataset.
	extra, err := graphrep.GenerateDataset("dud", 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id := graphrep.ID(db.Len())
		g, err := extra.Graph(graphrep.ID(i)).Clone(id).Build(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.Insert(g); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if db.Len() != 125 {
		t.Fatalf("db len = %d, want 125", db.Len())
	}
	// Post-insert answers must exactly match the quadratic greedy over the
	// grown database.
	after, err := engine.TopKRepresentative(graphrep.Query{Relevance: rel, Theta: 8, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := engine.TopKRepresentativeExact(graphrep.Query{Relevance: rel, Theta: 8, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Answer, exact.Answer) {
		t.Errorf("post-insert index answer %v, exact %v", after.Answer, exact.Answer)
	}
	_ = before
	// Wrong-ID insert is rejected.
	bad, err := extra.Graph(7).Clone(0).Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Insert(bad); err == nil {
		t.Error("wrong-id insert accepted")
	}
}

func TestSweepAndSuggestThroughAPI(t *testing.T) {
	db, engine := openSmall(t)
	sess, err := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	if err != nil {
		t.Fatal(err)
	}
	points, err := sess.SweepTheta(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("empty sweep")
	}
	best, err := graphrep.SuggestTheta(points)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.TopK(best.Theta, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Power <= 0 {
		t.Errorf("suggested θ produced π=%v", res.Power)
	}
}

func TestScenarioQueryFunctionsThroughAPI(t *testing.T) {
	f := []float64{1, 0, 0.5}
	if s := graphrep.TopicScore([]int{0})(f); s <= 0 || s > 1 {
		t.Errorf("TopicScore = %v", s)
	}
	if !graphrep.TopicRelevance([]int{0}, 0.1)(f) {
		t.Error("TopicRelevance false")
	}
	if s := graphrep.WeightedScore([]float64{2, 0, 2})(f); s != 3 {
		t.Errorf("WeightedScore = %v", s)
	}
	if !graphrep.WeightedRelevance([]float64{2, 0, 2}, 2)(f) {
		t.Error("WeightedRelevance false")
	}
	db, _ := openSmall(t)
	if graphrep.WLHash(db.Graph(0), 2) == 0 {
		t.Error("WLHash returned 0 (suspicious)")
	}
	if graphrep.WLHash(db.Graph(0), 2) != graphrep.WLHash(db.Graph(0), 2) {
		t.Error("WLHash not deterministic")
	}
}

func TestOpenRejectsBrokenMetrics(t *testing.T) {
	db, _ := graphrep.GenerateDataset("dud", 30, 5)
	cases := map[string]graphrep.MetricFunc{
		"nonzero identity": func(a, b graphrep.ID) float64 { return 1 },
		"negative":         func(a, b graphrep.ID) float64 { return float64(a) - float64(b) },
		"asymmetric": func(a, b graphrep.ID) float64 {
			if a == b {
				return 0
			}
			return float64(a)*1000 + float64(b)
		},
	}
	for name, m := range cases {
		if _, err := graphrep.Open(db, graphrep.Options{Metric: m}); err == nil {
			t.Errorf("%s metric accepted", name)
		}
	}
	// A valid custom metric passes.
	ok := graphrep.MetricFunc(func(a, b graphrep.ID) float64 {
		if a > b {
			a, b = b, a
		}
		return float64(b - a)
	})
	if _, err := graphrep.Open(db, graphrep.Options{Metric: ok}); err != nil {
		t.Errorf("valid metric rejected: %v", err)
	}
}

func TestOpenWithCustomGridAndVPs(t *testing.T) {
	db, _ := graphrep.GenerateDataset("dblp", 60, 9)
	engine, err := graphrep.Open(db, graphrep.Options{
		NumVPs:    3,
		Branching: 2,
		ThetaGrid: []float64{2, 8, 32},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.TopKRepresentative(graphrep.Query{
		Relevance: graphrep.FirstQuartileRelevance(db, nil),
		Theta:     8,
		K:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answer) == 0 {
		t.Error("empty answer")
	}
}
