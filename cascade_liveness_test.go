package graphrep_test

import (
	"testing"

	"graphrep"
)

// TestCascadeNoDeadTierOnReferenceWorkload pins the fix for the dead-tier
// regression: on the reference bench workload (dud, n=400 — the exact
// configuration where the retired size and histogram tiers fired zero times)
// every remaining cascade stage must decide at least one threshold test.
// A permanently-zero counter means a tier is burning comparisons per call
// without ever terminating one, which is how the kernel's bounded path came
// to lose to the exact path in the first place.
func TestCascadeNoDeadTierOnReferenceWorkload(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := sess.SweepTheta(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sweep {
		if _, err := sess.TopK(p.Theta, 5); err != nil {
			t.Fatal(err)
		}
	}

	prune := engine.Telemetry().Snapshot().Prune
	for _, tier := range []struct {
		name  string
		fired int64
	}{
		{"embedding", prune.Embedding},
		{"rowmin", prune.RowMin},
		{"greedy", prune.Greedy},
		{"dual", prune.Dual},
		{"exact", prune.BoundedExact},
	} {
		if tier.fired == 0 {
			t.Errorf("cascade tier %s never fired on the reference workload (%+v)", tier.name, prune)
		}
	}
}
