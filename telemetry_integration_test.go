package graphrep_test

import (
	"strings"
	"testing"

	"graphrep"
)

// Engine.Telemetry() aggregates must equal the sum of per-query QueryStats
// in a sequential run — the acceptance criterion tying the telemetry layer
// to the per-session measurements it folds in.
func TestEngineTelemetryMatchesQueryStats(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tel := engine.Telemetry()
	if tel == nil {
		t.Fatal("Telemetry() = nil")
	}
	base := tel.Snapshot()
	if base.Queries != 0 {
		t.Fatalf("fresh engine already recorded %d queries", base.Queries)
	}
	if base.DistanceComputations == 0 {
		t.Error("index construction recorded no distance computations")
	}

	sess, err := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	if err != nil {
		t.Fatal(err)
	}
	var want graphrep.QueryStats
	queries := 0
	for _, theta := range []float64{4, 8, 12, 8, 2} {
		for _, k := range []int{3, 7} {
			if _, err := sess.TopK(theta, k); err != nil {
				t.Fatal(err)
			}
			st := sess.LastStats()
			want.PQPops += st.PQPops
			want.VerifiedLeaves += st.VerifiedLeaves
			want.CandidateScans += st.CandidateScans
			want.ExactDistances += st.ExactDistances
			want.PrunedDistances += st.PrunedDistances
			queries++
		}
	}
	// TopKRepresentative goes through an internal session and must be
	// aggregated identically.
	if _, err := engine.TopKRepresentative(graphrep.Query{
		Relevance: graphrep.FirstQuartileRelevance(db, nil), Theta: 10, K: 5,
	}); err != nil {
		t.Fatal(err)
	}
	queries++

	snap := tel.Snapshot()
	if snap.Queries != int64(queries) {
		t.Errorf("Queries = %d, want %d", snap.Queries, queries)
	}
	got := snap.QueryTotals
	// The one TopKRepresentative call's stats aren't observable via
	// LastStats, so compare against the session-summed floor per field and
	// the exact total for the histogram count.
	if got.PQPops < want.PQPops || got.VerifiedLeaves < want.VerifiedLeaves ||
		got.CandidateScans < want.CandidateScans || got.ExactDistances < want.ExactDistances ||
		got.PrunedDistances < want.PrunedDistances {
		t.Errorf("QueryTotals = %+v, want at least %+v", got, want)
	}

	// Distance computations: every exact distance a query issues goes
	// through the counting layer, so the counter must have grown by at
	// least the queries' exact-distance total (cache hits keep it from
	// being an equality).
	if grown := snap.DistanceComputations - base.DistanceComputations; grown > int64(got.ExactDistances) {
		t.Errorf("distance computations grew %d, more than the %d the queries issued", grown, got.ExactDistances)
	}
	if snap.CacheHits+snap.CacheMisses == 0 {
		t.Error("cache recorded no traffic")
	}
	if snap.CacheMisses != snap.DistanceComputations {
		t.Errorf("cache misses %d != distance computations %d (default metric: every miss is a computation)",
			snap.CacheMisses, snap.DistanceComputations)
	}
	if snap.CacheEntries == 0 {
		t.Error("cache holds no entries")
	}

	// The exact-session equality check: a second engine where ONLY session
	// queries run (no TopKRepresentative), totals must match exactly.
	engine2, err := graphrep.Open(db, graphrep.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := engine2.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	if err != nil {
		t.Fatal(err)
	}
	var want2 graphrep.QueryStats
	for _, theta := range []float64{4, 8, 12} {
		if _, err := sess2.TopK(theta, 5); err != nil {
			t.Fatal(err)
		}
		st := sess2.LastStats()
		want2.PQPops += st.PQPops
		want2.VerifiedLeaves += st.VerifiedLeaves
		want2.CandidateScans += st.CandidateScans
		want2.ExactDistances += st.ExactDistances
		want2.PrunedDistances += st.PrunedDistances
	}
	snap2 := engine2.Telemetry().Snapshot()
	if snap2.QueryTotals != want2 {
		t.Errorf("QueryTotals = %+v, want exactly %+v", snap2.QueryTotals, want2)
	}
	if snap2.Queries != 3 {
		t.Errorf("Queries = %d, want 3", snap2.Queries)
	}
}

// The engine's registry renders the full metric family in exposition format.
func TestEngineTelemetryExposition(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.TopKRepresentative(graphrep.Query{
		Relevance: graphrep.FirstQuartileRelevance(db, nil), Theta: 8, K: 3,
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := engine.Telemetry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"graphrep_distance_computations_total",
		"graphrep_distance_cache_hits_total",
		"graphrep_distance_cache_misses_total",
		"graphrep_distance_cache_entries",
		"graphrep_graphs 100",
		"graphrep_index_bytes",
		"graphrep_nbindex_queries_total 1",
		"graphrep_nbindex_pq_pops_bucket",
		"graphrep_nbindex_exact_distances_count 1",
		"graphrep_nbindex_pruned_distances_count 1",
		"graphrep_metric_prune_embedding_total",
		"graphrep_metric_prune_rowmin_total",
		"graphrep_metric_prune_greedy_total",
		"graphrep_metric_prune_dual_total",
		"graphrep_metric_bounded_exact_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %q:\n%s", name, out)
		}
	}
	// The bounded kernel must actually have pruned something on the query
	// path: the per-query pruned counter and the cascade stage totals agree
	// that work was avoided.
	snap := engine.Telemetry().Snapshot()
	if snap.Prune.Pruned() == 0 {
		t.Error("bound cascade recorded no pruned decisions")
	}
}

// A custom metric gets the counting layer but no cache.
func TestTelemetryCustomMetric(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{
		Seed:   2,
		Metric: graphrep.MetricFunc(func(a, b graphrep.ID) float64 { return graphrep.Distance(db.Graph(a), db.Graph(b)) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := engine.Telemetry().Snapshot()
	if snap.DistanceComputations == 0 {
		t.Error("custom metric distances not counted")
	}
	if snap.CacheHits != 0 || snap.CacheMisses != 0 || snap.CacheEntries != 0 {
		t.Errorf("custom metric reported cache traffic: %+v", snap)
	}
	var sb strings.Builder
	if err := engine.Telemetry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "graphrep_distance_cache_hits_total") {
		t.Error("cache metrics registered without a cache")
	}
	if strings.Contains(sb.String(), "graphrep_metric_prune_embedding_total") {
		t.Error("bound-cascade metrics registered without the default metric")
	}
	if snap.Prune != (graphrep.PruneStats{}) {
		t.Errorf("custom metric reported cascade stats: %+v", snap.Prune)
	}
}
