// Command repquery answers one top-k representative query against a
// generated or saved dataset and prints the answer set with its
// representative power and compression ratio.
//
// Usage:
//
//	repquery -dataset dud -n 1000 -k 10
//	repquery -in molecules.gdb -theta 12 -k 5 -engine polished
//	repquery -dataset dblp -n 500 -k 8 -traditional
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"graphrep"
	"graphrep/internal/graph"
)

func main() {
	var (
		name        = flag.String("dataset", "dud", "dataset preset: dud, dblp, amazon, cascades, bugs (ignored with -in)")
		n           = flag.Int("n", 500, "number of graphs to generate (ignored with -in)")
		seed        = flag.Int64("seed", 42, "generation seed")
		in          = flag.String("in", "", "read the database from this file instead of generating")
		theta       = flag.Float64("theta", 0, "distance threshold θ (0 = auto from the distance distribution)")
		k           = flag.Int("k", 10, "answer budget k")
		dim         = flag.Int("dim", -1, "relevance feature dimension (-1 = all dimensions)")
		traditional = flag.Bool("traditional", false, "also run the traditional score-only top-k for comparison")
		suggest     = flag.Bool("suggest", false, "sweep indexed thresholds and suggest a θ (\"zoom level\") before querying")
		engineName  = flag.String("engine", "nbindex", "query engine: nbindex (indexed greedy), exact (quadratic greedy), polished (greedy + swap local search)")
		dotDir      = flag.String("dot", "", "write each answer graph as Graphviz DOT into this directory")
		stats       = flag.Bool("stats", false, "print telemetry aggregates (distance computations, cache, NB-Index work) after the query")
		workers     = flag.Int("workers", 0, "worker goroutines for index construction and session init (0 = GOMAXPROCS; the answer is identical for any value)")
		shards      = flag.Int("shards", 1, "index shards (contiguous ID-range partitions; the answer is identical for any value)")
	)
	flag.Parse()
	if *k <= 0 {
		usageError("-k must be >= 1, got %d", *k)
	}
	if *workers < 0 {
		usageError("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *shards < 1 {
		usageError("-shards must be >= 1, got %d", *shards)
	}
	if *theta < 0 {
		usageError("-theta must be >= 0 (0 = auto), got %g", *theta)
	}
	if *in == "" && *n <= 0 {
		usageError("-n must be >= 1 when generating a dataset, got %d", *n)
	}

	db, err := loadDatabase(*in, *name, *n, *seed)
	if err != nil {
		fatal(err)
	}
	st := db.Stats()
	fmt.Printf("database: %d graphs, avg |V|=%.1f avg |E|=%.1f, %d labels\n",
		st.Graphs, st.AvgNodes, st.AvgEdges, st.Labels)

	start := time.Now()
	engine, err := graphrep.Open(db, graphrep.Options{Seed: *seed, Workers: *workers, Shards: *shards})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("index built in %v (%.1f KiB, %d shard(s))\n",
		time.Since(start).Round(time.Millisecond), float64(engine.IndexBytes())/1024, engine.Shards())

	var dims []int
	if *dim >= 0 {
		dims = []int{*dim}
	}
	rel := graphrep.FirstQuartileRelevance(db, dims)
	if *suggest {
		sess, err := engine.NewSession(rel)
		if err != nil {
			fatal(err)
		}
		points, err := sess.SweepTheta(*k)
		if err != nil {
			fatal(err)
		}
		fmt.Println("θ sweep (coverage vs zoom level):")
		for _, p := range points {
			fmt.Printf("  θ=%-8.2f π=%.3f CR=%.1f |A|=%d\n", p.Theta, p.Power, p.CR, p.AnswerSize)
		}
		best, err := graphrep.SuggestTheta(points)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("suggested θ = %.2f (knee of the coverage curve)\n", best.Theta)
		if *theta == 0 {
			*theta = best.Theta
		}
	}
	if *theta == 0 {
		*theta = autoTheta(db)
		fmt.Printf("auto θ = %.2f\n", *theta)
	}
	query := graphrep.Query{Relevance: rel, Theta: *theta, K: *k}
	start = time.Now()
	var res *graphrep.Result
	switch *engineName {
	case "nbindex":
		res, err = engine.TopKRepresentative(query)
	case "exact":
		res, err = engine.TopKRepresentativeExact(query)
	case "polished":
		res, err = engine.TopKRepresentativePolished(query)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engineName))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query answered in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("answer (%d of %d relevant covered, π=%.3f, CR=%.1f):\n",
		res.Covered, res.Relevant, res.Power, res.CompressionRatio())
	for i, id := range res.Answer {
		g := db.Graph(id)
		gain := "-" // local search reorders picks, so marginal gains no longer apply
		if i < len(res.Gains) {
			gain = fmt.Sprint(res.Gains[i])
		}
		fmt.Printf("  %2d. graph %-6d |V|=%-3d |E|=%-3d marginal gain=%s\n",
			i+1, id, g.Order(), g.Size(), gain)
	}

	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			fatal(err)
		}
		for i, id := range res.Answer {
			path := filepath.Join(*dotDir, fmt.Sprintf("answer_%02d_graph_%d.dot", i+1, id))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			err = graph.WriteDOT(f, db.Graph(id), fmt.Sprintf("graph_%d", id))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d DOT files to %s\n", len(res.Answer), *dotDir)
	}

	if *traditional {
		top := engine.TraditionalTopK(graphrep.DimensionScore(dims), *k)
		p := engine.Power(rel, top, *theta)
		fmt.Printf("traditional top-%d: %v (π=%.3f)\n", *k, top, p)
	}

	if *stats {
		snap := engine.Telemetry().Snapshot()
		fmt.Println("telemetry:")
		fmt.Printf("  distance computations  %d\n", snap.DistanceComputations)
		if snap.CacheHits+snap.CacheMisses > 0 {
			hitRate := float64(snap.CacheHits) / float64(snap.CacheHits+snap.CacheMisses)
			fmt.Printf("  cache                  %d hits / %d misses (%.1f%% hit rate), %d entries\n",
				snap.CacheHits, snap.CacheMisses, 100*hitRate, snap.CacheEntries)
		}
		fmt.Printf("  NB-Index queries       %d\n", snap.Queries)
		qt := snap.QueryTotals
		fmt.Printf("  per-query work totals  pq pops=%d verified leaves=%d candidate scans=%d exact distances=%d pruned distances=%d\n",
			qt.PQPops, qt.VerifiedLeaves, qt.CandidateScans, qt.ExactDistances, qt.PrunedDistances)
		if pr := snap.Prune; pr.Pruned()+pr.FullSolves() > 0 {
			fmt.Printf("  bound cascade          embedding=%d rowmin=%d greedy=%d dual=%d full solves=%d\n",
				pr.Embedding, pr.RowMin, pr.Greedy, pr.Dual, pr.FullSolves())
		}
	}
}

// loadDatabase generates the corpus or opens -in by content: a GRDB001
// container is memory-mapped (flat open time, near-zero heap), anything else
// parses as the text format.
func loadDatabase(path, name string, n int, seed int64) (*graphrep.Database, error) {
	if path == "" {
		return graphrep.GenerateDataset(name, n, seed)
	}
	return graphrep.LoadDatabaseFile(path)
}

// autoTheta samples pairwise distances and picks a low quantile, mirroring
// how the paper selects per-dataset thresholds from the distance CDF.
func autoTheta(db *graphrep.Database) float64 {
	n := db.Len()
	if n < 2 {
		return 1
	}
	var ds []float64
	step := n/64 + 1
	for i := 0; i < n; i += step {
		for j := i + 1; j < n; j += step {
			ds = append(ds, graphrep.Distance(db.Graph(graphrep.ID(i)), db.Graph(graphrep.ID(j))))
		}
	}
	if len(ds) == 0 {
		return 1
	}
	// 6th percentile by selection.
	k := len(ds) * 6 / 100
	for i := 0; i <= k; i++ {
		min := i
		for j := i + 1; j < len(ds); j++ {
			if ds[j] < ds[min] {
				min = j
			}
		}
		ds[i], ds[min] = ds[min], ds[i]
	}
	if ds[k] <= 0 {
		return 1
	}
	return ds[k]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repquery:", err)
	os.Exit(1)
}

// usageError rejects an invalid flag value: the complaint plus the usage
// text on stderr, exit status 2 (flag's own convention for bad invocations,
// distinct from runtime failures, which exit 1 via fatal).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "repquery: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
