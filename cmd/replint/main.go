// Command replint is the repo's invariant linter: a multichecker over the
// internal/analysis suite (ctxflow, detrand, goroctx, lockguard,
// metricname, oncevalid, unsafeconfine, viewmut). It runs two ways:
//
// Standalone, against the module in the current directory:
//
//	replint ./...
//	replint ./internal/nbindex ./internal/server
//	replint -list
//	replint -json ./...
//	replint -detrand=false ./...
//
// Standalone runs execute packages in import order with a shared fact
// store, so cross-package facts (viewmut's taint, goroctx's CancelAware,
// oncevalid's annotations) flow from dependencies even when only a subset
// of packages is requested.
//
// As a go vet tool, speaking vet's unitchecker .cfg protocol (version
// handshake via -V=full, one JSON config file per package). Facts are gob-
// serialized to each package's .vetx file and read back from the
// dependencies' files the driver lists:
//
//	go build -o bin/replint ./cmd/replint
//	go vet -vettool=$PWD/bin/replint ./...
//
// Diagnostics print as file:line:col: message [analyzer] (or as one JSON
// object per line under -json). Standalone mode exits 1 when anything is
// reported; vettool mode exits 2, matching x/tools' unitchecker so go vet
// fails the build. Individual findings are silenced at the source line with
// `//lint:allow <analyzer> <reason>`; a directive that suppresses nothing
// is itself reported (allowcheck).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"graphrep/internal/analysis/ctxflow"
	"graphrep/internal/analysis/detrand"
	"graphrep/internal/analysis/framework"
	"graphrep/internal/analysis/goroctx"
	"graphrep/internal/analysis/lockguard"
	"graphrep/internal/analysis/metricname"
	"graphrep/internal/analysis/oncevalid"
	"graphrep/internal/analysis/unsafeconfine"
	"graphrep/internal/analysis/viewmut"
)

// version feeds go vet's tool-identity cache; bump it when analyzer behavior
// changes so stale cached verdicts are invalidated.
const version = "replint-1.2.0"

var analyzers = []*framework.Analyzer{
	ctxflow.Analyzer,
	detrand.Analyzer,
	goroctx.Analyzer,
	lockguard.Analyzer,
	metricname.Analyzer,
	oncevalid.Analyzer,
	unsafeconfine.Analyzer,
	viewmut.Analyzer,
}

func main() {
	framework.RegisterFactTypes(analyzers)
	args := os.Args[1:]
	// go vet protocol handshakes come before normal flag parsing: -V=full
	// requests a version line keyed to the tool name, -flags a JSON
	// description of supported analyzer flags.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), version)
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVettool(args[0]))
	}
	os.Exit(runStandalone(args))
}

// ---- standalone mode ----

func runStandalone(args []string) int {
	flags := flag.NewFlagSet("replint", flag.ExitOnError)
	list := flags.Bool("list", false, "list analyzers and exit")
	jsonOut := flags.Bool("json", false, "emit one JSON diagnostic per line instead of plain text")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = flags.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	flags.Usage = func() {
		fmt.Fprintf(flags.Output(), `replint: graphrep's invariant linter.

Usage:
  replint [flags] [packages]        standalone, against the enclosing module
  go vet -vettool=replint ./...     as a vet tool (unitchecker protocol)

Exit codes:
  0  no findings
  1  standalone mode reported findings, or an internal error occurred
  2  vettool mode reported findings (matches x/tools' unitchecker, so
     go vet fails the build)

Flags:
`)
		flags.PrintDefaults()
	}
	flags.Parse(args)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var active []*framework.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, moduleName, err := findModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 1
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 1
	}
	loader := framework.NewLoader(func(path string) (string, bool) {
		if path == moduleName {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, moduleName+"/"); ok {
			dir := filepath.Join(root, filepath.FromSlash(rest))
			if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
				return dir, true
			}
		}
		return "", false
	})

	// Load every requested package first, then analyze the whole cached set
	// (dependencies included) in import order through one shared fact store:
	// facts exported while analyzing internal/mmapfile are visible when its
	// importers run, even if only the importer was requested.
	var requested []string
	for _, dir := range dirs {
		importPath := moduleName
		if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
			importPath = moduleName + "/" + filepath.ToSlash(rel)
		}
		if _, err := loader.LoadDir(dir, importPath); err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			return 1
		}
		requested = append(requested, importPath)
	}
	byPath, err := framework.RunAll(loader.Cached(), active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	found := 0
	for _, importPath := range requested {
		for _, d := range byPath[importPath] {
			found++
			if *jsonOut {
				enc.Encode(jsonDiag{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
				continue
			}
			fmt.Println(d)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "replint: %d issue(s)\n", found)
		return 1
	}
	return 0
}

// jsonDiag is the -json wire form: one object per diagnostic, one per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, name string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// expandPatterns resolves ./...-style patterns to package directories
// (directories containing at least one non-test .go file), skipping
// testdata, vendor, and hidden trees.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "" || pat == "." {
			pat = root
		}
		base, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no Go files in %s", pat)
			}
			continue
		}
		err = filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// ---- go vet (unitchecker) mode ----

// vetConfig mirrors the JSON config cmd/go writes for each package when
// driving a -vettool (the x/tools unitchecker.Config wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "replint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver requires the facts file to exist on every exit path, even
	// the early typecheck-failure ones; write an empty placeholder now and
	// overwrite it with the real gob-encoded facts after the run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "replint:", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already compiled,
	// translated through the vendoring/ImportMap indirection first.
	compImp := importer.ForCompiler(fset, compilerOrGC(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(importPath)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 1
	}

	pkg := &framework.Package{
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Dir:        cfg.Dir,
		ImportPath: cfg.ImportPath,
	}
	store := framework.NewFactStore()
	importFacts(store, &cfg, tpkg)
	diags, err := framework.RunWithStore(pkg, analyzers, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if facts, err := store.EncodeFacts(tpkg); err == nil {
			if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "replint:", err)
				return 1
			}
		}
	}
	// A VetxOnly run exists to produce this package's facts for an importer
	// being vetted; diagnostics here were either already reported or are out
	// of the requested package set, so stay silent.
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// importFacts loads the gob-encoded fact files cmd/go lists for this
// package's dependencies into the store. Each file is keyed by import path;
// the owning *types.Package is found in the transitive import graph of the
// package under analysis. Missing or unresolvable entries are skipped —
// facts degrade to per-package analysis rather than failing the vet run.
func importFacts(store *framework.FactStore, cfg *vetConfig, tpkg *types.Package) {
	all := map[string]*types.Package{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || all[p.Path()] != nil {
			return
		}
		all[p.Path()] = p
		for _, q := range p.Imports() {
			walk(q)
		}
	}
	walk(tpkg)
	paths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := all[path]
		if p == nil {
			if mapped, ok := cfg.ImportMap[path]; ok {
				p = all[mapped]
			}
		}
		if p == nil {
			continue
		}
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			continue
		}
		if err := store.DecodeFacts(data, p); err != nil {
			fmt.Fprintf(os.Stderr, "replint: facts for %s: %v\n", path, err)
		}
	}
}

func compilerOrGC(compiler string) string {
	if compiler == "" {
		return "gc"
	}
	return compiler
}

// importerFunc adapts a function to types.Importer (the same trick
// x/tools/go/analysis/unitchecker uses).
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
