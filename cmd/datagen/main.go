// Command datagen generates one of the synthetic datasets and writes it in
// the text exchange format or the GRDB001 flat container (which repquery and
// repserve memory-map instead of parsing), for use with -in flags or
// external tools.
//
// Usage:
//
//	datagen -dataset dud -n 5000 -seed 7 -out dud.gdb
//	datagen -dataset dud -n 5000 -seed 7 -out dud.grdb          # format from extension
//	datagen -dataset dud -n 5000 -seed 7 -format grdb > dud.grdb
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"graphrep"
	"graphrep/internal/dataset"
	"graphrep/internal/graph"
)

func main() {
	var (
		name   = flag.String("dataset", "dud", "dataset preset: dud, dblp, amazon, cascades, bugs")
		n      = flag.Int("n", 1000, "number of graphs")
		seed   = flag.Int64("seed", 42, "generation seed")
		out    = flag.String("out", "", "output file (default stdout)")
		format = flag.String("format", "auto", "output format: text, grdb (flat container, memory-mappable), or auto (grdb when -out ends in .grdb, else text)")
		config = flag.String("config", "", "JSON file with a custom dataset.Config (overrides -dataset)")
	)
	flag.Parse()
	switch *format {
	case "auto":
		if strings.HasSuffix(*out, ".grdb") {
			*format = "grdb"
		} else {
			*format = "text"
		}
	case "text", "grdb":
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, grdb, or auto)", *format))
	}

	db, err := generate(*config, *name, *n, *seed)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if *format == "grdb" {
		err = graphrep.SaveDatabase(w, db)
	} else {
		err = graphrep.WriteDatabase(w, db)
	}
	if err != nil {
		fatal(err)
	}
	st := db.Stats()
	fmt.Fprintf(os.Stderr, "wrote %d graphs as %s (avg |V|=%.1f, avg |E|=%.1f)\n", st.Graphs, *format, st.AvgNodes, st.AvgEdges)
}

// generate builds the database from a custom JSON config when given,
// otherwise from the named preset. The JSON mirrors dataset.Config, e.g.
//
//	{"N":500,"Seed":7,"MinOrder":10,"MaxOrder":30,"VertexLabels":8,
//	 "EdgeLabels":2,"MeanFamily":15,"OutlierFrac":0.05,"Edits":4,
//	 "ExtraEdgeProb":0.02,"FeatureDim":4,"FeatureNoise":0.1}
func generate(configPath, name string, n int, seed int64) (*graph.Database, error) {
	if configPath == "" {
		return graphrep.GenerateDataset(name, n, seed)
	}
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return nil, err
	}
	var cfg dataset.Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %w", configPath, err)
	}
	if cfg.N == 0 {
		cfg.N = n
	}
	if cfg.Seed == 0 {
		cfg.Seed = seed
	}
	return dataset.Generate(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
