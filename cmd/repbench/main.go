// Command repbench regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact of the evaluation section; see
// DESIGN.md for the full index.
//
// Usage:
//
//	repbench -list
//	repbench -exp table4 -scale small
//	repbench -exp all -scale medium
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphrep/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale = flag.String("scale", "small", "scale: small, medium, or paper")
		list  = flag.Bool("list", false, "list experiments and exit")
		out   = flag.String("out", "", "also write output to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	s, err := experiments.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = io.MultiWriter(os.Stdout, f)
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := e.Run(w, s); err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
			fmt.Fprintln(w)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q; try -list", *exp))
	}
	if err := e.Run(w, s); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repbench:", err)
	os.Exit(1)
}
