// Command repbench regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact of the evaluation section; see
// DESIGN.md for the full index.
//
// Usage:
//
//	repbench -list
//	repbench -exp table4 -scale small
//	repbench -exp all -scale medium
//	repbench -bench-shards BENCH_shards.json
//	repbench -bench-shards smoke.json -shards 2 -bench-n 200
//	repbench -bench-kernel BENCH_kernel.json -bench-n 400
//	repbench -bench-kernel BENCH_kernel.json -bench-sizes 400,4000
//	repbench -bench-load BENCH_load.json
//	repbench -bench-load BENCH_load.json -bench-sizes 400,4000
//	repbench -bench-graphload BENCH_graphload.json
//	repbench -bench-graphload BENCH_graphload.json -bench-sizes 400,4000
//
// -bench-kernel, -bench-load, and -bench-graphload double as regression
// gates: the process exits non-zero when the bounded kernel's query path is
// not strictly faster than the exact baseline, the mapped v4 index open is
// not strictly faster than the v3 gob decode, or the mapped GRDB corpus
// open is not strictly faster than the text parse, at any benchmarked size.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graphrep/internal/experiments"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale       = flag.String("scale", "small", "scale: small, medium, or paper")
		list        = flag.Bool("list", false, "list experiments and exit")
		out         = flag.String("out", "", "also write output to this file")
		benchShard  = flag.String("bench-shards", "", "run the shard build/query benchmark and write the JSON report to this file (skips experiments)")
		benchKern   = flag.String("bench-kernel", "", "run the bounded-kernel on/off comparison and write the JSON report to this file (skips experiments)")
		benchLd     = flag.String("bench-load", "", "run the index open-cost comparison (v3 decode vs v4 mmap) and write the JSON report to this file (skips experiments)")
		benchGrLd   = flag.String("bench-graphload", "", "run the corpus open-cost comparison (text parse vs GRDB mmap) and write the JSON report to this file (skips experiments)")
		shards      = flag.Int("shards", 0, "with -bench-shards: benchmark only this shard count (0 = the 1/2/4 sweep)")
		benchShardN = flag.Int("bench-n", 400, "with -bench-shards/-bench-kernel: benchmark database size")
		benchSizes  = flag.String("bench-sizes", "", "with -bench-kernel: comma-separated database sizes (overrides -bench-n)")
	)
	flag.Parse()
	if *shards < 0 {
		usageError("-shards must be >= 0 (0 = the 1/2/4 sweep), got %d", *shards)
	}
	if *benchShardN <= 0 {
		usageError("-bench-n must be >= 1, got %d", *benchShardN)
	}
	if *shards > 0 && *benchShard == "" {
		usageError("-shards requires -bench-shards")
	}
	modes := 0
	for _, m := range []string{*benchShard, *benchKern, *benchLd, *benchGrLd} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		usageError("-bench-shards, -bench-kernel, -bench-load, and -bench-graphload are mutually exclusive")
	}

	if *benchShard != "" {
		if err := benchShards(os.Stdout, *benchShard, *benchShardN, *shards); err != nil {
			fatal(err)
		}
		return
	}
	if *benchSizes != "" && *benchKern == "" && *benchLd == "" && *benchGrLd == "" {
		usageError("-bench-sizes requires -bench-kernel, -bench-load, or -bench-graphload")
	}
	if *benchKern != "" || *benchLd != "" || *benchGrLd != "" {
		sizes := []int{*benchShardN}
		if (*benchLd != "" || *benchGrLd != "") && *benchSizes == "" {
			// The load benchmarks' point is the scaling contrast, so their
			// default is the two-size sweep rather than a single n.
			sizes = []int{400, 4000}
		}
		if *benchSizes != "" {
			sizes = sizes[:0]
			for _, s := range strings.Split(*benchSizes, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n <= 0 {
					usageError("-bench-sizes: bad size %q", s)
				}
				sizes = append(sizes, n)
			}
		}
		if *benchKern != "" {
			if err := benchKernel(os.Stdout, *benchKern, sizes); err != nil {
				fatal(err)
			}
			return
		}
		if *benchLd != "" {
			if err := benchLoad(os.Stdout, *benchLd, sizes); err != nil {
				fatal(err)
			}
			return
		}
		if err := benchGraphLoad(os.Stdout, *benchGrLd, sizes); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	s, err := experiments.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = io.MultiWriter(os.Stdout, f)
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := e.Run(w, s); err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
			fmt.Fprintln(w)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q; try -list", *exp))
	}
	if err := e.Run(w, s); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repbench:", err)
	os.Exit(1)
}

// usageError rejects an invalid flag value: the complaint plus the usage
// text on stderr, exit status 2 (flag's own convention for bad invocations,
// distinct from runtime failures, which exit 1 via fatal).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "repbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
