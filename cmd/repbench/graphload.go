package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"

	"graphrep"
)

// The -bench-graphload mode: measure what it costs to bring the CORPUS up
// (the graphs themselves, not the index — that is -bench-load's job), text
// exchange format against the GRDB001 flat container. Text parsing scans
// every line and copies every vertex, edge, and feature to the heap, so open
// time and retained heap are linear in n. The mapped container parses a
// fixed-size directory and serves graph content zero-copy from the mapping,
// so open time is flat in n and the heap retains only per-graph handles —
// corpus pages fault in as queries touch them. The JSON report lands in
// BENCH_graphload.json; the committed copy at the repo root is the
// reference run.

// GraphLoadBenchResult is one (size, format) cell of the benchmark.
type GraphLoadBenchResult struct {
	N           int    `json:"n"`
	Format      string `json:"format"` // "text" or "grdb"
	FileBytes   int64  `json:"file_bytes"`
	OpenNsPerOp int64  `json:"open_ns_per_op"`
	OpenIters   int    `json:"open_iters"`
	// HeapRetainedBytes is the post-GC heap growth attributable to one open
	// held alive; RSSDeltaKB the resident-set growth around it (0 where
	// /proc/self/status is unavailable).
	HeapRetainedBytes int64 `json:"heap_retained_bytes"`
	RSSDeltaKB        int64 `json:"rss_delta_kb"`
}

// GraphLoadBenchReport is the full -bench-graphload output.
type GraphLoadBenchReport struct {
	Dataset string                 `json:"dataset"`
	Seed    int64                  `json:"seed"`
	Results []GraphLoadBenchResult `json:"results"`
}

// benchGraphLoad generates a corpus per size, writes it in both formats, and
// times reopening each through LoadDatabaseFile (which sniffs the magic and
// maps .grdb, so the only variable is the format). Like -bench-load it
// doubles as a regression gate: the mapped open must be strictly faster than
// the text parse at every size, or the process exits non-zero.
func benchGraphLoad(w io.Writer, outPath string, sizes []int) error {
	const (
		dataset   = "dud"
		seed      = int64(1)
		openIters = 10
	)
	tmp, err := os.MkdirTemp("", "repbench-graphload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	report := GraphLoadBenchReport{Dataset: dataset, Seed: seed}
	slow := false
	for _, n := range sizes {
		db, err := graphrep.GenerateDataset(dataset, n, seed)
		if err != nil {
			return err
		}
		paths := map[string]string{
			"text": filepath.Join(tmp, fmt.Sprintf("corpus_%d.gdb", n)),
			"grdb": filepath.Join(tmp, fmt.Sprintf("corpus_%d.grdb", n)),
		}
		for format, path := range paths {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if format == "grdb" {
				err = graphrep.SaveDatabase(f, db)
			} else {
				err = graphrep.WriteDatabase(f, db)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}

		var openNs = map[string]int64{}
		for _, format := range []string{"text", "grdb"} {
			path := paths[format]
			fi, err := os.Stat(path)
			if err != nil {
				return err
			}
			// Timing loop: open and close, so mappings don't pile up. The
			// mapped open is O(directory), not O(corpus) — content
			// validation defers to first query use and is not charged here,
			// matching a server that starts accepting connections before
			// its first request.
			start := time.Now()
			for i := 0; i < openIters; i++ {
				d, err := graphrep.LoadDatabaseFile(path)
				if err != nil {
					return err
				}
				if err := d.Close(); err != nil {
					return err
				}
			}
			perOp := time.Since(start).Nanoseconds() / openIters
			openNs[format] = perOp

			// Residency: one open held alive, measured across forced GCs so
			// only memory the database actually retains is charged to it.
			debug.FreeOSMemory()
			heapBefore, rssBefore := memoryFootprint()
			held, err := graphrep.LoadDatabaseFile(path)
			if err != nil {
				return err
			}
			debug.FreeOSMemory()
			heapAfter, rssAfter := memoryFootprint()
			if err := held.Close(); err != nil {
				return err
			}
			report.Results = append(report.Results, GraphLoadBenchResult{
				N: n, Format: format,
				FileBytes:         fi.Size(),
				OpenNsPerOp:       perOp,
				OpenIters:         openIters,
				HeapRetainedBytes: heapAfter - heapBefore,
				RSSDeltaKB:        rssAfter - rssBefore,
			})
			fmt.Fprintf(w, "n=%-6d %-4s %8d bytes  open %v/op  heap +%d B  rss %+d KB\n",
				n, format, fi.Size(),
				time.Duration(perOp).Round(time.Microsecond),
				heapAfter-heapBefore, rssAfter-rssBefore)
		}
		if openNs["grdb"] >= openNs["text"] {
			slow = true
			fmt.Fprintf(w, "REGRESSION: n=%d mapped grdb open (%v) not faster than text parse (%v)\n",
				n, time.Duration(openNs["grdb"]), time.Duration(openNs["text"]))
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	if slow {
		return fmt.Errorf("mapped grdb open regressed against text parse (see report)")
	}
	return nil
}
