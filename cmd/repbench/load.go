package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"graphrep"
)

// The -bench-load mode: measure what it costs to come back up from a saved
// index, v3 (streamed gob decode — every array copied to the heap) against
// v4 (zero-copy mmap — the directory is parsed, the arrays are served in
// place). Open time should be roughly flat in n for v4 and linear for v3;
// retained heap and resident-set growth should track the index size for v3
// and stay near zero for v4, whose pages fault in only as queries touch
// them. The JSON report lands in BENCH_load.json; the committed copy at the
// repo root is the reference run.

// LoadBenchResult is one (size, format) cell of the benchmark.
type LoadBenchResult struct {
	N           int    `json:"n"`
	Format      string `json:"format"` // "v3" or "v4"
	IndexBytes  int64  `json:"index_bytes"`
	OpenNsPerOp int64  `json:"open_ns_per_op"`
	OpenIters   int    `json:"open_iters"`
	// HeapRetainedBytes is the post-GC heap growth attributable to one open
	// held alive; RSSDeltaKB the resident-set growth around it (0 where
	// /proc/self/status is unavailable).
	HeapRetainedBytes int64 `json:"heap_retained_bytes"`
	RSSDeltaKB        int64 `json:"rss_delta_kb"`
}

// LoadBenchReport is the full -bench-load output.
type LoadBenchReport struct {
	Dataset string            `json:"dataset"`
	Seed    int64             `json:"seed"`
	Shards  int               `json:"shards"`
	Workers int               `json:"workers"` // resolved GOMAXPROCS at run time
	Results []LoadBenchResult `json:"results"`
}

// benchLoad builds an index per size, saves it in both formats, and times
// reopening each through OpenWithIndexFile (which maps v4 and stream-decodes
// v3, so the only variable is the format). Like -bench-kernel it doubles as
// a regression gate: the mapped open must be strictly faster than the gob
// decode at every size, or the process exits non-zero.
func benchLoad(w io.Writer, outPath string, sizes []int) error {
	const (
		dataset   = "dud"
		seed      = int64(1)
		shards    = 2
		openIters = 10
	)
	tmp, err := os.MkdirTemp("", "repbench-load")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	report := LoadBenchReport{
		Dataset: dataset, Seed: seed, Shards: shards,
		Workers: runtime.GOMAXPROCS(0),
	}
	slow := false
	for _, n := range sizes {
		db, err := graphrep.GenerateDataset(dataset, n, seed)
		if err != nil {
			return err
		}
		engine, err := graphrep.Open(db, graphrep.Options{Seed: seed, Shards: shards})
		if err != nil {
			return err
		}
		paths := map[string]string{
			"v3": filepath.Join(tmp, fmt.Sprintf("index_v3_%d.nbx", n)),
			"v4": filepath.Join(tmp, fmt.Sprintf("index_v4_%d.nbx", n)),
		}
		for format, path := range paths {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if format == "v3" {
				err = engine.SaveIndexV3(f)
			} else {
				err = engine.SaveIndex(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}

		var openNs = map[string]int64{}
		for _, format := range []string{"v3", "v4"} {
			path := paths[format]
			fi, err := os.Stat(path)
			if err != nil {
				return err
			}
			// Timing loop: open and close, so mappings don't pile up.
			start := time.Now()
			for i := 0; i < openIters; i++ {
				e, err := graphrep.OpenWithIndexFile(db, path)
				if err != nil {
					return err
				}
				if err := e.Close(); err != nil {
					return err
				}
			}
			perOp := time.Since(start).Nanoseconds() / openIters
			openNs[format] = perOp

			// Residency: one open held alive, measured across forced GCs so
			// only memory the engine actually retains is charged to it.
			debug.FreeOSMemory()
			heapBefore, rssBefore := memoryFootprint()
			held, err := graphrep.OpenWithIndexFile(db, path)
			if err != nil {
				return err
			}
			debug.FreeOSMemory()
			heapAfter, rssAfter := memoryFootprint()
			if err := held.Close(); err != nil {
				return err
			}
			report.Results = append(report.Results, LoadBenchResult{
				N: n, Format: format,
				IndexBytes:        fi.Size(),
				OpenNsPerOp:       perOp,
				OpenIters:         openIters,
				HeapRetainedBytes: heapAfter - heapBefore,
				RSSDeltaKB:        rssAfter - rssBefore,
			})
			fmt.Fprintf(w, "n=%-6d %s  %7d bytes  open %v/op  heap +%d B  rss %+d KB\n",
				n, format, fi.Size(),
				time.Duration(perOp).Round(time.Microsecond),
				heapAfter-heapBefore, rssAfter-rssBefore)
		}
		if openNs["v4"] >= openNs["v3"] {
			slow = true
			fmt.Fprintf(w, "REGRESSION: n=%d mapped v4 open (%v) not faster than v3 decode (%v)\n",
				n, time.Duration(openNs["v4"]), time.Duration(openNs["v3"]))
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	if slow {
		return fmt.Errorf("mapped v4 open regressed against v3 decode (see report)")
	}
	return nil
}

// memoryFootprint samples the post-GC heap in use and, on linux, the
// process resident set from /proc/self/status (0 elsewhere).
func memoryFootprint() (heapBytes, rssKB int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapBytes = int64(ms.HeapInuse)
	status, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return heapBytes, 0
	}
	for _, line := range strings.Split(string(status), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					rssKB = kb
				}
			}
			break
		}
	}
	return heapBytes, rssKB
}
