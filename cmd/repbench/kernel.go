package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"graphrep"
)

// The -bench-kernel mode: measure what the threshold-aware distance kernel
// saves on the query path. The same database and the same query workload
// (a θ sweep plus a TopK at every swept threshold) run twice — once with the
// bounded kernel (the default) and once with Options.DisableBoundedKernel —
// and the report compares how many completed Hungarian solves each side
// issued after the index was built. Answers must be byte-identical across
// the two runs; benchKernel fails loudly if they are not, since that would
// violate the kernel's core contract (Within ⇔ Distance ≤ θ).

// KernelPrune is the bound-cascade breakdown of one side's run.
type KernelPrune struct {
	Size         int64 `json:"size"`
	Histogram    int64 `json:"histogram"`
	RowMin       int64 `json:"rowMin"`
	Greedy       int64 `json:"greedy"`
	Dual         int64 `json:"dual"`
	BoundedExact int64 `json:"boundedExact"`
}

// KernelBenchSide is one configuration's measurements. Full solves are
// completed Hungarian runs (bounded tests that fell through the whole
// cascade, plus plain Distance computations); the query-path figures count
// everything after Open returned — session initialization, the sweep, and
// the TopK calls.
type KernelBenchSide struct {
	BuildNs         int64       `json:"build_ns"`
	QueryNs         int64       `json:"query_ns"`
	BuildFullSolves int64       `json:"build_full_solves"`
	QueryFullSolves int64       `json:"query_full_solves"`
	QueryPruned     int64       `json:"query_pruned"`
	Prune           KernelPrune `json:"prune"`
}

// KernelBenchReport is the full -bench-kernel output.
type KernelBenchReport struct {
	Dataset string    `json:"dataset"`
	N       int       `json:"n"`
	Seed    int64     `json:"seed"`
	K       int       `json:"k"`
	Thetas  []float64 `json:"thetas"`
	Workers int       `json:"workers"` // resolved GOMAXPROCS at run time

	Bounded KernelBenchSide `json:"bounded"`
	Exact   KernelBenchSide `json:"exact"`
	// SolveReduction is exact query-path full solves over bounded query-path
	// full solves — how many times fewer complete Hungarian runs the bounded
	// kernel needed for the identical workload and identical answers.
	SolveReduction float64 `json:"query_full_solve_reduction"`
}

// kernelAnswers is one side's complete answer transcript, compared verbatim
// across the two configurations.
type kernelAnswers struct {
	sweep   []graphrep.ThetaPoint
	answers [][]graphrep.ID
}

// benchKernel runs the kernel on/off comparison over a database of n graphs
// and writes the JSON report to outPath and a summary to w.
func benchKernel(w io.Writer, outPath string, n int) error {
	const (
		dataset = "dud"
		seed    = int64(1)
		k       = 5
	)
	db, err := graphrep.GenerateDataset(dataset, n, seed)
	if err != nil {
		return err
	}
	rel := graphrep.FirstQuartileRelevance(db, nil)
	report := KernelBenchReport{
		Dataset: dataset, N: n, Seed: seed, K: k,
		Workers: runtime.GOMAXPROCS(0),
	}

	bounded, boundedRes, err := runKernelSide(db, rel, k, graphrep.Options{Seed: seed})
	if err != nil {
		return err
	}
	exact, exactRes, err := runKernelSide(db, rel, k, graphrep.Options{Seed: seed, DisableBoundedKernel: true})
	if err != nil {
		return err
	}
	if err := compareKernelAnswers(boundedRes, exactRes); err != nil {
		return fmt.Errorf("bounded kernel changed an answer: %w", err)
	}
	for _, p := range boundedRes.sweep {
		report.Thetas = append(report.Thetas, p.Theta)
	}
	report.Bounded, report.Exact = bounded, exact
	if bounded.QueryFullSolves > 0 {
		report.SolveReduction = float64(exact.QueryFullSolves) / float64(bounded.QueryFullSolves)
	}

	fmt.Fprintf(w, "kernel on:  build %v, query %v, %d query-path full solves (%d pruned)\n",
		time.Duration(bounded.BuildNs).Round(time.Microsecond),
		time.Duration(bounded.QueryNs).Round(time.Microsecond),
		bounded.QueryFullSolves, bounded.QueryPruned)
	fmt.Fprintf(w, "kernel off: build %v, query %v, %d query-path full solves\n",
		time.Duration(exact.BuildNs).Round(time.Microsecond),
		time.Duration(exact.QueryNs).Round(time.Microsecond),
		exact.QueryFullSolves)
	fmt.Fprintf(w, "answers identical; full-solve reduction %.1f×\n", report.SolveReduction)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}

// runKernelSide opens one engine with opts and runs the fixed workload:
// open a session, sweep θ, then TopK at every swept threshold. It returns
// the timing and solve counts plus the full answer transcript.
func runKernelSide(db *graphrep.Database, rel graphrep.Relevance, k int, opts graphrep.Options) (KernelBenchSide, kernelAnswers, error) {
	var side KernelBenchSide
	var res kernelAnswers
	start := time.Now()
	engine, err := graphrep.Open(db, opts)
	if err != nil {
		return side, res, err
	}
	side.BuildNs = time.Since(start).Nanoseconds()
	built := engine.Telemetry().Snapshot()
	side.BuildFullSolves = built.Prune.FullSolves()

	start = time.Now()
	sess, err := engine.NewSession(rel)
	if err != nil {
		return side, res, err
	}
	if res.sweep, err = sess.SweepTheta(k); err != nil {
		return side, res, err
	}
	for _, p := range res.sweep {
		r, err := sess.TopK(p.Theta, k)
		if err != nil {
			return side, res, err
		}
		res.answers = append(res.answers, r.Answer)
	}
	side.QueryNs = time.Since(start).Nanoseconds()

	snap := engine.Telemetry().Snapshot()
	side.QueryFullSolves = snap.Prune.FullSolves() - side.BuildFullSolves
	side.QueryPruned = snap.Prune.Pruned() - built.Prune.Pruned()
	side.Prune = KernelPrune{
		Size:         snap.Prune.Size,
		Histogram:    snap.Prune.Histogram,
		RowMin:       snap.Prune.RowMin,
		Greedy:       snap.Prune.Greedy,
		Dual:         snap.Prune.Dual,
		BoundedExact: snap.Prune.BoundedExact,
	}
	return side, res, nil
}

// compareKernelAnswers demands the two transcripts match verbatim: the same
// sweep points and the same answer set in the same order at every θ.
func compareKernelAnswers(a, b kernelAnswers) error {
	if len(a.sweep) != len(b.sweep) {
		return fmt.Errorf("sweep lengths differ: %d vs %d", len(a.sweep), len(b.sweep))
	}
	for i := range a.sweep {
		if a.sweep[i] != b.sweep[i] {
			return fmt.Errorf("sweep point %d differs: %+v vs %+v", i, a.sweep[i], b.sweep[i])
		}
	}
	if len(a.answers) != len(b.answers) {
		return fmt.Errorf("answer counts differ: %d vs %d", len(a.answers), len(b.answers))
	}
	for i := range a.answers {
		if len(a.answers[i]) != len(b.answers[i]) {
			return fmt.Errorf("answer %d sizes differ", i)
		}
		for j := range a.answers[i] {
			if a.answers[i][j] != b.answers[i][j] {
				return fmt.Errorf("answer %d position %d differs: graph %d vs %d",
					i, j, a.answers[i][j], b.answers[i][j])
			}
		}
	}
	return nil
}
