package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"graphrep"
)

// The -bench-kernel mode: measure what the threshold-aware distance kernel
// saves on the query path. For each database size, the same query workload
// (a θ sweep plus a TopK at every swept threshold) runs with the bounded
// kernel (the default) and with Options.DisableBoundedKernel — two
// interleaved passes per side, keeping each side's faster pass — and the
// report compares wall time and completed Hungarian solves after the index
// was built. Answers must be byte-identical across the two runs;
// benchKernel fails loudly if they are not, since that would violate the
// kernel's core contract (Within ⇔ Distance ≤ θ).
//
// benchKernel is also a regression gate: it returns an error — repbench exits
// non-zero — when the bounded side is not strictly faster than the exact side
// on the query path at any size. A kernel that prunes solves but loses wall
// time is a regression (this happened: the pre-embedding cascade spent more
// on per-pair O(n²) bound work than it saved), and the gate keeps it from
// landing silently.

// KernelPrune is the bound-cascade breakdown of one side's run.
type KernelPrune struct {
	Embedding int64 `json:"embedding"`
	RowMin    int64 `json:"rowMin"`
	// RowMinSolved is the subset of RowMin that spent a hardening solve
	// (shallow miss); see metric.PruneStats.
	RowMinSolved int64 `json:"rowMinSolved"`
	Greedy       int64 `json:"greedy"`
	Dual         int64 `json:"dual"`
	BoundedExact int64 `json:"boundedExact"`
	// GreedyTried / DualArmed are the adaptive tier gates' attempt
	// denominators (see metric.PruneStats); a denominator far below
	// BoundedExact means the gate retired the tier mid-run.
	GreedyTried int64 `json:"greedyTried"`
	DualArmed   int64 `json:"dualArmed"`
}

// KernelBenchSide is one configuration's measurements. Full solves are
// completed Hungarian runs (bounded tests that fell through the whole
// cascade, plus plain Distance computations); the query-path figures count
// everything after Open returned — session initialization, the sweep, and
// the TopK calls.
type KernelBenchSide struct {
	BuildNs         int64       `json:"build_ns"`
	QueryNs         int64       `json:"query_ns"`
	BuildFullSolves int64       `json:"build_full_solves"`
	QueryFullSolves int64       `json:"query_full_solves"`
	QueryPruned     int64       `json:"query_pruned"`
	Prune           KernelPrune `json:"prune"`
}

// KernelBenchRun is the on/off comparison at one database size.
type KernelBenchRun struct {
	N      int       `json:"n"`
	Thetas []float64 `json:"thetas"`

	Bounded KernelBenchSide `json:"bounded"`
	Exact   KernelBenchSide `json:"exact"`
	// SolveReduction is exact query-path full solves over bounded query-path
	// full solves — how many times fewer complete Hungarian runs the bounded
	// kernel needed for the identical workload and identical answers.
	SolveReduction float64 `json:"query_full_solve_reduction"`
	// QuerySpeedup is exact query_ns over bounded query_ns: > 1 means the
	// kernel wins wall time, which the regression gate requires.
	QuerySpeedup float64 `json:"query_speedup"`
}

// KernelBenchReport is the full -bench-kernel output.
type KernelBenchReport struct {
	Dataset string `json:"dataset"`
	Seed    int64  `json:"seed"`
	K       int    `json:"k"`
	Workers int    `json:"workers"` // resolved GOMAXPROCS at run time

	Runs []KernelBenchRun `json:"runs"`
}

// kernelAnswers is one side's complete answer transcript, compared verbatim
// across the two configurations.
type kernelAnswers struct {
	sweep   []graphrep.ThetaPoint
	answers [][]graphrep.ID
}

// benchKernel runs the kernel on/off comparison at every requested database
// size, writes the JSON report to outPath and a summary to w, then applies
// the regression gate: an error is returned (non-zero exit) unless the
// bounded side was strictly faster on the query path at every size.
// benchKernelReps is the interleaved pass count per side; see the pass loop.
const benchKernelReps = 3

func benchKernel(w io.Writer, outPath string, sizes []int) error {
	const (
		dataset = "dud"
		seed    = int64(1)
		k       = 5
	)
	report := KernelBenchReport{
		Dataset: dataset, Seed: seed, K: k,
		Workers: runtime.GOMAXPROCS(0),
	}
	var slow []int
	for _, n := range sizes {
		db, err := graphrep.GenerateDataset(dataset, n, seed)
		if err != nil {
			return err
		}
		rel := graphrep.FirstQuartileRelevance(db, nil)
		run := KernelBenchRun{N: n}

		// Each side runs benchKernelReps times in interleaved order and keeps
		// its fastest pass: whichever configuration is measured first pays the
		// process's cold-start costs (first-touch page faults, heap growth to
		// the workload's steady state), scheduler noise hits passes at random,
		// and the gate should compare kernels, not either artifact — the
		// per-side minimum tightens toward the true cost as passes accumulate.
		// Every pass of a side is fully deterministic — identical answers and
		// solve counts — which compareKernelAnswers checks across all
		// transcripts.
		var bounded, exact KernelBenchSide
		var boundedRes, exactRes kernelAnswers
		for rep := 0; rep < benchKernelReps; rep++ {
			b, bRes, err := runKernelSide(db, rel, k, graphrep.Options{Seed: seed})
			if err != nil {
				return err
			}
			e, eRes, err := runKernelSide(db, rel, k, graphrep.Options{Seed: seed, DisableBoundedKernel: true})
			if err != nil {
				return err
			}
			if rep == 0 {
				bounded, boundedRes, exact, exactRes = b, bRes, e, eRes
				if err := compareKernelAnswers(boundedRes, exactRes); err != nil {
					return fmt.Errorf("n=%d: bounded vs exact transcripts differ: %w", n, err)
				}
				continue
			}
			if err := compareKernelAnswers(boundedRes, bRes); err != nil {
				return fmt.Errorf("n=%d: bounded repeat %d transcripts differ: %w", n, rep, err)
			}
			if err := compareKernelAnswers(exactRes, eRes); err != nil {
				return fmt.Errorf("n=%d: exact repeat %d transcripts differ: %w", n, rep, err)
			}
			if b.QueryNs < bounded.QueryNs {
				b.BuildNs = bounded.BuildNs // keep the cold build figure
				bounded = b
			}
			if e.QueryNs < exact.QueryNs {
				e.BuildNs = exact.BuildNs
				exact = e
			}
		}
		for _, p := range boundedRes.sweep {
			run.Thetas = append(run.Thetas, p.Theta)
		}
		run.Bounded, run.Exact = bounded, exact
		if bounded.QueryFullSolves > 0 {
			run.SolveReduction = float64(exact.QueryFullSolves) / float64(bounded.QueryFullSolves)
		}
		if bounded.QueryNs > 0 {
			run.QuerySpeedup = float64(exact.QueryNs) / float64(bounded.QueryNs)
		}
		report.Runs = append(report.Runs, run)

		fmt.Fprintf(w, "n=%d\n", n)
		fmt.Fprintf(w, "  kernel on:  build %v, query %v, %d query-path full solves (%d pruned)\n",
			time.Duration(bounded.BuildNs).Round(time.Microsecond),
			time.Duration(bounded.QueryNs).Round(time.Microsecond),
			bounded.QueryFullSolves, bounded.QueryPruned)
		fmt.Fprintf(w, "  kernel off: build %v, query %v, %d query-path full solves\n",
			time.Duration(exact.BuildNs).Round(time.Microsecond),
			time.Duration(exact.QueryNs).Round(time.Microsecond),
			exact.QueryFullSolves)
		fmt.Fprintf(w, "  answers identical; full-solve reduction %.1f×, query speedup %.2f×\n",
			run.SolveReduction, run.QuerySpeedup)
		if bounded.QueryNs >= exact.QueryNs {
			slow = append(slow, n)
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	for _, n := range slow {
		fmt.Fprintf(w, "REGRESSION: bounded query path not faster than exact at n=%d\n", n)
	}
	if len(slow) > 0 {
		return fmt.Errorf("bounded kernel regressed query wall time at n=%v", slow)
	}
	return nil
}

// runKernelSide opens one engine with opts and runs the fixed workload:
// open a session, sweep θ, then TopK at every swept threshold. It returns
// the timing and solve counts plus the full answer transcript.
func runKernelSide(db *graphrep.Database, rel graphrep.Relevance, k int, opts graphrep.Options) (KernelBenchSide, kernelAnswers, error) {
	var side KernelBenchSide
	var res kernelAnswers
	start := time.Now()
	engine, err := graphrep.Open(db, opts)
	if err != nil {
		return side, res, err
	}
	side.BuildNs = time.Since(start).Nanoseconds()
	built := engine.Telemetry().Snapshot()
	side.BuildFullSolves = built.Prune.FullSolves()

	start = time.Now()
	sess, err := engine.NewSession(rel)
	if err != nil {
		return side, res, err
	}
	if res.sweep, err = sess.SweepTheta(k); err != nil {
		return side, res, err
	}
	for _, p := range res.sweep {
		r, err := sess.TopK(p.Theta, k)
		if err != nil {
			return side, res, err
		}
		res.answers = append(res.answers, r.Answer)
	}
	side.QueryNs = time.Since(start).Nanoseconds()

	snap := engine.Telemetry().Snapshot()
	side.QueryFullSolves = snap.Prune.FullSolves() - side.BuildFullSolves
	side.QueryPruned = snap.Prune.Pruned() - built.Prune.Pruned()
	side.Prune = KernelPrune{
		Embedding:    snap.Prune.Embedding,
		RowMin:       snap.Prune.RowMin,
		RowMinSolved: snap.Prune.RowMinSolved,
		Greedy:       snap.Prune.Greedy,
		Dual:         snap.Prune.Dual,
		BoundedExact: snap.Prune.BoundedExact,
		GreedyTried:  snap.Prune.GreedyTried,
		DualArmed:    snap.Prune.DualArmed,
	}
	return side, res, nil
}

// compareKernelAnswers demands the two transcripts match verbatim: the same
// sweep points and the same answer set in the same order at every θ.
func compareKernelAnswers(a, b kernelAnswers) error {
	if len(a.sweep) != len(b.sweep) {
		return fmt.Errorf("sweep lengths differ: %d vs %d", len(a.sweep), len(b.sweep))
	}
	for i := range a.sweep {
		if a.sweep[i] != b.sweep[i] {
			return fmt.Errorf("sweep point %d differs: %+v vs %+v", i, a.sweep[i], b.sweep[i])
		}
	}
	if len(a.answers) != len(b.answers) {
		return fmt.Errorf("answer counts differ: %d vs %d", len(a.answers), len(b.answers))
	}
	for i := range a.answers {
		if len(a.answers[i]) != len(b.answers[i]) {
			return fmt.Errorf("answer %d sizes differ", i)
		}
		for j := range a.answers[i] {
			if a.answers[i][j] != b.answers[i][j] {
				return fmt.Errorf("answer %d position %d differs: graph %d vs %d",
					i, j, a.answers[i][j], b.answers[i][j])
			}
		}
	}
	return nil
}
