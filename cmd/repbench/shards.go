package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"graphrep"
)

// The -bench-shards mode: measure index build and query latency at several
// shard counts and write the results as JSON (BENCH_shards.json in CI). The
// answers are byte-identical at every shard count — that invariant is
// enforced by the test suite — so this mode reports only wall time.

// ShardBenchResult is one (shard count) row of the benchmark.
type ShardBenchResult struct {
	Shards       int   `json:"shards"`
	BuildNsPerOp int64 `json:"build_ns_per_op"`
	QueryNsPerOp int64 `json:"query_ns_per_op"`
	BuildIters   int   `json:"build_iters"`
	QueryIters   int   `json:"query_iters"`
}

// ShardBenchReport is the full -bench-shards output.
type ShardBenchReport struct {
	Dataset string             `json:"dataset"`
	N       int                `json:"n"`
	Seed    int64              `json:"seed"`
	K       int                `json:"k"`
	Theta   float64            `json:"theta"`
	Workers int                `json:"workers"` // resolved GOMAXPROCS at run time
	Results []ShardBenchResult `json:"results"`
}

// benchShards builds the benchmark database once, then for each shard count
// times the index build and the steady-state query, writing the JSON report
// to outPath and a human-readable summary to w. only > 0 restricts the run
// to that single shard count (the CI smoke mode); 0 runs 1, 2, and 4.
func benchShards(w io.Writer, outPath string, n, only int) error {
	const (
		dataset    = "dud"
		seed       = int64(1)
		k          = 5
		buildIters = 3
		queryIters = 20
	)
	counts := []int{1, 2, 4}
	if only > 0 {
		counts = []int{only}
	}
	db, err := graphrep.GenerateDataset(dataset, n, seed)
	if err != nil {
		return err
	}
	report := ShardBenchReport{
		Dataset: dataset, N: n, Seed: seed, K: k,
		Workers: runtime.GOMAXPROCS(0),
	}
	rel := graphrep.FirstQuartileRelevance(db, nil)
	for _, shards := range counts {
		opts := graphrep.Options{Seed: seed, Shards: shards}
		// One untimed build to pick θ (identical at every shard count) and
		// warm the process.
		engine, err := graphrep.Open(db, opts)
		if err != nil {
			return err
		}
		if report.Theta == 0 {
			sess, err := engine.NewSession(rel)
			if err != nil {
				return err
			}
			points, err := sess.SweepTheta(k)
			if err != nil {
				return err
			}
			best, err := graphrep.SuggestTheta(points)
			if err != nil {
				return err
			}
			report.Theta = best.Theta
		}
		start := time.Now()
		for i := 0; i < buildIters; i++ {
			if engine, err = graphrep.Open(db, opts); err != nil {
				return err
			}
		}
		buildNs := time.Since(start).Nanoseconds() / buildIters

		sess, err := engine.NewSession(rel)
		if err != nil {
			return err
		}
		if _, err := sess.TopK(report.Theta, k); err != nil { // warm-up
			return err
		}
		start = time.Now()
		for i := 0; i < queryIters; i++ {
			if _, err := sess.TopK(report.Theta, k); err != nil {
				return err
			}
		}
		queryNs := time.Since(start).Nanoseconds() / queryIters

		report.Results = append(report.Results, ShardBenchResult{
			Shards:       shards,
			BuildNsPerOp: buildNs,
			QueryNsPerOp: queryNs,
			BuildIters:   buildIters,
			QueryIters:   queryIters,
		})
		fmt.Fprintf(w, "shards=%d  build %v/op  query %v/op\n",
			shards, time.Duration(buildNs).Round(time.Microsecond), time.Duration(queryNs).Round(time.Microsecond))
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
