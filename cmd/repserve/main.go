// Command repserve serves top-k representative queries over HTTP. It
// generates or loads a database, builds (or loads) the NB-Index, and exposes
// the JSON API of internal/server.
//
// Usage:
//
//	repserve -dataset dud -n 2000 -addr :8080
//	repserve -in molecules.gdb -index molecules.nbx -addr :8080
//
// Example request:
//
//	curl -s localhost:8080/query -d '{"relevance":{"kind":"quartile"},"theta":10,"k":5}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphrep"
	"graphrep/internal/server"
)

func main() {
	var (
		name     = flag.String("dataset", "dud", "dataset preset (ignored with -in)")
		n        = flag.Int("n", 1000, "graphs to generate (ignored with -in)")
		seed     = flag.Int64("seed", 42, "generation seed")
		in       = flag.String("in", "", "load the database from this file")
		index    = flag.String("index", "", "load/store the index at this file (skips rebuild when present)")
		addr     = flag.String("addr", ":8080", "listen address")
		pprofOn  = flag.Bool("pprof", false, "mount runtime profiles under /debug/pprof/")
		drainFor = flag.Duration("drain", 10*time.Second, "graceful-shutdown timeout for in-flight requests")
		workers  = flag.Int("workers", 0, "worker goroutines for index construction and session init (0 = GOMAXPROCS; results are identical for any value)")
		queryTO  = flag.Duration("query-timeout", 0, "per-request deadline for /query and /sweep (0 = none; expired queries answer 504)")
		shards   = flag.Int("shards", 1, "index shards; inserts write-lock only the last shard, so reads of other shards never wait (answers identical for any value; ignored when loading a stored index, which fixes its own shard count)")
	)
	flag.Parse()
	if *workers < 0 {
		usageError("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *shards < 1 {
		usageError("-shards must be >= 1, got %d", *shards)
	}
	if *queryTO < 0 {
		usageError("-query-timeout must be >= 0 (0 = none), got %v", *queryTO)
	}
	if *in == "" && *n <= 0 {
		usageError("-n must be >= 1 when generating a dataset, got %d", *n)
	}

	db, err := loadDatabase(*in, *name, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := openEngine(db, *index, *seed, *workers, *shards)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	log.Printf("serving %d graphs (avg |V|=%.1f, %d index shard(s)) on %s",
		st.Graphs, st.AvgNodes, engine.Shards(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(engine, server.Options{Pprof: *pprofOn, QueryTimeout: *queryTO}).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests before
	// exiting so long-running queries are not cut off mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("shutting down (draining for up to %v)", *drainFor)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("shutdown: %v", err)
		}
	}
}

// usageError rejects an invalid flag value: the complaint plus the usage
// text on stderr, exit status 2 (flag's own convention for bad invocations,
// distinct from runtime failures, which exit 1 via log.Fatal).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "repserve: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// loadDatabase generates the corpus or opens -in by content: a GRDB001
// container is memory-mapped — the server starts serving with a flat open
// cost and corpus pages fault in as queries touch them — anything else
// parses as the text format onto the heap.
func loadDatabase(path, name string, n int, seed int64) (*graphrep.Database, error) {
	if path == "" {
		return graphrep.GenerateDataset(name, n, seed)
	}
	return graphrep.LoadDatabaseFile(path)
}

// openEngine loads a persisted index when available (its stored shard count
// wins over the -shards flag), otherwise builds one (on up to workers
// goroutines, split into shards partitions) and persists it to indexPath
// (when given). Stored v4 indexes are memory-mapped — the process starts
// serving immediately and index pages fault in on first use; the mapping
// lives as long as the process, so the engine is never Closed here.
func openEngine(db *graphrep.Database, indexPath string, seed int64, workers, shards int) (*graphrep.Engine, error) {
	if indexPath != "" {
		if _, err := os.Stat(indexPath); err == nil {
			engine, err := graphrep.OpenWithIndexFile(db, indexPath, graphrep.Options{Workers: workers})
			if err == nil {
				log.Printf("loaded index from %s (%d shard(s))", indexPath, engine.Shards())
				return engine, nil
			}
			log.Printf("stored index unusable (%v); rebuilding", err)
		}
	}
	start := time.Now()
	engine, err := graphrep.Open(db, graphrep.Options{Seed: seed, Workers: workers, Shards: shards})
	if err != nil {
		return nil, err
	}
	log.Printf("index built in %v", time.Since(start).Round(time.Millisecond))
	if indexPath != "" {
		f, err := os.Create(indexPath)
		if err != nil {
			return nil, fmt.Errorf("persist index: %w", err)
		}
		defer f.Close()
		if err := engine.SaveIndex(f); err != nil {
			return nil, fmt.Errorf("persist index: %w", err)
		}
		log.Printf("index persisted to %s", indexPath)
	}
	return engine, nil
}
