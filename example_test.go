package graphrep_test

import (
	"fmt"
	"math"

	"graphrep"
)

// ExampleOpen indexes a generated molecular library and answers a top-k
// representative query.
func ExampleOpen() {
	db, _ := graphrep.GenerateDataset("dud", 300, 7)
	engine, _ := graphrep.Open(db, graphrep.Options{Seed: 1})
	res, _ := engine.TopKRepresentative(graphrep.Query{
		Relevance: graphrep.FirstQuartileRelevance(db, nil),
		Theta:     10,
		K:         3,
	})
	fmt.Println(len(res.Answer) > 0, res.Power > 0)
	// Output: true true
}

// ExampleEngine_NewSession shows interactive θ refinement: the session
// amortizes initialization across zoom levels.
func ExampleEngine_NewSession() {
	db, _ := graphrep.GenerateDataset("dud", 300, 7)
	engine, _ := graphrep.Open(db, graphrep.Options{Seed: 1})
	sess, _ := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	coarse, _ := sess.TopK(20, 5)
	fine, _ := sess.TopK(8, 5)
	// A smaller radius cannot cover more of the relevant set.
	fmt.Println(fine.Covered <= coarse.Covered)
	// Output: true
}

// ExampleMetricFunc runs the engine over a non-graph metric space (plain
// 1-D points), demonstrating that the index only needs a metric.
func ExampleMetricFunc() {
	var graphs []*graphrep.Graph
	for i := 0; i < 50; i++ {
		b := graphrep.NewBuilder(1)
		b.AddVertex(0)
		b.SetFeatures([]float64{float64(i)})
		g, _ := b.Build(graphrep.ID(i))
		graphs = append(graphs, g)
	}
	db, _ := graphrep.NewDatabase(graphs)
	line := graphrep.MetricFunc(func(a, b graphrep.ID) float64 {
		return math.Abs(db.Graph(a).Features()[0] - db.Graph(b).Features()[0])
	})
	engine, _ := graphrep.Open(db, graphrep.Options{Metric: line, Seed: 1})
	res, _ := engine.TopKRepresentative(graphrep.Query{
		Relevance: func([]float64) bool { return true },
		Theta:     5,
		K:         5,
	})
	// 5 exemplars with radius 5 can cover all 50 points on the line.
	fmt.Println(res.Power)
	// Output: 1
}
