package graphrep_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"graphrep"
)

// openRun answers one fixed query against a freshly generated database and
// freshly built index, returning the JSON-encoded Result (byte comparison
// catches ordering differences DeepEqual might gloss over) and the
// QueryStats of the call.
func openRun(t *testing.T, dataset string, n int, seed int64, theta float64, k int) ([]byte, graphrep.QueryStats) {
	return openRunKernel(t, dataset, n, seed, theta, k, false)
}

// openRunKernel is openRun with control over the bounded distance kernel.
func openRunKernel(t *testing.T, dataset string, n int, seed int64, theta float64, k int, disableKernel bool) ([]byte, graphrep.QueryStats) {
	t.Helper()
	db, err := graphrep.GenerateDataset(dataset, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: seed + 1, DisableBoundedKernel: disableKernel})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.TopK(theta, k)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return buf, sess.LastStats()
}

// Determinism regression: the same (dataset, n, seed, query) must produce a
// byte-identical Result and identical QueryStats across two completely
// fresh Open calls — index construction, session initialization (which runs
// on a parallel worker pool), and the search itself must all be
// order-independent.
func TestDeterministicAcrossOpens(t *testing.T) {
	cases := []struct {
		dataset string
		n       int
		seed    int64
		theta   float64
		k       int
	}{
		{"dud", 150, 7, 10, 5},
		{"dud", 150, 7, 6, 8},
		{"dblp", 120, 3, 4, 4},
		{"amazon", 100, 11, 5, 6},
	}
	for _, c := range cases {
		res1, st1 := openRun(t, c.dataset, c.n, c.seed, c.theta, c.k)
		res2, st2 := openRun(t, c.dataset, c.n, c.seed, c.theta, c.k)
		if !bytes.Equal(res1, res2) {
			t.Errorf("%s n=%d seed=%d θ=%v k=%d: results differ:\n%s\nvs\n%s",
				c.dataset, c.n, c.seed, c.theta, c.k, res1, res2)
		}
		if st1 != st2 {
			t.Errorf("%s n=%d seed=%d θ=%v k=%d: stats differ: %+v vs %+v",
				c.dataset, c.n, c.seed, c.theta, c.k, st1, st2)
		}
		// The bounded kernel must be invisible in the Result: a fresh run
		// with DisableBoundedKernel produces the same bytes, the same total
		// candidate tests, and (necessarily) no pruned distances.
		res3, st3 := openRunKernel(t, c.dataset, c.n, c.seed, c.theta, c.k, true)
		if !bytes.Equal(res1, res3) {
			t.Errorf("%s n=%d seed=%d θ=%v k=%d: results differ with kernel disabled:\n%s\nvs\n%s",
				c.dataset, c.n, c.seed, c.theta, c.k, res1, res3)
		}
		if st3.PrunedDistances != 0 {
			t.Errorf("%s n=%d seed=%d θ=%v k=%d: disabled kernel reported %d pruned distances",
				c.dataset, c.n, c.seed, c.theta, c.k, st3.PrunedDistances)
		}
		if got, want := st3.ExactDistances, st1.ExactDistances+st1.PrunedDistances; got != want {
			t.Errorf("%s n=%d seed=%d θ=%v k=%d: candidate tests differ: %d with kernel off, %d on",
				c.dataset, c.n, c.seed, c.theta, c.k, got, want)
		}
	}
}
