package graphrep_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"graphrep"
)

// buildAndQuery opens the dataset with the given worker count and returns
// the persisted index bytes plus the JSON-encoded answer to one fixed query.
func buildAndQuery(t *testing.T, workers int) ([]byte, []byte) {
	t.Helper()
	db, err := graphrep.GenerateDataset("dud", 180, 7)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 3, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var ixBuf bytes.Buffer
	if err := engine.SaveIndex(&ixBuf); err != nil {
		t.Fatal(err)
	}
	res, err := engine.TopKRepresentative(graphrep.Query{
		Relevance: graphrep.FirstQuartileRelevance(db, nil),
		Theta:     8,
		K:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	resBuf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return ixBuf.Bytes(), resBuf
}

// The construction pipeline must be deterministic in (dataset, seed) alone:
// any Workers value yields byte-identical SaveIndex output and identical
// answers, because all rng-driven decisions are single-threaded and the
// parallel fills write to pre-assigned slots.
func TestWorkersDoNotChangeIndexBytesOrAnswers(t *testing.T) {
	ix1, res1 := buildAndQuery(t, 1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		ixW, resW := buildAndQuery(t, w)
		if !bytes.Equal(ix1, ixW) {
			t.Errorf("SaveIndex bytes differ between Workers=1 (%d bytes) and Workers=%d (%d bytes)",
				len(ix1), w, len(ixW))
		}
		if !bytes.Equal(res1, resW) {
			t.Errorf("answers differ between Workers=1 and Workers=%d:\n%s\nvs\n%s", w, res1, resW)
		}
	}
}

// A context cancelled before Open must abort construction promptly with
// context.Canceled and no engine.
func TestOpenContextCancelled(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	engine, err := graphrep.OpenContext(ctx, db, graphrep.Options{Seed: 2, Workers: 4})
	if engine != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("OpenContext on cancelled ctx = (%v, %v), want (nil, context.Canceled)", engine, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled OpenContext took %v, want a prompt return", elapsed)
	}
}

// Cancelled contexts must abort the query paths — session initialization,
// TopK, and SweepTheta — with context.Canceled.
func TestQueryContextCancelled(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel := graphrep.FirstQuartileRelevance(db, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := engine.NewSessionContext(ctx, rel); !errors.Is(err, context.Canceled) {
		t.Errorf("NewSessionContext = %v, want context.Canceled", err)
	}
	if _, err := engine.TopKRepresentativeContext(ctx, graphrep.Query{Relevance: rel, Theta: 8, K: 5}); !errors.Is(err, context.Canceled) {
		t.Errorf("TopKRepresentativeContext = %v, want context.Canceled", err)
	}

	sess, err := engine.NewSession(rel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.TopKContext(ctx, 8, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("TopKContext = %v, want context.Canceled", err)
	}
	if _, err := sess.SweepThetaContext(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("SweepThetaContext = %v, want context.Canceled", err)
	}
}

// The direct session path must validate its arguments like the Engine path
// does: non-positive k and NaN or negative theta are rejected, not silently
// misanswered.
func TestSessionTopKValidatesArguments(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.NewSession(graphrep.FirstQuartileRelevance(db, nil))
	if err != nil {
		t.Fatal(err)
	}
	nan := 0.0
	nan /= nan // avoid importing math for one NaN
	for _, c := range []struct {
		name  string
		theta float64
		k     int
	}{
		{"zero k", 5, 0},
		{"negative k", 5, -1},
		{"negative theta", -1, 5},
		{"NaN theta", nan, 5},
	} {
		if _, err := sess.TopK(c.theta, c.k); err == nil {
			t.Errorf("%s: TopK(%v, %d) succeeded, want error", c.name, c.theta, c.k)
		}
	}
}
