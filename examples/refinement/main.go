// Interactive θ refinement: the "zoom level" scenario of §7 and Fig. 6(i).
// An analyst rarely knows the right distance threshold up front; they issue
// a query, inspect the answer, and zoom in (smaller θ, finer-grained
// exemplars) or out (larger θ, coarser summary). A Session amortizes the
// initialization phase, so each refinement costs a fraction of the first
// query.
package main

import (
	"fmt"
	"log"
	"time"

	"graphrep"
)

func main() {
	db, err := graphrep.GenerateDataset("amazon", 1500, 3)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := graphrep.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	popular := graphrep.FirstQuartileRelevance(db, nil)

	start := time.Now()
	sess, err := engine.NewSession(popular)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session initialized in %v (%d relevant co-purchase neighborhoods)\n",
		time.Since(start).Round(time.Millisecond), sess.RelevantCount())

	// Start coarse and zoom: each θ is a different "zoom level" over the
	// same relevant set.
	for _, theta := range []float64{60, 40, 25, 40, 55} {
		start := time.Now()
		res, err := sess.TopK(theta, 6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("θ=%5.1f: %d exemplars cover %3d/%d relevant (π=%.2f)  [%v]\n",
			theta, len(res.Answer), res.Covered, res.Relevant, res.Power,
			time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("\nsmaller θ → finer zoom: lower coverage per exemplar, tighter structural families")
}
