// Collaboration networks: the paper's Table 1, example 4. Each database
// graph is the 2-hop neighborhood of an author, vertices labelled by
// community; a query asks for the most active collaboration groups that do
// not overlap structurally — the representative answer picks one exemplar
// neighborhood per community mix instead of k copies of the single most
// active clique.
package main

import (
	"fmt"
	"log"
	"sort"

	"graphrep"
)

func main() {
	db, err := graphrep.GenerateDataset("dblp", 1200, 11)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("collaboration database: %d neighborhoods (avg %d members, %d ties, %d communities)\n",
		st.Graphs, int(st.AvgNodes), int(st.AvgEdges), st.Labels)

	engine, err := graphrep.Open(db)
	if err != nil {
		log.Fatal(err)
	}

	// Activity is the 1-D feature; a group is relevant when its activity is
	// in the top quartile.
	active := graphrep.FirstQuartileRelevance(db, nil)
	sess, err := engine.NewSession(active)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d groups qualify as highly active\n", sess.RelevantCount())

	res, err := sess.TopK(16, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-%d representative groups (π = %.3f, each exemplar stands for ≈%.0f groups):\n",
		len(res.Answer), res.Power, res.CompressionRatio())
	for i, id := range res.Answer {
		g := db.Graph(id)
		fmt.Printf("  %d. group %-5d members=%-3d ties=%-4d dominant communities: %v\n",
			i+1, id, g.Order(), g.Size(), topCommunities(g, 3))
	}
}

// topCommunities lists the most frequent vertex labels of a neighborhood.
func topCommunities(g *graphrep.Graph, k int) []graphrep.Label {
	type lc struct {
		l graphrep.Label
		c int
	}
	var counts []lc
	for l, c := range g.LabelHistogram() {
		counts = append(counts, lc{l, c})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].c != counts[j].c {
			return counts[i].c > counts[j].c
		}
		return counts[i].l < counts[j].l
	})
	if k > len(counts) {
		k = len(counts)
	}
	out := make([]graphrep.Label, k)
	for i := 0; i < k; i++ {
		out[i] = counts[i].l
	}
	return out
}
