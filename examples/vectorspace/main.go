// Metric-space generality: the paper notes the algorithm "is generalizable
// to all metric spaces". This example runs top-k representative queries over
// plain Euclidean vectors — no graph structure at all — by supplying a
// custom metric: each database object is a stub graph whose feature vector
// holds its coordinates, and the engine's distance is Euclidean. The
// NB-Index machinery (vantage orderings, NB-Tree, π̂-vectors) works
// unchanged, because it only ever relies on the triangle inequality.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"graphrep"
)

func main() {
	const n = 2000
	rng := rand.New(rand.NewSource(12))
	// Plant 8 Gaussian clusters in the plane plus background noise; the
	// third feature dimension is a relevance score.
	centers := make([][2]float64, 8)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	graphs := make([]*graphrep.Graph, n)
	for i := range graphs {
		var x, y float64
		if rng.Float64() < 0.9 {
			c := centers[rng.Intn(len(centers))]
			x = c[0] + rng.NormFloat64()*3
			y = c[1] + rng.NormFloat64()*3
		} else {
			x, y = rng.Float64()*100, rng.Float64()*100 // outliers
		}
		b := graphrep.NewBuilder(1)
		b.AddVertex(0) // structure is irrelevant here
		b.SetFeatures([]float64{x, y, rng.Float64()})
		g, err := b.Build(graphrep.ID(i))
		if err != nil {
			log.Fatal(err)
		}
		graphs[i] = g
	}
	db, err := graphrep.NewDatabase(graphs)
	if err != nil {
		log.Fatal(err)
	}

	euclidean := graphrep.MetricFunc(func(a, b graphrep.ID) float64 {
		fa, fb := db.Graph(a).Features(), db.Graph(b).Features()
		return math.Hypot(fa[0]-fb[0], fa[1]-fb[1])
	})
	engine, err := graphrep.Open(db, graphrep.Options{Metric: euclidean, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	relevant := func(f []float64) bool { return f[2] > 0.5 }
	res, err := engine.TopKRepresentative(graphrep.Query{Relevance: relevant, Theta: 8, K: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d representative points cover %d/%d relevant vectors (π=%.2f):\n",
		len(res.Answer), res.Covered, res.Relevant, res.Power)
	for i, id := range res.Answer {
		f := db.Graph(id).Features()
		fmt.Printf("  %d. point %-5d (%.1f, %.1f) — newly represents %d points\n",
			i+1, id, f[0], f[1], res.Gains[i])
	}
	fmt.Println("\neach exemplar sits in a different planted cluster — the same")
	fmt.Println("coverage semantics as graphs, driven purely by the metric")
}
