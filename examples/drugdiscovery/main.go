// Drug discovery: the paper's motivating scenario (Table 1, example 1 and
// Fig. 7). A molecular library is screened against a protein target; a
// traditional top-k query returns k near-identical top binders from one
// chemical series, while a top-k representative query returns one exemplar
// per promising structural family — far more useful for lead selection.
package main

import (
	"fmt"
	"log"

	"graphrep"
)

func main() {
	// The synthetic DUD-like library: molecule graphs with a 10-dimensional
	// feature vector of binding affinities against 10 targets.
	db, err := graphrep.GenerateDataset("dud", 2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("library: %d molecules (avg %d atoms, %d bonds)\n",
		st.Graphs, int(st.AvgNodes), int(st.AvgEdges))

	engine, err := graphrep.Open(db)
	if err != nil {
		log.Fatal(err)
	}

	// Target 0 plays the role of acetylcholinesterase (AChE): a molecule is
	// relevant ("active") if its affinity is in the library's top quartile.
	target := []int{0}
	affinity := graphrep.DimensionScore(target)
	active := graphrep.FirstQuartileRelevance(db, target)
	theta, k := 10.0, 5

	// Traditional top-k: the k highest-affinity molecules.
	traditional := engine.TraditionalTopK(affinity, k)
	// Top-k representative: the k actives that best represent all actives.
	representative, err := engine.TopKRepresentative(graphrep.Query{
		Relevance: active, Theta: theta, K: k,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, ids []graphrep.ID) {
		power := engine.Power(active, ids, theta)
		fmt.Printf("\n%s (π = %.3f):\n", label, power)
		for _, id := range ids {
			g := db.Graph(id)
			fmt.Printf("  molecule %-5d affinity=%.2f  atoms=%d\n",
				id, affinity(g.Features()), g.Order())
		}
		fmt.Printf("  structural diversity (mean pairwise distance): %.1f\n", meanPairwise(db, ids))
	}
	report("traditional top-5 binders", traditional)
	report("top-5 representative actives", representative.Answer)

	// Which actives does each exemplar stand for?
	families := engine.Explain(active, representative.Answer, theta)
	fmt.Println("\nper-exemplar families:")
	for _, id := range representative.Answer {
		fmt.Printf("  exemplar %-5d represents %d actives\n", id, len(families[id]))
	}

	fmt.Printf("\nThe representative set spans %.1fx more structural space and covers %d actives vs %d.\n",
		meanPairwise(db, representative.Answer)/max1(meanPairwise(db, traditional)),
		representative.Covered, int(engine.Power(active, traditional, theta)*float64(representative.Relevant)+0.5))
}

func meanPairwise(db *graphrep.Database, ids []graphrep.ID) float64 {
	if len(ids) < 2 {
		return 0
	}
	total, pairs := 0.0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			total += graphrep.Distance(db.Graph(ids[i]), db.Graph(ids[j]))
			pairs++
		}
	}
	return total / float64(pairs)
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}
