// Quickstart: build a small graph database by hand, open an engine, and
// answer a top-k representative query through the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphrep"
)

func main() {
	// Build a database of 60 small labelled graphs: three structural
	// families (paths, cycles, stars) with a 1-D quality feature.
	rng := rand.New(rand.NewSource(1))
	var graphs []*graphrep.Graph
	id := 0
	for family := 0; family < 3; family++ {
		for i := 0; i < 20; i++ {
			g, err := makeGraph(family, rng, graphrep.ID(id))
			if err != nil {
				log.Fatal(err)
			}
			graphs = append(graphs, g)
			id++
		}
	}
	db, err := graphrep.NewDatabase(graphs)
	if err != nil {
		log.Fatal(err)
	}

	// Index once; query many times.
	engine, err := graphrep.Open(db)
	if err != nil {
		log.Fatal(err)
	}

	// Relevance is defined at query time: here, quality above 0.5.
	res, err := engine.TopKRepresentative(graphrep.Query{
		Relevance: func(f []float64) bool { return f[0] > 0.5 },
		Theta:     6, // graphs within star distance 6 are "represented"
		K:         3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-%d representatives of %d relevant graphs:\n", len(res.Answer), res.Relevant)
	for i, gid := range res.Answer {
		g := db.Graph(gid)
		fmt.Printf("  %d. graph %d (|V|=%d, |E|=%d) — newly represents %d graphs\n",
			i+1, gid, g.Order(), g.Size(), res.Gains[i])
	}
	fmt.Printf("representative power π = %.2f (covered %d/%d)\n", res.Power, res.Covered, res.Relevant)
}

// makeGraph builds one family member: a path, cycle, or star with 6-9
// vertices, plus a quality feature correlated with the family.
func makeGraph(family int, rng *rand.Rand, id graphrep.ID) (*graphrep.Graph, error) {
	n := 6 + rng.Intn(4)
	b := graphrep.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddVertex(graphrep.Label(family + 1)) // family-colored vertices
	}
	switch family {
	case 0: // path
		for v := 0; v+1 < n; v++ {
			b.AddEdge(v, v+1, 0)
		}
	case 1: // cycle
		for v := 0; v+1 < n; v++ {
			b.AddEdge(v, v+1, 0)
		}
		b.AddEdge(0, n-1, 0)
	default: // star
		for v := 1; v < n; v++ {
			b.AddEdge(0, v, 0)
		}
	}
	b.SetFeatures([]float64{0.3*float64(family) + rng.Float64()*0.4})
	return b.Build(id)
}
