// Information cascades: Table 1, example 2. Each database graph is the
// structure of an information cascade, labelled by user community, with a
// topic-weight feature vector. The query asks for cascades relevant to a
// topic set; a traditional top-k surfaces k cascades from the single most
// active community, while the representative query spans the whole spectrum
// of cascade shapes discussing those topics.
package main

import (
	"fmt"
	"log"

	"graphrep"
)

func main() {
	db, err := graphrep.GenerateDataset("cascades", 1500, 5)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("cascade database: %d cascades (avg %d nodes), %d communities, %d topics\n",
		st.Graphs, int(st.AvgNodes), st.Labels, db.FeatureDim())

	engine, err := graphrep.Open(db)
	if err != nil {
		log.Fatal(err)
	}

	// Query: cascades discussing topics {1, 4} (soft Jaccard ≥ 0.35).
	topics := []int{1, 4}
	onTopic := graphrep.TopicRelevance(topics, 0.35)
	sess, err := engine.NewSession(onTopic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cascades are on-topic for topics %v\n", sess.RelevantCount(), topics)
	if sess.RelevantCount() == 0 {
		fmt.Println("no on-topic cascades at this threshold; lower tau")
		return
	}

	res, err := sess.TopK(14, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-%d representative cascade patterns (π = %.3f):\n", len(res.Answer), res.Power)
	score := graphrep.TopicScore(topics)
	for i, id := range res.Answer {
		g := db.Graph(id)
		fmt.Printf("  %d. cascade %-5d size=%-3d topic-match=%.2f shape=%x  represents %d more\n",
			i+1, id, g.Order(), score(g.Features()), graphrep.WLHash(g, 2)&0xffff, res.Gains[i]-1)
	}

	// Contrast: the traditional answer by topic score alone.
	trad := engine.TraditionalTopK(score, 6)
	fmt.Printf("\ntraditional top-6 by topic score: %v (π = %.3f)\n",
		trad, engine.Power(onTopic, trad, 14))
	fmt.Println("the representative set covers the spectrum of cascade shapes, not one viral meme")
}
