// Bug triage: Table 1, example 3. Each database graph is a function call
// graph extracted from a crash report, with a feature vector of occurrence
// counts over the last 7 days. The query scores traces by recency-weighted
// frequency; a traditional top-k returns k reports of the same hot bug,
// while the representative query returns one exemplar per distinct
// bug-inducing call structure — a de-duplicated triage queue.
package main

import (
	"fmt"
	"log"

	"graphrep"
)

func main() {
	db, err := graphrep.GenerateDataset("bugs", 1200, 9)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("crash database: %d call graphs (avg %d functions, %d calls)\n",
		st.Graphs, int(st.AvgNodes), int(st.AvgEdges))

	engine, err := graphrep.Open(db)
	if err != nil {
		log.Fatal(err)
	}

	// Recency-weighted frequency: yesterday counts 7x more than a week ago.
	weights := []float64{7, 6, 5, 4, 3, 2, 1}
	hotScore := graphrep.WeightedScore(weights)
	// A trace is relevant when its weighted frequency clears a floor.
	hot := graphrep.WeightedRelevance(weights, 12)
	sess, err := engine.NewSession(hot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d traces qualify as hot\n", sess.RelevantCount())
	if sess.RelevantCount() == 0 {
		fmt.Println("no hot traces at this floor; lower the threshold")
		return
	}

	res, err := sess.TopK(10, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriage queue: %d exemplar bugs (covering %d/%d hot traces, π = %.3f)\n",
		len(res.Answer), res.Covered, res.Relevant, res.Power)
	for i, id := range res.Answer {
		g := db.Graph(id)
		fmt.Printf("  %d. trace %-5d hotness=%.1f functions=%-3d duplicates folded=%d\n",
			i+1, id, hotScore(g.Features()), g.Order(), res.Gains[i]-1)
	}

	trad := engine.TraditionalTopK(hotScore, 8)
	fmt.Printf("\nnaive hottest-8 queue: %v (π = %.3f — mostly duplicates of one bug)\n",
		trad, engine.Power(hot, trad, 10))
}
