package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, w := range []int{0, -1} {
		if got := Resolve(w); got != want {
			t.Errorf("Resolve(%d) = %d, want GOMAXPROCS %d", w, got, want)
		}
	}
}

// Every index in [0, n) is visited exactly once, for any worker count and
// chunk size, including the n%chunk tail.
func TestRangesCoversEveryIndexOnce(t *testing.T) {
	for _, c := range []struct{ n, workers, chunk int }{
		{1, 1, 1}, {100, 1, 7}, {100, 4, 7}, {100, 0, 16}, {5, 8, 2}, {64, 3, 64},
	} {
		visits := make([]atomic.Int32, c.n)
		err := Ranges(context.Background(), c.n, c.workers, c.chunk, func(lo, hi int) {
			if lo < 0 || hi > c.n || lo >= hi {
				t.Errorf("n=%d workers=%d chunk=%d: bad range [%d, %d)", c.n, c.workers, c.chunk, lo, hi)
			}
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
		})
		if err != nil {
			t.Errorf("n=%d workers=%d chunk=%d: err = %v", c.n, c.workers, c.chunk, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Errorf("n=%d workers=%d chunk=%d: index %d visited %d times", c.n, c.workers, c.chunk, i, got)
			}
		}
	}
}

func TestRangesEmptyInput(t *testing.T) {
	if err := Ranges(context.Background(), 0, 4, 8, func(lo, hi int) {
		t.Errorf("fn called with [%d, %d) on empty input", lo, hi)
	}); err != nil {
		t.Errorf("err = %v", err)
	}
}

// A cancelled context stops dispatch: Ranges reports context.Canceled and
// runs at most one chunk per worker after cancellation.
func TestRangesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := Ranges(ctx, 1000, workers, 10, func(lo, hi int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); int(n) > workers {
			t.Errorf("workers=%d: %d chunks ran after pre-cancelled context", workers, n)
		}
	}
}
