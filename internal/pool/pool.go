// Package pool provides the bounded, context-aware worker pools the index
// construction pipeline runs on. The contract every caller relies on:
// work is pre-partitioned into index ranges and each range writes only to
// its own output slots, so the result is byte-identical for any worker
// count — parallelism changes wall time, never answers.
//
// Cancellation is checked between chunks: a worker finishes the chunk it is
// on, then observes the context and stops, so Ranges returns promptly
// (within one chunk of work per worker) after the context is cancelled.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers option to a concrete worker count: values ≤ 0
// select GOMAXPROCS.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Ranges splits [0, n) into chunks of at most chunk indices and runs
// fn(lo, hi) for each on up to workers goroutines (≤ 0 means GOMAXPROCS).
// When only one chunk or one worker remains it runs inline — recursive
// callers with small inputs pay no goroutine overhead.
//
// fn must confine its writes to outputs owned by [lo, hi); shared counters
// must be atomic. Ranges returns ctx.Err() when the context was cancelled,
// in which case some chunks may not have run.
func Ranges(ctx context.Context, n, workers, chunk int, fn func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if chunk <= 0 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	workers = Resolve(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(lo, min(lo+chunk, n))
		}
		return ctx.Err()
	}
	// Chunks are claimed from an atomic cursor: cheaper than a channel and
	// naturally load-balanced when chunk costs vary (e.g. cache misses).
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * chunk
				fn(lo, min(lo+chunk, n))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
