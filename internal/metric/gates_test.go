package metric

import (
	"math/rand"
	"testing"

	"graphrep/internal/dataset"
	"graphrep/internal/ged"
	"graphrep/internal/graph"
)

// gateSpins drives one pair well past the gate warmup, so a closing gate has
// closed and a live one has proven it stays open.
const gateSpins = gateWarmupFloor + 256

// pairDB assembles a two-graph database from searched graphs carrying
// placeholder IDs, re-built at positions 0 and 1.
func pairDB(t *testing.T, a, b *graph.Graph) *graph.Database {
	t.Helper()
	graphs := make([]*graph.Graph, 0, 2)
	for i, g := range []*graph.Graph{a, b} {
		gg, err := g.Clone(graph.ID(i)).Build(graph.ID(i))
		if err != nil {
			t.Fatalf("re-ID graph %d: %v", i, err)
		}
		graphs = append(graphs, gg)
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// hammerPair decides the same threshold test gateSpins times on a fresh Star
// metric, failing if the verdict ever flips — gate closures must never change
// an answer — and returns the final counter state.
func hammerPair(t *testing.T, a, b *graph.Graph, tau float64) PruneStats {
	t.Helper()
	star := Star(pairDB(t, a, b))
	bm, sc := star.(BoundedMetric), star.(StageCounter)
	want := bm.Within(0, 1, tau)
	for i := 1; i < gateSpins; i++ {
		if got := bm.Within(0, 1, tau); got != want {
			t.Fatalf("verdict flipped at decision %d: %v -> %v (gate closure changed an answer)", i, want, got)
		}
	}
	return sc.PruneStats()
}

// A pair deciding at the exact stage is a greedy attempt that never lands:
// the tier runs and is counted, but the verdict always comes from the
// completed solve. The gate must retire the tier exactly at the warmup
// boundary — the attempt denominator freezes at the warmup (the floor, for this two-graph database) — while every
// decision before and after still lands on the exact stage.
func TestGreedyGateRetiresMissingTier(t *testing.T) {
	a, b, tau := findStagePair(t, ged.StageExact)
	s := hammerPair(t, a, b, tau)
	if s.Greedy != 0 {
		t.Fatalf("fixture landed %d greedy successes, want 0 (%+v)", s.Greedy, s)
	}
	if s.GreedyTried != gateWarmupFloor {
		t.Errorf("greedy attempt denominator = %d, want frozen at warmup %d", s.GreedyTried, int64(gateWarmupFloor))
	}
	if s.BoundedExact != gateSpins {
		t.Errorf("exact stage fired %d of %d decisions: retiring the greedy tier moved decisions off the exact stage", s.BoundedExact, int64(gateSpins))
	}
}

// An isomorphic pair at θ = 0 is a greedy attempt that always lands (only the
// greedy upper bound — a zero-cost assignment — can prove d ≤ 0): the fire
// rate holds at 1 and the gate must never close.
func TestGreedyGateKeepsLandingTier(t *testing.T) {
	iso := graphSpec{labels: []graph.Label{1, 2}, edges: [][3]int{{0, 1, 0}}}
	s := hammerPair(t, iso.build(t, 0), iso.build(t, 1), 0)
	if s.Greedy != gateSpins || s.GreedyTried != gateSpins {
		t.Errorf("always-landing greedy tier was throttled: %d successes over %d attempts, want %d over %d",
			s.Greedy, s.GreedyTried, int64(gateSpins), int64(gateSpins))
	}
}

// findDualArmedExactPair searches for a pair whose decision completes as an
// exact solve with the dual abort armed but never firing — the arming pattern
// the dual gate exists to retire. Random pairs rarely sit near-τ with a
// conflict-free solve; the molecule-like corpus is the reliable fallback,
// mirroring findStagePair.
func findDualArmedExactPair(t *testing.T) (a, b *graph.Graph, tau float64) {
	t.Helper()
	check := func(ga, gb *graph.Graph, taus ...float64) (float64, bool) {
		siga, sigb := ged.NewStarSig(ga), ged.NewStarSig(gb)
		emblo := siga.Embedding().LowerBound(sigb.Embedding())
		for _, tau := range taus {
			if tau < 0 {
				continue
			}
			dec := siga.DistanceAtMostTiers(sigb, tau, emblo, true, true)
			if dec.Stage == ged.StageExact && dec.DualArmed {
				return tau, true
			}
		}
		return 0, false
	}
	for seed := int64(0); seed < 2000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ga, gb := randSpec(rng, 12).build(t, 0), randSpec(rng, 12).build(t, 0)
		d := ged.NewStarSig(ga).Distance(ged.NewStarSig(gb))
		if tau, ok := check(ga, gb, d, d-1); ok {
			return ga, gb, tau
		}
	}
	db, err := dataset.DUDLike(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]*ged.StarSig, db.Len())
	for i := range sigs {
		sigs[i] = ged.NewStarSig(db.Graph(graph.ID(i)))
	}
	for i := 0; i < len(sigs); i++ {
		for j := i + 1; j < len(sigs); j++ {
			ga, gb := db.Graph(graph.ID(i)), db.Graph(graph.ID(j))
			d := sigs[i].Distance(sigs[j])
			if tau, ok := check(ga, gb, d, d-1); ok {
				return ga, gb, tau
			}
		}
	}
	t.Fatal("no dual-armed exact-stage pair within the search budget")
	return
}

// A decision that keeps arming the dual abort without the abort ever firing
// must have the arming retired at the warmup boundary, with every decision
// still completing as an exact solve.
func TestDualGateRetiresUnfiringArm(t *testing.T) {
	a, b, tau := findDualArmedExactPair(t)
	s := hammerPair(t, a, b, tau)
	if s.Dual != 0 {
		t.Fatalf("fixture fired %d dual aborts, want 0 (%+v)", s.Dual, s)
	}
	if s.DualArmed != gateWarmupFloor {
		t.Errorf("dual attempt denominator = %d, want frozen at warmup %d", s.DualArmed, int64(gateWarmupFloor))
	}
	if s.BoundedExact != gateSpins {
		t.Errorf("exact stage fired %d of %d decisions: retiring the arming moved decisions off the exact stage", s.BoundedExact, int64(gateSpins))
	}
}

// A pair whose armed solve always aborts holds the dual fire rate at 1: the
// gate must keep the tier live for the whole run.
func TestDualGateKeepsFiringTier(t *testing.T) {
	a, b, tau := findStagePair(t, ged.StageDual)
	s := hammerPair(t, a, b, tau)
	if s.Dual != gateSpins || s.DualArmed != gateSpins {
		t.Errorf("always-firing dual tier was throttled: %d aborts over %d armed, want %d over %d",
			s.Dual, s.DualArmed, int64(gateSpins), int64(gateSpins))
	}
}

// The warmup policy: the floor for small databases, pairs/256 once the pair
// count dominates. These values are load-bearing — the bench reference runs
// at n=400 and n=4000 discuss gate behavior in terms of them — so the policy
// is pinned exactly.
func TestGateWarmupPolicy(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, gateWarmupFloor},
		{2, gateWarmupFloor},
		{400, 4096},
		{1449, 4097},            // first n past the floor ...
		{1448, gateWarmupFloor}, // ... one below stays on it
		{4000, 31242},
		{40000, 3124921},
	}
	for _, c := range cases {
		if got := gateWarmupFor(c.n); got != c.want {
			t.Errorf("gateWarmupFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	star := Star(pairDB(t, graphSpec{labels: []graph.Label{1}}.build(t, 0), graphSpec{labels: []graph.Label{2}}.build(t, 1)))
	if w := star.(*starMetric).gateWarmup; w != gateWarmupFloor {
		t.Errorf("two-graph metric warmup = %d, want the floor %d", w, int64(gateWarmupFloor))
	}
}
