package metric

import (
	"math"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
)

// BoundedMetric is a Metric that can decide the threshold test
// d(a,b) ≤ theta without necessarily computing the exact distance. The
// contract is strict: Within(a, b, theta) ⇔ Distance(a, b) ≤ theta, for
// every theta — a bounded implementation may be faster, never different.
// Every built-in metric (Star, Counter, Cache, Matrix) satisfies it; the
// engine's verify paths rely on the equivalence to keep answers byte-
// identical whether or not the bounded kernel is enabled.
type BoundedMetric interface {
	Metric
	Within(a, b graph.ID, theta float64) (leq bool)
}

// decision is the internal detailed outcome of a bounded test: the verdict,
// whether it was reached without a completed exact solve (pruned), and the
// proven interval lo ≤ d ≤ hi (hi is +Inf when no upper bound exists). The
// interval is what Cache memoizes.
type decision struct {
	leq    bool
	pruned bool
	lo, hi float64
}

// decider is implemented by the built-in metrics to expose the detailed
// decision to each other (Cache needs the inner interval to memoize it) and
// to Decide.
type decider interface {
	boundedDecide(a, b graph.ID, theta float64) decision
}

// Decide resolves d(a,b) ≤ theta through m, preferring the bounded path when
// m supports it, and additionally reports whether the decision was pruned —
// reached without a completed exact Hungarian solve. The verify loops use it
// to split QueryStats between PrunedDistances and ExactDistances while
// keeping a single call site.
func Decide(m Metric, a, b graph.ID, theta float64) (leq, pruned bool) {
	d := boundedDecide(m, a, b, theta)
	return d.leq, d.pruned
}

// boundedDecide dispatches to the richest interface m offers. For a foreign
// BoundedMetric the interval is reconstructed from the verdict alone (d > θ
// implies d ≥ nextafter(θ), d ≤ θ implies d ∈ [0, θ]); for a plain Metric
// the exact distance is computed and compared.
func boundedDecide(m Metric, a, b graph.ID, theta float64) decision {
	switch mm := m.(type) {
	case decider:
		return mm.boundedDecide(a, b, theta)
	case BoundedMetric:
		if mm.Within(a, b, theta) {
			return decision{leq: true, pruned: false, lo: 0, hi: theta}
		}
		return decision{leq: false, pruned: false, lo: math.Nextafter(theta, math.Inf(1)), hi: math.Inf(1)}
	default:
		d := m.Distance(a, b)
		return decision{leq: d <= theta, pruned: false, lo: d, hi: d}
	}
}

// PruneStats is the cascade breakdown of a Star metric: how many bounded
// decisions each lower/upper-bound stage resolved without a completed
// Hungarian solve, how many bounded decisions needed the full solve
// (BoundedExact), and how many plain Distance computations were issued
// (ExactValues — always a full solve). FullSolves is therefore the number of
// complete Hungarian runs; Pruned the number avoided.
type PruneStats struct {
	Size      int64 // size/padding lower bound (O(1))
	Histogram int64 // center-label histogram lower bound (O(n))
	RowMin    int64 // row/column minima lower bound (O(n²))
	Greedy    int64 // greedy-assignment upper bound (O(n²))
	Dual      int64 // Hungarian dual objective early exit (partial solve)

	BoundedExact int64
	ExactValues  int64
}

// Pruned returns the decisions resolved without a completed exact solve.
func (p PruneStats) Pruned() int64 {
	return p.Size + p.Histogram + p.RowMin + p.Greedy + p.Dual
}

// FullSolves returns the number of completed Hungarian solves issued.
func (p PruneStats) FullSolves() int64 { return p.BoundedExact + p.ExactValues }

// StageCounter is implemented by metrics that track the PruneStats
// breakdown; the Star metric does, and the engine telemetry exports the
// counts as graphrep_metric_* series.
type StageCounter interface {
	PruneStats() PruneStats
}

// Within implements BoundedMetric via the ged bound cascade.
func (m *starMetric) Within(a, b graph.ID, theta float64) bool {
	return m.boundedDecide(a, b, theta).leq
}

func (m *starMetric) boundedDecide(a, b graph.ID, theta float64) decision {
	if a == b {
		return decision{leq: 0 <= theta, pruned: true, lo: 0, hi: 0}
	}
	dec := m.sig(a).DistanceAtMost(m.sig(b), theta)
	m.stages[dec.Stage].Add(1)
	return decision{leq: dec.Leq, pruned: !dec.Exact(), lo: dec.Lo, hi: dec.Hi}
}

// PruneStats implements StageCounter.
func (m *starMetric) PruneStats() PruneStats {
	return PruneStats{
		Size:         m.stages[ged.StageSize].Load(),
		Histogram:    m.stages[ged.StageHistogram].Load(),
		RowMin:       m.stages[ged.StageRowMin].Load(),
		Greedy:       m.stages[ged.StageGreedy].Load(),
		Dual:         m.stages[ged.StageDual].Load(),
		BoundedExact: m.stages[ged.StageExact].Load(),
		ExactValues:  m.exactValues.Load(),
	}
}

// Within implements BoundedMetric: the call counts as one distance
// computation (the paper's efficiency measure charges threshold tests and
// value computations alike) and delegates the decision to the inner metric.
func (c *Counter) Within(a, b graph.ID, theta float64) bool {
	return c.boundedDecide(a, b, theta).leq
}

func (c *Counter) boundedDecide(a, b graph.ID, theta float64) decision {
	c.n.Add(1)
	return boundedDecide(c.inner, a, b, theta)
}

// Within implements BoundedMetric with interval memoization: an entry whose
// interval already decides the test answers it as a hit (pruned unless the
// entry is exact); otherwise the inner decision is issued (a miss, keeping
// Misses == inner computations) and the interval it proves is merged into
// the table, tightening it for future calls at any threshold. Exact values
// always win: once lo == hi the entry never widens.
func (c *Cache) Within(a, b graph.ID, theta float64) bool {
	return c.boundedDecide(a, b, theta).leq
}

// promoteProbes is the undecided-repeat count at which the Cache stops
// issuing partial cascades for a pair and computes its exact distance: the
// second repeat probe inside the stored interval (third miss overall) pays
// for one full solve so every later test is a table hit. One repeat is still
// cheap to re-prune; a pair straddled by many sweep thresholds is not.
const promoteProbes = 2

func (c *Cache) boundedDecide(a, b graph.ID, theta float64) decision {
	if a == b {
		return decision{leq: 0 <= theta, pruned: true, lo: 0, hi: 0}
	}
	k := pairKey(a, b)
	sh := c.shard(k)
	sh.mu.RLock()
	e, ok := sh.memo[k]
	sh.mu.RUnlock()
	if ok {
		switch {
		case e.exact():
			c.hits.Add(1)
			return decision{leq: e.lo <= theta, pruned: false, lo: e.lo, hi: e.hi}
		case e.lo > theta:
			c.hits.Add(1)
			return decision{leq: false, pruned: true, lo: e.lo, hi: e.hi}
		case e.hi <= theta:
			c.hits.Add(1)
			return decision{leq: true, pruned: true, lo: e.lo, hi: e.hi}
		default:
			// A stored interval that fails to decide means this pair is
			// being probed again at a threshold inside its bounds — repeat
			// traffic (θ sweeps walk the same pairs through a grid of
			// thresholds). After a couple of such repeats, promote to exact:
			// one full computation makes every future test on the pair a
			// hit, instead of re-running a partial cascade per threshold.
			// Either way the probe counts as a miss like any other inner
			// computation.
			c.misses.Add(1)
			if sh.bumpProbes(k) >= promoteProbes {
				d := c.inner.Distance(a, b)
				sh.store(k, d, d)
				return decision{leq: d <= theta, pruned: false, lo: d, hi: d}
			}
			d := boundedDecide(c.inner, a, b, theta)
			sh.store(k, d.lo, d.hi)
			return d
		}
	}
	c.misses.Add(1)
	d := boundedDecide(c.inner, a, b, theta)
	sh.store(k, d.lo, d.hi)
	return d
}

// Within implements BoundedMetric; the matrix is precomputed, so the lookup
// is already exact.
func (m *Matrix) Within(a, b graph.ID, theta float64) bool {
	return m.Distance(a, b) <= theta
}

func (m *Matrix) boundedDecide(a, b graph.ID, theta float64) decision {
	d := m.Distance(a, b)
	return decision{leq: d <= theta, pruned: false, lo: d, hi: d}
}

// ExactOnly hides any bounded-decision capability of m: the returned metric
// implements only plain Metric, so every threshold test falls back to a full
// Distance computation. It is the kernel kill switch behind
// Options.DisableBoundedKernel, used for baseline benchmarks and for
// bisecting any suspected kernel difference (there must never be one —
// answers are byte-identical either way).
func ExactOnly(m Metric) Metric { return exactOnly{inner: m} }

type exactOnly struct{ inner Metric }

// Distance implements Metric.
func (e exactOnly) Distance(a, b graph.ID) float64 { return e.inner.Distance(a, b) }

// Compile-time checks: every built-in metric supports the bounded path.
var (
	_ BoundedMetric = (*starMetric)(nil)
	_ BoundedMetric = (*Counter)(nil)
	_ BoundedMetric = (*Cache)(nil)
	_ BoundedMetric = (*Matrix)(nil)
	_ StageCounter  = (*starMetric)(nil)
)
