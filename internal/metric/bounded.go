package metric

import (
	"math"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
)

// BoundedMetric is a Metric that can decide the threshold test
// d(a,b) ≤ theta without necessarily computing the exact distance. The
// contract is strict: Within(a, b, theta) ⇔ Distance(a, b) ≤ theta, for
// every theta — a bounded implementation may be faster, never different.
// Every built-in metric (Star, Counter, Cache, Matrix) satisfies it; the
// engine's verify paths rely on the equivalence to keep answers byte-
// identical whether or not the bounded kernel is enabled.
type BoundedMetric interface {
	Metric
	Within(a, b graph.ID, theta float64) (leq bool)
}

// decision is the internal detailed outcome of a bounded test: the verdict,
// whether it was reached without a completed exact solve (pruned), and the
// proven interval lo ≤ d ≤ hi (hi is +Inf when no upper bound exists). The
// interval is what Cache memoizes.
type decision struct {
	leq    bool
	pruned bool
	lo, hi float64
}

// decider is implemented by the built-in metrics to expose the detailed
// decision to each other (Cache needs the inner interval to memoize it) and
// to Decide.
type decider interface {
	boundedDecide(a, b graph.ID, theta float64) decision
}

// Decide resolves d(a,b) ≤ theta through m, preferring the bounded path when
// m supports it, and additionally reports whether the decision was pruned —
// reached without a completed exact Hungarian solve. The verify loops use it
// to split QueryStats between PrunedDistances and ExactDistances while
// keeping a single call site.
func Decide(m Metric, a, b graph.ID, theta float64) (leq, pruned bool) {
	d := boundedDecide(m, a, b, theta)
	return d.leq, d.pruned
}

// boundedDecide dispatches to the richest interface m offers. For a foreign
// BoundedMetric the interval is reconstructed from the verdict alone (d > θ
// implies d ≥ nextafter(θ), d ≤ θ implies d ∈ [0, θ]); for a plain Metric
// the exact distance is computed and compared.
func boundedDecide(m Metric, a, b graph.ID, theta float64) decision {
	switch mm := m.(type) {
	case decider:
		return mm.boundedDecide(a, b, theta)
	case BoundedMetric:
		if mm.Within(a, b, theta) {
			return decision{leq: true, pruned: false, lo: 0, hi: theta}
		}
		return decision{leq: false, pruned: false, lo: math.Nextafter(theta, math.Inf(1)), hi: math.Inf(1)}
	default:
		d := m.Distance(a, b)
		return decision{leq: d <= theta, pruned: false, lo: d, hi: d}
	}
}

// PruneStats is the cascade breakdown of a Star metric: how many bounded
// decisions each lower/upper-bound stage resolved without a completed
// Hungarian solve, how many bounded decisions needed the full solve
// (BoundedExact), and how many plain Distance computations were issued
// (ExactValues — always a full solve). FullSolves is therefore the number of
// complete Hungarian runs; Pruned the number avoided.
type PruneStats struct {
	// Embedding counts decisions the precomputed filter tier resolved from
	// two cached vectors alone (the max of the padding/size bound and the
	// center+spoke histogram L1 bound; O(dims), no per-pair assignment
	// work). It subsumes the retired size and histogram tiers.
	Embedding int64
	RowMin    int64 // decisions the row-minima lower bound made (O(n²))
	Greedy    int64 // greedy-assignment upper bound (O(n²))
	Dual      int64 // Hungarian dual objective early exit (partial solve)

	// RowMinSolved is the subset of RowMin whose miss was shallow — within
	// rowMinDeepMargin of τ — so the cascade spent a full solve hardening the
	// memoized interval to an exact value. Those decisions were made by the
	// bound but still cost a Hungarian run, so they count in FullSolves and
	// not in Pruned.
	RowMinSolved int64

	BoundedExact int64
	ExactValues  int64

	// GreedyTried and DualArmed are the adaptive tier gates' attempt
	// denominators: decisions on which the greedy tier actually ran, and
	// decisions whose exact solve ran with the dual abort armed. Greedy/
	// GreedyTried and Dual/DualArmed are the live fire rates the gates weigh
	// against each tier's breakeven; a denominator that stops growing while
	// decisions continue means the gate has retired the tier.
	GreedyTried int64
	DualArmed   int64
}

// Pruned returns the decisions resolved without a completed exact solve.
func (p PruneStats) Pruned() int64 {
	return p.Embedding + (p.RowMin - p.RowMinSolved) + p.Greedy + p.Dual
}

// FullSolves returns the number of completed Hungarian solves issued.
func (p PruneStats) FullSolves() int64 {
	return p.BoundedExact + p.RowMinSolved + p.ExactValues
}

// StageCounter is implemented by metrics that track the PruneStats
// breakdown; the Star metric does, and the engine telemetry exports the
// counts as graphrep_metric_* series.
type StageCounter interface {
	PruneStats() PruneStats
}

// EmbeddingPrimer is implemented by metrics that can adopt precomputed
// per-graph filter embeddings (the default star metric does). The engine
// primes the metric with the per-shard vectors carried by the index — built
// or loaded — so threshold tests on far pairs resolve from the cached
// vectors without ever materializing a star signature.
type EmbeddingPrimer interface {
	PrimeEmbeddings(base graph.ID, embs []*ged.Embedding)
}

// EmbeddingTablePrimer is implemented by metrics that can adopt a per-shard
// embedding table in its encoded form (the default star metric does). An
// engine that opens a mapped v4 index registers the table instead of eagerly
// decoding every vector; the metric decodes records on first use. Decoded
// vectors are identical to eagerly primed ones, so answers and stage
// attribution are independent of the priming path.
type EmbeddingTablePrimer interface {
	PrimeEmbeddingTable(base graph.ID, tab *ged.Table)
}

// Within implements BoundedMetric via the ged bound cascade.
func (m *starMetric) Within(a, b graph.ID, theta float64) bool {
	return m.boundedDecide(a, b, theta).leq
}

func (m *starMetric) boundedDecide(a, b graph.ID, theta float64) decision {
	if a == b {
		return decision{leq: 0 <= theta, pruned: true, lo: 0, hi: 0}
	}
	// Embedding-first: with both filter vectors cached (primed from a loaded
	// index, or left behind by earlier sig materializations), a far pair is
	// decided without touching the star signatures at all. The bound is then
	// handed down so the cascade does not re-scan the vectors. Signatures and
	// vectors are snapshotted in one reader-lock round.
	sa, sb, ea, eb := m.pairState(a, b)
	lb := -1.0
	if ea != nil && eb != nil {
		lb = ea.LowerBound(eb)
		if lb > theta {
			m.stages[ged.StageEmbedding].Add(1)
			return decision{leq: false, pruned: true, lo: lb, hi: math.Inf(1)}
		}
	}
	if sa == nil {
		sa = m.sig(a)
	}
	if sb == nil {
		sb = m.sig(b)
	}
	if lb < 0 {
		lb = sa.Embedding().LowerBound(sb.Embedding())
	}
	tryGreedy := m.greedyGateOpen()
	dec := sa.DistanceAtMostTiers(sb, theta, lb, tryGreedy, m.dualGateOpen())
	if tryGreedy && dec.Stage >= ged.StageGreedy {
		m.greedyTried.Add(1)
	}
	if dec.DualArmed {
		m.dualTried.Add(1)
	}
	m.stages[dec.Stage].Add(1)
	if dec.Stage == ged.StageRowMin && dec.Exact() {
		m.rowMinSolved.Add(1)
	}
	return decision{leq: dec.Leq, pruned: !dec.Exact(), lo: dec.Lo, hi: dec.Hi}
}

// The adaptive tier gates. The greedy upper bound and the dual abort are the
// two cascade tiers whose economics depend on the workload rather than the
// data alone. A greedy success durably prunes one warm-started Hungarian
// solve, while a failure pays the assignment bookkeeping and swap polish on
// top of the solve it failed to avoid — against the measured costs on the
// reference workload, roughly a quarter of a warm solve per attempt, so the
// tier breaks even when about one attempt in four lands. Arming the dual
// abort costs the row reordering plus the warm start the classic abortable
// solve cannot use — about half of what an abort saves (the abort skips at
// least half the solve) — so that tier breaks even when about half its armed
// attempts fire. Each gate watches its tier's live fire rate over the
// decisions that actually ran it and retires the tier for the metric's
// lifetime once, past the metric's warmup (gateWarmupFor at construction),
// the rate sits below the tier's breakeven. Retiring a tier never changes a verdict (a skipped
// greedy success falls through to the exact solve, which proves the same
// answer and memoizes more; an unarmed solve simply completes), so answers
// stay byte-identical; only the stage composition shifts. Once closed a gate
// stays closed: no further attempts run, so the rate that closed it is
// frozen. Reference points: the n=400 workload finishes inside the warmup
// with greedy landing ≈48%, so both tiers stay live there; the n=4000
// workload sits near 12% greedy and 0% dual and retires both shortly after
// warmup, shedding their cost on the ~90% of decisions they were losing.
const (
	gateWarmupFloor   = 4096
	greedyGateMinRate = 0.25
	dualGateMinRate   = 0.5
)

// gateWarmupFor sizes the gate warmup for an n-graph database:
// max(gateWarmupFloor, pairs/256) with pairs = n(n−1)/2. The floor keeps
// small workloads from closing a gate on noise; the pairs/256 term scales
// the observation window with the workload so that on large databases a
// tier's measured rate has settled on a representative mix of pairs — a few
// thousand decisions out of hundreds of millions of candidate pairs is too
// early to retire a tier for the metric's lifetime. The policy is pinned by
// TestGateWarmupPolicy.
func gateWarmupFor(n int) int64 {
	pairs := int64(n) * int64(n-1) / 2
	if w := pairs / 256; w > gateWarmupFloor {
		return w
	}
	return gateWarmupFloor
}

// greedyGateOpen reports whether the greedy tier should still run. Counter
// reads are racy under concurrent decisions — the gate may close a handful of
// decisions earlier or later across runs — but monotonicity keeps the
// end state identical and verdicts never depend on it.
func (m *starMetric) greedyGateOpen() bool {
	tried := m.greedyTried.Load()
	if tried < m.gateWarmup {
		return true
	}
	return float64(m.stages[ged.StageGreedy].Load()) >= greedyGateMinRate*float64(tried)
}

// dualGateOpen is greedyGateOpen's counterpart for the dual-abort tier, over
// the decisions that armed it.
func (m *starMetric) dualGateOpen() bool {
	tried := m.dualTried.Load()
	if tried < m.gateWarmup {
		return true
	}
	return float64(m.stages[ged.StageDual].Load()) >= dualGateMinRate*float64(tried)
}

// PruneStats implements StageCounter.
func (m *starMetric) PruneStats() PruneStats {
	return PruneStats{
		Embedding:    m.stages[ged.StageEmbedding].Load(),
		RowMin:       m.stages[ged.StageRowMin].Load(),
		Greedy:       m.stages[ged.StageGreedy].Load(),
		Dual:         m.stages[ged.StageDual].Load(),
		RowMinSolved: m.rowMinSolved.Load(),
		BoundedExact: m.stages[ged.StageExact].Load(),
		ExactValues:  m.exactValues.Load(),
		GreedyTried:  m.greedyTried.Load(),
		DualArmed:    m.dualTried.Load(),
	}
}

// Within implements BoundedMetric: the call counts as one distance
// computation (the paper's efficiency measure charges threshold tests and
// value computations alike) and delegates the decision to the inner metric.
func (c *Counter) Within(a, b graph.ID, theta float64) bool {
	return c.boundedDecide(a, b, theta).leq
}

func (c *Counter) boundedDecide(a, b graph.ID, theta float64) decision {
	c.n.Add(1)
	return boundedDecide(c.inner, a, b, theta)
}

// Within implements BoundedMetric with interval memoization: an entry whose
// interval already decides the test answers it as a hit (pruned unless the
// entry is exact); otherwise the inner decision is issued (a miss, keeping
// Misses == inner computations) and the interval it proves is merged into
// the table, tightening it for future calls at any threshold. Exact values
// always win: once lo == hi the entry never widens.
func (c *Cache) Within(a, b graph.ID, theta float64) bool {
	return c.boundedDecide(a, b, theta).leq
}

// exactWarmer is implemented by metrics whose exact distance can run through
// the warm-started solve (the star metric's distanceExactWarm). The Cache's
// promotions — exact computations issued from inside the bounded kernel —
// prefer it; plain Distance calls are untouched, keeping the kernel-off
// baseline on the classic solve.
type exactWarmer interface {
	distanceExactWarm(a, b graph.ID) float64
}

// exactDistance computes the exact distance for kernel-internal use,
// routing through the warm solve when m supports it.
func exactDistance(m Metric, a, b graph.ID) float64 {
	if ew, ok := m.(exactWarmer); ok {
		return ew.distanceExactWarm(a, b)
	}
	return m.Distance(a, b)
}

// promoteProbes is the undecided-repeat count at which the Cache stops
// issuing partial cascades for a pair and computes its exact distance: the
// first repeat probe inside the stored interval (second miss overall) pays
// for one full solve so every later test is a table hit. A repeat inside the
// interval means the pair straddles the workload's thresholds — θ sweeps walk
// the same pairs through a grid of nearby values — and every further partial
// cascade on it is near-full-solve work that proves nothing reusable.
const promoteProbes = 1

func (c *Cache) boundedDecide(a, b graph.ID, theta float64) decision {
	if a == b {
		return decision{leq: 0 <= theta, pruned: true, lo: 0, hi: 0}
	}
	k := pairKey(a, b)
	sh := c.shard(k)
	sh.mu.RLock()
	e, ok := sh.memo[k]
	sh.mu.RUnlock()
	if ok {
		switch {
		case e.exact():
			c.hits.Add(1)
			return decision{leq: e.lo <= theta, pruned: false, lo: e.lo, hi: e.hi}
		case e.lo > theta:
			c.hits.Add(1)
			return decision{leq: false, pruned: true, lo: e.lo, hi: e.hi}
		case e.hi <= theta:
			c.hits.Add(1)
			return decision{leq: true, pruned: true, lo: e.lo, hi: e.hi}
		default:
			// A stored interval that fails to decide means this pair is
			// being probed again at a threshold inside its bounds — repeat
			// traffic (θ sweeps walk the same pairs through a grid of
			// thresholds). After a couple of such repeats, promote to exact:
			// one full computation makes every future test on the pair a
			// hit, instead of re-running a partial cascade per threshold.
			// Either way the probe counts as a miss like any other inner
			// computation.
			c.misses.Add(1)
			if sh.bumpProbes(k) >= promoteProbes {
				d := exactDistance(c.inner, a, b)
				sh.store(k, d, d)
				return decision{leq: d <= theta, pruned: false, lo: d, hi: d}
			}
			d := boundedDecide(c.inner, a, b, theta)
			sh.store(k, d.lo, d.hi)
			return d
		}
	}
	c.misses.Add(1)
	d := boundedDecide(c.inner, a, b, theta)
	sh.store(k, d.lo, d.hi)
	return d
}

// Within implements BoundedMetric; the matrix is precomputed, so the lookup
// is already exact.
func (m *Matrix) Within(a, b graph.ID, theta float64) bool {
	return m.Distance(a, b) <= theta
}

func (m *Matrix) boundedDecide(a, b graph.ID, theta float64) decision {
	d := m.Distance(a, b)
	return decision{leq: d <= theta, pruned: false, lo: d, hi: d}
}

// ExactOnly hides any bounded-decision capability of m: the returned metric
// implements only plain Metric, so every threshold test falls back to a full
// Distance computation. It is the kernel kill switch behind
// Options.DisableBoundedKernel, used for baseline benchmarks and for
// bisecting any suspected kernel difference (there must never be one —
// answers are byte-identical either way).
func ExactOnly(m Metric) Metric { return exactOnly{inner: m} }

type exactOnly struct{ inner Metric }

// Distance implements Metric.
func (e exactOnly) Distance(a, b graph.ID) float64 { return e.inner.Distance(a, b) }

// Compile-time checks: every built-in metric supports the bounded path.
var (
	_ BoundedMetric = (*starMetric)(nil)
	_ BoundedMetric = (*Counter)(nil)
	_ BoundedMetric = (*Cache)(nil)
	_ BoundedMetric = (*Matrix)(nil)
	_ StageCounter  = (*starMetric)(nil)
)
