package metric

import (
	"sort"
	"testing"

	"graphrep/internal/graph"
)

// lineMetric places graph i at coordinate i on a line, so d(a, b) = |a-b|.
// Distances are trivially a metric and range results are easy to enumerate
// by hand.
func lineMetric() Metric {
	return Func(func(a, b graph.ID) float64 {
		d := float64(a) - float64(b)
		if d < 0 {
			d = -d
		}
		return d
	})
}

func sortedIDs(ids []graph.ID) []graph.ID {
	out := append([]graph.ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestLinearScanRange(t *testing.T) {
	ls := NewLinearScan(10, lineMetric())
	if ls.N != 10 {
		t.Fatalf("NewLinearScan: N = %d, want 10", ls.N)
	}

	got := sortedIDs(ls.Range(5, 2))
	want := []graph.ID{3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("Range(5, 2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range(5, 2) = %v, want %v", got, want)
		}
	}
}

func TestLinearScanRangeIncludesCenter(t *testing.T) {
	// Radius 0 still matches the center itself: d(c, c) = 0 ≤ 0.
	got := NewLinearScan(8, lineMetric()).Range(3, 0)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Range(3, 0) = %v, want [3]", got)
	}
}

func TestLinearScanRangeEmpty(t *testing.T) {
	// A negative radius matches nothing — not even the center — because no
	// distance is ≤ a negative bound. This is the empty-result branch.
	if got := NewLinearScan(8, lineMetric()).Range(3, -1); len(got) != 0 {
		t.Fatalf("Range(3, -1) = %v, want empty", got)
	}
	// An empty database matches nothing either.
	if got := NewLinearScan(0, lineMetric()).Range(0, 100); len(got) != 0 {
		t.Fatalf("Range over empty database = %v, want empty", got)
	}
}

func TestLinearScanRangeBoundaryInclusive(t *testing.T) {
	// The contract is d ≤ radius, so graphs exactly at the radius are in.
	got := sortedIDs(NewLinearScan(10, lineMetric()).Range(0, 4))
	want := []graph.ID{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Range(0, 4) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range(0, 4) = %v, want %v", got, want)
		}
	}
}

func TestLinearScanRangeThroughCache(t *testing.T) {
	// A LinearScan over a cached metric: the first query misses on every
	// non-identity pair, a repeat of the same query is answered entirely
	// from the memo table (the cache-hit branch).
	cache := NewCache(lineMetric())
	ls := NewLinearScan(6, cache)

	first := ls.Range(2, 3)
	if hits, misses := cache.Hits(), cache.Misses(); hits != 0 || misses != 5 {
		t.Fatalf("after first query: hits=%d misses=%d, want 0/5", hits, misses)
	}
	if cache.Size() != 5 {
		t.Fatalf("cache size = %d, want 5", cache.Size())
	}

	second := ls.Range(2, 3)
	if hits, misses := cache.Hits(), cache.Misses(); hits != 5 || misses != 5 {
		t.Fatalf("after repeat query: hits=%d misses=%d, want 5/5", hits, misses)
	}
	if len(first) != len(second) {
		t.Fatalf("cached query changed the answer: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached query changed the answer: %v vs %v", first, second)
		}
	}

	// Clear drops the memo table and the totals; the next query recomputes.
	cache.Clear()
	if cache.Size() != 0 || cache.Hits() != 0 || cache.Misses() != 0 {
		t.Fatalf("after Clear: size=%d hits=%d misses=%d, want all zero",
			cache.Size(), cache.Hits(), cache.Misses())
	}
	ls.Range(2, 3)
	if hits, misses := cache.Hits(), cache.Misses(); hits != 0 || misses != 5 {
		t.Fatalf("after Clear and re-query: hits=%d misses=%d, want 0/5", hits, misses)
	}
}

func TestLinearScanSatisfiesRangeSearcher(t *testing.T) {
	var _ RangeSearcher = NewLinearScan(1, lineMetric())
}
