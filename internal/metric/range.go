package metric

import "graphrep/internal/graph"

// RangeSearcher answers metric range queries: all database graphs within
// radius of a center graph. It is the capability every nearest-neighbor-
// style graph index (M-tree, C-tree) exposes and that the baseline greedy
// algorithms consume to materialize θ-neighborhoods.
type RangeSearcher interface {
	// Range returns the IDs of all graphs g with d(center, g) ≤ radius,
	// including center itself. Order is unspecified.
	Range(center graph.ID, radius float64) []graph.ID
}

// LinearScan is the trivial RangeSearcher: one distance computation per
// database graph per query. It is the no-index comparison point.
type LinearScan struct {
	N int
	M Metric
}

// NewLinearScan returns a LinearScan over a database of n graphs.
func NewLinearScan(n int, m Metric) *LinearScan { return &LinearScan{N: n, M: m} }

// Range implements RangeSearcher.
func (l *LinearScan) Range(center graph.ID, radius float64) []graph.ID {
	var out []graph.ID
	for i := 0; i < l.N; i++ {
		if l.M.Distance(center, graph.ID(i)) <= radius {
			out = append(out, graph.ID(i))
		}
	}
	return out
}
