// Package metric abstracts the database distance function d(g, g') and
// provides the instrumented wrappers the experiments rely on: a counting
// wrapper (how many expensive distance computations did an algorithm issue —
// the paper's central efficiency measure), a thread-safe memoizing cache, and
// a precomputed full distance matrix (the paper's "best case" baseline in
// Fig. 5(i) and 6(k)).
package metric

import (
	"sync"
	"sync/atomic"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
)

// Metric computes the distance between two database graphs identified by ID.
// Implementations must be symmetric, non-negative, and zero on identical
// arguments; index structures additionally require the triangle inequality.
type Metric interface {
	Distance(a, b graph.ID) float64
}

// Func adapts an ordinary function to the Metric interface.
type Func func(a, b graph.ID) float64

// Distance implements Metric.
func (f Func) Distance(a, b graph.ID) float64 { return f(a, b) }

// Star returns the default database metric: the star-matching distance over
// db, with per-graph star signatures computed lazily and cached. It is safe
// for concurrent use and tolerates databases that grow via Append.
//
// Star also implements EmbeddingPrimer: an engine that loads a persisted
// index hands the per-shard filter embeddings to the metric, so far pairs
// are pruned from the cached vectors before any star decomposition happens.
func Star(db *graph.Database) Metric {
	// sigs and embs start empty and grow to the accessed ID on demand (the
	// same append-growth Insert relies on), so constructing the metric —
	// which every engine open does — costs O(1) regardless of database
	// size.
	return &starMetric{
		db:         db,
		gateWarmup: gateWarmupFor(db.Len()),
	}
}

type starMetric struct {
	db *graph.Database
	mu sync.RWMutex
	// sigs[id] is the lazily materialized star signature of id (nil until
	// first needed); embs[id] is its filter embedding, available earlier when
	// primed from a persisted index. Both guarded by mu.
	sigs []*ged.StarSig
	embs []*ged.Embedding
	// tabs lists encoded embedding tables primed from a mapped index; a
	// filter vector not yet in embs is decoded from its covering table on
	// first use and cached. Guarded by mu (the table contents themselves are
	// immutable).
	tabs []tableRange
	// gateWarmup is the adaptive tier gates' warmup length, sized to the
	// database at construction (see gateWarmupFor).
	gateWarmup int64
	// stages[s] counts bounded decisions terminating at cascade stage s;
	// exactValues counts plain Distance computations (always a full solve).
	// Together they form the PruneStats breakdown (see bounded.go).
	stages [ged.NumStages]paddedCounter
	// rowMinSolved counts the StageRowMin subset whose shallow miss completed
	// a hardening solve (Decision.Exact() true): decided by the bound, but a
	// full Hungarian run was still spent and must show up in FullSolves.
	rowMinSolved paddedCounter
	exactValues  paddedCounter
	// greedyTried counts bounded decisions on which the greedy upper-bound
	// tier actually ran (the adaptive tier gate was open and the decision got
	// past the lower-bound tiers); dualTried those that reached the exact
	// solve with the dual abort armed. Together with the matching stage
	// counters they yield the live fire rates the adaptive tier gates compare
	// against each tier's breakeven.
	greedyTried paddedCounter
	dualTried   paddedCounter
}

// paddedCounter is an atomic.Int64 alone on its cache line. One of these
// counters is bumped by every worker on every decision, and packing the five
// stage counters (plus exactValues) into adjacent words would make each bump
// invalidate the others' line — measurable false sharing on the query path's
// parallel verify loops.
type paddedCounter struct {
	atomic.Int64
	_ [56]byte
}

func (m *starMetric) sig(id graph.ID) *ged.StarSig {
	m.mu.RLock()
	if int(id) < len(m.sigs) {
		if s := m.sigs[id]; s != nil {
			m.mu.RUnlock()
			return s
		}
	}
	m.mu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.sigs) <= int(id) {
		m.sigs = append(m.sigs, nil)
		m.embs = append(m.embs, nil)
	}
	if m.sigs[id] == nil {
		s := ged.NewStarSigWithEmbedding(m.db.Graph(id), m.embs[id])
		m.sigs[id] = s
		m.embs[id] = s.Embedding()
	}
	return m.sigs[id]
}

// pairState snapshots the cached signatures and filter vectors of both IDs
// under a single reader-lock round. Entries not materialized (or not primed)
// yet come back nil; the caller falls through to the locking sig path for
// whichever signatures it still needs. One RLock/RUnlock here replaces up to
// four on the bounded hot path — the RWMutex reader count is a shared atomic,
// so every acquisition is a contended RMW under the parallel verify loops.
func (m *starMetric) pairState(a, b graph.ID) (sa, sb *ged.StarSig, ea, eb *ged.Embedding) {
	m.mu.RLock()
	if int(a) < len(m.sigs) {
		sa, ea = m.sigs[a], m.embs[a]
	}
	if int(b) < len(m.sigs) {
		sb, eb = m.sigs[b], m.embs[b]
	}
	tabs := m.tabs
	m.mu.RUnlock()
	// Vectors primed as encoded tables decode on first use. The decoded value
	// is identical to an eagerly primed one (the encoding round-trips), so
	// cascade decisions and stage attribution do not depend on which priming
	// path the engine used.
	if len(tabs) > 0 {
		if ea == nil {
			ea = m.tableEmb(tabs, a)
		}
		if eb == nil {
			eb = m.tableEmb(tabs, b)
		}
	}
	return
}

// tableRange is one primed embedding table and the contiguous ID range it
// covers (starting at base).
type tableRange struct {
	base graph.ID
	tab  *ged.Table
}

// tableEmb decodes id's filter vector from its covering table, caching the
// result in embs so the decode happens once. Returns nil when no table
// covers id — without taking the write lock, so IDs outside every table
// (e.g. freshly inserted graphs) cost only the coverage scan.
func (m *starMetric) tableEmb(tabs []tableRange, id graph.ID) *ged.Embedding {
	found := -1
	for i, tr := range tabs {
		if id >= tr.base && int(id-tr.base) < tr.tab.Len() {
			found = i
			break
		}
	}
	if found < 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) < len(m.embs) && m.embs[id] != nil {
		return m.embs[id]
	}
	e := tabs[found].tab.At(int(id - tabs[found].base))
	for len(m.embs) <= int(id) {
		m.sigs = append(m.sigs, nil)
		m.embs = append(m.embs, nil)
	}
	m.embs[id] = e
	return e
}

// PrimeEmbeddingTable implements EmbeddingTablePrimer: adopt an encoded
// per-shard embedding table covering the contiguous ID range starting at
// base. Unlike PrimeEmbeddings nothing is decoded up front; vectors
// materialize lazily as pairs are tested, which is what keeps opening a
// mapped index O(1) in the database size.
func (m *starMetric) PrimeEmbeddingTable(base graph.ID, tab *ged.Table) {
	if tab == nil || tab.Len() == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tabs = append(m.tabs, tableRange{base: base, tab: tab})
}

// PrimeEmbeddings implements EmbeddingPrimer: adopt precomputed filter
// vectors for the contiguous ID range starting at base. Vectors already
// cached (from a sig materialization or an earlier prime) win — they are
// identical by construction, so keeping the resident pointer avoids
// aliasing churn. Nil entries are skipped.
func (m *starMetric) PrimeEmbeddings(base graph.ID, embs []*ged.Embedding) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, e := range embs {
		if e == nil {
			continue
		}
		id := int(base) + i
		for len(m.embs) <= id {
			m.sigs = append(m.sigs, nil)
			m.embs = append(m.embs, nil)
		}
		if m.embs[id] == nil {
			m.embs[id] = e
		}
	}
}

// Distance implements Metric.
func (m *starMetric) Distance(a, b graph.ID) float64 {
	if a == b {
		return 0
	}
	m.exactValues.Add(1)
	sa, sb, _, _ := m.pairState(a, b)
	if sa == nil {
		sa = m.sig(a)
	}
	if sb == nil {
		sb = m.sig(b)
	}
	return sa.Distance(sb)
}

// distanceExactWarm is Distance through the warm-started solve
// (ged.StarSig.DistanceWarm); same value, same exactValues accounting. It
// implements exactWarmer, so the Cache routes its promotions here — they are
// bounded-kernel-internal work, while the public Distance stays on the
// classic solve the kernel-off baseline is measured against.
func (m *starMetric) distanceExactWarm(a, b graph.ID) float64 {
	if a == b {
		return 0
	}
	m.exactValues.Add(1)
	sa, sb, _, _ := m.pairState(a, b)
	if sa == nil {
		sa = m.sig(a)
	}
	if sb == nil {
		sb = m.sig(b)
	}
	return sa.DistanceWarm(sb)
}

// BipartiteGED returns the Riesen–Bunke bipartite GED upper bound as a
// metric-interface distance over db. Note: unlike Star, bipartite GED can
// violate the triangle inequality slightly; it is provided for ablations.
func BipartiteGED(db *graph.Database, c ged.Costs) Metric {
	return Func(func(a, b graph.ID) float64 {
		if a == b {
			return 0
		}
		d, _ := ged.Bipartite(db.Graph(a), db.Graph(b), c)
		return d
	})
}

// Counter wraps a Metric and counts invocations. All algorithms in this
// library are benchmarked by how many expensive distance computations they
// issue; Counter is how that is measured.
type Counter struct {
	inner Metric
	n     atomic.Int64
}

// NewCounter wraps m.
func NewCounter(m Metric) *Counter { return &Counter{inner: m} }

// Distance implements Metric.
func (c *Counter) Distance(a, b graph.ID) float64 {
	c.n.Add(1)
	return c.inner.Distance(a, b)
}

// Count returns the number of Distance calls so far.
func (c *Counter) Count() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// cacheShards is the number of lock stripes in Cache. 64 keeps the chance
// of two of GOMAXPROCS workers colliding on one stripe low while the
// per-shard overhead (a mutex and a map header) stays negligible.
const cacheShards = 64

// Cache wraps a Metric with a thread-safe memo table keyed on unordered
// pairs. Graph IDs are small ints, so the key packs both into one uint64.
// The table is striped across 64 independently locked shards selected by a
// hash of the pair key, so concurrent build workers and parallel queries
// hammer disjoint mutexes instead of serializing on one. Hit/miss totals
// are tracked atomically so observability layers can report cache
// effectiveness without adding lock traffic to the hot path.
//
// Each entry is a monotonically tightening interval [lo, hi] around the true
// distance, exact iff lo == hi. Distance stores exact values; the bounded
// Within path (see bounded.go) also stores the partial intervals a pruned
// decision proves, so a pruned test still helps later calls at nearby
// thresholds. Merging keeps lo non-decreasing and hi non-increasing, and an
// exact value always wins.
type Cache struct {
	inner        Metric
	hits, misses atomic.Int64
	shards       [cacheShards]cacheShard
}

// interval is one memo entry: lo ≤ d(a,b) ≤ hi, exact iff lo == hi (hi is
// +Inf until some stage proves an upper bound). probes counts undecided
// repeat tests — misses on a pair that already had an entry — and drives the
// promote-to-exact policy in boundedDecide (see bounded.go).
type interval struct {
	lo, hi float64
	probes uint8
}

func (e interval) exact() bool { return e.lo == e.hi }

type cacheShard struct {
	mu   sync.RWMutex
	memo map[uint64]interval // guarded by mu
}

// NewCache wraps m with an unbounded memo table.
func NewCache(m Metric) *Cache {
	c := &Cache{inner: m}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.memo = make(map[uint64]interval)
		sh.mu.Unlock()
	}
	return c
}

func pairKey(a, b graph.ID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// shard maps a pair key to its stripe. The Fibonacci multiplier mixes both
// IDs into the top bits so consecutive pairs (the common scan pattern)
// spread across stripes instead of clustering.
func (c *Cache) shard(k uint64) *cacheShard {
	return &c.shards[(k*0x9E3779B97F4A7C15)>>(64-6)] // 2^6 == cacheShards
}

// Distance implements Metric with memoization. Identity pairs (a == b) are
// answered without touching the table and count as neither hit nor miss. An
// interval-only entry (from a pruned Within) cannot answer a value lookup, so
// it counts as a miss; the computed exact value then replaces the interval.
//
// Two goroutines that miss on the same key concurrently both compute the
// distance and both count a miss; the metric is deterministic, so the
// duplicated work is wasted but harmless, and keeping misses un-deduplicated
// means Misses() equals the number of inner-metric computations issued —
// the quantity the telemetry layer reports.
func (c *Cache) Distance(a, b graph.ID) float64 {
	if a == b {
		return 0
	}
	k := pairKey(a, b)
	sh := c.shard(k)
	sh.mu.RLock()
	e, ok := sh.memo[k]
	sh.mu.RUnlock()
	if ok && e.exact() {
		c.hits.Add(1)
		return e.lo
	}
	c.misses.Add(1)
	d := c.inner.Distance(a, b)
	sh.store(k, d, d)
	return d
}

// store merges a proven interval into the entry for k: lo only ever rises,
// hi only ever falls, so entries tighten monotonically and an exact value
// (lo == hi) is never loosened. All bounds stored for one pair sandwich the
// same true distance, so the merge keeps lo ≤ hi.
func (sh *cacheShard) store(k uint64, lo, hi float64) {
	sh.mu.Lock()
	var probes uint8
	if e, ok := sh.memo[k]; ok {
		if e.lo > lo {
			lo = e.lo
		}
		if e.hi < hi {
			hi = e.hi
		}
		probes = e.probes
	}
	sh.memo[k] = interval{lo: lo, hi: hi, probes: probes}
	sh.mu.Unlock()
}

// bumpProbes increments (saturating) the undecided-repeat count of k's entry
// and returns the new value. Zero if the entry vanished (a concurrent Clear).
func (sh *cacheShard) bumpProbes(k uint64) uint8 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.memo[k]
	if !ok {
		return 0
	}
	if e.probes < ^uint8(0) {
		e.probes++
	}
	sh.memo[k] = e
	return e.probes
}

// Hits returns the number of calls answered from the memo table — exact
// entries answering Distance, plus exact or interval entries conclusively
// answering Within.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of calls that fell through to the wrapped
// metric — i.e. the expensive inner computations actually issued through
// this cache, whether they produced a value (Distance) or a threshold
// decision (Within).
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Size returns the number of memoized pairs — exact and interval-only
// entries alike — summed shard by shard. Each shard is read-locked briefly
// and in turn, so a scrape only ever contends with the misses that store
// into the shard it is currently counting; under concurrent load the sum is
// a point-in-time approximation (exact once writes quiesce).
func (c *Cache) Size() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.memo)
		sh.mu.RUnlock()
	}
	return n
}

// Clear drops every memoized pair (exact and interval entries) and resets
// the hit/miss totals. Benchmarks call this between measured runs so one
// engine's distance computations cannot subsidize another's.
//
// Each shard's map pointer is swapped under its write lock (O(1); the old
// tables are reclaimed by the GC). A Distance call whose computation is in
// flight when Clear runs stores its result into the fresh table afterwards —
// values are deterministic, so this is correct, but it means Size() may be
// nonzero immediately after Clear returns under concurrent load.
func (c *Cache) Clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.memo = make(map[uint64]interval)
		sh.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

// Matrix is a fully precomputed symmetric distance matrix: O(n²) storage and
// O(n²) construction, O(1) queries. It is the paper's best-case (and
// impractical-at-scale) comparison point.
type Matrix struct {
	n int
	d []float64 // row-major upper triangle including diagonal
}

// NewMatrix precomputes all pairwise distances of db under m, using up to
// workers goroutines (≤ 0 means 1).
func NewMatrix(db *graph.Database, m Metric, workers int) *Matrix {
	n := db.Len()
	mat := &Matrix{n: n, d: make([]float64, n*(n-1)/2)}
	if workers <= 0 {
		workers = 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				for j := i + 1; j < n; j++ {
					mat.d[triIndex(i, j, n)] = m.Distance(graph.ID(i), graph.ID(j))
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return mat
}

// triIndex maps a pair (i < j) to its offset in the packed strict upper
// triangle: row i starts at i*(n-1) - i*(i-1)/2 and holds columns i+1..n-1.
func triIndex(i, j, n int) int {
	return i*(n-1) - i*(i-1)/2 + (j - i - 1)
}

// Distance implements Metric.
func (m *Matrix) Distance(a, b graph.ID) float64 {
	if a == b {
		return 0
	}
	i, j := int(a), int(b)
	if i > j {
		i, j = j, i
	}
	return m.d[triIndex(i, j, m.n)]
}

// Len returns the matrix dimension.
func (m *Matrix) Len() int { return m.n }

// Bytes returns the approximate memory footprint of the matrix.
func (m *Matrix) Bytes() int64 { return int64(len(m.d)) * 8 }
