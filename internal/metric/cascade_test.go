package metric

import (
	"math"
	"math/rand"
	"testing"

	"graphrep/internal/dataset"
	"graphrep/internal/ged"
	"graphrep/internal/graph"
)

// craftGraph builds a graph with an explicit ID from label and edge lists.
func craftGraph(t *testing.T, id graph.ID, labels []graph.Label, edges [][3]int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(len(labels))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], graph.Label(e[2]))
	}
	g, err := b.Build(id)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// graphSpec is a buildable graph description, so searched pairs can be
// re-built with their final database IDs.
type graphSpec struct {
	labels []graph.Label
	edges  [][3]int
}

func (s graphSpec) build(t *testing.T, id graph.ID) *graph.Graph {
	t.Helper()
	return craftGraph(t, id, s.labels, s.edges)
}

func randSpec(rng *rand.Rand, maxN int) graphSpec {
	n := 1 + rng.Intn(maxN)
	s := graphSpec{labels: make([]graph.Label, n)}
	for i := range s.labels {
		s.labels[i] = graph.Label(rng.Intn(4))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.35 {
				s.edges = append(s.edges, [3]int{u, v, rng.Intn(2)})
			}
		}
	}
	return s
}

// findStagePair deterministically searches graph pairs for one whose bounded
// decision terminates at the wanted cascade stage, returning the pair and the
// threshold that forces it. The deeper stages (dual, exact) depend on how the
// Hungarian solve unfolds, which is impractical to craft by hand: exact is
// dense in seeded random pairs, while dual needs assignment conflicts inside
// the gated prefix of the solve, which uniform random graphs almost never
// produce — the family-structured molecule-like corpus (small label alphabet,
// shared scaffolds, valence cap) does. The returned graphs carry placeholder
// IDs; callers re-ID them via Clone when assembling a database.
func findStagePair(t *testing.T, want ged.Stage) (a, b *graph.Graph, tau float64) {
	t.Helper()
	for seed := int64(0); seed < 2000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ga, gb := randSpec(rng, 12).build(t, 0), randSpec(rng, 12).build(t, 0)
		siga, sigb := ged.NewStarSig(ga), ged.NewStarSig(gb)
		d := siga.Distance(sigb)
		for _, tau := range []float64{d, d - 1, d - 2, math.Floor(d / 2), math.Floor(3 * d / 4)} {
			if tau < 0 {
				continue
			}
			if dec := siga.DistanceAtMost(sigb, tau); dec.Stage == want {
				return ga, gb, tau
			}
		}
	}
	db, err := dataset.DUDLike(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]*ged.StarSig, db.Len())
	for i := range sigs {
		sigs[i] = ged.NewStarSig(db.Graph(graph.ID(i)))
	}
	for i := 0; i < len(sigs); i++ {
		for j := i + 1; j < len(sigs); j++ {
			d := sigs[i].Distance(sigs[j])
			for _, tau := range []float64{math.Floor(3 * d / 4), d - 1, d - 2} {
				if tau < 0 {
					continue
				}
				if dec := sigs[i].DistanceAtMost(sigs[j], tau); dec.Stage == want {
					return db.Graph(graph.ID(i)), db.Graph(graph.ID(j)), tau
				}
			}
		}
	}
	t.Fatalf("no pair terminating at stage %v within the search budget", want)
	return
}

// TestCascadeTiersCrafted drives one pair through each cascade tier and
// pins the attribution: every bounded decision must land on the intended
// tier's prune counter, and only there. The first three tiers use
// hand-crafted pairs whose bound values are derivable on paper:
//
//   - embedding: a single far-off vertex vs a labelled ring — the cached
//     vectors alone prove d > θ;
//   - rowMin (deep): many copies of a motif pair with identical center and
//     spoke histograms (the embedding bound is 0) whose asymmetric stars
//     each cost ≥ 1 to pair, pushing the row-minima sum past θ by more than
//     rowMinDeepMargin — the bound prunes outright;
//   - rowMin (shallow): one motif copy, row-minima sum 2 > θ = 1 but within
//     the margin — the bound decides, and a hardening solve is spent;
//   - greedy: two isomorphic graphs under distinct IDs at θ = 0 — only the
//     greedy upper bound (a zero-cost assignment) can prove d ≤ 0;
//
// and the solve-dependent tiers (dual, exact) use deterministically searched
// pairs.
func TestCascadeTiersCrafted(t *testing.T) {
	// Crafted specs (see the derivations in the doc comment).
	embedA := graphSpec{labels: []graph.Label{9}}
	embedB := graphSpec{
		labels: []graph.Label{1, 1, 1, 1, 1, 1},
		edges:  [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}, {4, 5, 0}, {5, 0, 0}},
	}
	rowMinA := graphSpec{labels: []graph.Label{1, 2, 2, 1}, edges: [][3]int{{0, 1, 0}, {0, 2, 0}}}
	rowMinB := graphSpec{labels: []graph.Label{1, 2, 1, 2}, edges: [][3]int{{0, 1, 0}, {2, 3, 0}}}
	// Each motif copy contributes 2 to the row-minima sum (the two stars with
	// mismatched spoke counts cost ≥ 1 against every counterpart); 17 copies
	// give rowSum = 34 > θ + rowMinDeepMargin at θ = 1, forcing a deep prune.
	motifs := func(base graphSpec, k int) graphSpec {
		var s graphSpec
		for c := 0; c < k; c++ {
			off := c * len(base.labels)
			s.labels = append(s.labels, base.labels...)
			for _, e := range base.edges {
				s.edges = append(s.edges, [3]int{e[0] + off, e[1] + off, e[2]})
			}
		}
		return s
	}
	rowMinDeepA, rowMinDeepB := motifs(rowMinA, 17), motifs(rowMinB, 17)
	iso := graphSpec{labels: []graph.Label{1, 2}, edges: [][3]int{{0, 1, 0}}}

	dualA, dualB, dualTau := findStagePair(t, ged.StageDual)
	exactA, exactB, exactTau := findStagePair(t, ged.StageExact)

	crafted := []graphSpec{embedA, embedB, rowMinDeepA, rowMinDeepB, rowMinA, rowMinB, iso, iso}
	graphs := make([]*graph.Graph, 0, len(crafted)+4)
	for i, s := range crafted {
		graphs = append(graphs, s.build(t, graph.ID(i)))
	}
	// Searched pairs carry placeholder IDs; re-build them at their database
	// positions.
	for _, g := range []*graph.Graph{dualA, dualB, exactA, exactB} {
		id := graph.ID(len(graphs))
		gg, err := g.Clone(id).Build(id)
		if err != nil {
			t.Fatalf("re-ID searched graph: %v", err)
		}
		graphs = append(graphs, gg)
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		t.Fatal(err)
	}
	star := Star(db)
	bm := star.(BoundedMetric)
	sc := star.(StageCounter)

	rows := []struct {
		name string
		a, b graph.ID
		tau  float64
		leq  bool
		tier func(PruneStats) int64
		// solves is how many completed Hungarian runs the decision spends:
		// 0 for a pure prune, 1 for the exact stage and for a shallow
		// row-minima miss (which hardens the memoized interval).
		solves int64
	}{
		{"embedding", 0, 1, 1, false, func(p PruneStats) int64 { return p.Embedding }, 0},
		{"rowmin-deep", 2, 3, 1, false, func(p PruneStats) int64 { return p.RowMin }, 0},
		{"rowmin-solved", 4, 5, 1, false, func(p PruneStats) int64 { return p.RowMin }, 1},
		{"greedy", 6, 7, 0, true, func(p PruneStats) int64 { return p.Greedy }, 0},
		{"dual", 8, 9, dualTau, false, func(p PruneStats) int64 { return p.Dual }, 0},
		{"exact", 10, 11, exactTau, true, func(p PruneStats) int64 { return p.BoundedExact }, 1},
	}
	// The searched exact-stage pair may resolve either verdict; derive it.
	rows[5].leq = ged.NewStarSig(graphs[10]).Distance(ged.NewStarSig(graphs[11])) <= exactTau

	for _, row := range rows {
		before := sc.PruneStats()
		got := bm.Within(row.a, row.b, row.tau)
		after := sc.PruneStats()
		if got != row.leq {
			t.Errorf("%s: Within(%d,%d,%v) = %v, want %v", row.name, row.a, row.b, row.tau, got, row.leq)
		}
		if delta := row.tier(after) - row.tier(before); delta != 1 {
			t.Errorf("%s: tier counter moved by %d, want 1 (before %+v, after %+v)",
				row.name, delta, before, after)
		}
		if deltaAll := after.Pruned() + after.FullSolves() - before.Pruned() - before.FullSolves(); deltaAll != 1 {
			t.Errorf("%s: %d bounded decisions recorded, want exactly 1", row.name, deltaAll)
		}
		if delta := after.FullSolves() - before.FullSolves(); delta != row.solves {
			t.Errorf("%s: FullSolves() moved by %d, want %d", row.name, delta, row.solves)
		}
		wantPruned := 1 - row.solves
		if delta := after.Pruned() - before.Pruned(); delta != wantPruned {
			t.Errorf("%s: Pruned() moved by %d, want %d", row.name, delta, wantPruned)
		}
	}
	if s := sc.PruneStats(); s.ExactValues != 0 {
		t.Errorf("threshold tests issued %d plain Distance computations, want 0 (%+v)", s.ExactValues, s)
	}
}

// Priming the metric with index-carried embeddings must let far pairs be
// decided from the vectors alone — before any star signature exists — and
// must attribute those decisions to the embedding tier.
func TestPrimedEmbeddingsDecideWithoutSigs(t *testing.T) {
	db := testDB(t, 12, 21)
	star := Star(db)
	embs := make([]*ged.Embedding, db.Len())
	for i := range embs {
		embs[i] = ged.NewEmbedding(db.Graph(graph.ID(i)))
	}
	star.(EmbeddingPrimer).PrimeEmbeddings(0, embs)
	bm := star.(BoundedMetric)
	sc := star.(StageCounter)
	decided := 0
	for a := graph.ID(0); int(a) < db.Len(); a++ {
		for b := a + 1; int(b) < db.Len(); b++ {
			if lb := embs[a].LowerBound(embs[b]); lb > 0 {
				if bm.Within(a, b, lb-0.5) {
					t.Fatalf("Within(%d,%d,%v) = true below the embedding lower bound", a, b, lb-0.5)
				}
				decided++
			}
		}
	}
	if decided == 0 {
		t.Fatal("no pair had a positive embedding bound; test corpus degenerate")
	}
	if s := sc.PruneStats(); s.Embedding != int64(decided) {
		t.Errorf("embedding tier decided %d of %d primed far-pair tests (%+v)", s.Embedding, decided, s)
	}
}
