package metric

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
)

func testDB(t testing.TB, n int, seed int64) *graph.Database {
	if t != nil {
		t.Helper()
	}
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := 2 + rng.Intn(6)
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(graph.Label(rng.Intn(4)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(u, v, graph.Label(rng.Intn(2)))
				}
			}
		}
		b.SetFeatures([]float64{rng.Float64()})
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db
}

func TestStarMetricBasics(t *testing.T) {
	db := testDB(t, 10, 1)
	m := Star(db)
	for i := 0; i < db.Len(); i++ {
		if d := m.Distance(graph.ID(i), graph.ID(i)); d != 0 {
			t.Errorf("d(%d,%d) = %v, want 0", i, i, d)
		}
		for j := i + 1; j < db.Len(); j++ {
			a, b := graph.ID(i), graph.ID(j)
			if m.Distance(a, b) != m.Distance(b, a) {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
			if m.Distance(a, b) < 0 {
				t.Errorf("negative at (%d,%d)", i, j)
			}
		}
	}
	// Star metric must agree with direct StarDistance.
	want := ged.StarDistance(db.Graph(0), db.Graph(1))
	if got := m.Distance(0, 1); got != want {
		t.Errorf("Star = %v, StarDistance = %v", got, want)
	}
}

func TestBipartiteGEDMetric(t *testing.T) {
	db := testDB(t, 6, 2)
	m := BipartiteGED(db, ged.UniformCosts())
	if d := m.Distance(3, 3); d != 0 {
		t.Errorf("d(3,3) = %v", d)
	}
	want, _ := ged.Bipartite(db.Graph(0), db.Graph(1), ged.UniformCosts())
	if got := m.Distance(0, 1); got != want {
		t.Errorf("BipartiteGED = %v, want %v", got, want)
	}
}

func TestCounter(t *testing.T) {
	db := testDB(t, 5, 3)
	c := NewCounter(Star(db))
	c.Distance(0, 1)
	c.Distance(1, 2)
	if c.Count() != 2 {
		t.Errorf("Count = %d, want 2", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Errorf("Count after Reset = %d", c.Count())
	}
}

func TestCacheCorrectAndCounted(t *testing.T) {
	db := testDB(t, 8, 4)
	counter := NewCounter(Star(db))
	cache := NewCache(counter)
	d1 := cache.Distance(2, 5)
	d2 := cache.Distance(5, 2) // unordered pair: must hit cache
	if d1 != d2 {
		t.Errorf("cache asymmetric: %v vs %v", d1, d2)
	}
	if counter.Count() != 1 {
		t.Errorf("inner calls = %d, want 1", counter.Count())
	}
	if cache.Size() != 1 {
		t.Errorf("cache size = %d, want 1", cache.Size())
	}
	if cache.Distance(3, 3) != 0 {
		t.Error("d(3,3) != 0")
	}
	if counter.Count() != 1 {
		t.Error("identical-pair query reached inner metric")
	}
	// Hit/miss accounting: one miss (2,5), one hit (5,2); identity pairs
	// count as neither.
	if h, m := cache.Hits(), cache.Misses(); h != 1 || m != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", h, m)
	}
	if m := cache.Misses(); m != counter.Count() {
		t.Errorf("misses %d != inner computations %d", m, counter.Count())
	}
}

func TestCacheConcurrent(t *testing.T) {
	db := testDB(t, 20, 5)
	cache := NewCache(Star(db))
	var wg sync.WaitGroup
	var lookups atomic.Int64 // non-identity Distance calls issued
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				a := graph.ID(rng.Intn(db.Len()))
				b := graph.ID(rng.Intn(db.Len()))
				if a != b {
					lookups.Add(1)
				}
				got := cache.Distance(a, b)
				if got < 0 {
					t.Errorf("negative distance")
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Every non-identity lookup is either a hit or a miss — no drops even
	// under contention.
	if total := cache.Hits() + cache.Misses(); total != lookups.Load() {
		t.Errorf("hits+misses = %d, want %d", total, lookups.Load())
	}
	if cache.Misses() < int64(cache.Size()) {
		t.Errorf("misses %d < memoized pairs %d", cache.Misses(), cache.Size())
	}
}

func TestCacheClear(t *testing.T) {
	db := testDB(t, 6, 7)
	counter := NewCounter(Star(db))
	cache := NewCache(counter)
	cache.Distance(0, 1)
	cache.Distance(0, 1)
	if counter.Count() != 1 {
		t.Fatalf("pre-clear count = %d", counter.Count())
	}
	cache.Clear()
	if cache.Size() != 0 {
		t.Errorf("Size after Clear = %d", cache.Size())
	}
	if h, m := cache.Hits(), cache.Misses(); h != 0 || m != 0 {
		t.Errorf("hits/misses after Clear = %d/%d, want 0/0", h, m)
	}
	cache.Distance(0, 1)
	if counter.Count() != 2 {
		t.Errorf("post-clear count = %d, want 2", counter.Count())
	}
}

func TestMatrixMatchesMetric(t *testing.T) {
	db := testDB(t, 15, 6)
	base := Star(db)
	for _, workers := range []int{0, 1, 4} {
		mat := NewMatrix(db, base, workers)
		if mat.Len() != db.Len() {
			t.Fatalf("Len = %d", mat.Len())
		}
		for i := 0; i < db.Len(); i++ {
			for j := 0; j < db.Len(); j++ {
				a, b := graph.ID(i), graph.ID(j)
				if got, want := mat.Distance(a, b), base.Distance(a, b); math.Abs(got-want) > 1e-12 {
					t.Fatalf("workers=%d: matrix(%d,%d) = %v, want %v", workers, i, j, got, want)
				}
			}
		}
		if mat.Bytes() != int64(db.Len()*(db.Len()-1)/2*8) {
			t.Errorf("Bytes = %d", mat.Bytes())
		}
	}
}

// The star metric must tolerate databases that grow after creation.
func TestStarMetricLazyGrowth(t *testing.T) {
	db := testDB(t, 5, 20)
	m := Star(db)
	d0 := m.Distance(0, 4)
	// Grow the database and query the new id.
	b := graph.NewBuilder(3)
	for i := 0; i < 3; i++ {
		b.AddVertex(graph.Label(i))
	}
	b.AddEdge(0, 1, 0)
	b.SetFeatures([]float64{0.5})
	g, err := b.Build(graph.ID(db.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(g); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if d := m.Distance(0, g.ID()); d <= 0 {
		t.Errorf("distance to appended graph = %v", d)
	}
	if m.Distance(0, 4) != d0 {
		t.Error("existing distances changed after growth")
	}
	// Append validation.
	if err := db.Append(nil); err == nil {
		t.Error("nil append accepted")
	}
	if err := db.Append(g); err == nil {
		t.Error("wrong-id append accepted")
	}
	bad := graph.NewBuilder(1)
	bad.AddVertex(0)
	bad.SetFeatures([]float64{1, 2, 3})
	bg, _ := bad.Build(graph.ID(db.Len()))
	if err := db.Append(bg); err == nil {
		t.Error("feature-dim mismatch accepted")
	}
}

func TestFuncAdapter(t *testing.T) {
	m := Func(func(a, b graph.ID) float64 { return float64(a + b) })
	if m.Distance(2, 3) != 5 {
		t.Error("Func adapter broken")
	}
}
