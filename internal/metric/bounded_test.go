package metric

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"graphrep/internal/graph"
)

// Every built-in metric must satisfy the BoundedMetric contract exactly:
// Within(a, b, θ) ⇔ Distance(a, b) ≤ θ, at thresholds on, below, and above
// the true distance.
func TestWithinMatchesDistance(t *testing.T) {
	db := testDB(t, 40, 3)
	star := Star(db)
	metrics := map[string]BoundedMetric{
		"star":    star.(BoundedMetric),
		"counter": NewCounter(Star(db)),
		"cache":   NewCache(NewCounter(Star(db))),
		"matrix":  NewMatrix(db, Star(db), 2),
	}
	rng := rand.New(rand.NewSource(7))
	for name, m := range metrics {
		for trial := 0; trial < 400; trial++ {
			a := graph.ID(rng.Intn(db.Len()))
			b := graph.ID(rng.Intn(db.Len()))
			d := m.Distance(a, b)
			for _, theta := range []float64{d - 1, d - 0.5, d, d + 0.5, d + 1, 0, -1, d * 2} {
				if got := m.Within(a, b, theta); got != (d <= theta) {
					t.Fatalf("%s: Within(%d,%d,%v) = %v but Distance = %v", name, a, b, theta, got, d)
				}
			}
		}
	}
}

// Decide must agree with Within for bounded metrics and fall back to an
// exact comparison (never pruned) for plain metrics.
func TestDecideFallback(t *testing.T) {
	db := testDB(t, 20, 5)
	star := Star(db)
	plain := Func(star.Distance)
	exact := ExactOnly(NewCache(star))
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := graph.ID(rng.Intn(db.Len()))
		b := graph.ID(rng.Intn(db.Len()))
		d := star.Distance(a, b)
		for _, theta := range []float64{d - 1, d, d + 1} {
			for name, m := range map[string]Metric{"plain": plain, "exactonly": exact} {
				leq, pruned := Decide(m, a, b, theta)
				if leq != (d <= theta) {
					t.Fatalf("%s: Decide(%d,%d,%v) = %v, distance %v", name, a, b, theta, leq, d)
				}
				if pruned {
					t.Fatalf("%s: Decide reported pruned for a metric with no bounded path", name)
				}
			}
		}
	}
}

// ExactOnly must hide the bounded capability entirely.
func TestExactOnlyHidesWithin(t *testing.T) {
	m := ExactOnly(NewCache(Star(testDB(t, 5, 1))))
	if _, ok := m.(BoundedMetric); ok {
		t.Error("ExactOnly metric still exposes Within")
	}
	if _, ok := m.(decider); ok {
		t.Error("ExactOnly metric still exposes the detailed decision path")
	}
}

// A pruned Within must still help later calls: the interval it stores
// answers a repeat of the same test from the table (a hit with no inner
// computation), and Misses continues to equal the inner computations issued.
func TestCacheIntervalMemoization(t *testing.T) {
	db := testDB(t, 30, 9)
	counter := NewCounter(Star(db))
	c := NewCache(counter)
	star := Star(db)

	// Find a pair and threshold whose fresh bounded decision is a prune with
	// an open interval [lo, ∞) — the cascade may instead volunteer the exact
	// value (a completed solve), which would store an exact entry and change
	// every count below, so probe with a scratch metric first.
	probe := Star(db).(*starMetric)
	var a, b graph.ID
	var d, theta float64
	found := false
	for i := 0; i < db.Len() && !found; i++ {
		for j := i + 1; j < db.Len() && !found; j++ {
			dd := star.Distance(graph.ID(i), graph.ID(j))
			if dd < 3 {
				continue
			}
			for _, th := range []float64{1, dd / 2, dd - 1} {
				if th <= 0 {
					continue
				}
				if dec := probe.boundedDecide(graph.ID(i), graph.ID(j), th); dec.pruned && math.IsInf(dec.hi, 1) {
					a, b, d, theta = graph.ID(i), graph.ID(j), dd, th
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Fatal("no pair with a pruned open-interval decision in test database")
	}
	if c.Within(a, b, theta) {
		t.Fatalf("Within(%v) true but distance is %v", theta, d)
	}
	if c.Misses() != 1 || c.Size() != 1 {
		t.Fatalf("after first Within: misses=%d size=%d, want 1, 1", c.Misses(), c.Size())
	}
	// Identical repeat: decided by the stored interval, no inner computation.
	if c.Within(a, b, theta) {
		t.Fatal("repeat Within changed its verdict")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("repeat Within: hits=%d misses=%d, want 1, 1", c.Hits(), c.Misses())
	}
	// A lower threshold is decided by the same lower bound (lo > θ' too).
	if c.Within(a, b, theta-5) {
		t.Fatal("Within at lower threshold changed its verdict")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("lower-threshold Within: hits=%d misses=%d, want 2, 1", c.Hits(), c.Misses())
	}
	if got := counter.Count(); got != c.Misses() {
		t.Fatalf("inner computations %d != misses %d", got, c.Misses())
	}

	// A Distance call cannot be served by the interval: it counts a miss,
	// computes, and upgrades the entry to exact without growing the table.
	if got := c.Distance(a, b); got != d {
		t.Fatalf("Distance = %v, want %v", got, d)
	}
	if c.Misses() != 2 || c.Size() != 1 {
		t.Fatalf("after Distance: misses=%d size=%d, want 2, 1", c.Misses(), c.Size())
	}
	// Now exact: every further call at any threshold is a hit.
	hits := c.Hits()
	if c.Within(a, b, d) != true || c.Within(a, b, d-0.5) != false || c.Distance(a, b) != d {
		t.Fatal("exact entry answered incorrectly")
	}
	if c.Hits() != hits+3 || c.Misses() != 2 {
		t.Fatalf("exact entry: hits=%d misses=%d, want %d, 2", c.Hits(), c.Misses(), hits+3)
	}

	// Clear drops interval entries along with exact ones.
	c.Clear()
	if c.Size() != 0 || c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("Clear left residue")
	}
}

// weakBounded is a test metric whose bounded path never volunteers the exact
// value: a false verdict proves only lo = nextafter(θ), a true verdict only
// hi = θ. Every repeat probe at a fresh threshold inside the stored interval
// is therefore undecided, which exercises the Cache's promote-to-exact policy
// deterministically.
type weakBounded struct {
	d     float64
	calls int
}

func (f *weakBounded) Distance(a, b graph.ID) float64 {
	f.calls++
	return f.d
}

func (f *weakBounded) Within(a, b graph.ID, theta float64) bool {
	return f.boundedDecide(a, b, theta).leq
}

func (f *weakBounded) boundedDecide(a, b graph.ID, theta float64) decision {
	f.calls++
	if f.d > theta {
		return decision{leq: false, pruned: true, lo: math.Nextafter(theta, math.Inf(1)), hi: math.Inf(1)}
	}
	return decision{leq: true, pruned: true, lo: 0, hi: theta}
}

// Repeated undecided probes on one pair must promote the entry to exact after
// promoteProbes repeats, after which every test at any threshold is a table
// hit and the inner metric is never consulted again.
func TestCachePromoteToExact(t *testing.T) {
	inner := &weakBounded{d: 10}
	c := NewCache(inner)
	a, b := graph.ID(0), graph.ID(1)

	// Ascending thresholds below d: each probe stores lo just above its θ,
	// so the next θ is always inside the stored interval — an undecided
	// repeat. Probe 1 is the initial miss; probe 2 is the first repeat, which
	// reaches promoteProbes and computes the exact distance instead of
	// issuing another partial cascade.
	for i, theta := range []float64{4, 5} {
		if c.Within(a, b, theta) {
			t.Fatalf("probe %d: Within(%v) = true, distance %v", i+1, theta, inner.d)
		}
	}
	if inner.calls != 2 {
		t.Fatalf("inner calls = %d after promotion window, want 2 (1 bounded probe + 1 exact)", inner.calls)
	}
	if c.Misses() != 2 {
		t.Fatalf("misses = %d, want 2", c.Misses())
	}
	// Promoted: every further call, at any threshold, is a hit.
	hits := c.Hits()
	if c.Within(a, b, 9) || !c.Within(a, b, 10) || c.Distance(a, b) != 10 {
		t.Fatal("promoted entry answered incorrectly")
	}
	if inner.calls != 2 {
		t.Errorf("inner consulted after promotion: %d calls", inner.calls)
	}
	if c.Hits() != hits+3 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d after promotion, want %d, 2", c.Hits(), c.Misses(), hits+3)
	}
}

// Concurrent Within/Distance storms on one Cache must converge to exact
// values that agree with an uncached reference, with the hit/miss invariant
// (hits + misses == non-identity lookups, misses == inner computations)
// intact. Run under -race this also checks the striped locking around the
// interval merges.
func TestCacheBoundedConcurrent(t *testing.T) {
	db := testDB(t, 25, 13)
	counter := NewCounter(Star(db))
	c := NewCache(counter)
	ref := Star(db)

	const workers = 8
	const perWorker = 600
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				a := graph.ID(rng.Intn(db.Len()))
				b := graph.ID(rng.Intn(db.Len()))
				theta := float64(rng.Intn(12))
				if rng.Intn(3) == 0 {
					d := c.Distance(a, b)
					if want := ref.Distance(a, b); d != want {
						errs <- "Distance diverged from reference"
						return
					}
				} else if got, want := c.Within(a, b, theta), ref.Distance(a, b) <= theta; got != want {
					errs <- "Within diverged from reference"
					return
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if c.Misses() != counter.Count() {
		t.Errorf("misses %d != inner computations %d", c.Misses(), counter.Count())
	}

	// After the storm, sequential Distance calls over every pair must still
	// equal the reference: intervals never corrupt values.
	for i := 0; i < db.Len(); i++ {
		for j := 0; j < db.Len(); j++ {
			a, b := graph.ID(i), graph.ID(j)
			if got, want := c.Distance(a, b), ref.Distance(a, b); got != want {
				t.Fatalf("post-storm Distance(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// The Star metric's PruneStats must account for every bounded decision and
// every exact value computation, with pruned + full solves == total tests.
func TestStarPruneStats(t *testing.T) {
	db := testDB(t, 30, 17)
	star := Star(db)
	sc := star.(StageCounter)
	bounded := star.(BoundedMetric)
	if s := sc.PruneStats(); s != (PruneStats{}) {
		t.Fatalf("fresh metric has nonzero stats: %+v", s)
	}
	rng := rand.New(rand.NewSource(19))
	tests := 0
	for i := 0; i < 500; i++ {
		a := graph.ID(rng.Intn(db.Len()))
		b := graph.ID(rng.Intn(db.Len()))
		if a == b {
			continue
		}
		bounded.Within(a, b, float64(rng.Intn(14)))
		tests++
	}
	s := sc.PruneStats()
	if got := s.Pruned() + s.FullSolves(); got != int64(tests) {
		t.Errorf("stage counts %+v sum to %d, want %d bounded tests", s, got, tests)
	}
	if s.ExactValues != 0 {
		t.Errorf("ExactValues = %d without any Distance call", s.ExactValues)
	}
	star.Distance(0, 1)
	if s := sc.PruneStats(); s.ExactValues != 1 {
		t.Errorf("ExactValues = %d after one Distance call, want 1", s.ExactValues)
	}
}
