package ctree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// The load-bearing property: the star-closure lower bound never exceeds the
// true star distance from a query graph to any absorbed member.
func TestClosureStarsLowerBoundSound(t *testing.T) {
	db, _ := randDB(50, 10)
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cs := &closureStars{}
		var members []graph.ID
		for i := 0; i < db.Len(); i++ {
			if r.Float64() < 0.25 {
				cs.absorbGraph(db.Graph(graph.ID(i)))
				members = append(members, graph.ID(i))
			}
		}
		if len(members) == 0 {
			return true
		}
		q := db.Graph(graph.ID(r.Intn(db.Len())))
		lb := cs.lowerBound(q)
		for _, id := range members {
			if lb > ged.StarDistance(q, db.Graph(id))+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestClosureStarsSingleMemberTightness(t *testing.T) {
	// With one member the bound should be reasonably tight: positive for
	// structurally distant graphs.
	b1 := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b1.AddVertex(1)
	}
	b1.AddEdge(0, 1, 0)
	b1.AddEdge(1, 2, 0)
	b1.AddEdge(2, 3, 0)
	member := b1.MustBuild(0)

	b2 := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b2.AddVertex(9) // entirely different labels
	}
	b2.AddEdge(0, 1, 0)
	b2.AddEdge(1, 2, 0)
	b2.AddEdge(2, 3, 0)
	query := b2.MustBuild(1)

	cs := &closureStars{}
	cs.absorbGraph(member)
	lb := cs.lowerBound(query)
	if lb <= 0 {
		t.Errorf("lb = %v for disjointly labelled graphs, want > 0", lb)
	}
	if truth := ged.StarDistance(query, member); lb > truth+1e-9 {
		t.Errorf("lb %v exceeds true distance %v", lb, truth)
	}
	// Identical query: bound must be 0.
	if lb := cs.lowerBound(member); lb != 0 {
		t.Errorf("lb to the member itself = %v, want 0", lb)
	}
}

func TestClosureStarsEmpty(t *testing.T) {
	cs := &closureStars{}
	db, _ := randDB(3, 12)
	if lb := cs.lowerBound(db.Graph(0)); lb != 0 {
		t.Errorf("empty closure lb = %v", lb)
	}
}

// Range queries must stay exact with star closures enabled, and the star
// bound must actually prune on family-structured data.
func TestRangeExactWithStarClosures(t *testing.T) {
	db, m := randDB(80, 13)
	tree, err := Build(db, m, Options{Branching: 3, LeafSize: 4, StarClosures: true, MinStarSize: 4}, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	lin := metric.NewLinearScan(db.Len(), m)
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 50; trial++ {
		center := graph.ID(rng.Intn(db.Len()))
		radius := rng.Float64() * 10
		got := sortIDs(tree.Range(center, radius))
		want := sortIDs(lin.Range(center, radius))
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: results differ", trial)
			}
		}
	}
}

func TestStarPrunesFireOnDisjointFamilies(t *testing.T) {
	// Same two-family construction as TestClosurePruningFires, but query at
	// a radius where the count bounds alone cannot prune (sizes overlap is
	// impossible here, so instead use same-size families with different
	// labels and edges).
	var graphs []*graph.Graph
	id := 0
	addFamily := func(label graph.Label, edges [][2]int) {
		for i := 0; i < 16; i++ {
			b := graph.NewBuilder(6)
			for v := 0; v < 6; v++ {
				b.AddVertex(label)
			}
			for _, e := range edges {
				b.AddEdge(e[0], e[1], 0)
			}
			g, err := b.Build(graph.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			graphs = append(graphs, g)
			id++
		}
	}
	addFamily(1, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})         // paths
	addFamily(2, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})         // stars
	addFamily(3, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}}) // cycles
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		t.Fatal(err)
	}
	m := metric.NewCache(metric.Star(db))
	tree, err := Build(db, m, Options{Branching: 3, LeafSize: 4, StarClosures: true, MinStarSize: 4}, rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		tree.Range(graph.ID(i), 1)
	}
	total := tree.ClosurePrunes() + tree.StarPrunes()
	if total == 0 {
		t.Error("no structural pruning on disjoint families")
	}
	t.Logf("count-bound prunes=%d star prunes=%d", tree.ClosurePrunes(), tree.StarPrunes())
}
