package ctree

import (
	"sort"

	"graphrep/internal/assignment"
	"graphrep/internal/graph"
)

// closureStars is the vertex-mapped closure of He & Singh adapted to the
// star-matching metric: member graphs' stars are folded into aligned
// "slots", each summarizing every member star mapped onto it (center label
// set, per-spoke maximum multiplicities, degree interval). From a query
// graph it yields a provable lower bound on the star distance to every
// absorbed member that is tighter than the count-interval bounds of
// closure.lowerBound, at the price of a Hungarian solve.
//
// Soundness of the bound (see lowerBound): only slots used by *every*
// member ("core slots") constrain the matching; query stars left over are
// given optimistic zero cost (they might match a member vertex outside the
// core), and core slots left over cost at least a padding star.
type closureStars struct {
	slots   []slot
	members int
}

// slot summarizes the member stars mapped onto one closure vertex.
type slot struct {
	centers map[graph.Label]struct{}
	// spokeMax[s] is the maximum multiplicity of spoke s in any mapped star.
	spokeMax map[graph.Spoke]int
	minDeg   int
	maxDeg   int
	usedBy   int // number of members with a star mapped here
}

func newSlot() *slot {
	return &slot{
		centers:  make(map[graph.Label]struct{}),
		spokeMax: make(map[graph.Spoke]int),
		minDeg:   int(^uint(0) >> 1),
	}
}

func (s *slot) absorb(st graph.Star) {
	s.centers[st.Center] = struct{}{}
	counts := make(map[graph.Spoke]int, len(st.Spokes))
	for _, sp := range st.Spokes {
		counts[sp]++
	}
	for sp, c := range counts {
		if c > s.spokeMax[sp] {
			s.spokeMax[sp] = c
		}
	}
	if d := len(st.Spokes); d < s.minDeg {
		s.minDeg = d
	}
	if d := len(st.Spokes); d > s.maxDeg {
		s.maxDeg = d
	}
	s.usedBy++
}

// fitCost estimates how well star st fits slot s — used only to choose the
// folding alignment, so it affects tightness, not soundness.
func (s *slot) fitCost(st graph.Star) float64 {
	c := 0.0
	if _, ok := s.centers[st.Center]; !ok {
		c = 1
	}
	matched := 0
	counts := make(map[graph.Spoke]int, len(st.Spokes))
	for _, sp := range st.Spokes {
		counts[sp]++
	}
	for sp, cnt := range counts {
		if m := s.spokeMax[sp]; m < cnt {
			matched += m
		} else {
			matched += cnt
		}
	}
	return c + float64(len(st.Spokes)-matched)
}

// absorbGraph folds a member's stars into the closure: stars are aligned to
// existing slots by a minimum-cost assignment (new slots are created when
// the member has more stars than the closure).
func (c *closureStars) absorbGraph(g *graph.Graph) {
	stars := g.Stars()
	// Deterministic processing order: larger stars first.
	order := make([]int, len(stars))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := stars[order[a]], stars[order[b]]
		if len(sa.Spokes) != len(sb.Spokes) {
			return len(sa.Spokes) > len(sb.Spokes)
		}
		return sa.Center < sb.Center
	})
	if c.members == 0 {
		for _, i := range order {
			s := newSlot()
			s.absorb(stars[i])
			c.slots = append(c.slots, *s)
		}
		c.members = 1
		return
	}
	n := len(stars)
	if len(c.slots) > n {
		n = len(c.slots)
	}
	cost := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range cost {
		cost[i], flat = flat[:n:n], flat[n:]
		for j := range cost[i] {
			switch {
			case i < len(stars) && j < len(c.slots):
				cost[i][j] = c.slots[j].fitCost(stars[order[i]])
			case i < len(stars):
				// New slot for this star.
				cost[i][j] = float64(1 + len(stars[order[i]].Spokes))
			default:
				cost[i][j] = 0 // slot unused by this member
			}
		}
	}
	perm, _ := assignment.Solve(cost)
	grown := c.slots
	for i := 0; i < len(stars); i++ {
		j := perm[i]
		if j < len(c.slots) {
			grown[j].absorb(stars[order[i]])
		} else {
			s := newSlot()
			s.absorb(stars[order[i]])
			grown = append(grown, *s)
		}
	}
	c.slots = grown
	c.members++
}

// lowerBound returns a lower bound on the star distance between g and every
// member absorbed into the closure.
func (c *closureStars) lowerBound(g *graph.Graph) float64 {
	if c.members == 0 {
		return 0
	}
	stars := g.Stars()
	// Core slots: used by every member, hence present in every member's
	// star multiset.
	var core []*slot
	for i := range c.slots {
		if c.slots[i].usedBy == c.members {
			core = append(core, &c.slots[i])
		}
	}
	// Rows: nq query stars + nc padding rows; columns: nc core slots + nq
	// padding columns. The square (nq+nc) layout guarantees that the
	// assignment induced by any member's true star matching is feasible
	// here, so the Hungarian minimum lower-bounds every member's distance.
	nq, nc := len(stars), len(core)
	n := nq + nc
	if n == 0 {
		return 0
	}
	cost := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range cost {
		cost[i], flat = flat[:n:n], flat[n:]
		for j := range cost[i] {
			switch {
			case i < nq && j < nc:
				cost[i][j] = starSlotLB(stars[i], core[j])
			case i < nq:
				// The query star may match a member vertex outside the core:
				// optimistically free.
				cost[i][j] = 0
			case j < nc:
				// A core member star left unmatched costs at least a padding
				// star.
				cost[i][j] = float64(1 + core[j].minDeg)
			default:
				cost[i][j] = 0
			}
		}
	}
	_, total := assignment.Solve(cost)
	return total
}

// starSlotLB lower-bounds the star pair cost between a concrete query star
// and any member star summarized by the slot.
func starSlotLB(a graph.Star, s *slot) float64 {
	center := 1.0
	if _, ok := s.centers[a.Center]; ok {
		center = 0
	}
	// Optimistic overlap of the query's spokes with any member star at this
	// slot.
	counts := make(map[graph.Spoke]int, len(a.Spokes))
	for _, sp := range a.Spokes {
		counts[sp]++
	}
	opt := 0
	for sp, cnt := range counts {
		if m := s.spokeMax[sp]; m < cnt {
			opt += m
		} else {
			opt += cnt
		}
	}
	la := len(a.Spokes)
	// |A Δ B| ≥ max(|A| − opt, |A| + minDeg − 2·opt, minDeg − opt, 0).
	best := la - opt
	if v := la + s.minDeg - 2*opt; v > best {
		best = v
	}
	if v := s.minDeg - opt; v > best {
		best = v
	}
	if best < 0 {
		best = 0
	}
	return center + float64(best)
}
