// Package ctree implements a closure-tree-style graph index (He & Singh,
// "Closure-Tree: An Index Structure for Graph Queries", ICDE 2006) adapted to
// distance range queries, the role C-tree plays as a baseline in the paper.
//
// Like the original, every node summarizes its subtree with a *closure*: a
// structural summary that any member graph "fits inside". Our closure keeps
// the vertex-count interval, edge-count interval, and per-label count
// intervals of the subtree. From a query graph the closure yields a lower
// bound on the star-matching distance to every member:
//
//   - label bound: star distance ≥ max(n1, n2) − |H1 ∩ H2| for vertex-label
//     histograms H (each matched star pair with differing centers, and each
//     padding star, costs ≥ 1); against a closure, H2 and n2 are chosen
//     optimistically inside their intervals.
//   - edge bound: star distance ≥ 2·||E1| − |E2||, since every spoke
//     appearing on one side and not the other costs 1 and edges contribute
//     two spokes; |E2| is clamped optimistically into the closure interval.
//
// Nodes additionally carry a pivot and covering radius, so metric pruning
// (as in mtree) composes with the structural closure bounds — mirroring how
// closure-tree combines summary-based and distance-based pruning.
package ctree

import (
	"fmt"
	"math"
	"math/rand"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// Options configures construction.
type Options struct {
	Branching int // fan-out of internal nodes (≥ 2)
	LeafSize  int // max graphs per leaf (≥ 1)
	// StarClosures additionally builds vertex-mapped star closures (see
	// closure_stars.go) on internal nodes covering at least MinStarSize
	// graphs, giving tighter (but costlier) structural pruning.
	StarClosures bool
	// MinStarSize gates star closures to nodes worth the Hungarian solve;
	// 0 selects a default of 8.
	MinStarSize int
}

// DefaultOptions returns the configuration used by the experiments.
func DefaultOptions() Options { return Options{Branching: 4, LeafSize: 16, StarClosures: true} }

// Tree is an immutable closure-tree over a database. It implements
// metric.RangeSearcher for the star-matching metric supplied at build time.
type Tree struct {
	db             *graph.Database
	m              metric.Metric
	root           *node
	buildDistances int64
	// prunedByClosure counts subtrees skipped by the structural closure
	// bound alone (metric pruning would not have caught them).
	prunedByClosure int64
	// prunedByStars counts subtrees skipped by the star-closure bound.
	prunedByStars int64
}

// closure is the structural summary of a subtree.
type closure struct {
	minN, maxN int
	minE, maxE int
	// maxLabel[l] is the maximum count of vertex label l in any member.
	maxLabel map[graph.Label]int
}

func newClosure() *closure {
	return &closure{minN: math.MaxInt32, minE: math.MaxInt32, maxLabel: make(map[graph.Label]int)}
}

func (c *closure) absorb(g *graph.Graph) {
	n, e := g.Order(), g.Size()
	if n < c.minN {
		c.minN = n
	}
	if n > c.maxN {
		c.maxN = n
	}
	if e < c.minE {
		c.minE = e
	}
	if e > c.maxE {
		c.maxE = e
	}
	for l, cnt := range g.LabelHistogram() {
		if cnt > c.maxLabel[l] {
			c.maxLabel[l] = cnt
		}
	}
}

// lowerBound returns a lower bound on the star distance between g and every
// member of the closure.
func (c *closure) lowerBound(g *graph.Graph) float64 {
	n1, e1 := g.Order(), g.Size()
	// Edge bound with |E2| clamped into [minE, maxE].
	e2 := clamp(e1, c.minE, c.maxE)
	edgeLB := 2 * abs(e1-e2)
	// Label bound: optimistic intersection uses the per-label maxima; n2 is
	// clamped to minimize max(n1, n2) − |H1 ∩ H2|.
	inter := 0
	for l, cnt := range g.LabelHistogram() {
		if m := c.maxLabel[l]; m < cnt {
			inter += m
		} else {
			inter += cnt
		}
	}
	n2 := clamp(n1, c.minN, c.maxN)
	big := n1
	if n2 > big {
		big = n2
	}
	labelLB := big - inter
	if labelLB < 0 {
		labelLB = 0
	}
	lb := float64(edgeLB)
	if float64(labelLB) > lb {
		lb = float64(labelLB)
	}
	return lb
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

type node struct {
	pivot    graph.ID
	radius   float64
	cl       *closure
	cs       *closureStars // nil unless star closures are enabled and sized
	children []*node
	entries  []entry
}

type entry struct {
	id graph.ID
	d  float64 // distance to the leaf pivot
}

// Build bulk-loads a closure-tree over db under metric m. The metric must be
// the star-matching distance (or any metric the closure bounds are valid
// for).
func Build(db *graph.Database, m metric.Metric, opt Options, rng *rand.Rand) (*Tree, error) {
	if opt.Branching < 2 {
		return nil, fmt.Errorf("ctree: branching %d < 2", opt.Branching)
	}
	if opt.LeafSize < 1 {
		return nil, fmt.Errorf("ctree: leaf size %d < 1", opt.LeafSize)
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("ctree: empty database")
	}
	t := &Tree{db: db, m: m}
	ids := make([]graph.ID, db.Len())
	for i := range ids {
		ids[i] = graph.ID(i)
	}
	t.root = t.build(ids, opt, rng)
	return t, nil
}

func (t *Tree) dist(a, b graph.ID) float64 {
	t.buildDistances++
	return t.m.Distance(a, b)
}

func (t *Tree) build(ids []graph.ID, opt Options, rng *rand.Rand) *node {
	pivot := ids[rng.Intn(len(ids))]
	n := &node{pivot: pivot, cl: newClosure()}
	for _, id := range ids {
		n.cl.absorb(t.db.Graph(id))
	}
	minStar := opt.MinStarSize
	if minStar <= 0 {
		minStar = 8
	}
	if opt.StarClosures && len(ids) >= minStar {
		n.cs = &closureStars{}
		for _, id := range ids {
			n.cs.absorbGraph(t.db.Graph(id))
		}
	}
	if len(ids) <= opt.LeafSize {
		for _, id := range ids {
			d := t.dist(pivot, id)
			n.entries = append(n.entries, entry{id, d})
			if d > n.radius {
				n.radius = d
			}
		}
		return n
	}
	k := opt.Branching
	if k > len(ids) {
		k = len(ids)
	}
	pivots := []graph.ID{pivot}
	minDist := make([]float64, len(ids))
	assign := make([]int, len(ids))
	for i, id := range ids {
		minDist[i] = t.dist(pivot, id)
		if minDist[i] > n.radius {
			n.radius = minDist[i]
		}
	}
	for len(pivots) < k {
		best, bestD := -1, -1.0
		for i := range ids {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if bestD == 0 {
			break
		}
		p := ids[best]
		pi := len(pivots)
		pivots = append(pivots, p)
		for i, id := range ids {
			if d := t.dist(p, id); d < minDist[i] {
				minDist[i] = d
				assign[i] = pi
			}
		}
	}
	if len(pivots) == 1 {
		for _, id := range ids {
			n.entries = append(n.entries, entry{id, 0})
		}
		return n
	}
	for p := range pivots {
		var sub []graph.ID
		for i, id := range ids {
			if assign[i] == p {
				sub = append(sub, id)
			}
		}
		if len(sub) == 0 {
			continue
		}
		n.children = append(n.children, t.build(sub, opt, rng))
	}
	return n
}

// Range implements metric.RangeSearcher.
func (t *Tree) Range(center graph.ID, radius float64) []graph.ID {
	var out []graph.ID
	g := t.db.Graph(center)
	t.search(t.root, center, g, radius, &out)
	return out
}

func (t *Tree) search(n *node, center graph.ID, g *graph.Graph, radius float64, out *[]graph.ID) {
	// Structural closure pruning first: it costs no distance computation.
	if n.cl.lowerBound(g) > radius {
		t.prunedByClosure++
		return
	}
	// Star-closure pruning: about as expensive as one distance computation,
	// so it runs only where construction decided it pays (large subtrees).
	if n.cs != nil && n.cs.lowerBound(g) > radius {
		t.prunedByStars++
		return
	}
	dp := t.m.Distance(center, n.pivot)
	if dp > n.radius+radius {
		return
	}
	if n.entries != nil {
		for _, e := range n.entries {
			if math.Abs(dp-e.d) > radius {
				continue
			}
			if dp+e.d <= radius {
				*out = append(*out, e.id)
				continue
			}
			if t.m.Distance(center, e.id) <= radius {
				*out = append(*out, e.id)
			}
		}
		return
	}
	for _, c := range n.children {
		t.search(c, center, g, radius, out)
	}
}

// BuildDistances reports how many distance computations construction issued.
func (t *Tree) BuildDistances() int64 { return t.buildDistances }

// ClosurePrunes reports how many subtrees the structural closure bound
// discarded across all Range calls so far.
func (t *Tree) ClosurePrunes() int64 { return t.prunedByClosure }

// StarPrunes reports how many subtrees the star-closure bound discarded
// across all Range calls so far.
func (t *Tree) StarPrunes() int64 { return t.prunedByStars }
