package ctree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

func randDB(n int, seed int64) (*graph.Database, metric.Metric) {
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := 2 + rng.Intn(8)
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(graph.Label(rng.Intn(4)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(u, v, 0)
				}
			}
		}
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func sortIDs(ids []graph.ID) []graph.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// The closure lower bound must never exceed the true star distance — the
// correctness condition for closure pruning.
func TestClosureLowerBoundSound(t *testing.T) {
	db, _ := randDB(40, 1)
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a closure over a random subset and check the bound against
		// every absorbed member for a random query graph.
		cl := newClosure()
		var members []graph.ID
		for i := 0; i < db.Len(); i++ {
			if r.Float64() < 0.3 {
				cl.absorb(db.Graph(graph.ID(i)))
				members = append(members, graph.ID(i))
			}
		}
		if len(members) == 0 {
			return true
		}
		q := db.Graph(graph.ID(r.Intn(db.Len())))
		lb := cl.lowerBound(q)
		for _, id := range members {
			if lb > ged.StarDistance(q, db.Graph(id))+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	db, m := randDB(70, 3)
	tree, err := Build(db, m, Options{Branching: 3, LeafSize: 4}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	lin := metric.NewLinearScan(db.Len(), m)
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		center := graph.ID(r.Intn(db.Len()))
		radius := r.Float64() * 14
		got := sortIDs(tree.Range(center, radius))
		want := sortIDs(lin.Range(center, radius))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestBuildErrors(t *testing.T) {
	db, m := randDB(5, 6)
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(db, m, Options{Branching: 1, LeafSize: 2}, rng); err == nil {
		t.Error("branching=1 accepted")
	}
	if _, err := Build(db, m, Options{Branching: 2, LeafSize: 0}, rng); err == nil {
		t.Error("leafSize=0 accepted")
	}
	empty, _ := graph.NewDatabase(nil)
	if _, err := Build(empty, m, DefaultOptions(), rng); err == nil {
		t.Error("empty db accepted")
	}
}

func TestClosurePruningFires(t *testing.T) {
	// Two structurally disjoint families (different labels, very different
	// sizes): small-radius queries from one family should closure-prune the
	// other family's subtree at least once.
	var graphs []*graph.Graph
	id := 0
	for i := 0; i < 20; i++ {
		b := graph.NewBuilder(3)
		for v := 0; v < 3; v++ {
			b.AddVertex(1)
		}
		b.AddEdge(0, 1, 0)
		g, _ := b.Build(graph.ID(id))
		graphs = append(graphs, g)
		id++
	}
	for i := 0; i < 20; i++ {
		b := graph.NewBuilder(15)
		for v := 0; v < 15; v++ {
			b.AddVertex(7)
		}
		for v := 0; v+1 < 15; v++ {
			b.AddEdge(v, v+1, 0)
		}
		g, _ := b.Build(graph.ID(id))
		graphs = append(graphs, g)
		id++
	}
	db, _ := graph.NewDatabase(graphs)
	m := metric.NewCache(metric.Star(db))
	tree, err := Build(db, m, Options{Branching: 2, LeafSize: 4}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tree.Range(graph.ID(i), 1)
	}
	if tree.ClosurePrunes() == 0 {
		t.Error("closure pruning never fired on disjoint families")
	}
	if tree.BuildDistances() <= 0 {
		t.Error("no build distances recorded")
	}
}

func TestRangeIncludesSelf(t *testing.T) {
	db, m := randDB(25, 8)
	tree, err := Build(db, m, DefaultOptions(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		found := false
		for _, id := range tree.Range(graph.ID(i), 0) {
			if id == graph.ID(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("graph %d not in its own radius-0 range", i)
		}
	}
}
