package nbindex

import (
	"math"
	"sort"
	"testing"
)

func TestSweepThetaCurve(t *testing.T) {
	db, m := clusteredDB(t, 5, 12, 80)
	grid := []float64{2, 4, 8, 16, 64}
	ix := buildIndex(t, db, m, grid, 81)
	sess := ix.NewSession(func(f []float64) bool { return f[0] > 0.25 })
	points, err := sess.SweepTheta(8, 6) // grid plus one extra threshold
	if err != nil {
		t.Fatalf("SweepTheta: %v", err)
	}
	if len(points) != len(grid)+1 {
		t.Fatalf("sweep has %d points, want %d", len(points), len(grid)+1)
	}
	// Thetas ascending and unique; power monotone non-decreasing in θ
	// (greedy coverage can only grow with radius).
	for i := 1; i < len(points); i++ {
		if points[i].Theta <= points[i-1].Theta {
			t.Errorf("thetas not ascending: %v", points)
		}
		if points[i].Power < points[i-1].Power-1e-12 {
			t.Errorf("power decreased with θ: %v -> %v", points[i-1], points[i])
		}
	}
	for _, p := range points {
		if p.Power < 0 || p.Power > 1 || p.AnswerSize < 0 {
			t.Errorf("malformed point %+v", p)
		}
		if p.AnswerSize > 0 && math.Abs(p.CR) < 1e-12 && p.Power > 0 {
			t.Errorf("CR zero with positive power: %+v", p)
		}
	}
}

func TestSweepThetaErrors(t *testing.T) {
	db, m := clusteredDB(t, 2, 5, 82)
	ix := buildIndex(t, db, m, []float64{4}, 83)
	sess := ix.NewSession(func([]float64) bool { return true })
	if _, err := sess.SweepTheta(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := sess.SweepTheta(3, -5); err == nil {
		t.Error("negative extra theta accepted")
	}
}

func TestSuggestTheta(t *testing.T) {
	// Synthetic curve with an obvious knee at θ=4 (power saturates there).
	points := []ThetaPoint{
		{Theta: 1, Power: 0.1},
		{Theta: 2, Power: 0.35},
		{Theta: 4, Power: 0.8},
		{Theta: 8, Power: 0.85},
		{Theta: 16, Power: 0.9},
	}
	best, err := SuggestTheta(points)
	if err != nil {
		t.Fatal(err)
	}
	if best.Theta != 4 {
		t.Errorf("knee at θ=%v, want 4", best.Theta)
	}
	if _, err := SuggestTheta(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	// Degenerate flat-zero curve returns the first point.
	flat := []ThetaPoint{{Theta: 0, Power: 0}, {Theta: 1, Power: 0}}
	if got, err := SuggestTheta(flat); err != nil || got.Theta != 0 {
		t.Errorf("flat curve: %+v, %v", got, err)
	}
}

func TestSweepMatchesIndividualQueries(t *testing.T) {
	db, m := clusteredDB(t, 4, 8, 84)
	grid := []float64{2, 8, 32}
	ix := buildIndex(t, db, m, grid, 85)
	rel := func(f []float64) bool { return f[0] > 0.3 }
	sess := ix.NewSession(rel)
	points, err := sess.SweepTheta(5)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Theta < points[j].Theta })
	for _, p := range points {
		res, err := ix.NewSession(rel).TopK(p.Theta, 5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Power-p.Power) > 1e-12 || len(res.Answer) != p.AnswerSize {
			t.Errorf("θ=%v: sweep %+v vs fresh query π=%v |A|=%d", p.Theta, p, res.Power, len(res.Answer))
		}
	}
}
