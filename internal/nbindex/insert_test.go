package nbindex

import (
	"math/rand"
	"reflect"
	"testing"

	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// Build an index on a prefix of a clustered database, insert the rest one by
// one, and check that queries through the grown index match the baseline
// greedy over the full database exactly — the strongest possible insert
// correctness property, since index quality cannot affect answer exactness.
func TestInsertPreservesExactAnswers(t *testing.T) {
	full, _ := clusteredDB(t, 5, 12, 400)
	prefixLen := full.Len() * 2 / 3

	// Growable database seeded with the prefix.
	graphs := make([]*graph.Graph, prefixLen)
	copy(graphs, full.Graphs()[:prefixLen])
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		t.Fatal(err)
	}
	m := metric.NewCache(metric.Star(db))
	ix, err := Build(db, m, Options{NumVPs: 5, Branching: 4, ThetaGrid: []float64{2, 4, 8, 16, 64}},
		rand.New(rand.NewSource(401)))
	if err != nil {
		t.Fatal(err)
	}
	for i := prefixLen; i < full.Len(); i++ {
		src := full.Graph(graph.ID(i))
		g, err := src.Clone(graph.ID(i)).Build(graph.ID(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(g); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := ix.Insert(graph.ID(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if err := ix.tree.Validate(db, m); err != nil {
		t.Fatalf("tree invalid after inserts: %v", err)
	}
	relevance := func(f []float64) bool { return f[0] > 0.3 }
	for _, theta := range []float64{3, 6, 12} {
		want, err := core.BaselineGreedy(db, m, core.Query{Relevance: relevance, Theta: theta, K: 6})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.NewSession(relevance).TopK(theta, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Answer, want.Answer) {
			t.Fatalf("θ=%v after inserts: %v, want %v", theta, got.Answer, want.Answer)
		}
	}
}

func TestInsertIntoSingletonIndex(t *testing.T) {
	db1, _ := clusteredDB(t, 1, 1, 402)
	db, err := graph.NewDatabase([]*graph.Graph{db1.Graph(0)})
	if err != nil {
		t.Fatal(err)
	}
	m := metric.NewCache(metric.Star(db))
	ix, err := Build(db, m, Options{NumVPs: 1, Branching: 2, ThetaGrid: []float64{4}},
		rand.New(rand.NewSource(403)))
	if err != nil {
		t.Fatal(err)
	}
	more, _ := clusteredDB(t, 2, 3, 404)
	for i := 1; i <= 4; i++ {
		g, err := more.Graph(graph.ID(i)).Clone(graph.ID(i)).Build(graph.ID(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(g); err != nil {
			t.Fatal(err)
		}
		if err := ix.Insert(graph.ID(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if err := ix.tree.Validate(db, m); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	res, err := ix.NewSession(func([]float64) bool { return true }).TopK(1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Power != 1 || res.Relevant != 5 {
		t.Errorf("post-insert query: %+v", res)
	}
}

func TestInsertErrors(t *testing.T) {
	db, m := clusteredDB(t, 2, 4, 405)
	ix := buildIndex(t, db, m, []float64{4}, 406)
	if err := ix.Insert(graph.ID(0)); err == nil {
		t.Error("re-inserting an indexed id accepted")
	}
	if err := ix.Insert(graph.ID(db.Len())); err == nil {
		t.Error("inserting beyond the database accepted")
	}
}
