package nbindex

import (
	"encoding/binary"
	"fmt"
	"io"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbtree"
	"graphrep/internal/vantage"
)

// Serialization layout: a small header, the θ grid, then the vantage
// ordering and NB-Tree snapshots (each length-prefixed gob). The database
// and metric are not serialized — the caller re-supplies them on load, as
// they would reopen the underlying store.

var indexMagic = [8]byte{'N', 'B', 'I', 'D', 'X', '0', '0', '1'}

// Encode persists the index. The paper treats index construction as an
// offline step (Fig. 6(k)); persistence makes it a one-time one.
func (ix *Index) Encode(w io.Writer) error {
	if _, err := w.Write(indexMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(ix.grid))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, ix.grid); err != nil {
		return err
	}
	if err := ix.vo.Encode(w); err != nil {
		return err
	}
	return ix.tree.Encode(w)
}

// Read loads an index written by Encode, reattaching it to the database
// and metric it was built over. The caller must supply the same database
// (same graphs, same IDs) and an equivalent metric; Read validates what it
// can cheaply (sizes and ID ranges).
func Read(r io.Reader, db *graph.Database, m metric.Metric) (*Index, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("nbindex: read header: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("nbindex: bad magic %q", magic[:])
	}
	var gridLen int64
	if err := binary.Read(r, binary.LittleEndian, &gridLen); err != nil {
		return nil, fmt.Errorf("nbindex: read grid length: %w", err)
	}
	if gridLen <= 0 || gridLen > 1<<20 {
		return nil, fmt.Errorf("nbindex: implausible grid length %d", gridLen)
	}
	grid := make([]float64, gridLen)
	if err := binary.Read(r, binary.LittleEndian, grid); err != nil {
		return nil, fmt.Errorf("nbindex: read grid: %w", err)
	}
	vo, err := vantage.ReadOrdering(r)
	if err != nil {
		return nil, err
	}
	tree, err := nbtree.ReadTree(r)
	if err != nil {
		return nil, err
	}
	if vo.Len() != db.Len() {
		return nil, fmt.Errorf("nbindex: index covers %d graphs, database has %d", vo.Len(), db.Len())
	}
	if tree.Root().Size != db.Len() {
		return nil, fmt.Errorf("nbindex: tree covers %d graphs, database has %d", tree.Root().Size, db.Len())
	}
	ix := &Index{db: db, m: m, vo: vo, tree: tree, grid: grid, leafOf: make([]int, db.Len())}
	for _, n := range tree.Nodes() {
		if n.Leaf {
			if int(n.Centroid) < 0 || int(n.Centroid) >= db.Len() {
				return nil, fmt.Errorf("nbindex: leaf references graph %d outside database", n.Centroid)
			}
			ix.leafOf[n.Centroid] = n.Idx
		}
	}
	return ix, nil
}
