package nbindex

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbtree"
	"graphrep/internal/vantage"
)

// exactReader returns a reader gob decodes exactly — one implementing
// io.ByteReader, which stops encoding/gob from wrapping the stream in its own
// read-ahead buffer and swallowing bytes that belong to the next section.
// Readers that already support byte-at-a-time reads (bytes.Reader,
// bufio.Reader, ...) pass through; anything else gets one shared buffer.
func exactReader(r io.Reader) io.Reader {
	if _, ok := r.(io.ByteReader); ok {
		return r
	}
	return bufio.NewReader(r)
}

// Serialization layout: a small header, the θ grid, then the vantage
// ordering and NB-Tree snapshots (each length-prefixed gob). The database
// and metric are not serialized — the caller re-supplies them on load, as
// they would reopen the underlying store.

var indexMagic = [8]byte{'N', 'B', 'I', 'D', 'X', '0', '0', '1'}

// Encode persists the index in the v1 (single, full-database) layout. The
// paper treats index construction as an offline step (Fig. 6(k));
// persistence makes it a one-time one. This legacy layout is kept loading;
// current saves go through internal/shard's containers (v4 by default).
func (ix *Index) Encode(w io.Writer) error {
	if ix.base != 0 || ix.vo.Len() != ix.db.Len() {
		return fmt.Errorf("nbindex: v1 encoding requires a full-database index, this one covers [%d, %d); use shard.Set.Encode",
			ix.base, int(ix.base)+ix.vo.Len())
	}
	if _, err := w.Write(indexMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(ix.grid))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, ix.grid); err != nil {
		return err
	}
	if err := ix.vo.Encode(w); err != nil {
		return err
	}
	return ix.Tree().Encode(w)
}

// Read loads an index written by Encode, reattaching it to the database
// and metric it was built over. The caller must supply the same database
// (same graphs, same IDs) and an equivalent metric; Read validates what it
// can cheaply (sizes and ID ranges).
func Read(r io.Reader, db *graph.Database, m metric.Metric) (*Index, error) {
	r = exactReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("nbindex: read header: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("nbindex: bad magic %q", magic[:])
	}
	var gridLen int64
	if err := binary.Read(r, binary.LittleEndian, &gridLen); err != nil {
		return nil, fmt.Errorf("nbindex: read grid length: %w", err)
	}
	if gridLen <= 0 || gridLen > 1<<20 {
		return nil, fmt.Errorf("nbindex: implausible grid length %d", gridLen)
	}
	grid := make([]float64, gridLen)
	if err := binary.Read(r, binary.LittleEndian, grid); err != nil {
		return nil, fmt.Errorf("nbindex: read grid: %w", err)
	}
	vo, err := vantage.ReadOrdering(r)
	if err != nil {
		return nil, err
	}
	tree, err := nbtree.ReadTree(r)
	if err != nil {
		return nil, err
	}
	if vo.Len() != db.Len() {
		return nil, fmt.Errorf("nbindex: index covers %d graphs, database has %d", vo.Len(), db.Len())
	}
	if tree.Root().Size != db.Len() {
		return nil, fmt.Errorf("nbindex: tree covers %d graphs, database has %d", tree.Root().Size, db.Len())
	}
	ix := &Index{db: db, m: m, vo: vo, flat: tree.Flatten(), tree: tree, grid: grid, leafOf: make([]int32, db.Len())}
	for _, n := range tree.Nodes() {
		if n.Leaf {
			if int(n.Centroid) < 0 || int(n.Centroid) >= db.Len() {
				return nil, fmt.Errorf("nbindex: leaf references graph %d outside database", n.Centroid)
			}
			ix.leafOf[n.Centroid] = int32(n.Idx)
		}
	}
	// v1 files predate the filter embeddings; recompute them from the
	// database (they are a pure function of the graphs, so the result is
	// identical to what a fresh build would persist).
	if err := ix.computeEmbeddings(context.Background(), 0); err != nil {
		return nil, err
	}
	return ix, nil
}

// EncodePart persists only the index's vantage ordering and NB-Tree, with no
// header — the per-shard section of internal/shard's legacy v2/v3 gob
// containers, which carry the magic, grid, and shard ranges themselves.
func (ix *Index) EncodePart(w io.Writer) error {
	if err := ix.vo.Encode(w); err != nil {
		return err
	}
	// Tree() (rather than the tree field) so a view-backed index can still be
	// written in the legacy layout: the pointer form is rebuilt on demand.
	return ix.Tree().Encode(w)
}

// EncodeEmbeddings writes the per-shard filter-embedding section of the v3
// container: one fixed-layout embedding per covered graph, in ID order. The
// count is implied by the shard header, so no length prefix is needed.
// Embeddings are a pure function of the graphs, so the section bytes are
// independent of the metric and of whether the bounded kernel is enabled.
func (ix *Index) EncodeEmbeddings(w io.Writer) error {
	if ix.embTab != nil {
		// View-backed index: the table blob is the records concatenated in ID
		// order — exactly this section's layout — so it passes through
		// without decoding.
		if ix.embTab.Len() != ix.vo.Len() {
			return fmt.Errorf("nbindex: %d embeddings for %d graphs", ix.embTab.Len(), ix.vo.Len())
		}
		_, err := w.Write(ix.embTab.Blob())
		return err
	}
	if len(ix.embs) != ix.vo.Len() {
		return fmt.Errorf("nbindex: %d embeddings for %d graphs", len(ix.embs), ix.vo.Len())
	}
	for _, e := range ix.embs {
		if err := e.Encode(w); err != nil {
			return err
		}
	}
	return nil
}

// DecodeEmbeddings reads the embedding section written by EncodeEmbeddings,
// attaching the vectors to the index. The v3 load path calls it right after
// ReadPart; pre-embedding files use ComputeEmbeddings instead.
func (ix *Index) DecodeEmbeddings(r io.Reader) error {
	embs := make([]*ged.Embedding, ix.vo.Len())
	for i := range embs {
		e, err := ged.DecodeEmbedding(r)
		if err != nil {
			return fmt.Errorf("nbindex: embedding %d: %w", int(ix.base)+i, err)
		}
		if e.Stars() != ix.db.Graph(ix.base+graph.ID(i)).Order() {
			return fmt.Errorf("nbindex: embedding %d covers %d stars, graph has %d vertices",
				int(ix.base)+i, e.Stars(), ix.db.Graph(ix.base+graph.ID(i)).Order())
		}
		embs[i] = e
	}
	ix.embs = embs
	return nil
}

// ComputeEmbeddings recomputes the filter embeddings from the database — the
// compat path for pre-embedding (v1/v2) index files, whose sections carry no
// vectors. The result is identical to what a fresh build would persist.
func (ix *Index) ComputeEmbeddings(ctx context.Context, workers int) error {
	return ix.computeEmbeddings(ctx, workers)
}

// ReadPart loads one shard's section written by EncodePart, reattaching it
// to the database, metric, and shared grid. The declared range [base,
// base+count) is validated against the decoded ordering and tree. The filter
// embeddings are NOT restored here — the container layer either decodes them
// (v3, DecodeEmbeddings) or recomputes them (v2 compat, ComputeEmbeddings).
func ReadPart(r io.Reader, db *graph.Database, m metric.Metric, grid []float64, base graph.ID, count int) (*Index, error) {
	vo, err := vantage.ReadOrdering(r)
	if err != nil {
		return nil, err
	}
	tree, err := nbtree.ReadTree(r)
	if err != nil {
		return nil, err
	}
	if vo.Base() != base || vo.Len() != count {
		return nil, fmt.Errorf("nbindex: shard section covers [%d, %d), header declares [%d, %d)",
			vo.Base(), int(vo.Base())+vo.Len(), base, int(base)+count)
	}
	if tree.Root().Size != count {
		return nil, fmt.Errorf("nbindex: shard tree covers %d graphs, header declares %d", tree.Root().Size, count)
	}
	ix := &Index{db: db, m: m, vo: vo, flat: tree.Flatten(), tree: tree, grid: append([]float64(nil), grid...), base: base, leafOf: make([]int32, count)}
	for _, n := range tree.Nodes() {
		if n.Leaf {
			if n.Centroid < base || int(n.Centroid-base) >= count {
				return nil, fmt.Errorf("nbindex: leaf references graph %d outside shard [%d, %d)", n.Centroid, base, int(base)+count)
			}
			ix.leafOf[n.Centroid-base] = int32(n.Idx)
		}
	}
	return ix, nil
}
