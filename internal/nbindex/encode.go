package nbindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbtree"
	"graphrep/internal/vantage"
)

// exactReader returns a reader gob decodes exactly — one implementing
// io.ByteReader, which stops encoding/gob from wrapping the stream in its own
// read-ahead buffer and swallowing bytes that belong to the next section.
// Readers that already support byte-at-a-time reads (bytes.Reader,
// bufio.Reader, ...) pass through; anything else gets one shared buffer.
func exactReader(r io.Reader) io.Reader {
	if _, ok := r.(io.ByteReader); ok {
		return r
	}
	return bufio.NewReader(r)
}

// Serialization layout: a small header, the θ grid, then the vantage
// ordering and NB-Tree snapshots (each length-prefixed gob). The database
// and metric are not serialized — the caller re-supplies them on load, as
// they would reopen the underlying store.

var indexMagic = [8]byte{'N', 'B', 'I', 'D', 'X', '0', '0', '1'}

// Encode persists the index in the v1 (single, full-database) layout. The
// paper treats index construction as an offline step (Fig. 6(k));
// persistence makes it a one-time one. Shard parts are persisted through
// internal/shard's v2 container instead.
func (ix *Index) Encode(w io.Writer) error {
	if ix.base != 0 || ix.vo.Len() != ix.db.Len() {
		return fmt.Errorf("nbindex: v1 encoding requires a full-database index, this one covers [%d, %d); use shard.Set.Encode",
			ix.base, int(ix.base)+ix.vo.Len())
	}
	if _, err := w.Write(indexMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(ix.grid))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, ix.grid); err != nil {
		return err
	}
	if err := ix.vo.Encode(w); err != nil {
		return err
	}
	return ix.tree.Encode(w)
}

// Read loads an index written by Encode, reattaching it to the database
// and metric it was built over. The caller must supply the same database
// (same graphs, same IDs) and an equivalent metric; Read validates what it
// can cheaply (sizes and ID ranges).
func Read(r io.Reader, db *graph.Database, m metric.Metric) (*Index, error) {
	r = exactReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("nbindex: read header: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("nbindex: bad magic %q", magic[:])
	}
	var gridLen int64
	if err := binary.Read(r, binary.LittleEndian, &gridLen); err != nil {
		return nil, fmt.Errorf("nbindex: read grid length: %w", err)
	}
	if gridLen <= 0 || gridLen > 1<<20 {
		return nil, fmt.Errorf("nbindex: implausible grid length %d", gridLen)
	}
	grid := make([]float64, gridLen)
	if err := binary.Read(r, binary.LittleEndian, grid); err != nil {
		return nil, fmt.Errorf("nbindex: read grid: %w", err)
	}
	vo, err := vantage.ReadOrdering(r)
	if err != nil {
		return nil, err
	}
	tree, err := nbtree.ReadTree(r)
	if err != nil {
		return nil, err
	}
	if vo.Len() != db.Len() {
		return nil, fmt.Errorf("nbindex: index covers %d graphs, database has %d", vo.Len(), db.Len())
	}
	if tree.Root().Size != db.Len() {
		return nil, fmt.Errorf("nbindex: tree covers %d graphs, database has %d", tree.Root().Size, db.Len())
	}
	ix := &Index{db: db, m: m, vo: vo, tree: tree, grid: grid, leafOf: make([]int, db.Len())}
	for _, n := range tree.Nodes() {
		if n.Leaf {
			if int(n.Centroid) < 0 || int(n.Centroid) >= db.Len() {
				return nil, fmt.Errorf("nbindex: leaf references graph %d outside database", n.Centroid)
			}
			ix.leafOf[n.Centroid] = n.Idx
		}
	}
	return ix, nil
}

// EncodePart persists only the index's vantage ordering and NB-Tree, with no
// header — the per-shard section of internal/shard's v2 container, which
// carries the magic, grid, and shard ranges itself.
func (ix *Index) EncodePart(w io.Writer) error {
	if err := ix.vo.Encode(w); err != nil {
		return err
	}
	return ix.tree.Encode(w)
}

// ReadPart loads one shard's section written by EncodePart, reattaching it
// to the database, metric, and shared grid. The declared range [base,
// base+count) is validated against the decoded ordering and tree.
func ReadPart(r io.Reader, db *graph.Database, m metric.Metric, grid []float64, base graph.ID, count int) (*Index, error) {
	vo, err := vantage.ReadOrdering(r)
	if err != nil {
		return nil, err
	}
	tree, err := nbtree.ReadTree(r)
	if err != nil {
		return nil, err
	}
	if vo.Base() != base || vo.Len() != count {
		return nil, fmt.Errorf("nbindex: shard section covers [%d, %d), header declares [%d, %d)",
			vo.Base(), int(vo.Base())+vo.Len(), base, int(base)+count)
	}
	if tree.Root().Size != count {
		return nil, fmt.Errorf("nbindex: shard tree covers %d graphs, header declares %d", tree.Root().Size, count)
	}
	ix := &Index{db: db, m: m, vo: vo, tree: tree, grid: append([]float64(nil), grid...), base: base, leafOf: make([]int, count)}
	for _, n := range tree.Nodes() {
		if n.Leaf {
			if n.Centroid < base || int(n.Centroid-base) >= count {
				return nil, fmt.Errorf("nbindex: leaf references graph %d outside shard [%d, %d)", n.Centroid, base, int(base)+count)
			}
			ix.leafOf[n.Centroid-base] = n.Idx
		}
	}
	return ix, nil
}
