// Package nbindex implements the NB-Index of §6–7: the paper's index over
// θ-neighborhoods that makes top-k representative queries scale. It unifies
//
//   - vantage orderings (internal/vantage): a Lipschitz embedding giving the
//     candidate neighborhoods N̂_θ(g) ⊇ N_θ(g) of Theorem 5, and
//   - the NB-Tree (internal/nbtree): a hierarchical clustering whose nodes
//     carry π̂-vectors — upper bounds on representative power at a grid of
//     indexed thresholds (Definition 6) — enabling the best-first search of
//     Alg. 2 and cluster-batched updates in the spirit of Theorems 6–8.
//
// # Query processing
//
// A Session corresponds to the paper's initialization phase: for a fixed
// relevance function it computes the π̂-vector of every relevant graph with
// one vantage scan each, and propagates ceilings up the NB-Tree (Eq. 14).
// Session.TopK runs the search-and-update phase at any θ; calling it again
// with a refined θ reuses the initialization, which is exactly the
// interactive zoom scenario of Fig. 6(i).
//
// # Update rule
//
// Instead of re-deriving Theorems 6–8 literally, the update step uses an
// equivalent credit-propagation formulation that is easier to prove sound:
// when graph l becomes covered, one credit is added at the highest NB-Tree
// ancestor a of l with diameter(a) ≤ θ. For every graph g' under a, l is
// guaranteed inside N_θ(g') (d(g', l) ≤ diameter(a) ≤ θ, Theorem 7's
// argument), so the marginal-gain bound of every such g' may permanently
// drop by one. Summed over the members of a covered cluster this reproduces
// the |c_q| batch subtraction of Theorems 7–8, and clusters beyond reach are
// never credited, which is Theorem 6. Each covered graph is credited exactly
// once, so bounds never under-count and Alg. 2's pruning stays admissible.
package nbindex

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphrep/internal/bitset"
	"graphrep/internal/core"
	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbtree"
	"graphrep/internal/pool"
	"graphrep/internal/vantage"
)

// Options configures index construction.
type Options struct {
	// NumVPs is the number of vantage points (|V|). Choose via
	// stats.MinVPsForFPR or default to a small constant.
	NumVPs int
	// VPPolicy selects the vantage point policy (default SelectRandom).
	VPPolicy vantage.SelectionPolicy
	// Branching is the NB-Tree fan-out b (≥ 2).
	Branching int
	// ThetaGrid lists the thresholds indexed in π̂-vectors, ascending (§7.1).
	ThetaGrid []float64
	// Workers bounds the goroutines used for construction and session
	// initialization (≤ 0 means GOMAXPROCS). The index and every answer are
	// identical for any value; only wall time changes.
	Workers int
}

// DefaultOptions returns a memory-resident configuration.
func DefaultOptions(grid []float64) Options {
	return Options{NumVPs: 8, Branching: 4, ThetaGrid: grid}
}

// Index is an immutable NB-Index over a database — either the whole of it
// (BuildContext, base 0) or one shard's contiguous ID range (BuildPartContext;
// internal/shard coordinates several such parts). Build once per database;
// relevance functions and θ are supplied at query time.
type Index struct {
	db *graph.Database
	m  metric.Metric
	vo *vantage.Ordering
	// flat is the NB-Tree in array form — the representation every query
	// navigates, whether the index was built in memory or opened over a
	// mapping. Always set.
	flat *nbtree.Flat
	// tree is the pointer form, present when the index was built (or thawed
	// for mutation); nil for view-backed indexes until something needs it.
	// Tree() materializes it on demand from flat.
	tree *nbtree.Tree
	grid []float64
	// base is the first graph ID covered; 0 for a full-database index.
	base graph.ID
	// leafOf maps a covered graph ID (offset by base) to its leaf node index
	// in the flat tree. May alias a mapped section; thaw copies it before
	// any mutation; validated by EnsureValid (deferred range checks for
	// view-backed indexes).
	leafOf []int32
	// embs[i] is the filter embedding of graph base+i: the precomputed
	// vector whose L1-style lower bound opens the bounded distance cascade.
	// Embeddings are a pure function of the graphs — independent of the
	// metric and of whether the bounded kernel is enabled — so index bytes
	// stay identical either way. Persisted since the v3 container; recomputed
	// on the v1/v2 compat load paths. View-backed indexes carry embTab
	// instead and leave embs nil until thawed.
	embs []*ged.Embedding
	// embTab is the encoded embedding table of a view-backed index (nil for
	// built indexes): the same vectors as embs, decoded on demand by the
	// metric instead of eagerly at load.
	embTab *ged.Table
	// deferredCheck is the content validation a deferred construction
	// (PartFromViewsDeferred) postponed; EnsureValid runs it exactly once
	// before the first navigation and caches the verdict in checkErr. Nil
	// for eagerly-validated indexes.
	deferredCheck func() error
	checkOnce     sync.Once
	checkErr      error
	// workers bounds session-initialization goroutines; ≤ 0 means GOMAXPROCS.
	workers int
	// timing records the wall time of each construction phase.
	timing BuildTiming
	// tel, when set, aggregates QueryStats across every session's queries.
	tel atomic.Pointer[Telemetry]
}

// BuildTiming reports the wall time of each construction phase, for the
// build-phase telemetry gauges (the offline cost of Fig. 6(k), split by
// stage).
type BuildTiming struct {
	// VPSelect covers vantage point selection (sequential; rng-driven).
	VPSelect time.Duration
	// Vantage covers the |V|×n vantage distance-matrix fill and sorted views.
	Vantage time.Duration
	// Tree covers the NB-Tree clustering.
	Tree time.Duration
	// Total is the whole Build call.
	Total time.Duration
}

// Build constructs the NB-Index with no cancellation. See BuildContext.
func Build(db *graph.Database, m metric.Metric, opt Options, rng *rand.Rand) (*Index, error) {
	return BuildContext(context.Background(), db, m, opt, rng)
}

// BuildContext constructs the NB-Index: vantage point selection, vantage
// orderings, and the VP-accelerated NB-Tree. Cancellation is checked at
// every phase boundary and per work batch inside the parallel fills; a
// cancelled build returns ctx.Err() and no index. The result is identical
// for any Workers value.
func BuildContext(ctx context.Context, db *graph.Database, m metric.Metric, opt Options, rng *rand.Rand) (*Index, error) {
	if len(opt.ThetaGrid) == 0 {
		return nil, fmt.Errorf("nbindex: empty theta grid")
	}
	if !sort.Float64sAreSorted(opt.ThetaGrid) {
		return nil, fmt.Errorf("nbindex: theta grid not ascending")
	}
	if opt.NumVPs <= 0 {
		return nil, fmt.Errorf("nbindex: NumVPs = %d", opt.NumVPs)
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("nbindex: empty database")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	numVPs := opt.NumVPs
	if numVPs > db.Len() {
		numVPs = db.Len()
	}
	vps, err := vantage.SelectVPs(db, m, numVPs, opt.VPPolicy, rng)
	if err != nil {
		return nil, err
	}
	tVPs := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	ix, err := BuildPartContext(ctx, db, m, vps, opt.ThetaGrid, 0, db.Len(), opt.Branching, opt.Workers, rng)
	if err != nil {
		return nil, err
	}
	ix.timing.VPSelect = tVPs.Sub(start)
	ix.timing.Total += ix.timing.VPSelect
	return ix, nil
}

// BuildPartContext constructs an NB-Index over the contiguous ID range
// [base, base+count) of db with an externally chosen vantage point set and θ
// grid. This is the shard build path: every shard shares one global VP set
// (so embedding coordinates are comparable across shards) and one global
// grid, while owning its own vantage rows and NB-Tree. BuildContext is the
// base=0, count=n special case with the VPs selected internally. rng drives
// only the NB-Tree pivot draws; pass a per-shard seeded source for
// reproducible shard builds.
func BuildPartContext(ctx context.Context, db *graph.Database, m metric.Metric, vps []graph.ID, grid []float64, base graph.ID, count, branching, workers int, rng *rand.Rand) (*Index, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("nbindex: empty theta grid")
	}
	if !sort.Float64sAreSorted(grid) {
		return nil, fmt.Errorf("nbindex: theta grid not ascending")
	}
	start := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	vo, err := vantage.BuildRangeContext(ctx, db, m, vps, base, count, workers)
	if err != nil {
		return nil, err
	}
	tVO := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	if branching < 2 {
		branching = 4
	}
	ids := make([]graph.ID, count)
	for i := range ids {
		ids[i] = base + graph.ID(i)
	}
	tree, err := nbtree.BuildSubsetContext(ctx, db, m, ids,
		nbtree.Options{Branching: branching, VO: vo, Workers: workers}, rng)
	if err != nil {
		return nil, err
	}
	done := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	ix := &Index{
		db:      db,
		m:       m,
		vo:      vo,
		flat:    tree.Flatten(),
		tree:    tree,
		grid:    append([]float64(nil), grid...),
		base:    base,
		workers: workers,
		timing: BuildTiming{
			Vantage: tVO.Sub(start),
			Tree:    done.Sub(tVO),
			Total:   done.Sub(start),
		},
		leafOf: func() []int32 {
			l := make([]int32, count)
			for _, n := range tree.Nodes() {
				if n.Leaf {
					l[n.Centroid-base] = int32(n.Idx)
				}
			}
			return l
		}(),
	}
	if err := ix.computeEmbeddings(ctx, workers); err != nil {
		return nil, err
	}
	return ix, nil
}

// computeEmbeddings fills embs from the database graphs — the build path and
// the pre-embedding (v1/v2) load paths both land here. Each row is a pure
// function of its graph, so the fill parallelizes freely without affecting
// the result.
func (ix *Index) computeEmbeddings(ctx context.Context, workers int) error {
	embs := make([]*ged.Embedding, ix.vo.Len())
	if err := pool.Ranges(ctx, len(embs), workers, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			embs[i] = ged.NewEmbedding(ix.db.Graph(ix.base + graph.ID(i)))
		}
	}); err != nil {
		return err
	}
	ix.embs = embs
	return nil
}

// Embeddings returns the per-graph filter embeddings, indexed by covered
// graph ID minus Base(). The engine hands them to the metric
// (metric.EmbeddingPrimer) so threshold tests on far pairs resolve from the
// cached vectors without materializing star signatures. Nil for view-backed
// indexes, which carry EmbeddingTable instead.
func (ix *Index) Embeddings() []*ged.Embedding { return ix.embs }

// PartFromViews assembles an index part from persisted components — typically
// zero-copy views over one shard's v4 sections: the vantage ordering (see
// vantage.FromViews), the flat NB-Tree (see nbtree.NewFlat), the leaf map,
// and the encoded embedding table. Beyond what the component constructors
// already guarantee, it validates the cross-component invariants queries
// lean on: the tree covers exactly the ordering's range (root size, every
// centroid in range), the leaf map is a bijection between covered graphs and
// leaves, and the embedding table matches the database graph for graph
// (record count and per-record star count). The components are retained, not
// copied; grid is copied. It is PartFromViewsDeferred followed immediately
// by EnsureValid.
func PartFromViews(db *graph.Database, m metric.Metric, vo *vantage.Ordering, flat *nbtree.Flat, grid []float64, leafOf []int32, embTab *ged.Table, workers int) (*Index, error) {
	ix, err := PartFromViewsDeferred(db, m, vo, flat, grid, leafOf, embTab, workers)
	if err != nil {
		return nil, err
	}
	if err := ix.EnsureValid(); err != nil {
		return nil, err
	}
	return ix, nil
}

// PartFromViewsDeferred is PartFromViews minus the O(count) content scans:
// the shape invariants (grid ascending, range within the database, root
// size, claimed leaf count, array lengths) are checked now, in O(grid), and
// the content scans — the components' own deferred Validates plus the
// cross-component loops — run once on first use, via EnsureValid. Sessions
// and Insert call EnsureValid themselves, so a part whose content never
// validated cannot be navigated; this is what keeps a mapped open's cost
// independent of index size.
func PartFromViewsDeferred(db *graph.Database, m metric.Metric, vo *vantage.Ordering, flat *nbtree.Flat, grid []float64, leafOf []int32, embTab *ged.Table, workers int) (*Index, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("nbindex: empty theta grid")
	}
	if !sort.Float64sAreSorted(grid) {
		return nil, fmt.Errorf("nbindex: theta grid not ascending")
	}
	base, count := vo.Base(), vo.Len()
	if int(base)+count > db.Len() {
		return nil, fmt.Errorf("nbindex: part covers [%d, %d), database has %d graphs", base, int(base)+count, db.Len())
	}
	if rootSize := int(flat.Sizes[0]); rootSize != count {
		return nil, fmt.Errorf("nbindex: tree covers %d graphs, ordering covers %d", rootSize, count)
	}
	if flat.Stats().Leaves != count {
		return nil, fmt.Errorf("nbindex: tree has %d leaves, ordering covers %d graphs", flat.Stats().Leaves, count)
	}
	if len(leafOf) != count {
		return nil, fmt.Errorf("nbindex: leaf map of %d entries, ordering covers %d graphs", len(leafOf), count)
	}
	if embTab == nil {
		return nil, fmt.Errorf("nbindex: part has no embedding table")
	}
	if embTab.Len() != count {
		return nil, fmt.Errorf("nbindex: embedding table of %d records, ordering covers %d graphs", embTab.Len(), count)
	}
	ix := &Index{
		db:      db,
		m:       m,
		vo:      vo,
		flat:    flat,
		grid:    append([]float64(nil), grid...),
		base:    base,
		leafOf:  leafOf,
		embTab:  embTab,
		workers: workers,
	}
	ix.deferredCheck = ix.validateViews
	return ix, nil
}

// validateViews is the deferred content scan of a view-backed part: the
// component Validates plus the cross-component loops PartFromViews
// documents. Runs once, via EnsureValid.
func (ix *Index) validateViews() error {
	if err := ix.vo.Validate(); err != nil {
		return err
	}
	if err := ix.flat.Validate(); err != nil {
		return err
	}
	if err := ix.embTab.Validate(); err != nil {
		return err
	}
	base, count, flat := ix.base, ix.vo.Len(), ix.flat
	for i, c := range flat.Centroids {
		if c < base || int(c-base) >= count {
			return fmt.Errorf("nbindex: node %d centroid %d outside covered range [%d, %d)", i, c, base, int(base)+count)
		}
	}
	for i, l := range ix.leafOf {
		if l < 0 || int(l) >= flat.Len() {
			return fmt.Errorf("nbindex: leaf map entry %d is node %d, tree has %d nodes", i, l, flat.Len())
		}
		if !flat.Leaf(l) {
			return fmt.Errorf("nbindex: leaf map entry %d points at non-leaf node %d", i, l)
		}
		if flat.Centroids[l] != base+graph.ID(i) {
			return fmt.Errorf("nbindex: leaf map entry %d points at node %d holding graph %d", i, l, flat.Centroids[l])
		}
	}
	for i := 0; i < count; i++ {
		if order := ix.db.Graph(base + graph.ID(i)).Order(); ix.embTab.Stars(i) != order {
			return fmt.Errorf("nbindex: embedding %d has %d stars, graph %d has %d vertices",
				i, ix.embTab.Stars(i), int(base)+i, order)
		}
	}
	return nil
}

// EnsureValid runs a deferred content validation (PartFromViewsDeferred)
// exactly once and returns its verdict — nil for indexes built in memory or
// loaded through eagerly-validating paths. Safe for concurrent callers;
// sessions and Insert call it before the first navigation, so corrupt
// content surfaces as an error there rather than as a fault mid-query.
func (ix *Index) EnsureValid() error {
	ix.checkOnce.Do(func() {
		if ix.deferredCheck != nil {
			ix.checkErr = ix.deferredCheck()
			ix.deferredCheck = nil
		}
	})
	return ix.checkErr
}

// Timing returns the wall time each construction phase took. Zero for
// indexes loaded with Read (no construction happened).
func (ix *Index) Timing() BuildTiming { return ix.timing }

// SetWorkers bounds the goroutines later session initializations use
// (≤ 0 means GOMAXPROCS). Useful after Read, which has no Options.
func (ix *Index) SetWorkers(w int) { ix.workers = w }

// Insert extends the index with a graph already appended to the database
// (its ID must be the database's last, and this index must be the one whose
// range ends there — the last shard, in sharded deployments). Costs |V|
// vantage distances plus a tree descent. Sessions created before an Insert
// do not see the new graph; create a fresh Session afterwards. Not safe
// concurrently with queries.
func (ix *Index) Insert(id graph.ID) error {
	if err := ix.EnsureValid(); err != nil {
		return err
	}
	if int(id) != ix.db.Len()-1 {
		return fmt.Errorf("nbindex: inserting id %d, want the database's last id %d", id, ix.db.Len()-1)
	}
	if int(id-ix.base) != ix.vo.Len() {
		return fmt.Errorf("nbindex: inserting id %d, index covers [%d, %d)", id, ix.base, int(ix.base)+ix.vo.Len())
	}
	ix.thaw()
	if err := ix.vo.Insert(id, ix.m); err != nil {
		return err
	}
	ix.tree.Insert(id, ix.m)
	ix.embs = append(ix.embs, ged.NewEmbedding(ix.db.Graph(id)))
	// Rebuild the leaf map: inserting into a singleton tree restructures
	// node indexes, so a full O(nodes) rebuild is the safe (and still
	// cheap) choice. The flat form queries navigate is re-derived last, so
	// it always reflects the mutated tree.
	ix.leafOf = append(ix.leafOf, 0)
	for _, n := range ix.tree.Nodes() {
		if n.Leaf {
			ix.leafOf[n.Centroid-ix.base] = int32(n.Idx)
		}
	}
	ix.flat = ix.tree.Flatten()
	return nil
}

// thaw moves a view-backed index fully onto the heap so it can be mutated:
// the pointer tree is rebuilt from the flat form, the leaf map is copied out
// of the mapping (its elements are overwritten in place on insert), and the
// encoded embedding table is decoded into the eager slice. Built indexes are
// already heap-resident, so thaw is a no-op for them. Vantage rows need no
// thaw: views are handed out with cap == len, so the ordering's sorted
// insertions reallocate on first append.
func (ix *Index) thaw() {
	if ix.tree == nil {
		ix.tree = ix.flat.Rebuild()
	}
	if ix.embTab != nil {
		if ix.embs == nil {
			embs := make([]*ged.Embedding, ix.embTab.Len())
			for i := range embs {
				embs[i] = ix.embTab.At(i)
			}
			ix.embs = embs
		}
		ix.embTab = nil
	}
	ix.leafOf = append([]int32(nil), ix.leafOf...)
}

// Tree exposes the underlying NB-Tree in pointer form, materializing it from
// the flat representation if the index was opened over a mapping. Queries
// never call this — they navigate Flat — so view-backed indexes pay the
// rebuild only when something genuinely needs pointer nodes (legacy encoders,
// inspection, tests). Not safe concurrently with itself or with Insert.
func (ix *Index) Tree() *nbtree.Tree {
	if ix.tree == nil {
		ix.tree = ix.flat.Rebuild()
	}
	return ix.tree
}

// Flat exposes the array form of the NB-Tree every query navigates.
func (ix *Index) Flat() *nbtree.Flat { return ix.flat }

// VO exposes the vantage orderings (read-only).
func (ix *Index) VO() *vantage.Ordering { return ix.vo }

// Grid returns the indexed thresholds.
func (ix *Index) Grid() []float64 { return ix.grid }

// Base returns the first graph ID the index covers (0 for a full index).
func (ix *Index) Base() graph.ID { return ix.base }

// Count returns the number of graphs the index covers.
func (ix *Index) Count() int { return ix.vo.Len() }

// LeafIdx returns the tree node index of the leaf holding covered graph id.
// Callers reach it through a Session, whose construction already ran
// EnsureValid (newSession).
//
//lint:allow oncevalid validation ran in newSession before any Session method can call this
func (ix *Index) LeafIdx(id graph.ID) int { return int(ix.leafOf[id-ix.base]) }

// LeafOf returns the leaf map: covered graph ID minus Base() to flat node
// index. Read-only; the persistence writer serializes it directly.
func (ix *Index) LeafOf() []int32 { return ix.leafOf }

// EmbeddingTable returns the encoded embedding table of a view-backed index,
// or nil when the embeddings live decoded on the heap (see Embeddings).
func (ix *Index) EmbeddingTable() *ged.Table { return ix.embTab }

// Bytes approximates the index memory footprint: vantage orderings, the
// NB-Tree (Fig. 6(l)), and the filter embeddings — encoded table or decoded
// vectors, whichever form this index carries.
func (ix *Index) Bytes() int64 {
	b := ix.vo.Bytes() + ix.flat.Bytes()
	if ix.embTab != nil {
		return b + ix.embTab.Bytes()
	}
	for _, e := range ix.embs {
		b += e.Bytes()
	}
	return b
}

// GridSlot returns the position of the smallest indexed threshold ≥ theta,
// or len(grid) when theta exceeds every indexed threshold.
func (ix *Index) GridSlot(theta float64) int {
	return sort.SearchFloat64s(ix.grid, theta)
}

// Session is the initialization phase for one relevance function: π̂-vectors
// for every relevant graph plus the supporting relevance state. A Session
// answers any number of TopK calls at varying θ (interactive refinement)
// without repeating the initialization.
//
// After initialization a Session is read-only apart from the LastStats
// bookkeeping, which is mutex-guarded, so TopK and SweepTheta are safe to
// call from multiple goroutines concurrently (each call computes an
// independent answer). The index must not be mutated (Insert) while queries
// are in flight.
type Session struct {
	ix *Index
	// grid lists the thresholds the session's π̂-vectors are computed at:
	// the index grid by default, or a single direct threshold for sessions
	// opened with NewSessionAt (§7's "absence of interactive refinement"
	// optimization).
	grid []float64
	rel  []graph.ID
	// relPos maps a database ID to its position in rel, or −1.
	relPos []int
	// relCount[nodeIdx] counts relevant graphs under each NB-Tree node.
	relCount []int
	// piHat[leafNodeIdx][slot] upper-bounds |N_θgrid[slot](g) ∩ L_q| for the
	// leaf's graph; nil rows for irrelevant leaves.
	piHat [][]int32
	// batchUpdates enables the Theorems 6–8 style credit propagation; on by
	// default, disabled only for ablation measurements.
	batchUpdates bool
	// statsMu guards lastStats; every other Session field is immutable after
	// initialization, which is what makes concurrent TopK calls safe.
	statsMu   sync.Mutex
	lastStats QueryStats // guarded by statsMu
}

// SetBatchUpdates toggles the cluster-batched bound updates (Theorems 6–8
// equivalent). Disabling them keeps answers identical — bounds merely stay
// looser, so the search verifies more leaves. Exists for the ablation bench.
func (s *Session) SetBatchUpdates(on bool) { s.batchUpdates = on }

// QueryStats describes the work one TopK call performed.
type QueryStats struct {
	PQPops         int
	VerifiedLeaves int
	CandidateScans int
	// ExactDistances counts threshold tests resolved by a full distance
	// computation (or an exact cached value); PrunedDistances counts tests
	// the bounded kernel resolved from a cheaper bound — a cascade stage or
	// a memoized interval — without completing the exact solve. Their sum is
	// the number of candidate threshold tests issued.
	ExactDistances  int
	PrunedDistances int
}

// NewSession runs the initialization phase for relevance function q,
// computing π̂-vectors over the full indexed θ grid so that any subsequent
// TopK threshold (interactive refinement) is supported.
func (ix *Index) NewSession(q core.Relevance) *Session {
	s, _ := ix.newSession(context.Background(), q, ix.grid)
	return s
}

// NewSessionContext is NewSession with cancellation: the per-relevant-graph
// vantage scans check the context between batches, and a cancelled
// initialization returns ctx.Err() with no session.
func (ix *Index) NewSessionContext(ctx context.Context, q core.Relevance) (*Session, error) {
	return ix.newSession(ctx, q, ix.grid)
}

// NewSessionAt runs the initialization phase for a single known threshold:
// the π̂ bounds are computed directly at theta instead of the whole grid
// (§7: "in the absence of interactive refinement, the π̂-vector is not
// required"). TopK at other thresholds remains correct but falls back to
// trivial bounds, so use NewSession when θ will be refined.
func (ix *Index) NewSessionAt(q core.Relevance, theta float64) *Session {
	s, _ := ix.newSession(context.Background(), q, []float64{theta})
	return s
}

func (ix *Index) newSession(ctx context.Context, q core.Relevance, grid []float64) (*Session, error) {
	if err := ix.EnsureValid(); err != nil {
		return nil, err
	}
	if ix.base != 0 || ix.vo.Len() != ix.db.Len() {
		return nil, fmt.Errorf("nbindex: sessions require a full-database index, this one covers [%d, %d); use internal/shard's coordinator for parts",
			ix.base, int(ix.base)+ix.vo.Len())
	}
	s := &Session{ix: ix, grid: grid, batchUpdates: true}
	s.rel = core.Relevant(ix.db, q)
	s.relPos = make([]int, ix.db.Len())
	for i := range s.relPos {
		s.relPos[i] = -1
	}
	for i, id := range s.rel {
		s.relPos[id] = i
	}
	f := ix.flat
	s.relCount = make([]int, f.Len())
	for i := f.Len() - 1; i >= 0; i-- {
		if f.Leaves[i] == 1 {
			if s.relPos[f.Centroids[i]] >= 0 {
				s.relCount[i] = 1
			}
			continue
		}
		for c := f.FirstChild[i]; c != -1; c = f.NextSibling[c] {
			s.relCount[i] += s.relCount[c]
		}
	}
	// π̂-vectors: one vantage scan per relevant graph at the largest indexed
	// threshold; each candidate's vantage lower bound assigns it to every
	// grid slot it belongs to. Rows are independent and each lands in its own
	// piHat slot, so the scans run on the worker pool without affecting the
	// result.
	s.piHat = make([][]int32, f.Len())
	if len(grid) > 0 && len(s.rel) > 0 {
		thetaMax := grid[len(grid)-1]
		isRel := func(id graph.ID) bool { return s.relPos[id] >= 0 }
		err := pool.Ranges(ctx, len(s.rel), ix.workers, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				id := s.rel[i]
				row := make([]int32, len(grid))
				for _, c := range ix.vo.CandidatesWithLB(id, thetaMax, isRel) {
					slot := sort.SearchFloat64s(grid, c.LB)
					for t := slot; t < len(grid); t++ {
						row[t]++
					}
				}
				s.piHat[ix.LeafIdx(id)] = row
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// RelevantCount returns |L_q| for the session.
func (s *Session) RelevantCount() int { return len(s.rel) }

// LastStats returns statistics from the most recently completed TopK call.
// With concurrent TopK calls in flight, "most recent" means whichever call
// finished last.
func (s *Session) LastStats() QueryStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.lastStats
}

// PiHatBytes reports the memory consumed by the π̂-vectors (the query-time
// component of the footprint reported in Fig. 6(l)).
func (s *Session) PiHatBytes() int64 {
	var b int64
	for _, row := range s.piHat {
		b += int64(len(row)) * 4
	}
	return b
}

// TopK runs the search-and-update phase (Alg. 2 driven greedy) at threshold
// theta with budget k. The answer matches the baseline greedy exactly
// (maximum marginal gain, ties toward the lower graph ID; picks stop when no
// candidate improves coverage).
func (s *Session) TopK(theta float64, k int) (*core.Result, error) {
	return s.TopKContext(context.Background(), theta, k)
}

// TopKContext is TopK with cancellation: the context is checked on entry, at
// every greedy pick, and periodically inside the best-first search, so a
// cancelled or expired context makes the call return ctx.Err() promptly
// without publishing stats for the abandoned query.
func (s *Session) TopKContext(ctx context.Context, theta float64, k int) (*core.Result, error) {
	if math.IsNaN(theta) {
		return nil, fmt.Errorf("nbindex: theta is NaN")
	}
	if theta < 0 {
		return nil, fmt.Errorf("nbindex: negative theta %v", theta)
	}
	if k <= 0 {
		return nil, fmt.Errorf("nbindex: non-positive k %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix := s.ix
	f := ix.flat
	res := &core.Result{Relevant: len(s.rel)}
	// Work stats accumulate in a local so concurrent TopK calls never share
	// mutable state; the final store publishes them for LastStats and folds
	// them into the index's telemetry aggregates.
	var st QueryStats
	finish := func() {
		s.statsMu.Lock()
		s.lastStats = st
		s.statsMu.Unlock()
		ix.tel.Load().Observe(st)
	}
	if len(s.rel) == 0 {
		finish()
		return res, nil
	}

	// Working bound state for this θ: the smallest session-grid threshold
	// ≥ θ, whose π̂ column upper-bounds the θ neighborhoods.
	slot := sort.SearchFloat64s(s.grid, theta)
	leafBound := func(idx int) int32 {
		row := s.piHat[idx]
		if row == nil {
			return -1 // irrelevant leaf: never selectable
		}
		if slot >= len(row) {
			return int32(len(s.rel)) // θ beyond the grid: trivial bound
		}
		return row[slot]
	}
	// sub[nodeIdx]: permanent per-subtree gain subtraction (credits).
	sub := make([]int32, f.Len())
	// F[nodeIdx] = max over relevant leaves l under the node of
	// (π̂init(l) − Σ sub on the path l..node); −1 where no relevant leaf.
	F := make([]int32, f.Len())
	for i := f.Len() - 1; i >= 0; i-- {
		if f.Leaves[i] == 1 {
			F[i] = leafBound(i)
			continue
		}
		best := int32(-1)
		for c := f.FirstChild[i]; c != -1; c = f.NextSibling[c] {
			if F[c] > best {
				best = F[c]
			}
		}
		F[i] = best
	}
	// subAbove sums the credits strictly above a node.
	subAbove := func(n int32) int32 {
		var t int32
		for p := f.Parents[n]; p != -1; p = f.Parents[p] {
			t += sub[p]
		}
		return t
	}
	currentBound := func(n int32) int32 { return F[n] - subAbove(n) }

	covered := bitset.New(len(s.rel))
	inAnswer := make([]bool, len(s.rel))
	includeUncovered := func(id graph.ID) bool {
		p := s.relPos[id]
		return p >= 0 && !covered.Contains(p)
	}

	// applyCredit records that relevant graph id became covered: one credit
	// at its highest diameter ≤ θ ancestor, with F recomputed upward.
	applyCredit := func(id graph.ID) {
		//lint:allow oncevalid newSession validated the index before this Session method could run
		a := ix.leafOf[id-ix.base]
		for p := f.Parents[a]; p != -1 && f.Diameters[p] <= theta; p = f.Parents[p] {
			a = p
		}
		sub[a]++
		// Recompute F from a to the root.
		for n := a; n != -1; n = f.Parents[n] {
			var best int32
			if f.Leaves[n] == 1 {
				best = leafBound(int(n))
			} else {
				best = -1
				for c := f.FirstChild[n]; c != -1; c = f.NextSibling[c] {
					if F[c] > best {
						best = F[c]
					}
				}
			}
			nf := best - sub[n]
			if nf == F[n] && n != a {
				break // no change propagates further
			}
			F[n] = nf
		}
	}

	for len(res.Answer) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best, bestGain := graph.ID(-1), int32(0)
		var bestNbrs []int // relevant positions newly covered by best
		pq := &entryHeap{}
		if b := currentBound(0); b > 0 {
			pq.push(entry{bound: b, node: 0})
		}
		for len(*pq) > 0 {
			e := pq.pop()
			st.PQPops++
			// Periodic cancellation check: cheap relative to a pop (one
			// atomic load every 256), yet bounds the abort latency of even a
			// pathological single-pick search.
			if st.PQPops&255 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			// The heap is ordered by bound, so once the best remaining bound
			// drops below the verified best gain the pick is settled. Bounds
			// equal to the best gain are still explored so that ties resolve
			// toward the lowest graph ID, matching the baseline greedy.
			if e.bound < bestGain {
				break
			}
			// Lazy re-evaluation: credits may have shrunk the bound since
			// insertion.
			if cur := currentBound(e.node); cur < e.bound {
				if cur >= bestGain && cur > 0 {
					pq.push(entry{bound: cur, node: e.node})
				}
				continue
			}
			if f.Leaves[e.node] == 1 {
				cent := f.Centroids[e.node]
				p := s.relPos[cent]
				if p < 0 || inAnswer[p] {
					continue
				}
				gain, nbrs := s.verify(cent, theta, includeUncovered, &st)
				if gain > bestGain || (gain == bestGain && gain > 0 && cent < best) {
					best, bestGain, bestNbrs = cent, gain, nbrs
				}
				continue
			}
			for c := f.FirstChild[e.node]; c != -1; c = f.NextSibling[c] {
				if b := currentBound(c); b > 0 && b >= bestGain {
					pq.push(entry{bound: b, node: c})
				}
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		// Pick best; update coverage and credits.
		inAnswer[s.relPos[best]] = true
		res.Answer = append(res.Answer, best)
		res.Gains = append(res.Gains, int(bestGain))
		for _, p := range bestNbrs {
			covered.Add(p)
			if s.batchUpdates {
				applyCredit(s.rel[p])
			}
		}
	}
	res.Covered = covered.Count()
	res.Power = float64(res.Covered) / float64(res.Relevant)
	finish()
	return res, nil
}

// verify computes the exact marginal gain of graph g at threshold theta:
// vantage candidates restricted to uncovered relevant graphs, then threshold
// tests only for those (Alg. 2 lines 8–11). Each test goes through
// metric.Decide, so a bounded metric can prune it with a cheap bound instead
// of a full distance computation — the decision is exactly d ≤ θ either way,
// which is why answers do not depend on the kernel. It returns the gain and
// the relevant positions that would become covered. Work is tallied into st,
// the calling TopK's local stats.
func (s *Session) verify(g graph.ID, theta float64, include func(graph.ID) bool, st *QueryStats) (int32, []int) {
	st.VerifiedLeaves++
	var nbrs []int
	for _, id := range s.ix.vo.Candidates(g, theta, include) {
		st.CandidateScans++
		if id != g {
			leq, pruned := metric.Decide(s.ix.m, g, id, theta)
			if pruned {
				st.PrunedDistances++
			} else {
				st.ExactDistances++
			}
			if !leq {
				continue
			}
		}
		nbrs = append(nbrs, s.relPos[id])
	}
	return int32(len(nbrs)), nbrs
}

// entry is a PQ element: a flat NB-Tree node index with its gain upper bound.
type entry struct {
	bound int32
	node  int32
}

// entryHeap is a typed max-heap on bound, ties toward lower node index for
// determinism. Entries are stored by value in one slice — no container/heap,
// no interface boxing, no per-push allocation. (bound, node) keys are
// unique at any instant — a node is re-pushed only after its stale entry is
// popped — so the pop order is a strict total order independent of the heap
// implementation.
type entryHeap []entry

func (h entryHeap) less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	return h[i].node < h[j].node
}

// push inserts e and sifts it up.
func (h *entryHeap) push(e entry) {
	*h = append(*h, e)
	a := *h
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

// pop removes and returns the top entry.
func (h *entryHeap) pop() entry {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	*h = a
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && a.less(r, c) {
			c = r
		}
		if !a.less(c, i) {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	return top
}

// ChooseGridFromLog picks up to gridSize thresholds from a log of past
// query thresholds by sampling quantiles of the logged distribution —
// §7.1's scheme 1: "the thresholds to index can be sampled from that
// distribution". Duplicate quantile values collapse, so the result may be
// shorter than gridSize.
func ChooseGridFromLog(log []float64, gridSize int) []float64 {
	if gridSize <= 0 || len(log) == 0 {
		return nil
	}
	sorted := append([]float64(nil), log...)
	sort.Float64s(sorted)
	grid := make([]float64, 0, gridSize)
	for i := 1; i <= gridSize; i++ {
		q := float64(i) / float64(gridSize+1)
		v := sorted[int(q*float64(len(sorted)-1))]
		if len(grid) == 0 || v > grid[len(grid)-1] {
			grid = append(grid, v)
		}
	}
	if max := sorted[len(sorted)-1]; len(grid) == 0 || grid[len(grid)-1] < max {
		grid = append(grid, max)
	}
	return grid
}

// ChooseGrid picks gridSize thresholds for the π̂-vector from a sampled
// distance distribution with the default worker count and no cancellation.
// See ChooseGridContext.
func ChooseGrid(db *graph.Database, m metric.Metric, gridSize, samplePairs int, rng *rand.Rand) []float64 {
	grid, _ := ChooseGridContext(context.Background(), db, m, gridSize, samplePairs, 0, rng)
	return grid
}

// ChooseGridContext picks gridSize thresholds for the π̂-vector from a
// sampled distance distribution, placing thresholds at equally spaced
// quantiles so that steep regions of the cumulative distribution get
// proportionally more thresholds (§7.1, scheme 2).
//
// The pairs are drawn from rng sequentially — the RNG stream is identical
// for any worker count — and only the distance evaluations fan out, each
// writing its pre-assigned slot, so the grid is deterministic in
// (db, samplePairs, rng seed) alone. A cancelled context returns ctx.Err().
func ChooseGridContext(ctx context.Context, db *graph.Database, m metric.Metric, gridSize, samplePairs, workers int, rng *rand.Rand) ([]float64, error) {
	if gridSize <= 0 || db.Len() < 2 {
		return nil, ctx.Err()
	}
	type pair struct{ a, b graph.ID }
	pairs := make([]pair, 0, samplePairs)
	for i := 0; i < samplePairs; i++ {
		a := graph.ID(rng.Intn(db.Len()))
		b := graph.ID(rng.Intn(db.Len()))
		if a == b {
			continue
		}
		pairs = append(pairs, pair{a, b})
	}
	if len(pairs) == 0 {
		return nil, ctx.Err()
	}
	ds := make([]float64, len(pairs))
	if err := pool.Ranges(ctx, len(pairs), workers, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ds[i] = m.Distance(pairs[i].a, pairs[i].b)
		}
	}); err != nil {
		return nil, err
	}
	sort.Float64s(ds)
	grid := make([]float64, 0, gridSize)
	for i := 1; i <= gridSize; i++ {
		q := float64(i) / float64(gridSize+1)
		v := ds[int(q*float64(len(ds)-1))]
		if len(grid) == 0 || v > grid[len(grid)-1] {
			grid = append(grid, v)
		}
	}
	// Always index past the sampled maximum so every realistic θ is covered.
	if max := ds[len(ds)-1]; len(grid) == 0 || grid[len(grid)-1] < max {
		grid = append(grid, max)
	}
	return grid, nil
}
