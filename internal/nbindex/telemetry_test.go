package nbindex

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"graphrep/internal/graph"
	"graphrep/internal/telemetry"
)

func TestTelemetryAggregatesQueryStats(t *testing.T) {
	db, m := clusteredDB(t, 4, 10, 11)
	ix := buildIndex(t, db, m, []float64{2, 4, 8, 16}, 12)
	reg := telemetry.NewRegistry()
	tel, err := NewTelemetry(reg)
	if err != nil {
		t.Fatal(err)
	}
	ix.SetTelemetry(tel)
	if ix.Telemetry() != tel {
		t.Fatal("Telemetry() did not return the attached aggregator")
	}
	sess := ix.NewSession(func(f []float64) bool { return f[0] > 0.3 })
	var want QueryStats
	thetas := []float64{2, 5, 10, 0}
	for _, theta := range thetas {
		if _, err := sess.TopK(theta, 4); err != nil {
			t.Fatal(err)
		}
		st := sess.LastStats()
		want.PQPops += st.PQPops
		want.VerifiedLeaves += st.VerifiedLeaves
		want.CandidateScans += st.CandidateScans
		want.ExactDistances += st.ExactDistances
		want.PrunedDistances += st.PrunedDistances
	}
	if got := tel.Queries.Value(); got != int64(len(thetas)) {
		t.Errorf("queries = %d, want %d", got, len(thetas))
	}
	// Folding per-query stats into the histograms must equal summing the
	// per-query stats by hand — the acceptance criterion for aggregation.
	if got := tel.Totals(); !reflect.DeepEqual(got, want) {
		t.Errorf("totals = %+v, want %+v", got, want)
	}
	if tel.PQPops.Count() != int64(len(thetas)) {
		t.Errorf("histogram observations = %d, want %d", tel.PQPops.Count(), len(thetas))
	}
	// The metrics render under their nbindex_* names.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"graphrep_nbindex_queries_total", "graphrep_nbindex_pq_pops_count",
		"graphrep_nbindex_verified_leaves_count", "graphrep_nbindex_candidate_scans_count",
		"graphrep_nbindex_exact_distances_sum",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	// Registering the family twice on one registry fails cleanly.
	if _, err := NewTelemetry(reg); !errors.Is(err, telemetry.ErrDuplicate) {
		t.Errorf("second NewTelemetry: err = %v, want ErrDuplicate", err)
	}
	// Detaching stops aggregation.
	ix.SetTelemetry(nil)
	if _, err := sess.TopK(5, 4); err != nil {
		t.Fatal(err)
	}
	if got := tel.Queries.Value(); got != int64(len(thetas)) {
		t.Errorf("queries after detach = %d, want %d", got, len(thetas))
	}
}

// A zero-relevant query still counts as a query and records zero work.
func TestTelemetryEmptyRelevantSet(t *testing.T) {
	db, m := clusteredDB(t, 2, 5, 13)
	ix := buildIndex(t, db, m, []float64{4}, 14)
	tel, err := NewTelemetry(telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ix.SetTelemetry(tel)
	sess := ix.NewSession(func([]float64) bool { return false })
	if _, err := sess.TopK(4, 3); err != nil {
		t.Fatal(err)
	}
	if tel.Queries.Value() != 1 {
		t.Errorf("queries = %d, want 1", tel.Queries.Value())
	}
	if got := tel.Totals(); got != (QueryStats{}) {
		t.Errorf("totals = %+v, want zero", got)
	}
}

// TopK must be safe and deterministic under concurrent callers: one shared
// session queried from many goroutines at many thresholds must return
// exactly the sequential answers, and the shared telemetry must not lose
// updates. Run with -race.
func TestTopKConcurrent(t *testing.T) {
	db, m := clusteredDB(t, 5, 12, 21)
	ix := buildIndex(t, db, m, []float64{2, 4, 8, 16, 64}, 22)
	tel, err := NewTelemetry(telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ix.SetTelemetry(tel)
	relevance := func(f []float64) bool { return f[0] > 0.3 }
	sess := ix.NewSession(relevance)
	thetas := []float64{1, 3, 4, 6.5, 10, 20, 100}
	// Sequential ground truth per θ.
	want := make(map[float64]string, len(thetas))
	for _, theta := range thetas {
		res, err := sess.TopK(theta, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[theta] = resultKey(res.Answer, res.Gains, res.Covered)
	}
	base := tel.Queries.Value()

	const workers, iters = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers share sess; the rest get private sessions,
			// exercising both sharing modes concurrently.
			s := sess
			if w%2 == 1 {
				s = ix.NewSession(relevance)
			}
			for i := 0; i < iters; i++ {
				theta := thetas[(w+i)%len(thetas)]
				res, err := s.TopK(theta, 5)
				if err != nil {
					errs <- err
					return
				}
				if got := resultKey(res.Answer, res.Gains, res.Covered); got != want[theta] {
					t.Errorf("worker %d θ=%v: %s, want %s", w, theta, got, want[theta])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := tel.Queries.Value() - base; got != workers*iters {
		t.Errorf("concurrent queries recorded = %d, want %d", got, workers*iters)
	}
}

// resultKey flattens an answer into a comparable string.
func resultKey(answer []graph.ID, gains []int, covered int) string {
	return fmt.Sprintf("%v|%v|%d", answer, gains, covered)
}
