package nbindex

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"graphrep/internal/graph"
)

func TestIndexEncodeRoundTrip(t *testing.T) {
	db, m := clusteredDB(t, 4, 10, 50)
	grid := []float64{2, 4, 8, 16, 64}
	ix := buildIndex(t, db, m, grid, 51)
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Read(&buf, db, m)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got.Grid(), ix.Grid()) {
		t.Errorf("grid differs: %v vs %v", got.Grid(), ix.Grid())
	}
	// Queries through the reloaded index must match the original exactly.
	relevance := func(f []float64) bool { return f[0] > 0.3 }
	for _, theta := range []float64{3, 6.5, 20} {
		want, err := ix.NewSession(relevance).TopK(theta, 6)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.NewSession(relevance).TopK(theta, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Answer, have.Answer) || want.Power != have.Power {
			t.Fatalf("θ=%v: reloaded index answers differently: %v vs %v", theta, have.Answer, want.Answer)
		}
	}
}

func TestIndexReadRejectsCorruptInput(t *testing.T) {
	db, m := clusteredDB(t, 2, 6, 52)
	ix := buildIndex(t, db, m, []float64{4}, 53)
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXXXXXX"), full[8:]...),
		"truncated":   full[:len(full)/2],
		"header only": full[:16],
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data), db, m); err == nil {
			t.Errorf("%s: Read succeeded", name)
		}
	}

	// Mismatched database size.
	other, om := clusteredDB(t, 2, 3, 54)
	if _, err := Read(bytes.NewReader(full), other, om); err == nil {
		t.Error("Read accepted index for a different database size")
	}
}

func TestBatchUpdateAblation(t *testing.T) {
	db, m := clusteredDB(t, 5, 12, 55)
	ix := buildIndex(t, db, m, []float64{2, 4, 8, 16, 64}, 56)
	relevance := func(f []float64) bool { return f[0] > 0.25 }
	theta, k := 4.0, 10

	on := ix.NewSession(relevance)
	resOn, err := on.TopK(theta, k)
	if err != nil {
		t.Fatal(err)
	}
	statsOn := on.LastStats()

	off := ix.NewSession(relevance)
	off.SetBatchUpdates(false)
	resOff, err := off.TopK(theta, k)
	if err != nil {
		t.Fatal(err)
	}
	statsOff := off.LastStats()

	// Answers must be identical — the updates only tighten bounds.
	if !reflect.DeepEqual(resOn.Answer, resOff.Answer) || resOn.Power != resOff.Power {
		t.Fatalf("ablation changed the answer: %v vs %v", resOn.Answer, resOff.Answer)
	}
	// With updates disabled the search can only do more (or equal) work.
	if statsOff.VerifiedLeaves < statsOn.VerifiedLeaves {
		t.Errorf("batch updates off verified fewer leaves (%d) than on (%d)",
			statsOff.VerifiedLeaves, statsOn.VerifiedLeaves)
	}
	t.Logf("verified leaves: updates on=%d off=%d", statsOn.VerifiedLeaves, statsOff.VerifiedLeaves)
}

// Randomized cross-check: for many random clustered databases, serialized
// and live indexes answer identically at a random θ.
func TestEncodeRoundTripRandomized(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(60 + seed))
		db, m := clusteredDB(t, 2+rng.Intn(4), 4+rng.Intn(8), 61+seed)
		ix := buildIndex(t, db, m, []float64{2, 8, 32}, 62+seed)
		var buf bytes.Buffer
		if err := ix.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf, db, m)
		if err != nil {
			t.Fatal(err)
		}
		theta := rng.Float64() * 20
		a, err := ix.NewSession(func([]float64) bool { return true }).TopK(theta, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.NewSession(func([]float64) bool { return true }).TopK(theta, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Answer, b.Answer) {
			t.Fatalf("seed %d: answers differ: %v vs %v", seed, a.Answer, b.Answer)
		}
		_ = graph.ID(0)
	}
}

func BenchmarkTopKBatchUpdatesOn(b *testing.B) {
	db, m := clusteredDB(nil, 8, 20, 70)
	ix := buildIndex(nil, db, m, []float64{2, 4, 8, 16, 64}, 71)
	rel := func(f []float64) bool { return f[0] > 0.25 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := ix.NewSession(rel)
		if _, err := sess.TopK(4, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKBatchUpdatesOff(b *testing.B) {
	db, m := clusteredDB(nil, 8, 20, 70)
	ix := buildIndex(nil, db, m, []float64{2, 4, 8, 16, 64}, 71)
	rel := func(f []float64) bool { return f[0] > 0.25 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := ix.NewSession(rel)
		sess.SetBatchUpdates(false)
		if _, err := sess.TopK(4, 10); err != nil {
			b.Fatal(err)
		}
	}
}
