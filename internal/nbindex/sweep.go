package nbindex

import (
	"context"
	"fmt"
	"sort"
)

// ThetaPoint is one row of a threshold sweep: the answer quality obtained at
// one θ.
type ThetaPoint struct {
	Theta float64
	// Power is π_θ(A) for the greedy answer at this θ.
	Power float64
	// CR is the compression ratio |N_θ(A)|/|A|.
	CR float64
	// AnswerSize is |A| (may be under k when coverage saturates).
	AnswerSize int
}

// SweepTheta answers the query at every indexed threshold (plus any extra
// thresholds given) and reports the quality trade-off curve. This powers the
// "optimal zoom level" workflow of §7: rather than guessing θ, a user sweeps
// the indexed grid — cheap, because the session is reused — and picks the
// level whose coverage/granularity trade-off fits the task.
func (s *Session) SweepTheta(k int, extra ...float64) ([]ThetaPoint, error) {
	return s.SweepThetaContext(context.Background(), k, extra...)
}

// SweepThetaContext is SweepTheta with cancellation: the context is passed
// to every per-threshold TopK call, so an expired deadline or a dropped
// client aborts the sweep between (or inside) thresholds with ctx.Err().
func (s *Session) SweepThetaContext(ctx context.Context, k int, extra ...float64) ([]ThetaPoint, error) {
	if k <= 0 {
		return nil, fmt.Errorf("nbindex: non-positive k %d", k)
	}
	thetas := append(append([]float64(nil), s.grid...), extra...)
	sort.Float64s(thetas)
	// Deduplicate.
	out := thetas[:0]
	for i, t := range thetas {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	thetas = out
	points := make([]ThetaPoint, 0, len(thetas))
	for _, theta := range thetas {
		if theta < 0 {
			return nil, fmt.Errorf("nbindex: negative theta %v in sweep", theta)
		}
		res, err := s.TopKContext(ctx, theta, k)
		if err != nil {
			return nil, err
		}
		points = append(points, ThetaPoint{
			Theta:      theta,
			Power:      res.Power,
			CR:         res.CompressionRatio(),
			AnswerSize: len(res.Answer),
		})
	}
	return points, nil
}

// SuggestTheta picks the knee of a sweep curve: the threshold after which
// additional radius buys little additional coverage. It maximizes the
// distance between the normalized coverage curve and the diagonal — the
// standard knee heuristic. Returns the suggested point and the full curve.
func SuggestTheta(points []ThetaPoint) (ThetaPoint, error) {
	if len(points) == 0 {
		return ThetaPoint{}, fmt.Errorf("nbindex: empty sweep")
	}
	maxTheta := points[len(points)-1].Theta
	maxPower := 0.0
	for _, p := range points {
		if p.Power > maxPower {
			maxPower = p.Power
		}
	}
	if maxTheta == 0 || maxPower == 0 {
		return points[0], nil
	}
	best, bestGap := points[0], -1.0
	for _, p := range points {
		gap := p.Power/maxPower - p.Theta/maxTheta
		if gap > bestGap {
			best, bestGap = p, gap
		}
	}
	return best, nil
}
