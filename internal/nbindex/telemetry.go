package nbindex

import (
	"graphrep/internal/telemetry"
)

// workBuckets covers the per-query work counters (PQ pops, verified leaves,
// candidate scans, exact distances), which range from a handful on tiny
// relevant sets to hundreds of thousands on large ones.
var workBuckets = telemetry.ExponentialBuckets(1, 4, 10) // 1 … 262144

// Telemetry folds the QueryStats of every completed TopK call into
// cumulative per-phase histograms, giving a running picture of how hard the
// index is working: how many priority-queue pops, verified leaves, candidate
// scans, and exact distance computations queries cost — the paper's §8
// efficiency measures, aggregated across the process lifetime instead of
// per query. All updates are atomic; one Telemetry may be shared by any
// number of concurrent sessions.
type Telemetry struct {
	Queries         *telemetry.Counter
	PQPops          *telemetry.Histogram
	VerifiedLeaves  *telemetry.Histogram
	CandidateScans  *telemetry.Histogram
	ExactDistances  *telemetry.Histogram
	PrunedDistances *telemetry.Histogram
}

// NewTelemetry registers the nbindex metric family on r and returns the
// aggregator. Metric names are fixed (graphrep_nbindex_*), so registering twice on
// one registry fails with telemetry.ErrDuplicate.
func NewTelemetry(r *telemetry.Registry) (*Telemetry, error) {
	t := &Telemetry{}
	var err error
	if t.Queries, err = r.NewCounter("graphrep_nbindex_queries_total",
		"Completed TopK calls across all sessions."); err != nil {
		return nil, err
	}
	if t.PQPops, err = r.NewHistogram("graphrep_nbindex_pq_pops",
		"Priority-queue pops per TopK call (Alg. 2 search effort).", workBuckets); err != nil {
		return nil, err
	}
	if t.VerifiedLeaves, err = r.NewHistogram("graphrep_nbindex_verified_leaves",
		"Leaves exactly verified per TopK call (candidates surviving the bound pruning).", workBuckets); err != nil {
		return nil, err
	}
	if t.CandidateScans, err = r.NewHistogram("graphrep_nbindex_candidate_scans",
		"Vantage candidates scanned per TopK call (Theorem 5 candidate set sizes).", workBuckets); err != nil {
		return nil, err
	}
	if t.ExactDistances, err = r.NewHistogram("graphrep_nbindex_exact_distances",
		"Exact distance computations per TopK call (the paper's central cost measure).", workBuckets); err != nil {
		return nil, err
	}
	if t.PrunedDistances, err = r.NewHistogram("graphrep_nbindex_pruned_distances",
		"Candidate threshold tests per TopK call resolved by the bounded kernel without a full solve.", workBuckets); err != nil {
		return nil, err
	}
	return t, nil
}

// Observe folds one query's stats in. Nil-safe so the query path needs no
// branch at the call site beyond the method call itself. Exported for the
// internal/shard coordinator, whose scatter-gather TopK reports through the
// same aggregator as single-index sessions.
func (t *Telemetry) Observe(st QueryStats) {
	if t == nil {
		return
	}
	t.Queries.Inc()
	t.PQPops.Observe(float64(st.PQPops))
	t.VerifiedLeaves.Observe(float64(st.VerifiedLeaves))
	t.CandidateScans.Observe(float64(st.CandidateScans))
	t.ExactDistances.Observe(float64(st.ExactDistances))
	t.PrunedDistances.Observe(float64(st.PrunedDistances))
}

// Totals returns the cumulative sums across all observed queries, for
// consistency checks against summing per-query QueryStats by hand.
func (t *Telemetry) Totals() QueryStats {
	if t == nil {
		return QueryStats{}
	}
	return QueryStats{
		PQPops:          int(t.PQPops.Sum()),
		VerifiedLeaves:  int(t.VerifiedLeaves.Sum()),
		CandidateScans:  int(t.CandidateScans.Sum()),
		ExactDistances:  int(t.ExactDistances.Sum()),
		PrunedDistances: int(t.PrunedDistances.Sum()),
	}
}

// SetTelemetry attaches an aggregator to the index: every TopK call on every
// session of this index (existing and future) folds its QueryStats in. Pass
// nil to detach. Safe to call concurrently with queries; a query that is
// already past its final stats store reports to whichever aggregator was
// attached when it finished.
func (ix *Index) SetTelemetry(t *Telemetry) { ix.tel.Store(t) }

// Telemetry returns the attached aggregator, or nil.
func (ix *Index) Telemetry() *Telemetry { return ix.tel.Load() }
