package nbindex

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/vantage"
)

// clusteredDB builds a database with planted structural families so that
// representative queries have meaningful cluster structure: nFamilies
// scaffolds, each perturbed into members.
func clusteredDB(t testing.TB, nFamilies, perFamily int, seed int64) (*graph.Database, metric.Metric) {
	if t != nil {
		t.Helper()
	}
	rng := rand.New(rand.NewSource(seed))
	var graphs []*graph.Graph
	id := 0
	for f := 0; f < nFamilies; f++ {
		order := 6 + rng.Intn(5)
		base := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			base.AddVertex(graph.Label(rng.Intn(4)))
		}
		for v := 0; v+1 < order; v++ {
			base.AddEdge(v, v+1, 0)
		}
		for u := 0; u < order; u++ {
			for v := u + 2; v < order; v++ {
				if rng.Float64() < 0.15 {
					base.AddEdge(u, v, 0)
				}
			}
		}
		scaffold, err := base.Build(0)
		if err != nil {
			panic(err)
		}
		for p := 0; p < perFamily; p++ {
			b := scaffold.Clone(graph.ID(id))
			// Perturb: relabel one vertex.
			member, err := b.Build(graph.ID(id))
			if err != nil {
				panic(err)
			}
			// Rebuild with one random label flip for diversity.
			bb := graph.NewBuilder(member.Order())
			for v := 0; v < member.Order(); v++ {
				l := member.VertexLabel(v)
				if rng.Intn(member.Order()) == v {
					l = graph.Label(rng.Intn(4))
				}
				bb.AddVertex(l)
			}
			for _, e := range member.Edges() {
				bb.AddEdge(e.U, e.V, e.Label)
			}
			bb.SetFeatures([]float64{rng.Float64(), float64(f)})
			g, err := bb.Build(graph.ID(id))
			if err != nil {
				panic(err)
			}
			graphs = append(graphs, g)
			id++
		}
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func buildIndex(t testing.TB, db *graph.Database, m metric.Metric, grid []float64, seed int64) *Index {
	if t != nil {
		t.Helper()
	}
	ix, err := Build(db, m, Options{NumVPs: 5, Branching: 4, ThetaGrid: grid}, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	return ix
}

func TestBuildErrors(t *testing.T) {
	db, m := clusteredDB(t, 3, 5, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(db, m, Options{NumVPs: 2, Branching: 2, ThetaGrid: nil}, rng); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Build(db, m, Options{NumVPs: 2, Branching: 2, ThetaGrid: []float64{5, 3}}, rng); err == nil {
		t.Error("unsorted grid accepted")
	}
	if _, err := Build(db, m, Options{NumVPs: 0, Branching: 2, ThetaGrid: []float64{1}}, rng); err == nil {
		t.Error("NumVPs=0 accepted")
	}
	empty, _ := graph.NewDatabase(nil)
	if _, err := Build(empty, m, Options{NumVPs: 1, Branching: 2, ThetaGrid: []float64{1}}, rng); err == nil {
		t.Error("empty db accepted")
	}
}

func TestGridSlot(t *testing.T) {
	db, m := clusteredDB(t, 2, 4, 2)
	ix := buildIndex(t, db, m, []float64{2, 5, 10}, 3)
	cases := []struct {
		theta float64
		want  int
	}{{0, 0}, {2, 0}, {3, 1}, {5, 1}, {9, 2}, {10, 2}, {11, 3}}
	for _, c := range cases {
		if got := ix.GridSlot(c.theta); got != c.want {
			t.Errorf("GridSlot(%v) = %d, want %d", c.theta, got, c.want)
		}
	}
}

// The central correctness property: the NB-Index greedy must return exactly
// the baseline greedy's answer (same picks, same order, same power) for any
// θ — both indexed and unindexed thresholds.
func TestTopKMatchesBaselineGreedy(t *testing.T) {
	db, m := clusteredDB(t, 5, 12, 4)
	ix := buildIndex(t, db, m, []float64{2, 4, 8, 16, 64}, 5)
	relevance := func(f []float64) bool { return f[0] > 0.3 }
	sess := ix.NewSession(relevance)
	for _, theta := range []float64{0, 1, 3, 4, 6.5, 10, 20, 100} {
		for _, k := range []int{1, 3, 10} {
			q := core.Query{Relevance: relevance, Theta: theta, K: k}
			want, err := core.BaselineGreedy(db, m, q)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			got, err := sess.TopK(theta, k)
			if err != nil {
				t.Fatalf("TopK(θ=%v,k=%d): %v", theta, k, err)
			}
			if !reflect.DeepEqual(got.Answer, want.Answer) {
				t.Fatalf("θ=%v k=%d: answer %v, want %v", theta, k, got.Answer, want.Answer)
			}
			if math.Abs(got.Power-want.Power) > 1e-12 || got.Covered != want.Covered {
				t.Fatalf("θ=%v k=%d: power %v/%d, want %v/%d", theta, k, got.Power, got.Covered, want.Power, want.Covered)
			}
			if !reflect.DeepEqual(got.Gains, want.Gains) {
				t.Fatalf("θ=%v k=%d: gains %v, want %v", theta, k, got.Gains, want.Gains)
			}
		}
	}
}

func TestTopKEmptyRelevantSet(t *testing.T) {
	db, m := clusteredDB(t, 2, 5, 6)
	ix := buildIndex(t, db, m, []float64{4}, 7)
	sess := ix.NewSession(func([]float64) bool { return false })
	res, err := sess.TopK(4, 5)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(res.Answer) != 0 || res.Power != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestTopKArgErrors(t *testing.T) {
	db, m := clusteredDB(t, 2, 5, 8)
	ix := buildIndex(t, db, m, []float64{4}, 9)
	sess := ix.NewSession(func([]float64) bool { return true })
	if _, err := sess.TopK(-1, 3); err == nil {
		t.Error("negative θ accepted")
	}
	if _, err := sess.TopK(3, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// Refinement: repeated TopK calls on one session at different θ must agree
// with fresh baseline runs — the session state must not leak across calls.
func TestRefinementReusesSessionCorrectly(t *testing.T) {
	db, m := clusteredDB(t, 4, 10, 10)
	ix := buildIndex(t, db, m, []float64{2, 4, 8, 16, 64}, 11)
	relevance := func(f []float64) bool { return f[0] > 0.2 }
	sess := ix.NewSession(relevance)
	thetas := []float64{6, 5.4, 6.6, 4.9, 7.3, 6, 6} // zoom in/out pattern incl. repeats
	for _, theta := range thetas {
		want, err := core.BaselineGreedy(db, m, core.Query{Relevance: relevance, Theta: theta, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.TopK(theta, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Answer, want.Answer) {
			t.Fatalf("θ=%v: answer %v, want %v", theta, got.Answer, want.Answer)
		}
	}
}

// The index must issue far fewer exact distance computations than the
// quadratic baseline — the whole point of the paper.
func TestIndexSavesDistanceComputations(t *testing.T) {
	db, _ := clusteredDB(t, 6, 15, 12)
	base := metric.Star(db)
	relevance := func(f []float64) bool { return f[0] > 0.25 }
	theta := 4.0

	counterBase := metric.NewCounter(base)
	if _, err := core.BaselineGreedy(db, counterBase, core.Query{Relevance: relevance, Theta: theta, K: 10}); err != nil {
		t.Fatal(err)
	}

	counterIx := metric.NewCounter(base)
	cached := metric.NewCache(counterIx)
	ix := buildIndex(t, db, cached, []float64{2, 4, 8, 16, 64}, 13)
	buildCost := counterIx.Count()
	sess := ix.NewSession(relevance)
	if _, err := sess.TopK(theta, 10); err != nil {
		t.Fatal(err)
	}
	queryCost := counterIx.Count() - buildCost
	if queryCost >= counterBase.Count() {
		t.Errorf("index query used %d distances, baseline %d; expected savings", queryCost, counterBase.Count())
	}
	st := sess.LastStats()
	if st.VerifiedLeaves == 0 || st.PQPops == 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
}

func TestPiHatIsUpperBoundOnNeighborhoods(t *testing.T) {
	db, m := clusteredDB(t, 4, 8, 14)
	grid := []float64{2, 4, 8, 16, 64}
	ix := buildIndex(t, db, m, grid, 15)
	relevance := func(f []float64) bool { return f[0] > 0.3 }
	sess := ix.NewSession(relevance)
	rel := core.Relevant(db, relevance)
	for _, id := range rel {
		row := sess.piHat[ix.leafOf[id]]
		if row == nil {
			t.Fatalf("relevant graph %d has no π̂-vector", id)
		}
		for slot, theta := range grid {
			// True |N_θ(id) ∩ L_q|.
			n := 0
			for _, other := range rel {
				if m.Distance(id, other) <= theta {
					n++
				}
			}
			if int(row[slot]) < n {
				t.Fatalf("π̂[%d][θ=%v] = %d < true %d", id, theta, row[slot], n)
			}
		}
		// π̂ must be monotone in θ.
		for s := 1; s < len(row); s++ {
			if row[s] < row[s-1] {
				t.Fatalf("π̂ not monotone for %d: %v", id, row)
			}
		}
	}
}

// NewSessionAt initializes at one direct threshold; the answer must match
// the full-grid session at that threshold, and other thresholds must remain
// correct through the trivial-bound fallback.
func TestNewSessionAtDirectInit(t *testing.T) {
	db, m := clusteredDB(t, 4, 10, 30)
	ix := buildIndex(t, db, m, []float64{2, 4, 8, 16, 64}, 31)
	relevance := func(f []float64) bool { return f[0] > 0.3 }
	theta := 5.5
	direct := ix.NewSessionAt(relevance, theta)
	full := ix.NewSession(relevance)
	a, err := direct.TopK(theta, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := full.TopK(theta, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Answer, b.Answer) || a.Power != b.Power {
		t.Fatalf("direct session differs: %v vs %v", a.Answer, b.Answer)
	}
	// Off-threshold queries on a direct session stay correct (just slower).
	for _, other := range []float64{2, 9} {
		want, err := core.BaselineGreedy(db, m, core.Query{Relevance: relevance, Theta: other, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := direct.TopK(other, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Answer, want.Answer) {
			t.Fatalf("θ=%v on direct session: %v, want %v", other, got.Answer, want.Answer)
		}
	}
}

// Soak test: randomized cross-engine equivalence across many configurations.
// Every (database, grid, VP count, branching, θ, k) combination must produce
// the exact baseline-greedy answer through the index.
func TestCrossEngineEquivalenceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 12; trial++ {
		db, m := clusteredDB(t, 2+rng.Intn(5), 3+rng.Intn(12), int64(700+trial))
		gridSize := 1 + rng.Intn(5)
		grid := make([]float64, 0, gridSize)
		v := 1 + rng.Float64()*3
		for len(grid) < gridSize {
			grid = append(grid, v)
			v *= 1.5 + rng.Float64()*2
		}
		ix, err := Build(db, m, Options{
			NumVPs:    1 + rng.Intn(7),
			Branching: 2 + rng.Intn(6),
			ThetaGrid: grid,
		}, rand.New(rand.NewSource(int64(800+trial))))
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		cut := rng.Float64() * 0.8
		relevance := func(f []float64) bool { return f[0] > cut }
		sess := ix.NewSession(relevance)
		for q := 0; q < 4; q++ {
			theta := rng.Float64() * grid[len(grid)-1] * 1.5
			k := 1 + rng.Intn(12)
			want, err := core.BaselineGreedy(db, m, core.Query{Relevance: relevance, Theta: theta, K: k})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.TopK(theta, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Answer, want.Answer) {
				t.Fatalf("trial %d θ=%v k=%d: %v, want %v", trial, theta, k, got.Answer, want.Answer)
			}
		}
	}
}

// An Index is immutable after Build: concurrent sessions (each with its own
// working state) must produce the same answers as sequential ones.
func TestConcurrentSessions(t *testing.T) {
	db, m := clusteredDB(t, 4, 10, 90)
	ix := buildIndex(t, db, m, []float64{2, 4, 8, 16, 64}, 91)
	relevance := func(f []float64) bool { return f[0] > 0.3 }
	want, err := ix.NewSession(relevance).TopK(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 5; i++ {
				got, err := ix.NewSession(relevance).TopK(5, 6)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got.Answer, want.Answer) {
					errs <- fmt.Errorf("concurrent session answered %v, want %v", got.Answer, want.Answer)
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestChooseGridFromLog(t *testing.T) {
	log := []float64{5, 12, 12, 16, 20, 25, 30, 35, 40, 75, 100}
	grid := ChooseGridFromLog(log, 5)
	if len(grid) == 0 || !sort.Float64sAreSorted(grid) {
		t.Fatalf("grid = %v", grid)
	}
	if grid[len(grid)-1] != 100 {
		t.Errorf("grid must cover the logged maximum: %v", grid)
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] == grid[i-1] {
			t.Errorf("duplicate values: %v", grid)
		}
	}
	if ChooseGridFromLog(nil, 5) != nil {
		t.Error("empty log returned a grid")
	}
	if ChooseGridFromLog(log, 0) != nil {
		t.Error("gridSize=0 returned a grid")
	}
}

func TestChooseGrid(t *testing.T) {
	db, m := clusteredDB(t, 5, 8, 16)
	rng := rand.New(rand.NewSource(17))
	grid := ChooseGrid(db, m, 8, 300, rng)
	if len(grid) == 0 {
		t.Fatal("empty grid")
	}
	if !sort.Float64sAreSorted(grid) {
		t.Fatalf("grid unsorted: %v", grid)
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] == grid[i-1] {
			t.Fatalf("duplicate grid values: %v", grid)
		}
	}
	// Degenerate inputs.
	if g := ChooseGrid(db, m, 0, 10, rng); g != nil {
		t.Errorf("gridSize=0 returned %v", g)
	}
	single, _ := graph.NewDatabase(nil)
	if g := ChooseGrid(single, m, 4, 10, rng); g != nil {
		t.Errorf("tiny db returned %v", g)
	}
}

func TestAccessorsAndFootprint(t *testing.T) {
	db, m := clusteredDB(t, 3, 6, 18)
	grid := []float64{2, 8}
	ix := buildIndex(t, db, m, grid, 19)
	if ix.Tree() == nil || ix.VO() == nil {
		t.Fatal("nil components")
	}
	if !reflect.DeepEqual(ix.Grid(), grid) {
		t.Errorf("Grid = %v", ix.Grid())
	}
	if ix.Bytes() <= 0 {
		t.Error("Bytes <= 0")
	}
	sess := ix.NewSession(func([]float64) bool { return true })
	if sess.RelevantCount() != db.Len() {
		t.Errorf("RelevantCount = %d", sess.RelevantCount())
	}
	if sess.PiHatBytes() <= 0 {
		t.Error("PiHatBytes <= 0")
	}
}

// VP count ablation: a session built over an index with more VPs must not
// verify more candidate distances (tighter N̂).
func TestMoreVPsNeverHurtCandidateCounts(t *testing.T) {
	db, base := clusteredDB(t, 5, 10, 20)
	relevance := func(f []float64) bool { return f[0] > 0.25 }
	run := func(numVPs int) int {
		m := metric.NewCache(base)
		ix, err := Build(db, m, Options{NumVPs: numVPs, VPPolicy: vantage.SelectMaxMin, Branching: 4, ThetaGrid: []float64{2, 4, 8, 16, 64}}, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		sess := ix.NewSession(relevance)
		if _, err := sess.TopK(4, 8); err != nil {
			t.Fatal(err)
		}
		return sess.LastStats().CandidateScans
	}
	few, many := run(1), run(8)
	if many > few {
		t.Errorf("8 VPs scanned %d candidates, 1 VP scanned %d", many, few)
	}
}
