// Package server exposes a graphrep engine over HTTP with a small JSON API,
// so non-Go clients can issue top-k representative queries against an
// indexed graph database. Endpoints:
//
//	GET  /stats                  database and index statistics
//	POST /query                  top-k representative query
//	POST /sweep                  θ sweep ("zoom level" explorer)
//	GET  /graph?id=N             one graph (labels, edges, features)
//	POST /insert                 append one graph, extend the index
//	GET  /metrics                Prometheus text exposition of all metrics
//	GET  /debug/pprof/...        runtime profiles (with Options.Pprof)
//
// Relevance functions arrive as declarative specs (quartile / threshold /
// topics / weighted) rather than code, mirroring the query functions of
// Table 1.
//
// # Concurrency
//
// Queries run in parallel: sessions are safe for concurrent TopK calls, so
// the server takes only read locks on the query path. Locking is per shard —
// one RWMutex per index shard. /insert is the sole writer, and an insert
// only ever extends the last shard (plus the copy-on-write database, which
// tolerates concurrent readers by construction), so it takes just that
// shard's write lock: queries that touch every shard (/query, /sweep,
// /stats, /metrics) wait only for the insert itself, while reads scoped to
// one earlier shard (/graph) are never blocked by an insert at all. Locks
// are always acquired in ascending shard order.
//
// Every /query and /sweep runs under its request's context: a client that
// disconnects mid-query aborts the in-flight search (499 recorded), and
// Options.QueryTimeout adds a per-request deadline (504 on expiry), so slow
// queries cannot pile up behind dead connections.
//
// # Observability
//
// Every request is counted and timed per endpoint, and an in-flight gauge
// tracks concurrency. The HTTP metrics register on the engine's telemetry
// registry, so GET /metrics exposes the full process picture — HTTP traffic,
// distance computations, cache effectiveness, and the NB-Index's per-query
// work histograms — in one scrape.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"graphrep"
	"graphrep/internal/telemetry"
)

// Options configure optional server features.
type Options struct {
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// QueryTimeout bounds each /query and /sweep request: the request
	// context gets this deadline, and a query that exceeds it is aborted
	// inside the engine and answered with 504. Zero disables the timeout.
	// Independently of the timeout, a dropped client connection cancels the
	// request context and aborts the in-flight query.
	QueryTimeout time.Duration
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response was ready, so the aborted query has no one to
// answer; recorded so the error counter distinguishes it from timeouts.
const statusClientClosedRequest = 499

// Server serves one engine. Sessions are cached per relevance spec so that
// repeated queries (the interactive refinement pattern) hit the fast path.
// Create at most one Server per engine: the HTTP metrics register on the
// engine's telemetry registry under fixed names.
type Server struct {
	engine *graphrep.Engine // guarded by locks
	// db is safe to read without locks: the database is copy-on-write, so
	// /insert's append never mutates a snapshot a reader holds.
	db   *graphrep.Database
	opts Options

	// locks[p] is shard p's index lock: /insert extends only the last shard
	// and write-locks just locks[len-1]; query paths that consult every
	// shard read-lock all of them in ascending order, and /graph read-locks
	// only the shard owning the requested graph.
	locks []sync.RWMutex

	// sessMu guards the session cache. Lock order: locks before sessMu.
	sessMu   sync.Mutex
	sessions map[string]*sessionEntry // guarded by sessMu

	requests *telemetry.CounterVec   // graphrep_http_requests_total{endpoint}
	errors   *telemetry.CounterVec   // graphrep_http_errors_total{endpoint}
	latency  *telemetry.HistogramVec // graphrep_http_request_duration_seconds{endpoint}
	inFlight *telemetry.Gauge        // graphrep_http_in_flight_requests
}

// sessionEntry initializes its session exactly once, so concurrent first
// requests for one relevance spec share a single initialization instead of
// racing to duplicate it.
type sessionEntry struct {
	once sync.Once
	sess *graphrep.Session
	err  error
}

// latencyBuckets spans sub-millisecond cache hits to multi-second sweeps.
var latencyBuckets = telemetry.ExponentialBuckets(0.0005, 2, 14) // 0.5ms … 4s

// New wraps an engine.
func New(engine *graphrep.Engine, opts ...Options) *Server {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	reg := engine.Telemetry().Registry()
	return &Server{
		engine:   engine,
		db:       engine.Database(),
		opts:     o,
		locks:    make([]sync.RWMutex, engine.Shards()),
		sessions: make(map[string]*sessionEntry),
		requests: reg.MustCounterVec("graphrep_http_requests_total",
			"HTTP requests received, by endpoint.", "endpoint"),
		errors: reg.MustCounterVec("graphrep_http_errors_total",
			"HTTP responses with a 4xx/5xx status, by endpoint.", "endpoint"),
		latency: reg.MustHistogramVec("graphrep_http_request_duration_seconds",
			"HTTP request latency in seconds, by endpoint.", "endpoint", latencyBuckets),
		inFlight: reg.MustGauge("graphrep_http_in_flight_requests",
			"Requests currently being served."),
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("/query", s.instrument("/query", s.handleQuery))
	mux.HandleFunc("/sweep", s.instrument("/sweep", s.handleSweep))
	mux.HandleFunc("/graph", s.instrument("/graph", s.handleGraph))
	mux.HandleFunc("/insert", s.instrument("/insert", s.handleInsert))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	if s.opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request middleware: per-endpoint
// request count, error count, and latency histogram, plus the process-wide
// in-flight gauge.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.requests.With(endpoint)
	errors := s.errors.With(endpoint)
	latency := s.latency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		s.inFlight.Inc()
		defer s.inFlight.Dec()
		requests.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		latency.Observe(time.Since(start).Seconds())
		if rec.status >= 400 {
			errors.Inc()
		}
	}
}

// rUnlockAll releases the read locks rLockAll-style loops acquired. (The
// acquisition side stays inline in each handler so the lockguard analyzer
// sees the lock call in the function that touches guarded state.)
func (s *Server) rUnlockAll() {
	for i := range s.locks {
		s.locks[i].RUnlock()
	}
}

// handleMetrics renders the engine's full registry — HTTP, distance-layer,
// and NB-Index metrics — in the Prometheus text exposition format. The read
// locks keep the scrape consistent with respect to /insert (the index gauges
// read mutable state).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	for i := range s.locks {
		s.locks[i].RLock()
	}
	defer s.rUnlockAll()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.engine.Telemetry().WritePrometheus(w); err != nil {
		// Response already started; nothing to repair mid-stream.
		_ = err
	}
}

// InsertRequest is the /insert payload: one graph in the same shape /graph
// returns (the ID is assigned by the server).
type InsertRequest struct {
	Labels   []uint32  `json:"labels"`
	Edges    [][3]int  `json:"edges"`
	Features []float64 `json:"features"`
}

// InsertResponse reports the assigned ID.
type InsertResponse struct {
	ID int32 `json:"id"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	// The engine's Insert extends the copy-on-write database (safe next to
	// readers) and the last shard's vantage ordering and NB-Tree (not safe
	// next to readers of that shard) — take the last shard's write lock
	// only, so queries pinned to earlier shards keep running.
	last := len(s.locks) - 1
	s.locks[last].Lock()
	defer s.locks[last].Unlock()
	id := graphrep.ID(s.db.Len())
	b := graphrep.NewBuilder(len(req.Labels))
	for _, l := range req.Labels {
		b.AddVertex(graphrep.Label(l))
	}
	for _, e := range req.Edges {
		b.AddEdge(e[0], e[1], graphrep.Label(e[2]))
	}
	b.SetFeatures(req.Features)
	g, err := b.Build(id)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.engine.Insert(g); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Cached sessions predate the insert and would silently miss the new
	// graph; drop them so the next query re-initializes.
	s.sessMu.Lock()
	s.sessions = make(map[string]*sessionEntry)
	s.sessMu.Unlock()
	writeJSON(w, InsertResponse{ID: int32(id)})
}

// RelevanceSpec selects graphs declaratively.
type RelevanceSpec struct {
	// Kind is "quartile", "threshold", "topics", or "weighted".
	Kind string `json:"kind"`
	// Dims restricts quartile/threshold scoring to these feature dimensions
	// (empty = all).
	Dims []int `json:"dims,omitempty"`
	// Tau is the threshold for threshold/topics/weighted kinds.
	Tau float64 `json:"tau,omitempty"`
	// Topics lists query topics for the topics kind.
	Topics []int `json:"topics,omitempty"`
	// Weights holds w for the weighted kind.
	Weights []float64 `json:"weights,omitempty"`
}

// compileLocked turns a spec into a relevance function. The caller must hold
// every shard's read lock, like the rest of session initialization.
func (s *Server) compileLocked(spec RelevanceSpec) (graphrep.Relevance, error) {
	switch spec.Kind {
	case "quartile":
		return graphrep.FirstQuartileRelevance(s.db, spec.Dims), nil
	case "threshold":
		score := graphrep.DimensionScore(spec.Dims)
		tau := spec.Tau
		return func(f []float64) bool { return score(f) >= tau }, nil
	case "topics":
		return graphrep.TopicRelevance(spec.Topics, spec.Tau), nil
	case "weighted":
		return graphrep.WeightedRelevance(spec.Weights, spec.Tau), nil
	default:
		return nil, fmt.Errorf("unknown relevance kind %q", spec.Kind)
	}
}

// sessionLocked returns a cached session for the spec, creating it on first
// use. The caller must hold every shard's read lock (session initialization
// reads the whole index), which is what the Locked suffix declares to the
// lockguard analyzer.
// Concurrent first requests for one spec share a single initialization via
// the entry's once; requests for other specs are never blocked by it.
//
// Initialization runs under the first requester's context, so it dies with
// that client or its deadline (concurrent requests sharing the once then see
// the same context error). A context-cancelled entry is evicted before
// returning so the next request re-initializes instead of inheriting a
// permanently poisoned cache slot.
func (s *Server) sessionLocked(ctx context.Context, spec RelevanceSpec) (*graphrep.Session, error) {
	key, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	s.sessMu.Lock()
	e, ok := s.sessions[string(key)]
	if !ok {
		e = &sessionEntry{}
		s.sessions[string(key)] = e
	}
	s.sessMu.Unlock()
	e.once.Do(func() {
		rel, err := s.compileLocked(spec)
		if err != nil {
			e.err = err
			return
		}
		e.sess, e.err = s.engine.NewSessionContext(ctx, rel)
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		s.sessMu.Lock()
		if s.sessions[string(key)] == e {
			delete(s.sessions, string(key))
		}
		s.sessMu.Unlock()
	}
	return e.sess, e.err
}

// queryContext derives the context a query runs under: the request context
// (cancelled when the client disconnects) bounded by the configured
// per-request timeout.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.QueryTimeout)
	}
	return r.Context(), func() {}
}

// writeQueryError maps a query failure to a status: timeouts to 504,
// client disconnects to 499 (the write is moot, but the error counter still
// records it), anything else to 400 (validation).
func writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "query timed out")
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		httpError(w, statusClientClosedRequest, "client closed request")
	default:
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

// QueryRequest is the /query and /sweep payload.
type QueryRequest struct {
	Relevance RelevanceSpec `json:"relevance"`
	Theta     float64       `json:"theta"`
	K         int           `json:"k"`
}

// QueryResponse is the /query result.
type QueryResponse struct {
	Answer   []int32 `json:"answer"`
	Gains    []int   `json:"gains"`
	Power    float64 `json:"power"`
	Covered  int     `json:"covered"`
	Relevant int     `json:"relevant"`
	CR       float64 `json:"cr"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Theta < 0 || req.K <= 0 {
		httpError(w, http.StatusBadRequest, "theta must be ≥ 0 and k ≥ 1")
		return
	}
	// Sessions are safe for concurrent TopK calls; the per-shard read locks
	// only exclude /insert on the last shard, so queries run in parallel.
	// The derived context aborts the query when the client disconnects or
	// the configured per-request timeout fires.
	ctx, cancel := s.queryContext(r)
	defer cancel()
	for i := range s.locks {
		s.locks[i].RLock()
	}
	sess, err := s.sessionLocked(ctx, req.Relevance)
	if err != nil {
		s.rUnlockAll()
		writeQueryError(w, r, err)
		return
	}
	res, err := sess.TopKContext(ctx, req.Theta, req.K)
	s.rUnlockAll()
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	resp := QueryResponse{
		Gains:    res.Gains,
		Power:    res.Power,
		Covered:  res.Covered,
		Relevant: res.Relevant,
		CR:       res.CompressionRatio(),
	}
	for _, id := range res.Answer {
		resp.Answer = append(resp.Answer, int32(id))
	}
	writeJSON(w, resp)
}

// SweepResponse is the /sweep result.
type SweepResponse struct {
	Points    []graphrep.ThetaPoint `json:"points"`
	Suggested graphrep.ThetaPoint   `json:"suggested"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be ≥ 1")
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	for i := range s.locks {
		s.locks[i].RLock()
	}
	sess, err := s.sessionLocked(ctx, req.Relevance)
	if err != nil {
		s.rUnlockAll()
		writeQueryError(w, r, err)
		return
	}
	points, err := sess.SweepThetaContext(ctx, req.K)
	s.rUnlockAll()
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	best, err := graphrep.SuggestTheta(points)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, SweepResponse{Points: points, Suggested: best})
}

// StatsResponse is the /stats result.
type StatsResponse struct {
	Graphs     int     `json:"graphs"`
	AvgNodes   float64 `json:"avgNodes"`
	AvgEdges   float64 `json:"avgEdges"`
	Labels     int     `json:"labels"`
	FeatureDim int     `json:"featureDim"`
	IndexBytes int64   `json:"indexBytes"`
	// Queries counts completed TopK calls; ExactDistances and
	// PrunedDistances split their candidate threshold tests into ones that
	// needed an exact distance value and ones the bounded kernel resolved
	// from a bound alone.
	Queries         int64 `json:"queries"`
	ExactDistances  int   `json:"exactDistances"`
	PrunedDistances int   `json:"prunedDistances"`
	// Prune is the bound-cascade stage breakdown of every bounded threshold
	// test the default metric decided (index build and queries alike); all
	// zero with a custom metric or a disabled kernel.
	Prune PruneResponse `json:"prune"`
}

// PruneResponse mirrors graphrep.PruneStats for the JSON API: how many
// bounded threshold tests each cascade stage resolved, and how many fell
// through to a completed Hungarian solve.
type PruneResponse struct {
	Embedding    int64 `json:"embedding"`
	RowMin       int64 `json:"rowMin"`
	Greedy       int64 `json:"greedy"`
	Dual         int64 `json:"dual"`
	BoundedExact int64 `json:"boundedExact"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// Stats walks the database and index; exclude /insert while reading.
	for i := range s.locks {
		s.locks[i].RLock()
	}
	defer s.rUnlockAll()
	st := s.db.Stats()
	snap := s.engine.Telemetry().Snapshot()
	writeJSON(w, StatsResponse{
		Graphs:          st.Graphs,
		AvgNodes:        st.AvgNodes,
		AvgEdges:        st.AvgEdges,
		Labels:          st.Labels,
		FeatureDim:      s.db.FeatureDim(),
		IndexBytes:      s.engine.IndexBytes(),
		Queries:         snap.Queries,
		ExactDistances:  snap.QueryTotals.ExactDistances,
		PrunedDistances: snap.QueryTotals.PrunedDistances,
		Prune: PruneResponse{
			Embedding:    snap.Prune.Embedding,
			RowMin:       snap.Prune.RowMin,
			Greedy:       snap.Prune.Greedy,
			Dual:         snap.Prune.Dual,
			BoundedExact: snap.Prune.BoundedExact,
		},
	})
}

// GraphResponse is the /graph result.
type GraphResponse struct {
	ID       int32     `json:"id"`
	Labels   []uint32  `json:"labels"`
	Edges    [][3]int  `json:"edges"` // [u, v, label]
	Features []float64 `json:"features"`
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil || id < 0 || id >= s.db.Len() {
		httpError(w, http.StatusNotFound, "unknown graph id")
		return
	}
	// Lock only the shard owning this graph: inserts (which write-lock the
	// last shard) never delay reads of graphs in earlier shards.
	p := s.engine.ShardFor(graphrep.ID(id))
	s.locks[p].RLock()
	defer s.locks[p].RUnlock()
	g := s.db.Graph(graphrep.ID(id))
	resp := GraphResponse{ID: int32(id), Features: g.Features()}
	for _, l := range g.VertexLabels() {
		resp.Labels = append(resp.Labels, uint32(l))
	}
	for _, e := range g.Edges() {
		resp.Edges = append(resp.Edges, [3]int{e.U, e.V, int(e.Label)})
	}
	writeJSON(w, resp)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Response already started; nothing useful to do beyond logging at
		// the caller. Keep the handler silent here.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
