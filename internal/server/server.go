// Package server exposes a graphrep engine over HTTP with a small JSON API,
// so non-Go clients can issue top-k representative queries against an
// indexed graph database. Endpoints:
//
//	GET  /stats                  database and index statistics
//	POST /query                  top-k representative query
//	POST /sweep                  θ sweep ("zoom level" explorer)
//	GET  /graph?id=N             one graph (labels, edges, features)
//
// Relevance functions arrive as declarative specs (quartile / threshold /
// topics / weighted) rather than code, mirroring the query functions of
// Table 1.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"graphrep"
)

// Server serves one engine. Sessions are cached per relevance spec so that
// repeated queries (the interactive refinement pattern) hit the fast path.
type Server struct {
	engine *graphrep.Engine
	db     *graphrep.Database

	mu       sync.Mutex
	sessions map[string]*graphrep.Session
}

// New wraps an engine.
func New(engine *graphrep.Engine) *Server {
	return &Server{
		engine:   engine,
		db:       engine.Database(),
		sessions: make(map[string]*graphrep.Session),
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/graph", s.handleGraph)
	mux.HandleFunc("/insert", s.handleInsert)
	return mux
}

// InsertRequest is the /insert payload: one graph in the same shape /graph
// returns (the ID is assigned by the server).
type InsertRequest struct {
	Labels   []uint32  `json:"labels"`
	Edges    [][3]int  `json:"edges"`
	Features []float64 `json:"features"`
}

// InsertResponse reports the assigned ID.
type InsertResponse struct {
	ID int32 `json:"id"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := graphrep.ID(s.db.Len())
	b := graphrep.NewBuilder(len(req.Labels))
	for _, l := range req.Labels {
		b.AddVertex(graphrep.Label(l))
	}
	for _, e := range req.Edges {
		b.AddEdge(e[0], e[1], graphrep.Label(e[2]))
	}
	b.SetFeatures(req.Features)
	g, err := b.Build(id)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.engine.Insert(g); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Cached sessions predate the insert and would silently miss the new
	// graph; drop them so the next query re-initializes.
	s.sessions = make(map[string]*graphrep.Session)
	writeJSON(w, InsertResponse{ID: int32(id)})
}

// RelevanceSpec selects graphs declaratively.
type RelevanceSpec struct {
	// Kind is "quartile", "threshold", "topics", or "weighted".
	Kind string `json:"kind"`
	// Dims restricts quartile/threshold scoring to these feature dimensions
	// (empty = all).
	Dims []int `json:"dims,omitempty"`
	// Tau is the threshold for threshold/topics/weighted kinds.
	Tau float64 `json:"tau,omitempty"`
	// Topics lists query topics for the topics kind.
	Topics []int `json:"topics,omitempty"`
	// Weights holds w for the weighted kind.
	Weights []float64 `json:"weights,omitempty"`
}

// compile turns a spec into a relevance function.
func (s *Server) compile(spec RelevanceSpec) (graphrep.Relevance, error) {
	switch spec.Kind {
	case "quartile":
		return graphrep.FirstQuartileRelevance(s.db, spec.Dims), nil
	case "threshold":
		score := graphrep.DimensionScore(spec.Dims)
		tau := spec.Tau
		return func(f []float64) bool { return score(f) >= tau }, nil
	case "topics":
		return graphrep.TopicRelevance(spec.Topics, spec.Tau), nil
	case "weighted":
		return graphrep.WeightedRelevance(spec.Weights, spec.Tau), nil
	default:
		return nil, fmt.Errorf("unknown relevance kind %q", spec.Kind)
	}
}

// session returns a cached session for the spec, creating it on first use.
func (s *Server) session(spec RelevanceSpec) (*graphrep.Session, error) {
	key, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[string(key)]; ok {
		return sess, nil
	}
	rel, err := s.compile(spec)
	if err != nil {
		return nil, err
	}
	sess, err := s.engine.NewSession(rel)
	if err != nil {
		return nil, err
	}
	s.sessions[string(key)] = sess
	return sess, nil
}

// QueryRequest is the /query and /sweep payload.
type QueryRequest struct {
	Relevance RelevanceSpec `json:"relevance"`
	Theta     float64       `json:"theta"`
	K         int           `json:"k"`
}

// QueryResponse is the /query result.
type QueryResponse struct {
	Answer   []int32 `json:"answer"`
	Gains    []int   `json:"gains"`
	Power    float64 `json:"power"`
	Covered  int     `json:"covered"`
	Relevant int     `json:"relevant"`
	CR       float64 `json:"cr"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Theta < 0 || req.K <= 0 {
		httpError(w, http.StatusBadRequest, "theta must be ≥ 0 and k ≥ 1")
		return
	}
	sess, err := s.session(req.Relevance)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Sessions are not safe for concurrent TopK calls; serialize.
	s.mu.Lock()
	res, err := sess.TopK(req.Theta, req.K)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := QueryResponse{
		Gains:    res.Gains,
		Power:    res.Power,
		Covered:  res.Covered,
		Relevant: res.Relevant,
		CR:       res.CompressionRatio(),
	}
	for _, id := range res.Answer {
		resp.Answer = append(resp.Answer, int32(id))
	}
	writeJSON(w, resp)
}

// SweepResponse is the /sweep result.
type SweepResponse struct {
	Points    []graphrep.ThetaPoint `json:"points"`
	Suggested graphrep.ThetaPoint   `json:"suggested"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be ≥ 1")
		return
	}
	sess, err := s.session(req.Relevance)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	points, err := sess.SweepTheta(req.K)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	best, err := graphrep.SuggestTheta(points)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, SweepResponse{Points: points, Suggested: best})
}

// StatsResponse is the /stats result.
type StatsResponse struct {
	Graphs     int     `json:"graphs"`
	AvgNodes   float64 `json:"avgNodes"`
	AvgEdges   float64 `json:"avgEdges"`
	Labels     int     `json:"labels"`
	FeatureDim int     `json:"featureDim"`
	IndexBytes int64   `json:"indexBytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.db.Stats()
	writeJSON(w, StatsResponse{
		Graphs:     st.Graphs,
		AvgNodes:   st.AvgNodes,
		AvgEdges:   st.AvgEdges,
		Labels:     st.Labels,
		FeatureDim: s.db.FeatureDim(),
		IndexBytes: s.engine.IndexBytes(),
	})
}

// GraphResponse is the /graph result.
type GraphResponse struct {
	ID       int32     `json:"id"`
	Labels   []uint32  `json:"labels"`
	Edges    [][3]int  `json:"edges"` // [u, v, label]
	Features []float64 `json:"features"`
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil || id < 0 || id >= s.db.Len() {
		httpError(w, http.StatusNotFound, "unknown graph id")
		return
	}
	g := s.db.Graph(graphrep.ID(id))
	resp := GraphResponse{ID: int32(id), Features: g.Features()}
	for _, l := range g.VertexLabels() {
		resp.Labels = append(resp.Labels, uint32(l))
	}
	for _, e := range g.Edges() {
		resp.Edges = append(resp.Edges, [3]int{e.U, e.V, int(e.Label)})
	}
	writeJSON(w, resp)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Response already started; nothing useful to do beyond logging at
		// the caller. Keep the handler silent here.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
