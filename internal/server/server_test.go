package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphrep"
)

func testServer(t *testing.T) (*httptest.Server, *graphrep.Database) {
	t.Helper()
	db, err := graphrep.GenerateDataset("dud", 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine).Handler())
	t.Cleanup(ts.Close)
	return ts, db
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

func TestStatsEndpoint(t *testing.T) {
	ts, db := testServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Graphs != db.Len() || st.FeatureDim != db.FeatureDim() || st.IndexBytes <= 0 {
		t.Errorf("stats = %+v", st)
	}
	// Index construction issues only Distance calls, so a fresh server
	// reports zero queries and zero query-path work; the fields must still
	// be present and zero.
	if st.Queries != 0 || st.ExactDistances != 0 || st.PrunedDistances != 0 {
		t.Errorf("fresh server reports query work: %+v", st)
	}

	// After one query, the work split and the cascade breakdown surface.
	if r := postJSON(t, ts.URL+"/query", QueryRequest{
		Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 10, K: 5,
	}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("/query status %d", r.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 {
		t.Errorf("queries = %d after one /query, want 1", st.Queries)
	}
	if st.ExactDistances+st.PrunedDistances == 0 {
		t.Error("query reported no candidate threshold tests")
	}
	pruned := st.Prune.Embedding + st.Prune.RowMin + st.Prune.Greedy + st.Prune.Dual
	if pruned+st.Prune.BoundedExact == 0 {
		t.Error("bound cascade recorded no bounded decisions")
	}

	// POST to a GET endpoint is rejected.
	if r := postJSON(t, ts.URL+"/stats", map[string]int{}, nil); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status %d", r.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var qr QueryResponse
	resp := postJSON(t, ts.URL+"/query", QueryRequest{
		Relevance: RelevanceSpec{Kind: "quartile"},
		Theta:     10,
		K:         5,
	}, &qr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(qr.Answer) == 0 || qr.Power <= 0 || qr.Relevant <= 0 {
		t.Errorf("response %+v", qr)
	}
	if len(qr.Gains) != len(qr.Answer) {
		t.Errorf("gains/answer mismatch")
	}
	// Repeated query hits the cached session and agrees.
	var qr2 QueryResponse
	postJSON(t, ts.URL+"/query", QueryRequest{
		Relevance: RelevanceSpec{Kind: "quartile"},
		Theta:     10,
		K:         5,
	}, &qr2)
	if qr2.Power != qr.Power {
		t.Errorf("cached session answered differently: %v vs %v", qr2.Power, qr.Power)
	}
}

func TestQueryRelevanceKinds(t *testing.T) {
	ts, _ := testServer(t)
	specs := []RelevanceSpec{
		{Kind: "quartile", Dims: []int{0}},
		{Kind: "threshold", Dims: []int{0}, Tau: 0.5},
		{Kind: "topics", Topics: []int{0, 1}, Tau: 0.05},
		{Kind: "weighted", Weights: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, Tau: 3},
	}
	for _, spec := range specs {
		var qr QueryResponse
		resp := postJSON(t, ts.URL+"/query", QueryRequest{Relevance: spec, Theta: 10, K: 3}, &qr)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("kind %s: status %d", spec.Kind, resp.StatusCode)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	ts, _ := testServer(t)
	cases := []QueryRequest{
		{Relevance: RelevanceSpec{Kind: "nope"}, Theta: 5, K: 3},
		{Relevance: RelevanceSpec{Kind: "quartile"}, Theta: -1, K: 3},
		{Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 5, K: 0},
	}
	for i, req := range cases {
		if r := postJSON(t, ts.URL+"/query", req, nil); r.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, r.StatusCode)
		}
	}
	// Unknown fields are rejected.
	resp, err := http.Post(ts.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"bogus": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}
	// GET on /query is rejected.
	getResp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d", getResp.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var sr SweepResponse
	resp := postJSON(t, ts.URL+"/sweep", QueryRequest{
		Relevance: RelevanceSpec{Kind: "quartile"},
		K:         5,
	}, &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(sr.Points) == 0 {
		t.Fatal("no sweep points")
	}
	if sr.Suggested.Theta < sr.Points[0].Theta || sr.Suggested.Theta > sr.Points[len(sr.Points)-1].Theta {
		t.Errorf("suggested θ %v outside sweep range", sr.Suggested.Theta)
	}
}

func TestGraphEndpoint(t *testing.T) {
	ts, db := testServer(t)
	resp, err := http.Get(fmt.Sprintf("%s/graph?id=%d", ts.URL, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gr GraphResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	g := db.Graph(3)
	if gr.ID != 3 || len(gr.Labels) != g.Order() || len(gr.Edges) != g.Size() {
		t.Errorf("graph response %+v", gr)
	}
	for _, bad := range []string{"/graph?id=-1", "/graph?id=99999", "/graph?id=x"} {
		r, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", bad, r.StatusCode)
		}
	}
}

func TestInsertEndpoint(t *testing.T) {
	ts, db := testServer(t)
	before := db.Len()
	req := InsertRequest{
		Labels:   []uint32{1, 2, 3},
		Edges:    [][3]int{{0, 1, 0}, {1, 2, 0}},
		Features: make([]float64, db.FeatureDim()),
	}
	var ir InsertResponse
	resp := postJSON(t, ts.URL+"/insert", req, &ir)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if int(ir.ID) != before || db.Len() != before+1 {
		t.Fatalf("assigned id %d, db len %d (was %d)", ir.ID, db.Len(), before)
	}
	// The inserted graph is retrievable.
	gResp, err := http.Get(fmt.Sprintf("%s/graph?id=%d", ts.URL, ir.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer gResp.Body.Close()
	var gr GraphResponse
	if err := json.NewDecoder(gResp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	if len(gr.Labels) != 3 || len(gr.Edges) != 2 {
		t.Errorf("inserted graph round trip: %+v", gr)
	}
	// Queries after the insert see the grown database.
	var qr QueryResponse
	postJSON(t, ts.URL+"/query", QueryRequest{
		Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 10, K: 3,
	}, &qr)
	if qr.Relevant == 0 {
		t.Error("post-insert query degenerate")
	}
	// Malformed graphs are rejected.
	bad := InsertRequest{Labels: []uint32{1}, Edges: [][3]int{{0, 5, 0}}}
	if r := postJSON(t, ts.URL+"/insert", bad, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed insert: status %d", r.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	// Generate some traffic first so the per-endpoint counters exist.
	var qr QueryResponse
	postJSON(t, ts.URL+"/query", QueryRequest{
		Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 10, K: 5,
	}, &qr)
	postJSON(t, ts.URL+"/query", QueryRequest{
		Relevance: RelevanceSpec{Kind: "nope"}, Theta: 10, K: 5,
	}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	// The acceptance surface: distance computations, cache hits/misses,
	// per-endpoint request counts and latency histograms, NB-Index pruning
	// counters, and the HTTP gauges.
	for _, want := range []string{
		"graphrep_distance_computations_total",
		"graphrep_distance_cache_hits_total",
		"graphrep_distance_cache_misses_total",
		`graphrep_http_requests_total{endpoint="/query"} 2`,
		`graphrep_http_errors_total{endpoint="/query"} 1`,
		`graphrep_http_request_duration_seconds_count{endpoint="/query"} 2`,
		`graphrep_http_request_duration_seconds_bucket{endpoint="/query",le="+Inf"} 2`,
		"graphrep_http_in_flight_requests 1", // the /metrics request itself
		"graphrep_nbindex_queries_total 1",
		"graphrep_nbindex_pq_pops_bucket",
		"graphrep_nbindex_verified_leaves_count 1",
		"graphrep_nbindex_candidate_scans_count 1",
		"graphrep_nbindex_exact_distances_count 1",
		"graphrep_graphs 120",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Valid text format: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	// POST is rejected.
	if r := postJSON(t, ts.URL+"/metrics", map[string]int{}, nil); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d", r.StatusCode)
	}
}

func TestPprofOption(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	with := httptest.NewServer(New(engine, Options{Pprof: true}).Handler())
	defer with.Close()
	resp, err := http.Get(with.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: status %d", resp.StatusCode)
	}

	engine2, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	without := httptest.NewServer(New(engine2).Handler())
	defer without.Close()
	resp, err = http.Get(without.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
}

// The server must be safe under concurrent clients.
func TestConcurrentQueries(t *testing.T) {
	ts, _ := testServer(t)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 5; i++ {
				var qr QueryResponse
				buf, _ := json.Marshal(QueryRequest{
					Relevance: RelevanceSpec{Kind: "quartile"},
					Theta:     8 + float64(w),
					K:         3,
				})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(buf))
				if err != nil {
					done <- err
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryTimeout(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, Options{QueryTimeout: time.Nanosecond}).Handler())
	defer ts.Close()

	req := QueryRequest{Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 10, K: 5}
	if resp := postJSON(t, ts.URL+"/query", req, nil); resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("/query with 1ns deadline: status %d, want 504", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/sweep", QueryRequest{Relevance: RelevanceSpec{Kind: "quartile"}, K: 5}, nil); resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("/sweep with 1ns deadline: status %d, want 504", resp.StatusCode)
	}
}
