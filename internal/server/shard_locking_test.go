package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphrep"
)

// shardedServer builds a server over a multi-shard engine for the per-shard
// locking tests.
func shardedServer(t *testing.T, shards int) (*Server, *httptest.Server, *graphrep.Database) {
	t.Helper()
	db, err := graphrep.GenerateDataset("dud", 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 2, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if engine.Shards() != shards {
		t.Fatalf("engine has %d shards, want %d", engine.Shards(), shards)
	}
	srv := New(engine)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, db
}

// TestInsertDoesNotBlockOtherShards pins the point of per-shard locking: with
// the last shard's write lock held (an insert in flight), a /graph read of a
// graph owned by an earlier shard completes immediately, while a read of a
// last-shard graph waits for the lock. The write lock is taken directly so
// the in-flight insert is held open deterministically instead of raced.
func TestInsertDoesNotBlockOtherShards(t *testing.T) {
	srv, ts, db := shardedServer(t, 3)
	c := &client{t: t, base: ts.URL}

	last := len(srv.locks) - 1
	srv.locks[last].Lock()

	// Shard 0's graphs stay readable while the "insert" is in flight.
	done := make(chan int, 1)
	go func() { done <- c.get("/graph?id=0") }()
	select {
	case code := <-done:
		if code != 200 {
			t.Errorf("/graph?id=0 under last-shard write lock: status %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Error("/graph?id=0 blocked behind the last shard's write lock")
	}

	// A last-shard graph read must wait for the writer.
	lastID := db.Len() - 1
	if p := srv.engine.ShardFor(graphrep.ID(lastID)); p != last {
		t.Fatalf("graph %d owned by shard %d, want last shard %d", lastID, p, last)
	}
	blocked := make(chan int, 1)
	go func() { blocked <- c.get(fmt.Sprintf("/graph?id=%d", lastID)) }()
	select {
	case code := <-blocked:
		t.Errorf("/graph?id=%d returned %d while its shard was write-locked", lastID, code)
	case <-time.After(100 * time.Millisecond):
		// Still waiting, as it should be.
	}

	srv.locks[last].Unlock()
	select {
	case code := <-blocked:
		if code != 200 {
			t.Errorf("/graph?id=%d after unlock: status %d", lastID, code)
		}
	case <-time.After(5 * time.Second):
		t.Errorf("/graph?id=%d never completed after unlock", lastID)
	}
}

// TestShardedInsertQueryStorm hammers a multi-shard server with concurrent
// inserts, queries, sweeps, early-shard graph reads, and metrics scrapes.
// The race detector owns the memory-safety assertions; the test body checks
// that every well-formed request succeeds and the database grows by exactly
// the insert count.
func TestShardedInsertQueryStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	_, ts, db := shardedServer(t, 4)
	before := db.Len()
	dim := db.FeatureDim()

	const (
		workers = 3
		iters   = 5
	)
	var inserts atomic.Int64
	shapes := []struct {
		name string
		op   func(c *client, w, i int) int
	}{
		{"insert", func(c *client, w, i int) int {
			code := c.post("/insert", insertBody(dim))
			if code == 200 {
				inserts.Add(1)
			}
			return code
		}},
		{"query", func(c *client, w, i int) int {
			return c.post("/query", QueryRequest{
				Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 8, K: 4,
			})
		}},
		{"sweep", func(c *client, w, i int) int {
			return c.post("/sweep", QueryRequest{
				Relevance: RelevanceSpec{Kind: "quartile"}, K: 3,
			})
		}},
		{"graph-early", func(c *client, w, i int) int {
			// Graphs in the first shards: reads that inserts must never block.
			return c.get(fmt.Sprintf("/graph?id=%d", (w*iters+i)%(before/2)))
		}},
		{"stats", func(c *client, w, i int) int { return c.get("/stats") }},
		{"metrics", func(c *client, w, i int) int { return c.get("/metrics") }},
	}

	var wg sync.WaitGroup
	for _, shape := range shapes {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(name string, op func(*client, int, int) int, w int) {
				defer wg.Done()
				c := &client{t: t, base: ts.URL}
				for i := 0; i < iters; i++ {
					if code := op(c, w, i); code != 200 {
						t.Errorf("%s worker %d iter %d: status %d", name, w, i, code)
						return
					}
				}
			}(shape.name, shape.op, w)
		}
	}
	wg.Wait()

	if want := before + int(inserts.Load()); db.Len() != want {
		t.Errorf("db len %d after storm, want %d (%d inserts)", db.Len(), want, inserts.Load())
	}
	if inserts.Load() != workers*iters {
		t.Errorf("only %d/%d inserts succeeded", inserts.Load(), workers*iters)
	}
}
