package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"graphrep"
)

// The concurrency stress suite. Run under -race these tests exercise every
// pairing the locking scheme must survive: parallel queries against shared
// and distinct sessions, sweeps, reads of /stats and /graph, /metrics
// scrapes, and — the historical race — /insert mutating the database and
// index while all of the above are in flight.

// client is a minimal test client that reports transport failures through t
// and returns the status code (handlers answering 4xx/5xx are a test
// assertion, not a transport failure).
type client struct {
	t    *testing.T
	base string
}

func (c *client) post(path string, body any) int {
	buf, err := json.Marshal(body)
	if err != nil {
		c.t.Error(err)
		return 0
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		c.t.Error(err)
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func (c *client) get(path string) int {
	resp, err := http.Get(c.base + path)
	if err != nil {
		c.t.Error(err)
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func insertBody(dim int) InsertRequest {
	return InsertRequest{
		Labels:   []uint32{1, 2, 3, 4},
		Edges:    [][3]int{{0, 1, 0}, {1, 2, 1}, {2, 3, 0}},
		Features: make([]float64, dim),
	}
}

// TestConcurrentMixedLoad hammers every endpoint at once. Each worker runs a
// different traffic shape; the race detector owns the memory-safety
// assertions, the test body owns the semantic ones (no non-2xx answers on
// well-formed requests, database length grows by exactly the insert count).
func TestConcurrentMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	ts, db := testServer(t)
	before := db.Len()
	dim := db.FeatureDim()

	const (
		workers = 4 // per shape
		iters   = 6
	)
	var inserts atomic.Int64
	shapes := []struct {
		name string
		op   func(c *client, w, i int) int
	}{
		{"query-shared", func(c *client, w, i int) int {
			// All workers share one session: same relevance spec.
			return c.post("/query", QueryRequest{
				Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 8, K: 4,
			})
		}},
		{"query-distinct", func(c *client, w, i int) int {
			// Distinct specs force concurrent session initializations.
			return c.post("/query", QueryRequest{
				Relevance: RelevanceSpec{Kind: "threshold", Dims: []int{w % dim}, Tau: 0.2},
				Theta:     6 + float64(i), K: 3,
			})
		}},
		{"sweep", func(c *client, w, i int) int {
			return c.post("/sweep", QueryRequest{
				Relevance: RelevanceSpec{Kind: "quartile"}, K: 3,
			})
		}},
		{"insert", func(c *client, w, i int) int {
			code := c.post("/insert", insertBody(dim))
			if code == http.StatusOK {
				inserts.Add(1)
			}
			return code
		}},
		{"stats", func(c *client, w, i int) int { return c.get("/stats") }},
		{"graph", func(c *client, w, i int) int {
			// Only IDs that predate the storm are guaranteed to exist.
			return c.get(fmt.Sprintf("/graph?id=%d", (w*iters+i)%before))
		}},
		{"metrics", func(c *client, w, i int) int { return c.get("/metrics") }},
	}

	var wg sync.WaitGroup
	for _, shape := range shapes {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(name string, op func(*client, int, int) int, w int) {
				defer wg.Done()
				c := &client{t: t, base: ts.URL}
				for i := 0; i < iters; i++ {
					if code := op(c, w, i); code != http.StatusOK {
						t.Errorf("%s worker %d iter %d: status %d", name, w, i, code)
						return
					}
				}
			}(shape.name, shape.op, w)
		}
	}
	wg.Wait()

	want := before + int(inserts.Load())
	if db.Len() != want {
		t.Errorf("db len %d after storm, want %d (%d inserts)", db.Len(), want, inserts.Load())
	}
	if inserts.Load() != workers*iters {
		t.Errorf("only %d/%d inserts succeeded", inserts.Load(), workers*iters)
	}

	// Queries after the storm see every inserted graph.
	c := &client{t: t, base: ts.URL}
	if code := c.get(fmt.Sprintf("/graph?id=%d", want-1)); code != http.StatusOK {
		t.Errorf("last inserted graph not retrievable: status %d", code)
	}
	if code := c.post("/query", QueryRequest{
		Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 8, K: 4,
	}); code != http.StatusOK {
		t.Errorf("post-storm query: status %d", code)
	}
}

// TestConcurrentSessionInit fires many first-requests for the SAME spec at
// once: the singleflight entry must produce exactly one initialization and
// every request must succeed with the same answer.
func TestConcurrentSessionInit(t *testing.T) {
	ts, _ := testServer(t)
	const n = 16
	results := make([]QueryResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, _ := json.Marshal(QueryRequest{
				Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 10, K: 5,
			})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&results[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i].Power != results[0].Power || results[i].Covered != results[0].Covered {
			t.Errorf("request %d answered differently: %+v vs %+v", i, results[i], results[0])
		}
	}
}

// TestConcurrentEngineTopK drives Session.TopK directly (no HTTP) from many
// goroutines against both a shared session and per-goroutine sessions, and
// checks the answers against a sequential ground truth. This is the engine
// half of the concurrency contract the server relies on.
func TestConcurrentEngineTopK(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rel := graphrep.FirstQuartileRelevance(db, nil)
	shared, err := engine.NewSession(rel)
	if err != nil {
		t.Fatal(err)
	}
	thetas := []float64{4, 6, 8, 10}
	want := make(map[float64]float64) // theta → power, sequential ground truth
	for _, theta := range thetas {
		res, err := shared.TopK(theta, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[theta] = res.Power
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := shared
			if w%2 == 1 {
				var err error
				if sess, err = engine.NewSession(rel); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < 6; i++ {
				theta := thetas[(w+i)%len(thetas)]
				res, err := sess.TopK(theta, 5)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Power != want[theta] {
					t.Errorf("worker %d θ=%v: power %v, want %v", w, theta, res.Power, want[theta])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestMetricsConsistentAfterStorm checks the exposition totals add up after
// concurrent traffic: requests_total per endpoint equals what was sent, and
// the in-flight gauge settles back to just the scrape itself.
func TestMetricsConsistentAfterStorm(t *testing.T) {
	db, err := graphrep.GenerateDataset("dud", 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := graphrep.Open(db, graphrep.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine).Handler())
	defer ts.Close()

	const (
		workers = 6
		iters   = 5
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &client{t: t, base: ts.URL}
			for i := 0; i < iters; i++ {
				c.post("/query", QueryRequest{
					Relevance: RelevanceSpec{Kind: "quartile"}, Theta: 6, K: 3,
				})
				c.get("/stats")
			}
		}(w)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	total := workers * iters
	for _, want := range []string{
		fmt.Sprintf(`graphrep_http_requests_total{endpoint="/query"} %d`, total),
		fmt.Sprintf(`graphrep_http_requests_total{endpoint="/stats"} %d`, total),
		fmt.Sprintf(`graphrep_http_request_duration_seconds_count{endpoint="/query"} %d`, total),
		fmt.Sprintf("graphrep_nbindex_queries_total %d", total),
		"graphrep_http_in_flight_requests 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every endpoint's error counter (created eagerly by the middleware)
	// must still read zero: the storm sent only well-formed requests.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "graphrep_http_errors_total{") && !strings.HasSuffix(line, " 0") {
			t.Errorf("well-formed traffic produced errors: %s", line)
		}
	}
}
