package assignment

import (
	"math"
	"sync"
)

// Solver carries the scratch arenas (dual potentials, column assignments,
// augmenting-path bookkeeping) for the Hungarian solve so repeated calls on
// same-sized matrices allocate nothing. A Solver is not safe for concurrent
// use; recycle instances through Get/Put (a sync.Pool) or keep one per
// goroutine.
type Solver struct {
	u, v, minv []float64
	p, way     []int
	used       []bool
}

// NewSolver returns an empty Solver. Scratch grows on first use and is
// retained for subsequent calls.
func NewSolver() *Solver { return &Solver{} }

var solverPool = sync.Pool{New: func() any { return &Solver{} }}

// Get returns a Solver from the package pool.
func Get() *Solver { return solverPool.Get().(*Solver) }

// Put returns a Solver to the package pool. The caller must not use s after
// Put.
func Put(s *Solver) { solverPool.Put(s) }

const inf = math.MaxFloat64

// grow sizes the scratch arenas for an n×n matrix and resets the state that
// persists across rows (duals and column assignments). minv/used are reset
// per augmented row inside run.
func (s *Solver) grow(n int) {
	if cap(s.u) < n+1 {
		s.u = make([]float64, n+1)
		s.v = make([]float64, n+1)
		s.minv = make([]float64, n+1)
		s.p = make([]int, n+1)
		s.way = make([]int, n+1)
		s.used = make([]bool, n+1)
	} else {
		s.u = s.u[:n+1]
		s.v = s.v[:n+1]
		s.minv = s.minv[:n+1]
		s.p = s.p[:n+1]
		s.way = s.way[:n+1]
		s.used = s.used[:n+1]
	}
	for j := 0; j <= n; j++ {
		s.u[j], s.v[j], s.p[j] = 0, 0, 0
	}
}

func checkSquare(cost [][]float64) int {
	n := len(cost)
	for _, row := range cost {
		if len(row) != n {
			panic("assignment: cost matrix is not square")
		}
	}
	return n
}

// run executes the O(n³) shortest-augmenting-path Hungarian scheme, one row
// at a time. After row i is augmented, -v[0] equals the optimal cost of
// assigning rows 1..i alone (the partial dual objective); with non-negative
// costs that value is a monotone lower bound on the full optimum, so while
// i ≤ abortRows the solve aborts as soon as that bound exceeds tau
// (abortRows ≤ 0 disables the early exit, abortRows ≥ n checks every row).
// run reports whether the solve ran to completion (false = aborted, optimum
// provably > tau). The arithmetic is identical to the historical Solve loop,
// so a completed run reproduces its results bit for bit — the abort gate only
// decides whether a row is followed by a comparison, never what is computed.
func (s *Solver) run(cost [][]float64, n int, tau float64, abortRows int) bool {
	s.grow(n)
	for i := 1; i <= n; i++ {
		s.augmentRow(cost, n, i)
		if i <= abortRows && -s.v[0] > tau {
			return false
		}
	}
	return true
}

// augmentRow grows the matching by one row via the shortest augmenting path
// in reduced costs, updating the duals along the alternating tree. It is the
// body of one iteration of the historical Solve loop, factored out so warm
// starts (TotalWarm) can run it for a subset of rows: the procedure is the
// standard successive-shortest-path step and stays correct for any partial
// matching in p that satisfies complementary slackness under feasible duals,
// regardless of which rows built it.
func (s *Solver) augmentRow(cost [][]float64, n, i int) {
	u, v, p, way, minv, used := s.u, s.v, s.p, s.way, s.minv, s.used
	p[0] = i
	j0 := 0
	for j := 0; j <= n; j++ {
		minv[j] = inf
		used[j] = false
	}
	for {
		used[j0] = true
		i0 := p[j0]
		delta := inf
		j1 := 0
		for j := 1; j <= n; j++ {
			if used[j] {
				continue
			}
			cur := cost[i0-1][j-1] - u[i0] - v[j]
			if cur < minv[j] {
				minv[j] = cur
				way[j] = j0
			}
			if minv[j] < delta {
				delta = minv[j]
				j1 = j
			}
		}
		for j := 0; j <= n; j++ {
			if used[j] {
				u[p[j]] += delta
				v[j] -= delta
			} else {
				minv[j] -= delta
			}
		}
		j0 = j1
		if p[j0] == 0 {
			break
		}
	}
	for j0 != 0 {
		j1 := way[j0]
		p[j0] = p[j1]
		j0 = j1
	}
}

// totalFromState sums the assigned costs row by row — the same order Solve
// uses — without allocating the permutation. way is dead after run, so it
// doubles as the row→column inverse of p.
func (s *Solver) totalFromState(cost [][]float64, n int) float64 {
	inv := s.way
	for j := 1; j <= n; j++ {
		inv[s.p[j]] = j
	}
	total := 0.0
	for i := 1; i <= n; i++ {
		total += cost[i-1][inv[i]-1]
	}
	return total
}

// Solve returns a minimum-cost assignment for the square cost matrix, as a
// slice perm where row i is assigned to column perm[i], along with the total
// cost. It panics if the matrix is not square; an empty matrix yields an
// empty assignment with cost 0. Results are identical to the package-level
// Solve (which is a pooled wrapper around this method).
func (s *Solver) Solve(cost [][]float64) (perm []int, total float64) {
	n := checkSquare(cost)
	if n == 0 {
		return nil, 0
	}
	s.run(cost, n, 0, 0)
	perm = make([]int, n)
	for j := 1; j <= n; j++ {
		perm[s.p[j]-1] = j - 1
	}
	for i, j := range perm {
		total += cost[i][j]
	}
	return perm, total
}

// Total returns the minimum assignment cost without materializing the
// permutation; no allocations in steady state. The value is bit-identical to
// the total returned by Solve.
func (s *Solver) Total(cost [][]float64) float64 {
	n := checkSquare(cost)
	if n == 0 {
		return 0
	}
	s.run(cost, n, 0, 0)
	return s.totalFromState(cost, n)
}

// TotalWarm is Total with a Jonker–Volgenant-style warm start for callers
// that already hold each row's minimum (the threshold cascade computes them
// for its row-sum lower bound): the duals are initialized by row reduction —
// u[i] = rowMin[i], v = 0, feasible because no entry is below its row minimum
// — and each row first tries to claim a free column of zero reduced cost
// under the current duals, a match that satisfies complementary slackness
// outright. Only rows that find no such column run the O(n²)-per-tree
// augmentation, which remains correct for any partial matching built this way
// (see augmentRow). The returned optimum is the same value Total returns —
// with integral costs, bit for bit — though the minimizing assignment reached
// may differ on ties.
//
// rowMin[i] must equal min_j cost[i][j] for every row; costs must be
// non-negative. Violating either silently breaks dual feasibility and with it
// the optimality of the result.
func (s *Solver) TotalWarm(cost [][]float64, rowMin []float64) float64 {
	n := checkSquare(cost)
	if n == 0 {
		return 0
	}
	s.grow(n)
	u, v, p := s.u, s.v, s.p
	for i := 1; i <= n; i++ {
		u[i] = rowMin[i-1]
	}
	for i := 1; i <= n; i++ {
		row := cost[i-1]
		ui := u[i]
		matched := false
		for j := 1; j <= n; j++ {
			if p[j] == 0 && row[j-1]-ui-v[j] == 0 {
				p[j] = i
				matched = true
				break
			}
		}
		if !matched {
			s.augmentRow(cost, n, i)
		}
	}
	return s.totalFromState(cost, n)
}

// AtMost reports whether the minimum assignment cost is ≤ tau, without
// necessarily completing the solve: the partial dual objective after each
// augmented row is a lower bound on the optimum, and the solve aborts the
// moment it exceeds tau. aborted reports whether that early exit fired (in
// which case leq is necessarily false); otherwise the decision compares the
// completed optimum — summed exactly as Solve sums it — against tau.
//
// Preconditions: every cost entry must be non-negative (the partial optimum
// is only a lower bound on the full optimum when remaining rows cannot
// subtract cost). When every entry is additionally an integer value (as in
// the star kernel, where costs count edit operations), all arithmetic —
// including the accumulated duals — is exact, and AtMost(cost, tau) ⇔
// Solve(cost) total ≤ tau holds bit for bit. With non-integral entries the
// accumulated dual bound can drift a few ulps, so decisions within fp
// rounding of tau may differ from comparing Solve's total.
func (s *Solver) AtMost(cost [][]float64, tau float64) (leq, aborted bool) {
	total, aborted := s.TotalAtMost(cost, tau)
	if aborted {
		return false, true
	}
	return total <= tau, false
}

// TotalAtMost is the value-returning form of AtMost: when the solve runs to
// completion (aborted false) total is the exact optimum, bit-identical to
// Solve's; when the dual bound fires (aborted true) total is the partial dual
// objective — a proven lower bound on the optimum that already exceeds tau.
// The same preconditions as AtMost apply.
func (s *Solver) TotalAtMost(cost [][]float64, tau float64) (total float64, aborted bool) {
	n := checkSquare(cost)
	return s.totalAtMost(cost, n, tau, n)
}

// TotalAtMostEarly is TotalAtMost with the abort gated to the first abortRows
// augmented rows: within the gate the solve exits as soon as the partial dual
// objective exceeds tau; past it the solve always runs to completion and
// returns the exact optimum. An abort at row i saves the remaining n−i row
// augmentations but forfeits the exact value, so callers whose decisions are
// memoized (the threshold cascade under the distance cache) gate the abort to
// rows where the savings are large — a late abort trades one completed,
// cacheable solve for a nearly-as-expensive partial one that must be redone
// at the next threshold. abortRows ≤ 0 never aborts; abortRows ≥ n is
// TotalAtMost exactly. Same preconditions as AtMost.
func (s *Solver) TotalAtMostEarly(cost [][]float64, tau float64, abortRows int) (total float64, aborted bool) {
	n := checkSquare(cost)
	return s.totalAtMost(cost, n, tau, abortRows)
}

func (s *Solver) totalAtMost(cost [][]float64, n int, tau float64, abortRows int) (total float64, aborted bool) {
	if n == 0 {
		return 0, false
	}
	if !s.run(cost, n, tau, abortRows) {
		return -s.v[0], true
	}
	return s.totalFromState(cost, n), false
}

// UpperBound returns the cost of a feasible assignment built by the greedy
// row-by-row heuristic followed by pairwise-swap polish passes, without
// allocating. Any feasible assignment bounds the optimum from above, so
// UpperBound(cost) ≥ Total(cost) always, and UpperBound(cost) ≤ the plain
// GreedyTotal. The result is deterministic: ties break on the lowest column
// index and the polish scans rows in a fixed order. The total is re-summed
// from the final assignment in row order, so for integral costs it is the
// exact cost of that assignment.
func (s *Solver) UpperBound(cost [][]float64) float64 {
	return s.UpperBoundAtMost(cost, math.Inf(-1))
}

// UpperBoundAtMost is UpperBound with an early exit: the moment the running
// feasible-assignment cost drops to ≤ tau the current total is returned
// without finishing the polish — the caller only needs a witness that the
// optimum is ≤ tau, and any feasible assignment's cost is one. When no such
// exit fires the result is identical to UpperBound (tau = -Inf never exits).
// Costs must be non-negative; with integral costs the incrementally updated
// running total is exact, so the early-exit value is the exact cost of the
// assignment held at that moment.
func (s *Solver) UpperBoundAtMost(cost [][]float64, tau float64) float64 {
	n := len(cost)
	if n == 0 {
		return 0
	}
	s.grow(n)
	used := s.used[:n]
	for j := range used {
		used[j] = false
	}
	asg := s.p[:n] // asg[i] = column assigned to row i (0-based)
	total := 0.0
	for i := 0; i < n; i++ {
		best, bestJ := math.MaxFloat64, -1
		row := cost[i]
		for j := 0; j < n; j++ {
			if !used[j] && row[j] < best {
				best, bestJ = row[j], j
			}
		}
		used[bestJ] = true
		asg[i] = bestJ
		total += best
	}
	if total <= tau {
		return total
	}
	return s.polish(cost, n, tau, total)
}

// UpperBoundAtMostWithMins fuses the greedy pass of UpperBoundAtMost with the
// row-minima scan backing the threshold cascade's row-bound tier: while greedy
// picks each row's cheapest unused column, the same cell reads also record the
// row's unconstrained minimum into rowMin and accumulate
// rowSum = Σ_i min_j cost[i][j] — the assignment-relaxed lower bound on the
// optimum. The fusion touches each cell exactly once where separate scans
// touch it twice; on the reference workload the dedicated minima pass cost
// more than the marginal compare here.
//
// When rowSum > tau the polish passes are skipped and the raw greedy total is
// returned: the lower bound already proves the optimum exceeds tau, so no
// feasible assignment can reach it and the caller discards ub in favor of the
// rowSum verdict. Otherwise ub is identical to UpperBoundAtMost(cost, tau) —
// same greedy, same polish, same early exit. rowMin must hold at least
// len(cost) entries; costs must be non-negative.
func (s *Solver) UpperBoundAtMostWithMins(cost [][]float64, tau float64, rowMin []float64) (ub, rowSum float64) {
	n := len(cost)
	if n == 0 {
		return 0, 0
	}
	s.grow(n)
	used := s.used[:n]
	for j := range used {
		used[j] = false
	}
	asg := s.p[:n] // asg[i] = column assigned to row i (0-based)
	total := 0.0
	for i := 0; i < n; i++ {
		row := cost[i]
		rmin := math.MaxFloat64
		best, bestJ := math.MaxFloat64, -1
		for j := 0; j < n; j++ {
			v := row[j]
			if v < rmin {
				rmin = v
			}
			if v < best && !used[j] {
				best, bestJ = v, j
			}
		}
		used[bestJ] = true
		asg[i] = bestJ
		total += best
		rowMin[i] = rmin
		rowSum += rmin
	}
	if rowSum > tau || total <= tau {
		return total, rowSum
	}
	return s.polish(cost, n, tau, total), rowSum
}

// polish improves the feasible assignment held in s.p[:n] (running cost
// total) with 2-swap passes: exchanging the columns of rows i and j keeps the
// assignment feasible; accept strict improvements until a full pass finds
// none. Greedy's mistakes are mostly pairwise (an early row grabbing a later
// row's best column), so the first couple of passes close most of the gap to
// the optimum at O(n²) each. The cap of 2 matches the measured yield on the
// reference workload — passes beyond the second decided well under 1% of
// greedy successes while every greedy *failure* paid for them in full. The
// moment the running total reaches ≤ tau it is returned as-is; otherwise the
// final total is re-summed from the assignment in row order so the no-exit
// result is bit-identical to the historical UpperBound.
func (s *Solver) polish(cost [][]float64, n int, tau, total float64) float64 {
	asg := s.p[:n]
	for pass := 0; pass < 2; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ci, cj := asg[i], asg[j]
				if after, before := cost[i][cj]+cost[j][ci], cost[i][ci]+cost[j][cj]; after < before {
					asg[i], asg[j] = cj, ci
					total -= before - after
					if total <= tau {
						return total
					}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	total = 0
	for i := 0; i < n; i++ {
		total += cost[i][asg[i]]
	}
	return total
}

// GreedyTotal returns the cost of the greedy row-by-row assignment — an
// upper bound on the optimum — without allocating. Equivalent to the total
// returned by Greedy.
func (s *Solver) GreedyTotal(cost [][]float64) float64 {
	n := len(cost)
	if n == 0 {
		return 0
	}
	s.grow(n)
	used := s.used
	for j := 0; j <= n; j++ {
		used[j] = false
	}
	total := 0.0
	for i := 0; i < n; i++ {
		best, bestJ := math.MaxFloat64, -1
		for j := 0; j < n; j++ {
			if !used[j+1] && cost[i][j] < best {
				best, bestJ = cost[i][j], j
			}
		}
		used[bestJ+1] = true
		total += best
	}
	return total
}
