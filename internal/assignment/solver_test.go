package assignment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolverMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewSolver()
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8)
		cost := randomCost(rng, n)
		wantPerm, wantTotal := Solve(cost)
		gotPerm, gotTotal := s.Solve(cost)
		if gotTotal != wantTotal {
			t.Fatalf("trial %d: Solver total %v != Solve total %v", trial, gotTotal, wantTotal)
		}
		if len(gotPerm) != len(wantPerm) {
			t.Fatalf("trial %d: perm lengths differ", trial)
		}
		if got := s.Total(cost); got != wantTotal {
			t.Fatalf("trial %d: Total %v != Solve total %v", trial, got, wantTotal)
		}
	}
}

// integralCost mirrors the star kernel's cost domain: small non-negative
// integers stored in float64, where all Hungarian arithmetic stays exact.
func integralCost(rng *rand.Rand, n int) [][]float64 {
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := range c[i] {
			c[i][j] = float64(rng.Intn(30))
		}
	}
	return c
}

// The load-bearing kernel property: on integral costs (the star kernel's
// domain), AtMost(cost, tau) decides exactly Solve(cost) total ≤ tau, for any
// tau — including tau right at the optimum — and an aborted solve always
// means "above tau".
func TestAtMostMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := NewSolver()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		cost := integralCost(r, n)
		_, opt := Solve(cost)
		for _, tau := range []float64{opt - 1, opt - 0.5, opt, opt + 0.5, opt + 1, 0, opt / 2, opt * 2} {
			leq, aborted := s.AtMost(cost, tau)
			if leq != (opt <= tau) {
				t.Logf("n=%d tau=%v opt=%v: AtMost=%v", n, tau, opt, leq)
				return false
			}
			if aborted && leq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAtMostEmpty(t *testing.T) {
	s := NewSolver()
	if leq, aborted := s.AtMost(nil, 0); !leq || aborted {
		t.Errorf("AtMost(nil, 0) = %v, %v, want true, false", leq, aborted)
	}
	if leq, _ := s.AtMost(nil, -1); leq {
		t.Error("AtMost(nil, -1) = true, want false")
	}
}

// The dual early exit must actually fire on a clearly-over-threshold matrix;
// otherwise the bounded path silently degrades to a full solve.
func TestAtMostAborts(t *testing.T) {
	n := 16
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = 10 + float64((i+j)%5)
		}
	}
	s := NewSolver()
	leq, aborted := s.AtMost(cost, 1)
	if leq {
		t.Fatal("AtMost reported ≤ 1 for a matrix whose optimum is ≥ 160")
	}
	if !aborted {
		t.Error("dual early exit did not fire for tau far below the optimum")
	}
}

func TestGreedyTotalMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := NewSolver()
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(10)
		cost := randomCost(rng, n)
		_, want := Greedy(cost)
		if got := s.GreedyTotal(cost); got != want {
			t.Fatalf("trial %d: GreedyTotal %v != Greedy total %v", trial, got, want)
		}
	}
}

// UpperBound must sandwich between the exact optimum and the plain greedy
// total: it is a feasible assignment's cost (≥ optimum) that the swap polish
// never makes worse than greedy alone.
func TestUpperBoundSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := NewSolver()
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(12)
		cost := integralCost(rng, n)
		_, opt := Solve(cost)
		greedy := s.GreedyTotal(cost)
		ub := s.UpperBound(cost)
		if ub < opt {
			t.Fatalf("trial %d: UpperBound %v below optimum %v", trial, ub, opt)
		}
		if ub > greedy {
			t.Fatalf("trial %d: UpperBound %v above greedy %v", trial, ub, greedy)
		}
	}
}

// TotalWarm's warm start must be a pure speedup: whatever partial matching
// the zero-reduced-cost pre-match happens to build, the returned optimum is
// bit-identical to Total's on integral costs. Tight moduli force heavy cost
// ties — the regime where the pre-match claims most rows and tie-broken
// assignments diverge from the cold solve's.
func TestTotalWarmMatchesTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cold, warm := NewSolver(), NewSolver()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		modulus := 1 + r.Intn(30)
		cost := make([][]float64, n)
		rowMin := make([]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			m := math.MaxFloat64
			for j := range cost[i] {
				cost[i][j] = float64(r.Intn(modulus))
				if cost[i][j] < m {
					m = cost[i][j]
				}
			}
			rowMin[i] = m
		}
		want := cold.Total(cost)
		if got := warm.TotalWarm(cost, rowMin); got != want {
			t.Logf("seed=%d n=%d mod=%d: TotalWarm %v != Total %v", seed, n, modulus, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestTotalWarmEmpty(t *testing.T) {
	s := NewSolver()
	if got := s.TotalWarm(nil, nil); got != 0 {
		t.Errorf("TotalWarm(nil) = %v, want 0", got)
	}
}

// The fused greedy+minima scan must agree with its unfused halves: rowMin
// holds the exact per-row minima, rowSum is the assignment-relaxed lower
// bound (≤ optimum), ub is a feasible assignment's cost (≥ optimum), and
// whenever the rowSum short-circuit cannot fire the value is bit-identical to
// UpperBoundAtMost at the same tau.
func TestUpperBoundAtMostWithMinsAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	plain, fused := NewSolver(), NewSolver()
	rowMin := make([]float64, 16)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		cost := integralCost(rng, n)
		_, opt := Solve(cost)
		for _, tau := range []float64{-1, 0, opt / 2, opt - 1, opt, opt + 1, 2 * opt, math.Inf(-1)} {
			ub, rowSum := fused.UpperBoundAtMostWithMins(cost, tau, rowMin)
			wantSum := 0.0
			for i := 0; i < n; i++ {
				m := cost[i][0]
				for _, v := range cost[i][1:] {
					if v < m {
						m = v
					}
				}
				if rowMin[i] != m {
					t.Fatalf("trial %d n=%d: rowMin[%d] = %v, want row minimum %v", trial, n, i, rowMin[i], m)
				}
				wantSum += m
			}
			if rowSum != wantSum {
				t.Fatalf("trial %d tau=%v: rowSum %v != Σ row minima %v", trial, tau, rowSum, wantSum)
			}
			if rowSum > opt {
				t.Fatalf("trial %d: rowSum %v above optimum %v — not a lower bound", trial, rowSum, opt)
			}
			if ub < opt {
				t.Fatalf("trial %d tau=%v: ub %v below optimum %v — not a feasible assignment's cost", trial, tau, ub, opt)
			}
			if rowSum <= tau {
				if want := plain.UpperBoundAtMost(cost, tau); ub != want {
					t.Fatalf("trial %d tau=%v: fused ub %v != UpperBoundAtMost %v", trial, tau, ub, want)
				}
			}
		}
	}
}

func TestUpperBoundAtMostWithMinsEmpty(t *testing.T) {
	s := NewSolver()
	if ub, rowSum := s.UpperBoundAtMostWithMins(nil, 0, nil); ub != 0 || rowSum != 0 {
		t.Errorf("UpperBoundAtMostWithMins(nil) = %v, %v, want 0, 0", ub, rowSum)
	}
}

// A Solver reused across sizes (large, then small, then large) must not leak
// state between calls.
func TestSolverReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewSolver()
	for _, n := range []int{12, 3, 12, 1, 7, 12} {
		cost := randomCost(rng, n)
		_, want := Solve(cost)
		if got := s.Total(cost); got != want {
			t.Fatalf("n=%d: reused Solver total %v != fresh Solve %v", n, got, want)
		}
	}
}

func TestSolverAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(37))
	cost := randomCost(rng, 24)
	s := NewSolver()
	s.Total(cost) // warm the arenas
	if allocs := testing.AllocsPerRun(50, func() { s.Total(cost) }); allocs != 0 {
		t.Errorf("Solver.Total allocates %v per op after warmup, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { s.AtMost(cost, 1e9) }); allocs != 0 {
		t.Errorf("Solver.AtMost allocates %v per op after warmup, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { s.GreedyTotal(cost) }); allocs != 0 {
		t.Errorf("Solver.GreedyTotal allocates %v per op after warmup, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { s.UpperBound(cost) }); allocs != 0 {
		t.Errorf("Solver.UpperBound allocates %v per op after warmup, want 0", allocs)
	}
	rowMin := make([]float64, len(cost))
	s.UpperBoundAtMostWithMins(cost, 1e9, rowMin) // also fills rowMin for TotalWarm
	if allocs := testing.AllocsPerRun(50, func() { s.UpperBoundAtMostWithMins(cost, 1e9, rowMin) }); allocs != 0 {
		t.Errorf("Solver.UpperBoundAtMostWithMins allocates %v per op after warmup, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { s.TotalWarm(cost, rowMin) }); allocs != 0 {
		t.Errorf("Solver.TotalWarm allocates %v per op after warmup, want 0", allocs)
	}
}

func BenchmarkSolverTotal32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cost := randomCost(rng, 32)
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Total(cost)
	}
}

func BenchmarkAtMost32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cost := randomCost(rng, 32)
	s := NewSolver()
	_, opt := Solve(cost)
	b.Run("prune", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.AtMost(cost, opt/4)
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.AtMost(cost, opt)
		}
	})
}
