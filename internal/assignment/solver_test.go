package assignment

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolverMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewSolver()
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8)
		cost := randomCost(rng, n)
		wantPerm, wantTotal := Solve(cost)
		gotPerm, gotTotal := s.Solve(cost)
		if gotTotal != wantTotal {
			t.Fatalf("trial %d: Solver total %v != Solve total %v", trial, gotTotal, wantTotal)
		}
		if len(gotPerm) != len(wantPerm) {
			t.Fatalf("trial %d: perm lengths differ", trial)
		}
		if got := s.Total(cost); got != wantTotal {
			t.Fatalf("trial %d: Total %v != Solve total %v", trial, got, wantTotal)
		}
	}
}

// integralCost mirrors the star kernel's cost domain: small non-negative
// integers stored in float64, where all Hungarian arithmetic stays exact.
func integralCost(rng *rand.Rand, n int) [][]float64 {
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := range c[i] {
			c[i][j] = float64(rng.Intn(30))
		}
	}
	return c
}

// The load-bearing kernel property: on integral costs (the star kernel's
// domain), AtMost(cost, tau) decides exactly Solve(cost) total ≤ tau, for any
// tau — including tau right at the optimum — and an aborted solve always
// means "above tau".
func TestAtMostMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := NewSolver()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		cost := integralCost(r, n)
		_, opt := Solve(cost)
		for _, tau := range []float64{opt - 1, opt - 0.5, opt, opt + 0.5, opt + 1, 0, opt / 2, opt * 2} {
			leq, aborted := s.AtMost(cost, tau)
			if leq != (opt <= tau) {
				t.Logf("n=%d tau=%v opt=%v: AtMost=%v", n, tau, opt, leq)
				return false
			}
			if aborted && leq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAtMostEmpty(t *testing.T) {
	s := NewSolver()
	if leq, aborted := s.AtMost(nil, 0); !leq || aborted {
		t.Errorf("AtMost(nil, 0) = %v, %v, want true, false", leq, aborted)
	}
	if leq, _ := s.AtMost(nil, -1); leq {
		t.Error("AtMost(nil, -1) = true, want false")
	}
}

// The dual early exit must actually fire on a clearly-over-threshold matrix;
// otherwise the bounded path silently degrades to a full solve.
func TestAtMostAborts(t *testing.T) {
	n := 16
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = 10 + float64((i+j)%5)
		}
	}
	s := NewSolver()
	leq, aborted := s.AtMost(cost, 1)
	if leq {
		t.Fatal("AtMost reported ≤ 1 for a matrix whose optimum is ≥ 160")
	}
	if !aborted {
		t.Error("dual early exit did not fire for tau far below the optimum")
	}
}

func TestGreedyTotalMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := NewSolver()
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(10)
		cost := randomCost(rng, n)
		_, want := Greedy(cost)
		if got := s.GreedyTotal(cost); got != want {
			t.Fatalf("trial %d: GreedyTotal %v != Greedy total %v", trial, got, want)
		}
	}
}

// UpperBound must sandwich between the exact optimum and the plain greedy
// total: it is a feasible assignment's cost (≥ optimum) that the swap polish
// never makes worse than greedy alone.
func TestUpperBoundSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := NewSolver()
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(12)
		cost := integralCost(rng, n)
		_, opt := Solve(cost)
		greedy := s.GreedyTotal(cost)
		ub := s.UpperBound(cost)
		if ub < opt {
			t.Fatalf("trial %d: UpperBound %v below optimum %v", trial, ub, opt)
		}
		if ub > greedy {
			t.Fatalf("trial %d: UpperBound %v above greedy %v", trial, ub, greedy)
		}
	}
}

// A Solver reused across sizes (large, then small, then large) must not leak
// state between calls.
func TestSolverReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewSolver()
	for _, n := range []int{12, 3, 12, 1, 7, 12} {
		cost := randomCost(rng, n)
		_, want := Solve(cost)
		if got := s.Total(cost); got != want {
			t.Fatalf("n=%d: reused Solver total %v != fresh Solve %v", n, got, want)
		}
	}
}

func TestSolverAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(37))
	cost := randomCost(rng, 24)
	s := NewSolver()
	s.Total(cost) // warm the arenas
	if allocs := testing.AllocsPerRun(50, func() { s.Total(cost) }); allocs != 0 {
		t.Errorf("Solver.Total allocates %v per op after warmup, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { s.AtMost(cost, 1e9) }); allocs != 0 {
		t.Errorf("Solver.AtMost allocates %v per op after warmup, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { s.GreedyTotal(cost) }); allocs != 0 {
		t.Errorf("Solver.GreedyTotal allocates %v per op after warmup, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { s.UpperBound(cost) }); allocs != 0 {
		t.Errorf("Solver.UpperBound allocates %v per op after warmup, want 0", allocs)
	}
}

func BenchmarkSolverTotal32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cost := randomCost(rng, 32)
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Total(cost)
	}
}

func BenchmarkAtMost32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cost := randomCost(rng, 32)
	s := NewSolver()
	_, opt := Solve(cost)
	b.Run("prune", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.AtMost(cost, opt/4)
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.AtMost(cost, opt)
		}
	})
}
