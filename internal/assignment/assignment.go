// Package assignment solves the linear assignment problem: given an n×n cost
// matrix, find a permutation minimizing the total cost. It underlies both the
// bipartite graph-edit-distance upper bound (Riesen & Bunke) and the
// star-matching metric distance (Zeng et al.) in internal/ged.
//
// Solve implements the O(n³) Jonker-style shortest augmenting path variant of
// the Hungarian (Kuhn–Munkres) algorithm. Greedy provides a fast approximate
// assignment used where optimality is not required.
package assignment

import "math"

// Solve returns a minimum-cost assignment for the square cost matrix, as a
// slice perm where row i is assigned to column perm[i], along with the total
// cost. Solve panics if the matrix is not square. An empty matrix yields an
// empty assignment with cost 0.
//
// The implementation maintains dual potentials u (rows) and v (columns) and
// augments one row at a time along a shortest alternating path, the classic
// O(n³) scheme.
func Solve(cost [][]float64) (perm []int, total float64) {
	n := len(cost)
	for _, row := range cost {
		if len(row) != n {
			panic("assignment: cost matrix is not square")
		}
	}
	if n == 0 {
		return nil, 0
	}
	const inf = math.MaxFloat64
	// 1-based internal arrays simplify the augmenting-path bookkeeping.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j (0 = none)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 1; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	perm = make([]int, n)
	for j := 1; j <= n; j++ {
		perm[p[j]-1] = j - 1
	}
	for i, j := range perm {
		total += cost[i][j]
	}
	return perm, total
}

// Greedy returns an approximate assignment by repeatedly taking each row's
// cheapest unused column, and its total cost. It is an upper bound on the
// optimal cost and runs in O(n²).
func Greedy(cost [][]float64) (perm []int, total float64) {
	n := len(cost)
	perm = make([]int, n)
	used := make([]bool, n)
	for i := 0; i < n; i++ {
		best, bestJ := math.MaxFloat64, -1
		for j := 0; j < n; j++ {
			if !used[j] && cost[i][j] < best {
				best, bestJ = cost[i][j], j
			}
		}
		used[bestJ] = true
		perm[i] = bestJ
		total += best
	}
	return perm, total
}
