// Package assignment solves the linear assignment problem: given an n×n cost
// matrix, find a permutation minimizing the total cost. It underlies both the
// bipartite graph-edit-distance upper bound (Riesen & Bunke) and the
// star-matching metric distance (Zeng et al.) in internal/ged.
//
// The Solver type implements the O(n³) Jonker-style shortest augmenting path
// variant of the Hungarian (Kuhn–Munkres) algorithm with reusable scratch
// arenas, plus a threshold-bounded AtMost that aborts via the dual objective.
// Solve is the historical one-shot entry point, now a thin wrapper over a
// pooled Solver with bit-identical results. Greedy provides a fast
// approximate assignment used where optimality is not required.
package assignment

import "math"

// Solve returns a minimum-cost assignment for the square cost matrix, as a
// slice perm where row i is assigned to column perm[i], along with the total
// cost. Solve panics if the matrix is not square. An empty matrix yields an
// empty assignment with cost 0.
//
// It borrows a pooled Solver, so the only allocation in steady state is the
// returned perm slice; callers that do not need the permutation should hold a
// Solver and use Total or AtMost instead.
func Solve(cost [][]float64) (perm []int, total float64) {
	s := Get()
	perm, total = s.Solve(cost)
	Put(s)
	return perm, total
}

// Greedy returns an approximate assignment by repeatedly taking each row's
// cheapest unused column, and its total cost. It is an upper bound on the
// optimal cost and runs in O(n²).
func Greedy(cost [][]float64) (perm []int, total float64) {
	n := len(cost)
	perm = make([]int, n)
	used := make([]bool, n)
	for i := 0; i < n; i++ {
		best, bestJ := math.MaxFloat64, -1
		for j := 0; j < n; j++ {
			if !used[j] && cost[i][j] < best {
				best, bestJ = cost[i][j], j
			}
		}
		used[bestJ] = true
		perm[i] = bestJ
		total += best
	}
	return perm, total
}
