package assignment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce finds the optimal assignment by enumerating permutations.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.MaxFloat64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			total := 0.0
			for r, c := range perm {
				total += cost[r][c]
			}
			if total < best {
				best = total
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func randomCost(rng *rand.Rand, n int) [][]float64 {
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := range c[i] {
			c[i][j] = math.Floor(rng.Float64()*100) / 10
		}
	}
	return c
}

func TestSolveEmpty(t *testing.T) {
	perm, total := Solve(nil)
	if len(perm) != 0 || total != 0 {
		t.Errorf("Solve(nil) = %v, %v", perm, total)
	}
}

func TestSolveKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	perm, total := Solve(cost)
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %v, want 5", total)
	}
	seen := make(map[int]bool)
	for _, j := range perm {
		if seen[j] {
			t.Fatalf("perm %v is not a permutation", perm)
		}
		seen[j] = true
	}
}

func TestSolveNotSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-square matrix")
		}
	}()
	Solve([][]float64{{1, 2}, {3}})
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		cost := randomCost(rng, n)
		_, got := Solve(cost)
		want := bruteForce(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Solve = %v, brute force = %v, cost=%v", trial, got, want, cost)
		}
	}
}

func TestGreedyIsValidUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		cost := randomCost(r, n)
		gp, gt := Greedy(cost)
		_, ot := Solve(cost)
		seen := make(map[int]bool)
		for _, j := range gp {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return gt >= ot-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: the optimal value never exceeds the cost of the identity
// permutation (a specific feasible solution).
func TestSolveDominatesIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		cost := randomCost(r, n)
		_, opt := Solve(cost)
		ident := 0.0
		for i := 0; i < n; i++ {
			ident += cost[i][i]
		}
		return opt <= ident+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolve32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cost := randomCost(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(cost)
	}
}
