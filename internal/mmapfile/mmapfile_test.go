package mmapfile

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "img.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenMatchesReadAll(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	path := writeTemp(t, payload)

	mapped, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	heap, err := OpenReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	defer heap.Close()

	if !bytes.Equal(mapped.Bytes(), payload) {
		t.Fatalf("mapped bytes differ: %q", mapped.Bytes())
	}
	if !bytes.Equal(heap.Bytes(), payload) {
		t.Fatalf("heap bytes differ: %q", heap.Bytes())
	}
	if heap.Mapped() {
		t.Fatal("OpenReadAll reported a mapping")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := writeTemp(t, nil)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Bytes()) != 0 {
		t.Fatalf("empty file has %d bytes", len(f.Bytes()))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}

func TestCloseIdempotent(t *testing.T) {
	f, err := Open(writeTemp(t, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	var nilFile *File
	if err := nilFile.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestViewFloat64(t *testing.T) {
	want := []float64{0, 1.5, -3.25, math.Pi, math.Inf(1)}
	b := make([]byte, 8*len(want))
	for i, v := range want {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	got, err := View[float64](b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if cap(got) != len(got) {
		t.Fatalf("cap %d != len %d: appends would write through", cap(got), len(got))
	}
}

func TestViewInt32(t *testing.T) {
	want := []int32{-1, 0, 1, 1 << 30}
	b := make([]byte, 4*len(want))
	for i, v := range want {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	got, err := View[int32](b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestViewRejectsRaggedLength(t *testing.T) {
	if _, err := View[float64](make([]byte, 12)); err == nil {
		t.Fatal("View accepted 12 bytes as float64s")
	}
	if _, err := View[int32](make([]byte, 7)); err == nil {
		t.Fatal("View accepted 7 bytes as int32s")
	}
}

func TestViewMisalignedFallsBackToCopy(t *testing.T) {
	raw := make([]byte, 8*3+4)
	for i := range raw {
		raw[i] = byte(i)
	}
	b := raw[4:] // guaranteed 4 mod 8 alignment relative to an 8-aligned base
	got, err := View[uint64](b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := binary.LittleEndian.Uint64(b[i*8:]); got[i] != want {
			t.Fatalf("got[%d] = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestViewEmpty(t *testing.T) {
	got, err := View[uint32](nil)
	if err != nil || got != nil {
		t.Fatalf("View(nil) = %v, %v", got, err)
	}
}

func TestViewAppendDoesNotWriteThrough(t *testing.T) {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:], 7)
	binary.LittleEndian.PutUint64(b[8:], 9)
	v, err := View[uint64](b)
	if err != nil {
		t.Fatal(err)
	}
	_ = append(v, 42)
	if binary.LittleEndian.Uint64(b[8:]) != 9 {
		t.Fatal("append wrote through the view into the backing bytes")
	}
}

func TestDisableMmapEnv(t *testing.T) {
	path := writeTemp(t, []byte("payload"))
	t.Setenv("GRAPHREP_DISABLE_MMAP", "1")
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mapped() {
		t.Fatal("GRAPHREP_DISABLE_MMAP=1 still produced a mapping")
	}
	if !bytes.Equal(f.Bytes(), []byte("payload")) {
		t.Fatalf("Bytes() = %q, want %q", f.Bytes(), "payload")
	}
}
