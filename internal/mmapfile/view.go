package mmapfile

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Scalar is the set of element types v4 index sections store: fixed-stride
// little-endian numbers whose in-memory representation matches the on-disk
// one on little-endian hosts.
type Scalar interface {
	~int32 | ~uint32 | ~int64 | ~uint64 | ~float64
}

// hostLittleEndian reports whether the running machine stores integers
// little-endian — the v4 on-disk byte order. Determined once at startup.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// View reinterprets b as a []T of little-endian values. On little-endian
// hosts with b suitably aligned this is zero-copy: the returned slice aliases
// b and lives exactly as long as it, with cap == len so appends reallocate
// instead of writing through. Misaligned input or a big-endian host gets a
// decoded heap copy — same values, no aliasing. The only error is a length
// that is not a multiple of the element size.
func View[T Scalar](b []byte) ([]T, error) {
	var zero T
	size := int(unsafe.Sizeof(zero))
	if len(b)%size != 0 {
		return nil, fmt.Errorf("mmapfile: section of %d bytes is not a whole number of %d-byte elements", len(b), size)
	}
	n := len(b) / size
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%uintptr(size) == 0 {
		s := unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
		return s[:n:n], nil
	}
	out := make([]T, n)
	switch size {
	case 4:
		dst := unsafe.Slice((*uint32)(unsafe.Pointer(&out[0])), n)
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint32(b[i*4:])
		}
	case 8:
		dst := unsafe.Slice((*uint64)(unsafe.Pointer(&out[0])), n)
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
	}
	return out, nil
}
