//go:build !linux && !darwin

package mmapfile

// platformOpen falls back to a heap read on platforms without the thin mmap
// wrapper; callers observe the same File contract, just without page-cache
// sharing (Mapped reports false).
func platformOpen(path string) (*File, error) {
	return OpenReadAll(path)
}

func munmap(data []byte) error { return nil }
