//go:build linux || darwin

package mmapfile

import (
	"fmt"
	"os"
	"syscall"
)

// platformOpen memory-maps path read-only. The file descriptor is closed
// before returning — the mapping outlives it — so a File holds no fd, only
// pages. Empty files map to an empty (unmapped) image, since mmap of length
// zero is an error on both platforms.
func platformOpen(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmapfile: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmapfile: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return &File{data: []byte{}}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapfile: %s: size %d overflows the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapfile: mmap %s: %w", path, err)
	}
	return &File{data: data, mapped: true}, nil
}

func munmap(data []byte) error {
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("mmapfile: munmap: %w", err)
	}
	return nil
}
