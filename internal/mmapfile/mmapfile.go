// Package mmapfile opens read-only byte images of files, memory-mapping them
// where the platform supports it (linux, darwin) and falling back to a plain
// read elsewhere. It is the only package in the tree allowed to use unsafe or
// the raw mmap syscalls — the unsafeconfine analyzer (cmd/replint) enforces
// the confinement — so every zero-copy view the v4 index format serves is
// funneled through the small, auditable surface here.
//
// The contract every caller inherits: the bytes of a File are immutable for
// the File's lifetime, and every view derived from them (View, or plain
// subslices) dies with the File. Closing a mapped File unmaps the pages;
// touching a view afterwards faults. Views are handed out with cap == len, so
// an append through one reallocates onto the heap instead of writing through
// to the mapping.
package mmapfile

import (
	"fmt"
	"os"
)

// File is a read-only byte image of a file: a memory mapping when the
// platform provides one, a heap copy otherwise.
type File struct {
	data   []byte
	mapped bool
}

// Open returns the file's byte image, memory-mapped when the platform
// supports it (the build selects the implementation). The mapping is
// read-only and shared, so concurrent opens of one file share page cache.
// Setting GRAPHREP_DISABLE_MMAP to any non-empty value forces the heap-copy
// path, letting CI exercise the ReadFile fallback on platforms that do have
// mmap.
func Open(path string) (*File, error) {
	if os.Getenv("GRAPHREP_DISABLE_MMAP") != "" {
		return OpenReadAll(path)
	}
	return platformOpen(path)
}

// OpenReadAll returns the file's byte image as a heap copy, never a mapping —
// the Options.DisableMmap path, and the fallback for platforms without mmap.
func OpenReadAll(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mmapfile: %w", err)
	}
	return &File{data: data}, nil
}

// FromBytes wraps an in-memory image (e.g. one already read from a stream) in
// the File interface. Close is a no-op for it.
func FromBytes(data []byte) *File {
	return &File{data: data}
}

// Bytes returns the byte image. The slice is read-only and valid only until
// Close; it is handed out with cap == len so appends reallocate.
func (f *File) Bytes() []byte {
	return f.data[:len(f.data):len(f.data)]
}

// Mapped reports whether the image is a live memory mapping (as opposed to a
// heap copy).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the image: mapped pages are unmapped (views into them must
// not be touched afterwards), heap copies are just dropped. Close is
// idempotent and nil-safe.
func (f *File) Close() error {
	if f == nil || f.data == nil {
		return nil
	}
	data, mapped := f.data, f.mapped
	f.data, f.mapped = nil, false
	if !mapped {
		return nil
	}
	return munmap(data)
}
