package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"graphrep/internal/metric"
	"graphrep/internal/nbindex"
)

// RunFig6kConstruction reproduces Fig. 6(k): NB-Index construction time
// against dataset size, next to the cost of precomputing the full distance
// matrix. The paper's shape: construction is orders of magnitude cheaper
// than the matrix because VP-based pruning computes exact distances for only
// a small minority of pivot/graph pairs.
func RunFig6kConstruction(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 6(k): index construction time vs dataset size (dud) ==")
	fmt.Fprintf(w, "%8s | %12s %12s | %14s %14s | %10s\n",
		"n", "index ms", "matrix ms", "index dists", "matrix dists", "pruned")
	for _, n := range s.SweepN {
		fx, err := NewFixture("dud", n, s, 1200)
		if err != nil {
			return err
		}
		before := fx.Count.Count()
		start := time.Now()
		ix, err := nbindex.Build(fx.DB, fx.M, nbindex.Options{
			NumVPs: s.NumVPs, Branching: 4, ThetaGrid: fx.Grid,
		}, rand.New(rand.NewSource(1201)))
		if err != nil {
			return err
		}
		indexDur := time.Since(start)
		indexDists := fx.Count.Count() - before

		// Fresh metric stack so matrix construction cannot reuse the
		// index's cached distances.
		mcount := metric.NewCounter(fx.Base)
		start = time.Now()
		metric.NewMatrix(fx.DB, mcount, 4)
		matrixDur := time.Since(start)

		st := ix.Tree().Stats()
		prunedFrac := 0.0
		if tot := st.ExactDistances + st.PrunedDistances; tot > 0 {
			prunedFrac = float64(st.PrunedDistances) / float64(tot)
		}
		fmt.Fprintf(w, "%8d | %12.1f %12.1f | %14d %14d | %9.1f%%\n",
			n, ms(indexDur), ms(matrixDur), indexDists, mcount.Count(), prunedFrac*100)
	}
	return nil
}

// RunFig6lFootprint reproduces Fig. 6(l): the index memory footprint grows
// linearly with dataset size (VO storage O(|V|·|D|) plus the NB-Tree plus
// query-time π̂-vectors), versus the quadratic distance matrix.
func RunFig6lFootprint(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 6(l): index memory footprint vs dataset size (dud) ==")
	fmt.Fprintf(w, "%8s | %12s %12s %12s | %14s\n", "n", "VO KiB", "tree KiB", "π̂ KiB", "matrix KiB")
	for _, n := range s.SweepN {
		fx, err := NewFixture("dud", n, s, 1300)
		if err != nil {
			return err
		}
		ix, err := fx.NBIndex(s)
		if err != nil {
			return err
		}
		sess := ix.NewSession(fx.Rel)
		matrixBytes := int64(n) * int64(n-1) / 2 * 8
		fmt.Fprintf(w, "%8d | %12.1f %12.1f %12.1f | %14.1f\n",
			n,
			float64(ix.VO().Bytes())/1024,
			float64(ix.Tree().Bytes())/1024,
			float64(sess.PiHatBytes())/1024,
			float64(matrixBytes)/1024)
	}
	return nil
}
