package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny is a fast scale for smoke tests: every experiment must run end to end
// and print sensible output.
var tiny = Scale{Name: "tiny", N: 70, SweepN: []int{40, 70}, Ks: []int{3, 5}, Samples: 300, NumVPs: 4, Refines: 2}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if got, ok := ByID(e.ID); !ok || got.ID != e.ID {
			t.Errorf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

// Every experiment must complete at tiny scale and produce output.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(&buf, tiny); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestFixtureDefaults(t *testing.T) {
	fx, err := NewFixture("dud", 60, tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fx.Theta <= 0 {
		t.Errorf("theta = %v", fx.Theta)
	}
	if len(fx.Grid) == 0 {
		t.Error("empty grid")
	}
	for i := 1; i < len(fx.Grid); i++ {
		if fx.Grid[i] <= fx.Grid[i-1] {
			t.Errorf("grid not strictly ascending: %v", fx.Grid)
		}
	}
	if _, err := NewFixture("bogus", 10, tiny, 1); err == nil {
		t.Error("bogus dataset accepted")
	}
}

// The headline claim: at equal (θ, k) the NB-Index engine answers with far
// fewer distance computations than the baseline, with identical answers.
func TestNBIndexBeatsBaselineOnDistances(t *testing.T) {
	fx, err := NewFixture("dud", 150, tiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := fx.RunNBIndex(tiny, fx.Theta, 10)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := fx.RunBaseline(fx.Theta, 10)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Power != bl.Power {
		t.Errorf("power mismatch: nbindex %v, baseline %v", nb.Power, bl.Power)
	}
	if len(nb.Answer) != len(bl.Answer) {
		t.Errorf("answer size mismatch: %d vs %d", len(nb.Answer), len(bl.Answer))
	}
	// The baseline run came second, so it could only reuse cached distances;
	// even so it must issue far more fresh computations than the index run
	// (which includes index construction here, as fx builds lazily).
	t.Logf("distances: nbindex=%d baseline=%d", nb.Distances, bl.Distances)
}

func TestMeasureAccounting(t *testing.T) {
	fx, err := NewFixture("dblp", 50, tiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := fx.RunBaseline(fx.Theta, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine != "baseline" || r.Duration <= 0 {
		t.Errorf("run result %+v", r)
	}
	if r.Relevant <= 0 || r.Covered <= 0 || len(r.Answer) == 0 {
		t.Errorf("degenerate result %+v", r)
	}
	if r.CR() <= 0 {
		t.Error("CR <= 0")
	}
	if (RunResult{}).CR() != 0 {
		t.Error("empty CR != 0")
	}
}

func TestEngineSweepConsistency(t *testing.T) {
	fx, err := NewFixture("amazon", 60, tiny, 4)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := engineSweep(fx, tiny, fx.Theta, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("engine sweep returned %d engines", len(rs))
	}
	// The exact-greedy engines must agree on power (identical algorithm over
	// identical neighborhoods): nbindex, baseline, ctree, mtree, matrix.
	exact := map[string]bool{"nbindex": true, "baseline": true, "ctree": true, "mtree": true, "matrix": true}
	var power float64
	first := true
	for _, r := range rs {
		if !exact[r.Engine] {
			continue
		}
		if first {
			power, first = r.Power, false
			continue
		}
		if r.Power != power {
			t.Errorf("engine %s power %v differs from %v", r.Engine, r.Power, power)
		}
	}
}

func TestTable4OutputShape(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable4(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dud", "dblp", "amazon", "REP CR", "DisC:"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 output missing %q", want)
		}
	}
}

func TestFig7ReportsDiversityShape(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig7Qualitative(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traditional top-5") {
		t.Error("fig7 output missing traditional answer")
	}
}
