package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"graphrep/internal/disc"
	"graphrep/internal/nbindex"
)

// RunFig5lThresholdGap reproduces Fig. 5(l)/6(a): NB-Index query time as the
// gap between the user's θ and the closest higher indexed threshold θᵢ
// grows. The paper's shape: cost rises gently with the gap (looser π̂
// bounds), but stays far below the unindexed engines even at the largest
// gap, because the vantage orderings are unaffected by the grid.
func RunFig5lThresholdGap(w io.Writer, s Scale) error {
	fx, err := NewFixture("dud", s.N, s, 900)
	if err != nil {
		return err
	}
	header(w, "Fig. 5(l)/6(a): query time vs gap to nearest indexed threshold", fx, s)
	// Rebuild the index with a sparse grid whose first indexed threshold
	// sits well above the query θ, then sweep the gap downward.
	fmt.Fprintf(w, "%12s | %12s %14s\n", "gap θi−θ", "nbindex ms", "verifications")
	for _, gapMult := range []float64{0, 0.25, 0.5, 1, 2} {
		gap := fx.Theta * gapMult
		grid := []float64{fx.Theta + gap, fx.Theta * 8}
		sort.Float64s(grid)
		ix, err := nbindex.Build(fx.DB, fx.M, nbindex.Options{
			NumVPs: s.NumVPs, Branching: 4, ThetaGrid: grid,
		}, rand.New(rand.NewSource(901)))
		if err != nil {
			return err
		}
		fx.ResetDistances() // each gap row pays for its own query distances
		start := time.Now()
		sess := ix.NewSession(fx.Rel)
		if _, err := sess.TopK(fx.Theta, 10); err != nil {
			return err
		}
		dur := time.Since(start)
		fmt.Fprintf(w, "%12.2f | %12.1f %14d\n", gap, ms(dur), sess.LastStats().VerifiedLeaves)
	}
	return nil
}

// refinementSchedule yields the ±10% zoom-in/zoom-out walk of Fig. 6(i).
func refinementSchedule(theta float64, rounds int, rng *rand.Rand) []float64 {
	out := make([]float64, 0, rounds)
	cur := theta
	for i := 0; i < rounds; i++ {
		if rng.Intn(2) == 0 {
			cur *= 0.9
		} else {
			cur *= 1.1
		}
		out = append(out, cur)
	}
	return out
}

// RunFig6iRefinement reproduces Fig. 6(i): after an initial query, θ is
// repeatedly refined by ±10% and the answer recomputed. The paper's shape:
// NB-Index handles a refinement in a fraction of the initial query (the
// initialization phase is insulated from θ), while every baseline pays the
// full query cost again.
func RunFig6iRefinement(w io.Writer, s Scale) error {
	for di, name := range []string{"dud", "dblp", "amazon"} {
		fx, err := NewFixture(name, s.N, s, 1000+int64(di))
		if err != nil {
			return err
		}
		header(w, "Fig. 6(i) ("+name+"): interactive θ refinement", fx, s)
		rng := rand.New(rand.NewSource(1001 + int64(di)))
		schedule := refinementSchedule(fx.Theta, s.Refines, rng)

		// NB-Index: one session, many TopK calls.
		ix, err := fx.NBIndex(s)
		if err != nil {
			return err
		}
		initStart := time.Now()
		sess := ix.NewSession(fx.Rel)
		if _, err := sess.TopK(fx.Theta, 10); err != nil {
			return err
		}
		initial := time.Since(initStart)
		var nbTotal time.Duration
		for _, theta := range schedule {
			d, err := timeOf(func() error {
				_, err := sess.TopK(theta, 10)
				return err
			})
			if err != nil {
				return err
			}
			nbTotal += d
		}

		// Baselines re-run the whole query per refinement.
		var ctTotal, mtTotal time.Duration
		for _, theta := range schedule {
			r, err := fx.RunCTreeGreedy(theta, 10)
			if err != nil {
				return err
			}
			ctTotal += r.Duration
			r, err = fx.RunMTreeGreedy(theta, 10)
			if err != nil {
				return err
			}
			mtTotal += r.Duration
		}
		// DisC adapts via its zoom operators (still recomputing range
		// neighborhoods at the new θ — the cost the paper's Fig. 6(i)
		// attributes to DisC).
		mt, err := fx.MTree()
		if err != nil {
			return err
		}
		prevTheta := fx.Theta
		prev, err := disc.Cover(fx.DB, mt, fx.Rel, prevTheta, 10)
		if err != nil {
			return err
		}
		var discTotal time.Duration
		for _, theta := range schedule {
			fx.ResetDistances()
			d, err := timeOf(func() error {
				var zerr error
				if theta < prevTheta {
					prev, zerr = disc.ZoomIn(fx.DB, mt, fx.Rel, prev.Answer, theta, 10)
				} else {
					prev, zerr = disc.ZoomOut(fx.DB, mt, fx.Rel, prev.Answer, theta, 10)
				}
				return zerr
			})
			if err != nil {
				return err
			}
			discTotal += d
			prevTheta = theta
		}
		n := float64(len(schedule))
		fmt.Fprintf(w, "initial nbindex query: %.1f ms\n", ms(initial))
		fmt.Fprintf(w, "avg refinement: nbindex=%.1f ms  ctree=%.1f ms  mtree=%.1f ms  disc-zoom=%.1f ms\n\n",
			ms(nbTotal)/n, ms(ctTotal)/n, ms(mtTotal)/n, ms(discTotal)/n)
	}
	return nil
}

// RunFig6jRefinementScaling reproduces Fig. 6(j): average refinement time
// against dataset size. The paper's shape: NB-Index stays more than an
// order of magnitude below the rebuild-based baselines at every size.
func RunFig6jRefinementScaling(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 6(j): refinement time vs dataset size (dud) ==")
	fmt.Fprintf(w, "%8s | %14s %14s\n", "n", "nbindex ms", "ctree ms")
	for _, n := range s.SweepN {
		fx, err := NewFixture("dud", n, s, 1100)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(1101))
		schedule := refinementSchedule(fx.Theta, minInt(s.Refines, 5), rng)
		ix, err := fx.NBIndex(s)
		if err != nil {
			return err
		}
		sess := ix.NewSession(fx.Rel)
		if _, err := sess.TopK(fx.Theta, 10); err != nil {
			return err
		}
		var nbTotal, ctTotal time.Duration
		for _, theta := range schedule {
			d, err := timeOf(func() error {
				_, err := sess.TopK(theta, 10)
				return err
			})
			if err != nil {
				return err
			}
			nbTotal += d
			r, err := fx.RunCTreeGreedy(theta, 10)
			if err != nil {
				return err
			}
			ctTotal += r.Duration
		}
		count := float64(len(schedule))
		fmt.Fprintf(w, "%8d | %14.2f %14.2f\n", n, ms(nbTotal)/count, ms(ctTotal)/count)
	}
	return nil
}
