// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) on the synthetic stand-in datasets. Each experiment is a
// named, self-contained harness that sweeps the same parameter the paper
// sweeps, runs the same engines the paper compares (NB-Index, the simple
// greedy, C-tree- and M-tree-backed greedy, DIV, DisC, and the precomputed
// distance matrix), and prints the same rows/series the paper reports.
//
// Absolute numbers differ from the paper — the substrate is a synthetic
// generator and a different machine — but the shapes the paper claims (who
// wins, by roughly what factor, where the crossovers fall) are what these
// harnesses reproduce; EXPERIMENTS.md records the comparison.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"graphrep/internal/core"
	"graphrep/internal/ctree"
	"graphrep/internal/dataset"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/mtree"
	"graphrep/internal/nbindex"
	"graphrep/internal/stats"
)

// Scale sizes an experiment run. The Small scale keeps every experiment
// laptop-fast for `go test -bench`; Paper approaches the paper's dataset
// sizes and is reached through cmd/repbench.
type Scale struct {
	Name    string
	N       int   // primary dataset size
	SweepN  []int // dataset-size sweeps
	Ks      []int // k sweeps (Table 4, Fig. 6(e-g))
	Samples int   // sampled pairs for distance distributions
	NumVPs  int   // vantage points
	Refines int   // refinement rounds (Fig. 6(i))
}

// Predefined scales.
var (
	Small  = Scale{Name: "small", N: 240, SweepN: []int{80, 160, 240}, Ks: []int{5, 10, 20}, Samples: 2000, NumVPs: 6, Refines: 6}
	Medium = Scale{Name: "medium", N: 1000, SweepN: []int{250, 500, 1000}, Ks: []int{10, 25, 50}, Samples: 8000, NumVPs: 20, Refines: 10}
	Paper  = Scale{Name: "paper", N: 25000, SweepN: []int{5000, 10000, 25000}, Ks: []int{10, 25, 50, 100}, Samples: 50000, NumVPs: 100, Refines: 20}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q", name)
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string // e.g. "table4", "fig5ik"
	Title string // the paper artifact it regenerates
	Run   func(w io.Writer, s Scale) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2a", "Fig. 2(a): DisC answer-set growth vs relevant count", RunFig2a},
		{"fig2b", "Fig. 2(b): simple-greedy running time vs database size", RunFig2b},
		{"table4", "Table 4: compression ratio and π(A) for REP vs DIV vs DisC", RunTable4},
		{"fig5ab", "Fig. 5(a-b): cumulative distance distributions", RunFig5Distances},
		{"fig5fh", "Fig. 5(f-h): observed FPR vs theoretical bound vs θ", RunFig5FPR},
		{"fig5ik", "Fig. 5(i-k): query time vs θ across engines", RunFig5QueryTime},
		{"fig5l", "Fig. 5(l)/6(a): cost vs gap to nearest indexed threshold", RunFig5lThresholdGap},
		{"fig6bd", "Fig. 6(b-d): query time vs dataset size", RunFig6SizeScaling},
		{"fig6eg", "Fig. 6(e-g): query time vs k", RunFig6KScaling},
		{"fig6h", "Fig. 6(h): query time vs feature dimensions", RunFig6hDimensions},
		{"fig6i", "Fig. 6(i): interactive θ refinement", RunFig6iRefinement},
		{"fig6j", "Fig. 6(j): refinement time vs dataset size", RunFig6jRefinementScaling},
		{"fig6k", "Fig. 6(k): index construction time vs dataset size", RunFig6kConstruction},
		{"fig6l", "Fig. 6(l): index memory footprint vs dataset size", RunFig6lFootprint},
		{"fig7", "Fig. 7: traditional vs representative answer sets", RunFig7Qualitative},
		{"ext-ablation", "extension: NB-Index design-choice ablations", RunExtAblation},
		{"ext-approx", "extension: greedy vs optimal (1-1/e) check", RunExtApprox},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Fixture bundles one dataset with its metric stack, default query
// parameters, and lazily built index structures. The distance cache below
// the counter plays the role of the neighborhoods an engine stores once
// computed; the counter therefore counts *distinct* expensive distance
// computations, the paper's real cost measure.
type Fixture struct {
	Name  string
	DB    *graph.Database
	Base  metric.Metric   // uncached star metric
	Count *metric.Counter // counts every non-memoized computation
	M     metric.Metric   // Cache(Count(Base)): what engines consume

	Theta float64   // default θ (§8.2.1 analogue, per dataset)
	Grid  []float64 // indexed π̂ thresholds (§8.2.2 analogue)
	Rel   core.Relevance
	Seed  int64

	cache *metric.Cache

	nb  *nbindex.Index
	ct  *ctree.Tree
	mt  *mtree.Tree
	mat *metric.Matrix
}

// NewFixture builds a fixture for the named dataset preset at size n.
func NewFixture(name string, n int, s Scale, seed int64) (*Fixture, error) {
	db, err := dataset.ByName(name, n, seed)
	if err != nil {
		return nil, err
	}
	fx := &Fixture{Name: name, DB: db, Seed: seed}
	fx.Base = metric.Star(db)
	fx.Count = metric.NewCounter(fx.Base)
	fx.cache = metric.NewCache(fx.Count)
	fx.M = fx.cache
	rng := rand.New(rand.NewSource(seed + 1))
	// Default θ: a low quantile of the pairwise distance distribution, the
	// analogue of the paper's θ=10 (DUD/DBLP) and θ=75 (Amazon) choices,
	// which sit at the onset of the steep CDF region.
	sample := fx.sampleDistances(minInt(s.Samples, 4000), rng)
	fx.Theta = stats.Quantile(sample, 0.06)
	if fx.Theta <= 0 {
		fx.Theta = 1
	}
	fx.Grid = nbindex.ChooseGrid(db, fx.M, 10, minInt(s.Samples, 3000), rng)
	// Ensure the default θ region is representable.
	fx.Grid = insertSorted(fx.Grid, fx.Theta*2)
	fx.Rel = core.FirstQuartileRelevance(db, nil)
	return fx, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func insertSorted(grid []float64, v float64) []float64 {
	i := sort.SearchFloat64s(grid, v)
	if i < len(grid) && grid[i] == v {
		return grid
	}
	grid = append(grid, 0)
	copy(grid[i+1:], grid[i:])
	grid[i] = v
	return grid
}

// ResetDistances clears the memoized distance cache so the next measured
// phase pays for its own computations.
func (fx *Fixture) ResetDistances() { fx.cache.Clear() }

// sampleDistances draws pairwise distances without disturbing the counter
// (it reads through the cache so later phases may reuse them, as a real
// deployment would).
func (fx *Fixture) sampleDistances(pairs int, rng *rand.Rand) []float64 {
	out := make([]float64, 0, pairs)
	n := fx.DB.Len()
	for i := 0; i < pairs; i++ {
		a, b := graph.ID(rng.Intn(n)), graph.ID(rng.Intn(n))
		if a == b {
			continue
		}
		out = append(out, fx.M.Distance(a, b))
	}
	return out
}

// NBIndex lazily builds (and memoizes) the NB-Index.
func (fx *Fixture) NBIndex(s Scale) (*nbindex.Index, error) {
	if fx.nb == nil {
		ix, err := nbindex.Build(fx.DB, fx.M, nbindex.Options{
			NumVPs:    s.NumVPs,
			Branching: 4,
			ThetaGrid: fx.Grid,
		}, rand.New(rand.NewSource(fx.Seed+2)))
		if err != nil {
			return nil, err
		}
		fx.nb = ix
	}
	return fx.nb, nil
}

// CTree lazily builds the closure-tree baseline index.
func (fx *Fixture) CTree() (*ctree.Tree, error) {
	if fx.ct == nil {
		t, err := ctree.Build(fx.DB, fx.M, ctree.DefaultOptions(), rand.New(rand.NewSource(fx.Seed+3)))
		if err != nil {
			return nil, err
		}
		fx.ct = t
	}
	return fx.ct, nil
}

// MTree lazily builds the M-tree baseline index.
func (fx *Fixture) MTree() (*mtree.Tree, error) {
	if fx.mt == nil {
		t, err := mtree.Build(fx.DB, fx.M, mtree.DefaultOptions(), rand.New(rand.NewSource(fx.Seed+4)))
		if err != nil {
			return nil, err
		}
		fx.mt = t
	}
	return fx.mt, nil
}

// Matrix lazily precomputes the full distance matrix (the paper's best-case
// comparison in Fig. 5(i) inset and Fig. 6(k)).
func (fx *Fixture) Matrix() *metric.Matrix {
	if fx.mat == nil {
		fx.mat = metric.NewMatrix(fx.DB, fx.M, 4)
	}
	return fx.mat
}

// RunResult is one measured engine run.
type RunResult struct {
	Engine    string
	Answer    []graph.ID
	Power     float64
	Covered   int
	Relevant  int
	Duration  time.Duration
	Distances int64 // distinct distance computations during the run
}

// CR is the compression ratio |N_θ(A)|/|A|.
func (r RunResult) CR() float64 {
	if len(r.Answer) == 0 {
		return 0
	}
	return float64(r.Covered) / float64(len(r.Answer))
}

// measure wraps an engine invocation with wall-clock and distance
// accounting. The shared memo cache is cleared first, so every measured run
// pays for its own distance computations — one engine's earlier work cannot
// subsidize another's (index-internal state such as stored pivot distances
// and π̂-vectors legitimately persists; only the raw pair memo is dropped).
func (fx *Fixture) measure(engine string, run func() (*core.Result, error)) (RunResult, error) {
	fx.cache.Clear()
	before := fx.Count.Count()
	start := time.Now()
	res, err := run()
	if err != nil {
		return RunResult{}, fmt.Errorf("%s: %w", engine, err)
	}
	return RunResult{
		Engine:    engine,
		Answer:    res.Answer,
		Power:     res.Power,
		Covered:   res.Covered,
		Relevant:  res.Relevant,
		Duration:  time.Since(start),
		Distances: fx.Count.Count() - before,
	}, nil
}

// RunNBIndex measures the NB-Index engine end to end: session
// initialization (the online phase the paper includes in query time) plus
// the search-and-update phase.
func (fx *Fixture) RunNBIndex(s Scale, theta float64, k int) (RunResult, error) {
	ix, err := fx.NBIndex(s)
	if err != nil {
		return RunResult{}, err
	}
	return fx.measure("nbindex", func() (*core.Result, error) {
		sess := ix.NewSession(fx.Rel)
		return sess.TopK(theta, k)
	})
}

// RunBaseline measures the simple greedy (Alg. 1, quadratic initialization).
func (fx *Fixture) RunBaseline(theta float64, k int) (RunResult, error) {
	return fx.measure("baseline", func() (*core.Result, error) {
		return core.BaselineGreedy(fx.DB, fx.M, core.Query{Relevance: fx.Rel, Theta: theta, K: k})
	})
}

// RunMatrixGreedy measures the greedy against the precomputed distance
// matrix (matrix construction excluded, as in the paper's comparison).
func (fx *Fixture) RunMatrixGreedy(theta float64, k int) (RunResult, error) {
	mat := fx.Matrix()
	return fx.measure("matrix", func() (*core.Result, error) {
		return core.BaselineGreedy(fx.DB, mat, core.Query{Relevance: fx.Rel, Theta: theta, K: k})
	})
}

// RunCTreeGreedy measures the greedy with C-tree range queries.
func (fx *Fixture) RunCTreeGreedy(theta float64, k int) (RunResult, error) {
	t, err := fx.CTree()
	if err != nil {
		return RunResult{}, err
	}
	return fx.measure("ctree", func() (*core.Result, error) {
		return core.RangeGreedy(fx.DB, t, core.Query{Relevance: fx.Rel, Theta: theta, K: k})
	})
}

// RunMTreeGreedy measures the greedy with M-tree range queries.
func (fx *Fixture) RunMTreeGreedy(theta float64, k int) (RunResult, error) {
	t, err := fx.MTree()
	if err != nil {
		return RunResult{}, err
	}
	return fx.measure("mtree", func() (*core.Result, error) {
		return core.RangeGreedy(fx.DB, t, core.Query{Relevance: fx.Rel, Theta: theta, K: k})
	})
}

// header prints an experiment banner.
func header(w io.Writer, title string, fx *Fixture, s Scale) {
	fmt.Fprintf(w, "== %s ==\n", title)
	if fx != nil {
		st := fx.DB.Stats()
		fmt.Fprintf(w, "dataset=%s n=%d avg|V|=%.1f avg|E|=%.1f θ=%.2f scale=%s\n",
			fx.Name, st.Graphs, st.AvgNodes, st.AvgEdges, fx.Theta, s.Name)
	}
}

// ms renders a duration in milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
