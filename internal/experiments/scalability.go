package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"graphrep/internal/core"
	"graphrep/internal/div"
)

// RunFig2b reproduces Fig. 2(b): the simple greedy's running time grows
// superlinearly with database size, whichever nearest-neighbor index (none,
// C-tree, M-tree) initializes the neighborhoods — the motivation for
// indexing θ-neighborhoods instead.
func RunFig2b(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 2(b): simple greedy running time vs database size ==")
	fmt.Fprintf(w, "%8s | %14s %14s %14s | %14s\n", "n", "baseline ms", "ctree ms", "mtree ms", "baseline dists")
	for _, n := range s.SweepN {
		fx, err := NewFixture("dud", n, s, 2)
		if err != nil {
			return err
		}
		base, err := fx.RunBaseline(fx.Theta, 10)
		if err != nil {
			return err
		}
		ct, err := fx.RunCTreeGreedy(fx.Theta, 10)
		if err != nil {
			return err
		}
		mt, err := fx.RunMTreeGreedy(fx.Theta, 10)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d | %14.1f %14.1f %14.1f | %14d\n",
			n, ms(base.Duration), ms(ct.Duration), ms(mt.Duration), base.Distances)
	}
	return nil
}

// engineSweep measures all engines at one (θ, k) on a fixture.
func engineSweep(fx *Fixture, s Scale, theta float64, k int) ([]RunResult, error) {
	var out []RunResult
	nb, err := fx.RunNBIndex(s, theta, k)
	if err != nil {
		return nil, err
	}
	out = append(out, nb)
	bl, err := fx.RunBaseline(theta, k)
	if err != nil {
		return nil, err
	}
	out = append(out, bl)
	ct, err := fx.RunCTreeGreedy(theta, k)
	if err != nil {
		return nil, err
	}
	out = append(out, ct)
	mt, err := fx.RunMTreeGreedy(theta, k)
	if err != nil {
		return nil, err
	}
	out = append(out, mt)
	// DIV: the div-cut algorithm over the C-tree diversity graph, as in the
	// paper's setup.
	ctIdx, err := fx.CTree()
	if err != nil {
		return nil, err
	}
	divRun, err := fx.measure("div", func() (*core.Result, error) {
		res, err := div.TopKCut(fx.DB, ctIdx, fx.Rel, theta, theta, k, 0)
		if err != nil {
			return nil, err
		}
		return &core.Result{Answer: res.Answer}, nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, divRun)
	mx, err := fx.RunMatrixGreedy(theta, k)
	if err != nil {
		return nil, err
	}
	out = append(out, mx)
	return out, nil
}

func printSweepRow(w io.Writer, label string, rs []RunResult) {
	fmt.Fprintf(w, "%10s |", label)
	for _, r := range rs {
		fmt.Fprintf(w, " %s=%.1fms/%dd", r.Engine, ms(r.Duration), r.Distances)
	}
	fmt.Fprintln(w)
}

// RunFig5QueryTime reproduces Figs. 5(i–k): query time against θ for every
// engine and dataset. The paper's shape: NB-Index is fastest by 1–2 orders
// of magnitude, with a bell-shaped cost curve peaking at mid-range θ
// (Theorem 6 helps at small θ, Theorems 7–8 at large θ); the distance-matrix
// engine is the only competitive one.
func RunFig5QueryTime(w io.Writer, s Scale) error {
	for di, name := range []string{"dud", "dblp", "amazon"} {
		fx, err := NewFixture(name, s.N, s, 300+int64(di))
		if err != nil {
			return err
		}
		header(w, "Fig. 5(i-k) ("+name+"): query time vs θ", fx, s)
		for _, mult := range []float64{0.5, 1, 2, 4} {
			theta := fx.Theta * mult
			rs, err := engineSweep(fx, s, theta, 10)
			if err != nil {
				return err
			}
			printSweepRow(w, fmt.Sprintf("θ=%.1f", theta), rs)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig6SizeScaling reproduces Figs. 6(b–d): query time against dataset
// size. The paper's shape: NB-Index scales more than an order of magnitude
// better because it avoids the O(n²) neighborhood initialization.
func RunFig6SizeScaling(w io.Writer, s Scale) error {
	for di, name := range []string{"dud", "dblp", "amazon"} {
		fmt.Fprintf(w, "== Fig. 6(b-d) (%s): query time vs dataset size ==\n", name)
		for _, n := range s.SweepN {
			fx, err := NewFixture(name, n, s, 400+int64(di))
			if err != nil {
				return err
			}
			rs, err := engineSweep(fx, s, fx.Theta, 10)
			if err != nil {
				return err
			}
			printSweepRow(w, fmt.Sprintf("n=%d", n), rs)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig6KScaling reproduces Figs. 6(e–g): query time against k. The
// paper's shape: NB-Index grows slowest with k; DIV is near-flat (its
// per-object scores never change); the quadratic engines are dominated by
// initialization so k matters little but their constant is enormous.
func RunFig6KScaling(w io.Writer, s Scale) error {
	for di, name := range []string{"dud", "dblp", "amazon"} {
		fx, err := NewFixture(name, s.N, s, 500+int64(di))
		if err != nil {
			return err
		}
		header(w, "Fig. 6(e-g) ("+name+"): query time vs k", fx, s)
		for _, k := range s.Ks {
			rs, err := engineSweep(fx, s, fx.Theta, k)
			if err != nil {
				return err
			}
			printSweepRow(w, fmt.Sprintf("k=%d", k), rs)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig6hDimensions reproduces Fig. 6(h): query time against the number of
// feature dimensions on the DUD-like dataset. The paper's shape: essentially
// flat — feature-space work is negligible next to structural distance work;
// only the feature/structure correlation moves the needle slightly.
func RunFig6hDimensions(w io.Writer, s Scale) error {
	fx, err := NewFixture("dud", s.N, s, 600)
	if err != nil {
		return err
	}
	header(w, "Fig. 6(h): query time vs feature dimensions", fx, s)
	rng := rand.New(rand.NewSource(601))
	dimsAll := fx.DB.FeatureDim()
	fmt.Fprintf(w, "%6s | %12s %12s %12s\n", "d", "nbindex ms", "baseline ms", "relevant")
	for _, d := range []int{1, 2, 5, 10} {
		if d > dimsAll {
			break
		}
		dims := rng.Perm(dimsAll)[:d]
		fx.Rel = core.FirstQuartileRelevance(fx.DB, dims)
		nb, err := fx.RunNBIndex(s, fx.Theta, 10)
		if err != nil {
			return err
		}
		bl, err := fx.RunBaseline(fx.Theta, 10)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d | %12.1f %12.1f %12d\n", d, ms(nb.Duration), ms(bl.Duration), nb.Relevant)
	}
	return nil
}

// timeOf runs fn and returns its wall-clock duration.
func timeOf(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
