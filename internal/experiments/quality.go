package experiments

import (
	"fmt"
	"io"

	"graphrep/internal/core"
	"graphrep/internal/disc"
	"graphrep/internal/div"
	"graphrep/internal/graph"
	"graphrep/internal/stats"
)

// RunFig2a reproduces Fig. 2(a): the DisC answer set grows almost linearly
// with the number of relevant objects (≈ one answer object per three
// relevant in the paper), motivating the budgeted formulation.
func RunFig2a(w io.Writer, s Scale) error {
	fx, err := NewFixture("dud", s.N, s, 42)
	if err != nil {
		return err
	}
	header(w, "Fig. 2(a): DisC answer-set size vs #relevant objects", fx, s)
	mt, err := fx.MTree()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%12s %12s %16s\n", "#relevant", "|DisC|", "relevant/answer")
	for _, quantile := range []float64{0.9, 0.75, 0.5, 0.25, 0.0} {
		cut := relevanceAtQuantile(fx, quantile)
		res, err := disc.Cover(fx.DB, mt, cut, fx.Theta, 0)
		if err != nil {
			return err
		}
		ratio := 0.0
		if len(res.Answer) > 0 {
			ratio = float64(res.Relevant) / float64(len(res.Answer))
		}
		fmt.Fprintf(w, "%12d %12d %16.2f\n", res.Relevant, len(res.Answer), ratio)
	}
	return nil
}

// relevanceAtQuantile builds a relevance function selecting graphs whose
// mean feature score is at or above the given quantile of database scores.
func relevanceAtQuantile(fx *Fixture, q float64) core.Relevance {
	score := core.DimensionScore(nil)
	scores := make([]float64, fx.DB.Len())
	for i := range scores {
		scores[i] = score(fx.DB.Features(graph.ID(i)))
	}
	cut := stats.Quantile(scores, q)
	return func(f []float64) bool { return score(f) >= cut }
}

// RunTable4 reproduces Table 4: compression ratios and π(A) of REP vs
// DIV(θ) vs DIV(2θ) at several budgets, plus the unbudgeted DisC answer.
// The paper's shape: REP dominates on both measures at every k; DIV(2θ) is
// worse than DIV(θ); DisC's CR is far lower with a much larger answer.
func RunTable4(w io.Writer, s Scale) error {
	for di, name := range []string{"dud", "dblp", "amazon"} {
		fx, err := NewFixture(name, s.N, s, 100+int64(di))
		if err != nil {
			return err
		}
		header(w, "Table 4 ("+name+"): CR and π(A) by model", fx, s)
		ct, err := fx.CTree()
		if err != nil {
			return err
		}
		mt, err := fx.MTree()
		if err != nil {
			return err
		}
		rel := core.Relevant(fx.DB, fx.Rel)
		fmt.Fprintf(w, "%6s | %8s %8s | %8s %8s | %8s %8s\n",
			"k", "REP CR", "REP π", "DIVθ CR", "DIVθ π", "DIV2θ CR", "DIV2θ π")
		for _, k := range s.Ks {
			rep, err := fx.RunNBIndex(s, fx.Theta, k)
			if err != nil {
				return err
			}
			rowDiv := func(sep float64) (float64, float64, error) {
				res, err := div.TopKCut(fx.DB, ct, fx.Rel, fx.Theta, sep, k, 0)
				if err != nil {
					return 0, 0, err
				}
				power, covered := core.Power(fx.DB, fx.M, rel, res.Answer, fx.Theta)
				cr := 0.0
				if len(res.Answer) > 0 {
					cr = float64(covered) / float64(len(res.Answer))
				}
				return cr, power, nil
			}
			crDiv, piDiv, err := rowDiv(fx.Theta)
			if err != nil {
				return err
			}
			crDiv2, piDiv2, err := rowDiv(2 * fx.Theta)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%6d | %8.1f %8.3f | %8.1f %8.3f | %8.1f %8.3f\n",
				k, rep.CR(), rep.Power, crDiv, piDiv, crDiv2, piDiv2)
		}
		dc, err := disc.Cover(fx.DB, mt, fx.Rel, fx.Theta, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "DisC: CR=%.2f (answer size %d, relevant %d)\n\n",
			dc.CompressionRatio(), len(dc.Answer), dc.Relevant)
	}
	return nil
}

// RunFig7Qualitative reproduces the Fig. 7 comparison: a traditional top-5
// by score returns one structural family (small pairwise distances), while
// the top-5 representative answer spans several families (large pairwise
// distances) and covers far more relevant molecules.
func RunFig7Qualitative(w io.Writer, s Scale) error {
	fx, err := NewFixture("dud", s.N, s, 7)
	if err != nil {
		return err
	}
	header(w, "Fig. 7: traditional top-k vs top-k representative (AChE analogue)", fx, s)
	// Binding affinity to target 0 plays the role of AChE affinity.
	dims := []int{0}
	score := core.DimensionScore(dims)
	fx.Rel = core.FirstQuartileRelevance(fx.DB, dims)
	k := 5

	trad := core.TraditionalTopK(fx.DB, score, k)
	rep, err := fx.RunNBIndex(s, fx.Theta, k)
	if err != nil {
		return err
	}
	rel := core.Relevant(fx.DB, fx.Rel)
	tradPower, tradCovered := core.Power(fx.DB, fx.M, rel, trad, fx.Theta)

	describe := func(label string, ids []graph.ID, power float64, covered int) {
		fmt.Fprintf(w, "%s: %v\n", label, ids)
		fmt.Fprintf(w, "  π=%.3f covered=%d/%d  mean pairwise distance=%.2f\n",
			power, covered, len(rel), meanPairwise(fx, ids))
	}
	describe("traditional top-5", trad, tradPower, tradCovered)
	describe("representative top-5", rep.Answer, rep.Power, rep.Covered)
	if meanPairwise(fx, rep.Answer) > meanPairwise(fx, trad) {
		fmt.Fprintln(w, "shape: REP answers are structurally diverse; traditional answers collapse into one family ✓")
	} else {
		fmt.Fprintln(w, "shape: WARNING — traditional answers more diverse than REP (unexpected)")
	}
	return nil
}

func meanPairwise(fx *Fixture, ids []graph.ID) float64 {
	if len(ids) < 2 {
		return 0
	}
	var ds []float64
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			ds = append(ds, fx.M.Distance(ids[i], ids[j]))
		}
	}
	return stats.Mean(ds)
}
