package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"graphrep/internal/stats"
	"graphrep/internal/vantage"
)

// RunFig5Distances reproduces Figs. 5(a–e): the cumulative and density
// distributions of pairwise distances per dataset, the evidence behind the
// θ-grid choices of §8.2.2. The paper's shape: DUD and DBLP have steep CDFs
// right after their default θ; Amazon's distances sit much farther out; all
// three are roughly bell-shaped (≈ Gaussian), with DUD the most concentrated
// (smallest σ relative to mean).
func RunFig5Distances(w io.Writer, s Scale) error {
	for di, name := range []string{"dud", "dblp", "amazon"} {
		fx, err := NewFixture(name, s.N, s, 700+int64(di))
		if err != nil {
			return err
		}
		header(w, "Fig. 5(a-e) ("+name+"): pairwise distance distribution", fx, s)
		rng := rand.New(rand.NewSource(701 + int64(di)))
		ds := fx.sampleDistances(s.Samples, rng)
		sum := stats.Summarize(ds)
		fmt.Fprintf(w, "summary: %s (σ/mean=%.2f)\n", sum, sum.StdDev/sum.Mean)
		ecdf := stats.NewECDF(ds)
		fmt.Fprintf(w, "%10s %10s\n", "distance", "CDF")
		for _, q := range []float64{0.5, 0.75, 1, 1.5, 2, 3, 4, 6} {
			x := fx.Theta * q
			fmt.Fprintf(w, "%10.2f %10.3f\n", x, ecdf.At(x))
		}
		hist := stats.NewHistogram(ds, 10)
		fmt.Fprintf(w, "histogram (10 bins %.1f..%.1f):", hist.Min, hist.Max)
		for i := range hist.Counts {
			fmt.Fprintf(w, " %.2f", hist.Fraction(i))
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig5FPR reproduces Figs. 5(f–h): the observed vantage false positive
// rate against θ, next to the theoretical Gaussian upper bound of Eq. 11.
// The paper's shape: FPR is highest for DUD (small σ — tightly clustered
// space) and low for DBLP/Amazon; the bound tracks the observation except
// where the distance distribution deviates from normality.
func RunFig5FPR(w io.Writer, s Scale) error {
	for di, name := range []string{"dud", "dblp", "amazon"} {
		fx, err := NewFixture(name, s.N, s, 800+int64(di))
		if err != nil {
			return err
		}
		header(w, "Fig. 5(f-h) ("+name+"): observed FPR vs theoretical bound", fx, s)
		rng := rand.New(rand.NewSource(801 + int64(di)))
		ds := fx.sampleDistances(s.Samples, rng)
		mu, sigma := stats.Mean(ds), stats.StdDev(ds)
		numVPs := s.NumVPs
		vps, err := vantage.SelectVPs(fx.DB, fx.M, minInt(numVPs, fx.DB.Len()), vantage.SelectRandom, rng)
		if err != nil {
			return err
		}
		vo, err := vantage.Build(fx.DB, fx.M, vps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "|V|=%d  μ=%.1f σ=%.1f\n", len(vps), mu, sigma)
		fmt.Fprintf(w, "%10s %14s %14s\n", "θ", "observed FPR", "FPR UB (Eq.11)")
		for _, mult := range []float64{0.5, 1, 1.5, 2, 3} {
			theta := fx.Theta * mult
			observed := vo.FPRSample(fx.M, theta, minInt(40, fx.DB.Len()), rng)
			bound := stats.GaussianFPRBound(theta, mu, sigma, len(vps))
			fmt.Fprintf(w, "%10.2f %14.4f %14.4f\n", theta, observed, bound)
		}
		// The mechanism behind Eq. 11: more vantage points drive the FPR
		// down. (On strongly multi-modal synthetic spaces the Gaussian
		// independence assumptions understate the absolute FPR, so the
		// sweep, not the absolute bound, carries the paper's message.)
		fmt.Fprintf(w, "%10s %14s\n", "|V|", "observed FPR")
		for _, nv := range []int{2, 4, 8, 16, 32} {
			if nv > fx.DB.Len() {
				break
			}
			vps, err := vantage.SelectVPs(fx.DB, fx.M, nv, vantage.SelectMaxMin, rng)
			if err != nil {
				return err
			}
			voN, err := vantage.Build(fx.DB, fx.M, vps)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%10d %14.4f\n", nv, voN.FPRSample(fx.M, fx.Theta, minInt(40, fx.DB.Len()), rng))
		}
		fmt.Fprintln(w)
	}
	return nil
}
