package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"graphrep/internal/core"
	"graphrep/internal/dataset"
	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbindex"
)

// The ext-* experiments are not paper artifacts: they are the ablations of
// the design choices DESIGN.md §4 calls out, plus an empirical check of the
// approximation guarantee. They run through the same registry so repbench
// can regenerate them.

// RunExtAblation measures each NB-Index design choice in isolation on the
// DUD-like dataset: the Theorems 6–8 batch updates, the vantage point
// count, and the NB-Tree branching factor.
func RunExtAblation(w io.Writer, s Scale) error {
	fx, err := NewFixture("dud", s.N, s, 2000)
	if err != nil {
		return err
	}
	header(w, "ext-ablation: NB-Index design choices", fx, s)

	// 1. Batch updates on/off (identical answers; different search work).
	ix, err := fx.NBIndex(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-24s %12s %14s %12s\n", "variant", "time ms", "verifications", "π")
	for _, on := range []bool{true, false} {
		fx.ResetDistances()
		start := time.Now()
		sess := ix.NewSession(fx.Rel)
		sess.SetBatchUpdates(on)
		res, err := sess.TopK(fx.Theta, 10)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "batch-updates=%-10t %12.1f %14d %12.3f\n",
			on, ms(time.Since(start)), sess.LastStats().VerifiedLeaves, res.Power)
	}

	// 2. Vantage point count: query-phase distances vs |V|.
	fmt.Fprintf(w, "\n%-8s %14s %12s\n", "|V|", "query dists", "time ms")
	for _, nv := range []int{1, 2, 4, 8, 16} {
		if nv > fx.DB.Len() {
			break
		}
		ixV, err := nbindex.Build(fx.DB, fx.M, nbindex.Options{
			NumVPs: nv, Branching: 4, ThetaGrid: fx.Grid,
		}, rand.New(rand.NewSource(2001)))
		if err != nil {
			return err
		}
		fx.ResetDistances()
		before := fx.Count.Count()
		start := time.Now()
		if _, err := ixV.NewSession(fx.Rel).TopK(fx.Theta, 10); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %14d %12.1f\n", nv, fx.Count.Count()-before, ms(time.Since(start)))
	}

	// 3. Branching factor: build cost and query cost vs b.
	fmt.Fprintf(w, "\n%-8s %14s %14s\n", "b", "build ms", "query ms")
	for _, b := range []int{2, 4, 8, 16, 40} {
		start := time.Now()
		ixB, err := nbindex.Build(fx.DB, fx.M, nbindex.Options{
			NumVPs: s.NumVPs, Branching: b, ThetaGrid: fx.Grid,
		}, rand.New(rand.NewSource(2002)))
		if err != nil {
			return err
		}
		build := time.Since(start)
		fx.ResetDistances()
		start = time.Now()
		if _, err := ixB.NewSession(fx.Rel).TopK(fx.Theta, 10); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %14.1f %14.1f\n", b, ms(build), ms(time.Since(start)))
	}

	// 4. Update-step work: literal Alg. 1 with and without the Theorem 3
	// restriction, and the CELF lazy evaluation of the selection step.
	mt, err := fx.MTree()
	if err != nil {
		return err
	}
	q := core.Query{Relevance: fx.Rel, Theta: fx.Theta, K: 10}
	_, fullStats, err := core.MutatingGreedy(fx.DB, fx.M, mt, q, false)
	if err != nil {
		return err
	}
	_, thm3Stats, err := core.MutatingGreedy(fx.DB, fx.M, mt, q, true)
	if err != nil {
		return err
	}
	rel := core.Relevant(fx.DB, fx.Rel)
	nbhd := core.PairwiseNeighborhoods(fx.DB, fx.M, rel, fx.Theta)
	lazyRes, lazyStats := core.LazyGreedy(nbhd, 10)
	fmt.Fprintf(w, "\nupdate-step ablation (Alg. 1): full subtractions=%d, Theorem-3 restricted=%d\n",
		fullStats.UpdatedSets, thm3Stats.UpdatedSets)
	fmt.Fprintf(w, "selection-step ablation: CELF evaluations=%d vs plain %d\n",
		lazyStats.Evaluations, len(rel)*len(lazyRes.Answer))

	// 5. Distance function: star metric vs bipartite GED cost and agreement.
	fmt.Fprintf(w, "\n%-12s %14s\n", "distance", "ns/computation")
	rng := rand.New(rand.NewSource(2003))
	pairs := make([][2]graph.ID, 200)
	for i := range pairs {
		pairs[i] = [2]graph.ID{graph.ID(rng.Intn(fx.DB.Len())), graph.ID(rng.Intn(fx.DB.Len()))}
	}
	star := metric.Star(fx.DB)
	bip := metric.BipartiteGED(fx.DB, ged.UniformCosts())
	for _, d := range []struct {
		name string
		m    metric.Metric
	}{{"star", star}, {"bipartite", bip}} {
		start := time.Now()
		for _, p := range pairs {
			d.m.Distance(p[0], p[1])
		}
		fmt.Fprintf(w, "%-12s %14d\n", d.name, time.Since(start).Nanoseconds()/int64(len(pairs)))
	}
	return nil
}

// RunExtApprox empirically validates the (1 − 1/e) guarantee: on many small
// random instances the greedy answer is compared with the brute-force
// optimum.
func RunExtApprox(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== ext-approx: greedy vs optimal representative power ==")
	fmt.Fprintf(w, "%8s %10s %10s %10s\n", "trial", "greedy π", "opt π", "ratio")
	worst := 1.0
	trials := 10
	for trial := 0; trial < trials; trial++ {
		db, err := dudTiny(14, int64(3000+trial))
		if err != nil {
			return err
		}
		m := metric.NewCache(metric.Star(db))
		q := core.Query{Relevance: func([]float64) bool { return true }, Theta: 12, K: 3}
		greedy, err := core.BaselineGreedy(db, m, q)
		if err != nil {
			return err
		}
		opt, err := core.BruteForceOptimal(db, m, q)
		if err != nil {
			return err
		}
		ratio := 1.0
		if opt.Power > 0 {
			ratio = greedy.Power / opt.Power
		}
		if ratio < worst {
			worst = ratio
		}
		fmt.Fprintf(w, "%8d %10.3f %10.3f %10.3f\n", trial, greedy.Power, opt.Power, ratio)
	}
	fmt.Fprintf(w, "worst ratio %.3f (guarantee: ≥ %.3f)\n", worst, 1-1/2.718281828459045)
	return nil
}

// dudTiny builds a very small DUD-like database for brute-force comparisons.
func dudTiny(n int, seed int64) (*graph.Database, error) {
	return dataset.Generate(dataset.Config{
		N: n, Seed: seed,
		MinOrder: 8, MaxOrder: 14,
		VertexLabels: 6, EdgeLabels: 2,
		MeanFamily: 4, OutlierFrac: 0.1, Edits: 2,
		ExtraEdgeProb: 0.02,
		FeatureDim:    2, FeatureNoise: 0.1,
	})
}
