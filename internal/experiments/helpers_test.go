package experiments

import (
	"math/rand"
	"testing"
	"time"

	"graphrep/internal/graph"
)

func TestRelevanceAtQuantile(t *testing.T) {
	fx, err := NewFixture("dud", 60, tiny, 30)
	if err != nil {
		t.Fatal(err)
	}
	all := relevanceAtQuantile(fx, 0)
	top := relevanceAtQuantile(fx, 0.9)
	nAll, nTop := 0, 0
	for _, g := range fx.DB.Graphs() {
		if all(g.Features()) {
			nAll++
		}
		if top(g.Features()) {
			nTop++
		}
	}
	if nAll != fx.DB.Len() {
		t.Errorf("quantile 0 selected %d of %d", nAll, fx.DB.Len())
	}
	if nTop >= nAll || nTop == 0 {
		t.Errorf("quantile 0.9 selected %d (all=%d)", nTop, nAll)
	}
}

func TestRefinementSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sched := refinementSchedule(10, 8, rng)
	if len(sched) != 8 {
		t.Fatalf("len = %d", len(sched))
	}
	prev := 10.0
	for i, theta := range sched {
		ratio := theta / prev
		if ratio < 0.89 || ratio > 1.11 {
			t.Errorf("step %d: ratio %v outside ±10%%", i, ratio)
		}
		prev = theta
	}
}

func TestMeanPairwise(t *testing.T) {
	fx, err := NewFixture("dud", 30, tiny, 31)
	if err != nil {
		t.Fatal(err)
	}
	if got := meanPairwise(fx, nil); got != 0 {
		t.Errorf("empty meanPairwise = %v", got)
	}
	if got := meanPairwise(fx, []graph.ID{3}); got != 0 {
		t.Errorf("singleton meanPairwise = %v", got)
	}
	if d := meanPairwise(fx, []graph.ID{0, 1, 2}); d < 0 {
		t.Errorf("meanPairwise = %v", d)
	}
}

func TestMs(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != 1.5 {
		t.Errorf("ms = %v, want 1.5", got)
	}
}

func TestInsertSorted(t *testing.T) {
	grid := []float64{1, 3, 5}
	grid = insertSorted(grid, 4)
	want := []float64{1, 3, 4, 5}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("insertSorted = %v", grid)
		}
	}
	// Duplicate insert is a no-op.
	if got := insertSorted(grid, 4); len(got) != 4 {
		t.Errorf("duplicate insert grew grid: %v", got)
	}
	// Head and tail inserts.
	if got := insertSorted(grid, 0); got[0] != 0 {
		t.Errorf("head insert: %v", got)
	}
	if got := insertSorted(grid, 99); got[len(got)-1] != 99 {
		t.Errorf("tail insert: %v", got)
	}
}
