// Package vantage implements vantage orderings (Definitions 3–4 of the
// paper): a Lipschitz embedding of the graph metric space into |V| one-
// dimensional "vantage spaces", one per vantage point. The embedding yields
//
//   - a lower bound on d(a,b): the vantage distance max_v |d(v,a) − d(v,b)|
//     (Theorem 4), and
//   - an upper bound on d(a,b): min_v (d(v,a) + d(v,b)),
//
// from which the candidate neighborhood N̂(g) ⊇ N_θ(g) of Theorem 5 is
// computed with |V| array scans and zero edit-distance computations.
package vantage

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/pool"
)

// SelectionPolicy chooses how vantage points are picked.
type SelectionPolicy int

const (
	// SelectRandom picks vantage points uniformly at random (the paper's
	// default; its FPR analysis assumes random VPs).
	SelectRandom SelectionPolicy = iota
	// SelectMaxMin picks the first VP at random and each subsequent VP as
	// the graph maximizing the minimum distance to those already chosen
	// (farthest-point sampling). Costs |V|·|D| extra distance computations
	// but spreads the VPs, tightening the embedding.
	SelectMaxMin
)

// Ordering holds the vantage orderings of one contiguous ID range of a
// database: for every vantage point, the distance from that VP to every
// graph in the range, plus the 1-D orderings used for range scans. A
// full-database ordering is simply the range [0, n); a shard's ordering
// covers [base, base+count) while sharing the global vantage point set, so
// the embedding coordinates of any graph are valid against any shard's
// sorted views. Ordering is immutable after Build and safe for concurrent
// use.
type Ordering struct {
	vps []graph.ID
	// base is the first graph ID covered; dist rows are indexed by id-base.
	base graph.ID
	dist [][]float64 // dist[v][g-base] = d(vps[v], g)
	// byDist[v] lists (global) graph IDs sorted by dist[v][·]; sortedD[v]
	// carries the matching sorted distances for binary search.
	byDist  [][]graph.ID
	sortedD [][]float64
}

// SelectVPs chooses numVPs vantage points from db under policy.
func SelectVPs(db *graph.Database, m metric.Metric, numVPs int, policy SelectionPolicy, rng *rand.Rand) ([]graph.ID, error) {
	n := db.Len()
	if numVPs <= 0 || numVPs > n {
		return nil, fmt.Errorf("vantage: numVPs=%d out of range for %d graphs", numVPs, n)
	}
	switch policy {
	case SelectRandom:
		perm := rng.Perm(n)
		vps := make([]graph.ID, numVPs)
		for i := range vps {
			vps[i] = graph.ID(perm[i])
		}
		return vps, nil
	case SelectMaxMin:
		vps := []graph.ID{graph.ID(rng.Intn(n))}
		minDist := make([]float64, n)
		for i := range minDist {
			minDist[i] = m.Distance(vps[0], graph.ID(i))
		}
		for len(vps) < numVPs {
			best, bestD := graph.ID(-1), -1.0
			for i := 0; i < n; i++ {
				if minDist[i] > bestD {
					best, bestD = graph.ID(i), minDist[i]
				}
			}
			vps = append(vps, best)
			for i := 0; i < n; i++ {
				if d := m.Distance(best, graph.ID(i)); d < minDist[i] {
					minDist[i] = d
				}
			}
		}
		return vps, nil
	default:
		return nil, fmt.Errorf("vantage: unknown policy %d", policy)
	}
}

// Build computes the vantage orderings of db for the given vantage points
// with the default worker count and no cancellation. See BuildContext.
func Build(db *graph.Database, m metric.Metric, vps []graph.ID) (*Ordering, error) {
	return BuildContext(context.Background(), db, m, vps, 0)
}

// BuildContext computes the vantage orderings of db for the given vantage
// points. It issues exactly len(vps)·|D| distance computations. The |V|×n
// matrix fill is chunked over pre-partitioned index ranges and spread across
// up to workers goroutines (≤ 0 means GOMAXPROCS; the metric must be safe
// for concurrent use, which every metric in this module is); every cell has
// a fixed owner, so the ordering is identical for any worker count.
// Cancellation is observed between chunks: on a cancelled context the
// partial ordering is discarded and ctx.Err() returned.
func BuildContext(ctx context.Context, db *graph.Database, m metric.Metric, vps []graph.ID, workers int) (*Ordering, error) {
	return BuildRangeContext(ctx, db, m, vps, 0, db.Len(), workers)
}

// BuildRangeContext computes the vantage orderings of the contiguous ID
// range [base, base+count) of db. The vantage points themselves may lie
// anywhere in the database — shards share one global VP set, which is what
// keeps a graph's embedding coordinates comparable across every shard's
// orderings. It issues exactly len(vps)·count distance computations; see
// BuildContext for the parallelism and determinism contract.
func BuildRangeContext(ctx context.Context, db *graph.Database, m metric.Metric, vps []graph.ID, base graph.ID, count, workers int) (*Ordering, error) {
	if len(vps) == 0 {
		return nil, fmt.Errorf("vantage: no vantage points")
	}
	n := db.Len()
	if int(base) < 0 || count <= 0 || int(base)+count > n {
		return nil, fmt.Errorf("vantage: range [%d, %d) out of bounds for %d graphs", base, int(base)+count, n)
	}
	o := &Ordering{
		vps:     append([]graph.ID(nil), vps...),
		base:    base,
		dist:    make([][]float64, len(vps)),
		byDist:  make([][]graph.ID, len(vps)),
		sortedD: make([][]float64, len(vps)),
	}
	for _, vp := range o.vps {
		if int(vp) < 0 || int(vp) >= n {
			return nil, fmt.Errorf("vantage: vp %d out of range", vp)
		}
	}
	for v := range o.vps {
		o.dist[v] = make([]float64, count)
	}
	// Phase 1: the distance-matrix fill, flattened to |V|·count cells so the
	// pool balances work even when |V| is far below the worker count.
	if err := pool.Ranges(ctx, len(o.vps)*count, workers, 512, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			v, i := idx/count, idx%count
			o.dist[v][i] = m.Distance(o.vps[v], base+graph.ID(i))
		}
	}); err != nil {
		return nil, err
	}
	// Phase 2: per-VP sorted views, one row per task.
	if err := pool.Ranges(ctx, len(o.vps), workers, 1, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			row := o.dist[v]
			ids := make([]graph.ID, count)
			for i := range ids {
				ids[i] = base + graph.ID(i)
			}
			sort.Slice(ids, func(a, b int) bool { return row[ids[a]-base] < row[ids[b]-base] })
			o.byDist[v] = ids
			sd := make([]float64, count)
			for i, id := range ids {
				sd[i] = row[id-base]
			}
			o.sortedD[v] = sd
		}
	}); err != nil {
		return nil, err
	}
	return o, nil
}

// NumVPs returns the number of vantage points.
func (o *Ordering) NumVPs() int { return len(o.vps) }

// VPs returns the vantage point IDs. The caller must not modify the slice.
func (o *Ordering) VPs() []graph.ID { return o.vps }

// Base returns the first graph ID the ordering covers.
func (o *Ordering) Base() graph.ID { return o.base }

// Len returns the number of embedded graphs.
func (o *Ordering) Len() int { return len(o.dist[0]) }

// VPDistance returns d(vps[v], g) from the precomputed embedding. g must lie
// in the ordering's range.
func (o *Ordering) VPDistance(v int, g graph.ID) float64 { return o.dist[v][g-o.base] }

// Coords returns g's embedding coordinates — d(vps[v], g) for every vantage
// point — as a fresh slice. Because shards share one global VP set, the row
// is valid as a query point against any shard's ordering (CandidatesCoords);
// this is how the coordinator scans the neighborhoods of a graph inside
// shards that do not own it, with zero extra distance computations.
func (o *Ordering) Coords(g graph.ID) []float64 {
	coords := make([]float64, len(o.dist))
	for v := range o.dist {
		coords[v] = o.dist[v][g-o.base]
	}
	return coords
}

// LowerBound returns the vantage distance max_v |d(v,a) − d(v,b)|, a lower
// bound on d(a,b) (Theorem 4 / Definition 4 lifted to a VP set). Both graphs
// must lie in the ordering's range.
func (o *Ordering) LowerBound(a, b graph.ID) float64 {
	lb := 0.0
	for v := range o.dist {
		if d := math.Abs(o.dist[v][a-o.base] - o.dist[v][b-o.base]); d > lb {
			lb = d
		}
	}
	return lb
}

// UpperBound returns min_v (d(v,a) + d(v,b)), an upper bound on d(a,b) by
// the triangle inequality. Both graphs must lie in the ordering's range.
func (o *Ordering) UpperBound(a, b graph.ID) float64 {
	ub := math.MaxFloat64
	for v := range o.dist {
		if d := o.dist[v][a-o.base] + o.dist[v][b-o.base]; d < ub {
			ub = d
		}
	}
	return ub
}

// Candidates computes N̂_θ(g) ∩ range restricted to the graphs for which
// include returns true (pass nil to include everything): every covered graph
// whose vantage distance to g is ≤ θ in all vantage spaces. By Theorem 5 the
// result is a superset of the true θ-neighborhood N_θ(g) ∩ range ∩ include.
// g must lie in the ordering's range; for query points owned by another
// shard use CandidatesCoords with the owner's Coords row.
func (o *Ordering) Candidates(g graph.ID, theta float64, include func(graph.ID) bool) []graph.ID {
	return o.candidatesScan(o.dist0(g), func(v int) float64 { return o.dist[v][g-o.base] }, theta, include)
}

// CandidatesCoords is Candidates for an external query point given by its
// embedding coordinates (one per vantage point, as returned by Coords on the
// ordering that owns the graph).
func (o *Ordering) CandidatesCoords(coords []float64, theta float64, include func(graph.ID) bool) []graph.ID {
	return o.candidatesScan(coords[0], func(v int) float64 { return coords[v] }, theta, include)
}

// candidatesScan is the shared scan behind Candidates and CandidatesCoords:
// binary search bounds the candidate window in the first vantage space, the
// remaining spaces filter by O(1) lookups.
func (o *Ordering) candidatesScan(d0 float64, coord func(v int) float64, theta float64, include func(graph.ID) bool) []graph.ID {
	lo := sort.SearchFloat64s(o.sortedD[0], d0-theta)
	hi := sort.SearchFloat64s(o.sortedD[0], math.Nextafter(d0+theta, math.Inf(1)))
	var out []graph.ID
scan:
	for i := lo; i < hi; i++ {
		id := o.byDist[0][i]
		if include != nil && !include(id) {
			continue
		}
		for v := 1; v < len(o.dist); v++ {
			if math.Abs(o.dist[v][id-o.base]-coord(v)) > theta {
				continue scan
			}
		}
		out = append(out, id)
	}
	return out
}

// Candidate is a candidate neighbor together with its vantage lower bound.
type Candidate struct {
	ID graph.ID
	// LB is the vantage distance max_v |d(v,g) − d(v,ID)| ≤ d(g, ID).
	LB float64
}

// CandidatesWithLB is Candidates returning each candidate's vantage lower
// bound as well. A candidate with LB ≤ θ' belongs to N̂_θ'(g) for every
// θ' ≤ theta, which lets one scan at the largest indexed threshold populate
// the whole π̂-vector (Definition 6).
func (o *Ordering) CandidatesWithLB(g graph.ID, theta float64, include func(graph.ID) bool) []Candidate {
	return o.candidatesLBScan(o.dist0(g), func(v int) float64 { return o.dist[v][g-o.base] }, theta, include)
}

// CandidatesWithLBCoords is CandidatesWithLB for an external query point
// given by its embedding coordinates.
func (o *Ordering) CandidatesWithLBCoords(coords []float64, theta float64, include func(graph.ID) bool) []Candidate {
	return o.candidatesLBScan(coords[0], func(v int) float64 { return coords[v] }, theta, include)
}

func (o *Ordering) candidatesLBScan(d0 float64, coord func(v int) float64, theta float64, include func(graph.ID) bool) []Candidate {
	lo := sort.SearchFloat64s(o.sortedD[0], d0-theta)
	hi := sort.SearchFloat64s(o.sortedD[0], math.Nextafter(d0+theta, math.Inf(1)))
	var out []Candidate
scan:
	for i := lo; i < hi; i++ {
		id := o.byDist[0][i]
		if include != nil && !include(id) {
			continue
		}
		lb := math.Abs(o.sortedD[0][i] - d0)
		for v := 1; v < len(o.dist); v++ {
			d := math.Abs(o.dist[v][id-o.base] - coord(v))
			if d > theta {
				continue scan
			}
			if d > lb {
				lb = d
			}
		}
		out = append(out, Candidate{ID: id, LB: lb})
	}
	return out
}

// dist0 returns g's coordinate in the first vantage space.
func (o *Ordering) dist0(g graph.ID) float64 { return o.dist[0][g-o.base] }

// FPRSample measures the observed false positive rate of the embedding: the
// fraction of candidate pairs (within vantage distance θ) that are not true
// θ-neighbors under m. It samples `samples` query graphs using rng. This
// reproduces the measurement behind Figs. 5(f–h).
func (o *Ordering) FPRSample(m metric.Metric, theta float64, samples int, rng *rand.Rand) float64 {
	n := o.Len()
	candidates, falsePos := 0, 0
	for s := 0; s < samples; s++ {
		g := o.base + graph.ID(rng.Intn(n))
		for _, id := range o.Candidates(g, theta, nil) {
			if id == g {
				continue
			}
			candidates++
			if m.Distance(g, id) > theta {
				falsePos++
			}
		}
	}
	if candidates == 0 {
		return 0
	}
	return float64(falsePos) / float64(candidates)
}

// Insert extends the ordering with a newly appended database graph: one
// distance computation per vantage point plus a sorted insertion into each
// vantage ordering. The graph's ID must equal Base()+Len() (the next ID in
// the ordering's contiguous range). Not safe concurrently with reads.
func (o *Ordering) Insert(id graph.ID, m metric.Metric) error {
	if int(id-o.base) != o.Len() {
		return fmt.Errorf("vantage: inserting id %d, want %d", id, int(o.base)+o.Len())
	}
	for v, vp := range o.vps {
		d := m.Distance(vp, id)
		o.dist[v] = append(o.dist[v], d)
		pos := sort.SearchFloat64s(o.sortedD[v], d)
		o.sortedD[v] = append(o.sortedD[v], 0)
		copy(o.sortedD[v][pos+1:], o.sortedD[v][pos:])
		o.sortedD[v][pos] = d
		o.byDist[v] = append(o.byDist[v], 0)
		copy(o.byDist[v][pos+1:], o.byDist[v][pos:])
		o.byDist[v][pos] = id
	}
	return nil
}

// Bytes returns the approximate memory footprint of the ordering: the VO
// storage cost O(|V|·|D|) from the paper's storage analysis.
func (o *Ordering) Bytes() int64 {
	per := int64(o.Len()) * (8 + 4 + 8) // dist + id + sorted distance
	return per * int64(o.NumVPs())
}
