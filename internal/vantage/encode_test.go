package vantage

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"graphrep/internal/graph"
)

func TestOrderingEncodeRoundTrip(t *testing.T) {
	db, m := randDB(t, 40, 101)
	rng := rand.New(rand.NewSource(102))
	vps, err := SelectVPs(db, m, 5, SelectMaxMin, rng)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(db, m, vps)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ReadOrdering(&buf)
	if err != nil {
		t.Fatalf("ReadOrdering: %v", err)
	}
	if got.NumVPs() != o.NumVPs() || got.Len() != o.Len() {
		t.Fatalf("shape differs: %d/%d vs %d/%d", got.NumVPs(), got.Len(), o.NumVPs(), o.Len())
	}
	if !reflect.DeepEqual(got.VPs(), o.VPs()) {
		t.Errorf("vps differ")
	}
	// Bounds and candidates must be identical.
	for i := 0; i < db.Len(); i++ {
		for j := 0; j < db.Len(); j += 3 {
			a, b := graph.ID(i), graph.ID(j)
			if got.LowerBound(a, b) != o.LowerBound(a, b) || got.UpperBound(a, b) != o.UpperBound(a, b) {
				t.Fatalf("bounds differ at (%d,%d)", i, j)
			}
		}
		want := o.Candidates(graph.ID(i), 4, nil)
		have := got.Candidates(graph.ID(i), 4, nil)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("candidates differ for %d: %v vs %v", i, want, have)
		}
	}
}

func TestReadOrderingErrors(t *testing.T) {
	if _, err := ReadOrdering(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadOrdering(bytes.NewReader([]byte("junkjunkjunk"))); err == nil {
		t.Error("garbage accepted")
	}
}
