package vantage

import (
	"fmt"

	"graphrep/internal/graph"
)

// FromViews assembles an Ordering from persisted arrays — typically zero-copy
// views over v4 index sections. dist and sortedD are row-major
// len(vps)×count matrices, byDist the matching ID matrix; rows are sliced out
// with capacity clipped to the row, so an Insert-time append on any row
// reallocates instead of growing into its neighbor (or through a mapping).
//
// It is FromViewsDeferred followed immediately by Validate — use the
// deferred pair when the O(count) content scan should wait until first use.
func FromViews(vps []graph.ID, base graph.ID, count int, dist, sortedD []float64, byDist []graph.ID) (*Ordering, error) {
	o, err := FromViewsDeferred(vps, base, count, dist, sortedD, byDist)
	if err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// FromViewsDeferred is FromViews minus the content scan: it checks only the
// shape invariants (non-empty, matrix dimensions) in O(1) and defers
// Validate to the caller, keeping a mapped open independent of index size.
// The Ordering must not serve lookups until Validate has passed.
func FromViewsDeferred(vps []graph.ID, base graph.ID, count int, dist, sortedD []float64, byDist []graph.ID) (*Ordering, error) {
	if len(vps) == 0 {
		return nil, fmt.Errorf("vantage: no vantage points")
	}
	if count <= 0 {
		return nil, fmt.Errorf("vantage: count %d", count)
	}
	if base < 0 {
		return nil, fmt.Errorf("vantage: base %d", base)
	}
	want := len(vps) * count
	if len(dist) != want || len(sortedD) != want || len(byDist) != want {
		return nil, fmt.Errorf("vantage: matrices of %d/%d/%d values, want %d (%d VPs × %d graphs)",
			len(dist), len(sortedD), len(byDist), want, len(vps), count)
	}
	o := &Ordering{
		vps:     vps,
		base:    base,
		dist:    make([][]float64, len(vps)),
		byDist:  make([][]graph.ID, len(vps)),
		sortedD: make([][]float64, len(vps)),
	}
	for v := range vps {
		lo, hi := v*count, (v+1)*count
		o.dist[v] = dist[lo:hi:hi]
		o.sortedD[v] = sortedD[lo:hi:hi]
		o.byDist[v] = byDist[lo:hi:hi]
	}
	return o, nil
}

// Validate runs the O(count) content scan a deferred construction skipped:
// byDist's first row — the only row whose entries are used as array
// indices — must stay inside [base, base+count). Distance values are used
// only as comparands, so corrupt values can skew answers but never fault;
// deeper consistency is the compat tests' job, not the load path's.
func (o *Ordering) Validate() error {
	base, count := o.base, len(o.byDist[0])
	for _, id := range o.byDist[0] {
		if id < base || int(id-base) >= count {
			return fmt.Errorf("vantage: ordering entry %d outside covered range [%d, %d)", id, base, int(base)+count)
		}
	}
	return nil
}

// DistRow returns the distance row of vantage point v: d(vps[v], g) indexed
// by g−Base(). Read-only; the persistence writer serializes rows directly.
func (o *Ordering) DistRow(v int) []float64 { return o.dist[v] }

// SortedRow returns the ascending distance row of vantage point v. Read-only.
func (o *Ordering) SortedRow(v int) []float64 { return o.sortedD[v] }

// ByDistRow returns the graph IDs of vantage point v's ordering, sorted by
// distance (matching SortedRow). Read-only.
func (o *Ordering) ByDistRow(v int) []graph.ID { return o.byDist[v] }
