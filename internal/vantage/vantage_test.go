package vantage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// lineDB builds a database of path graphs of increasing length; under the
// star distance longer paths are farther apart, giving a nicely spread
// metric space without relying on randomness.
func lineDB(t testing.TB, n int) (*graph.Database, metric.Metric) {
	if t != nil {
		t.Helper()
	}
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := i + 1
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(1)
		}
		for v := 0; v+1 < order; v++ {
			b.AddEdge(v, v+1, 0)
		}
		b.SetFeatures([]float64{float64(i)})
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func randDB(t testing.TB, n int, seed int64) (*graph.Database, metric.Metric) {
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := 2 + rng.Intn(8)
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(graph.Label(rng.Intn(3)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(u, v, 0)
				}
			}
		}
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func TestSelectVPs(t *testing.T) {
	db, m := randDB(t, 30, 1)
	rng := rand.New(rand.NewSource(2))
	for _, policy := range []SelectionPolicy{SelectRandom, SelectMaxMin} {
		vps, err := SelectVPs(db, m, 5, policy, rng)
		if err != nil {
			t.Fatalf("SelectVPs(%v): %v", policy, err)
		}
		if len(vps) != 5 {
			t.Fatalf("got %d vps", len(vps))
		}
		seen := make(map[graph.ID]bool)
		for _, vp := range vps {
			if seen[vp] {
				t.Errorf("policy %v: duplicate vp %d", policy, vp)
			}
			seen[vp] = true
		}
	}
	if _, err := SelectVPs(db, m, 0, SelectRandom, rng); err == nil {
		t.Error("numVPs=0 accepted")
	}
	if _, err := SelectVPs(db, m, 31, SelectRandom, rng); err == nil {
		t.Error("numVPs > n accepted")
	}
	if _, err := SelectVPs(db, m, 2, SelectionPolicy(99), rng); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	db, m := randDB(t, 5, 3)
	if _, err := Build(db, m, nil); err == nil {
		t.Error("empty vps accepted")
	}
	if _, err := Build(db, m, []graph.ID{99}); err == nil {
		t.Error("out-of-range vp accepted")
	}
}

func TestBoundsSandwichTrueDistance(t *testing.T) {
	db, m := randDB(t, 40, 4)
	rng := rand.New(rand.NewSource(5))
	vps, _ := SelectVPs(db, m, 6, SelectMaxMin, rng)
	o, err := Build(db, m, vps)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 0; i < db.Len(); i++ {
		for j := 0; j < db.Len(); j++ {
			a, b := graph.ID(i), graph.ID(j)
			d := m.Distance(a, b)
			lb, ub := o.LowerBound(a, b), o.UpperBound(a, b)
			if lb > d+1e-9 {
				t.Fatalf("LB %v > d %v at (%d,%d)", lb, d, i, j)
			}
			if i != j && ub < d-1e-9 {
				t.Fatalf("UB %v < d %v at (%d,%d)", ub, d, i, j)
			}
		}
	}
}

// Theorem 5: N̂(g) ⊇ N(g) for every g and θ.
func TestCandidatesSuperset(t *testing.T) {
	db, m := randDB(t, 50, 6)
	rng := rand.New(rand.NewSource(7))
	vps, _ := SelectVPs(db, m, 4, SelectRandom, rng)
	o, err := Build(db, m, vps)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.ID(r.Intn(db.Len()))
		theta := r.Float64() * 10
		cands := make(map[graph.ID]bool)
		for _, id := range o.Candidates(g, theta, nil) {
			cands[id] = true
		}
		for i := 0; i < db.Len(); i++ {
			if m.Distance(g, graph.ID(i)) <= theta && !cands[graph.ID(i)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCandidatesIncludeFilter(t *testing.T) {
	db, m := lineDB(t, 20)
	o, err := Build(db, m, []graph.ID{0, 19})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	even := func(id graph.ID) bool { return id%2 == 0 }
	for _, id := range o.Candidates(10, 5, even) {
		if id%2 != 0 {
			t.Errorf("filter leaked id %d", id)
		}
	}
	all := o.Candidates(10, 5, nil)
	filtered := o.Candidates(10, 5, even)
	if len(filtered) >= len(all) {
		t.Errorf("filter did not shrink candidates: %d vs %d", len(filtered), len(all))
	}
}

func TestCandidatesSelfIncluded(t *testing.T) {
	db, m := lineDB(t, 10)
	o, _ := Build(db, m, []graph.ID{0})
	for i := 0; i < db.Len(); i++ {
		found := false
		for _, id := range o.Candidates(graph.ID(i), 0, nil) {
			if id == graph.ID(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("graph %d missing from its own θ=0 candidates", i)
		}
	}
}

func TestMoreVPsTightenCandidates(t *testing.T) {
	db, m := randDB(t, 60, 8)
	rng := rand.New(rand.NewSource(9))
	vps, _ := SelectVPs(db, m, 8, SelectMaxMin, rng)
	few, _ := Build(db, m, vps[:2])
	many, _ := Build(db, m, vps)
	totalFew, totalMany := 0, 0
	for i := 0; i < db.Len(); i += 5 {
		totalFew += len(few.Candidates(graph.ID(i), 4, nil))
		totalMany += len(many.Candidates(graph.ID(i), 4, nil))
	}
	if totalMany > totalFew {
		t.Errorf("more VPs produced more candidates: %d vs %d", totalMany, totalFew)
	}
}

// CandidatesWithLB must return the same candidate set as Candidates, with
// each LB a true lower bound on the metric distance (and ≤ θ).
func TestCandidatesWithLB(t *testing.T) {
	db, m := randDB(t, 50, 12)
	rng := rand.New(rand.NewSource(13))
	vps, _ := SelectVPs(db, m, 4, SelectMaxMin, rng)
	o, err := Build(db, m, vps)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		g := graph.ID(rng.Intn(db.Len()))
		theta := rng.Float64() * 8
		plain := o.Candidates(g, theta, nil)
		withLB := o.CandidatesWithLB(g, theta, nil)
		if len(plain) != len(withLB) {
			t.Fatalf("candidate counts differ: %d vs %d", len(plain), len(withLB))
		}
		for i, c := range withLB {
			if c.ID != plain[i] {
				t.Fatalf("candidate order differs at %d", i)
			}
			if c.LB > theta+1e-12 {
				t.Fatalf("LB %v exceeds θ %v", c.LB, theta)
			}
			if d := m.Distance(g, c.ID); c.LB > d+1e-9 {
				t.Fatalf("LB %v exceeds true distance %v", c.LB, d)
			}
			if c.LB != o.LowerBound(g, c.ID) {
				t.Fatalf("LB %v != LowerBound %v", c.LB, o.LowerBound(g, c.ID))
			}
		}
	}
	// The include filter applies here too.
	even := func(id graph.ID) bool { return id%2 == 0 }
	for _, c := range o.CandidatesWithLB(10, 5, even) {
		if c.ID%2 != 0 {
			t.Errorf("filter leaked id %d", c.ID)
		}
	}
}

func TestFPRSample(t *testing.T) {
	db, m := randDB(t, 60, 10)
	rng := rand.New(rand.NewSource(11))
	vps, _ := SelectVPs(db, m, 3, SelectRandom, rng)
	o, _ := Build(db, m, vps)
	fpr := o.FPRSample(m, 4, 20, rng)
	if fpr < 0 || fpr > 1 {
		t.Errorf("FPR = %v", fpr)
	}
	// θ covering the whole space: candidates are everything and none are
	// false positives.
	if fpr := o.FPRSample(m, 1e9, 5, rng); fpr != 0 {
		t.Errorf("FPR at huge θ = %v, want 0", fpr)
	}
}

// Uniform-space sanity check behind Eq. 12: on a 1-D uniform metric space,
// the observed candidate FPR must be bounded by the no-VP false rate
// P(d > θ) = (m−1)/m, and adding a second vantage point can only reduce the
// candidate set. (A tight match to Eq. 12 is not expected: its independence
// model ignores 1-D geometry, where same-side pairs are filtered perfectly.)
func TestUniformSpaceFPRBracketing(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 400
	const mFactor = 5.0 // diameter = m·θ with θ = 1
	coords := make([]float64, n)
	for i := range coords {
		coords[i] = rng.Float64() * mFactor
	}
	lineMetric := metric.Func(func(a, b graph.ID) float64 {
		return math.Abs(coords[a] - coords[b])
	})
	db := lineDBStub(t, n)
	theta := 1.0
	vp1, vp2 := graph.ID(rng.Intn(n)), graph.ID(rng.Intn(n))
	one, err := Build(db, lineMetric, []graph.ID{vp1})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Build(db, lineMetric, []graph.ID{vp1, vp2})
	if err != nil {
		t.Fatal(err)
	}
	count := func(o *Ordering) (cands, falsePos int) {
		for s := 0; s < 150; s++ {
			g := graph.ID(rng.Intn(n))
			for _, id := range o.Candidates(g, theta, nil) {
				if id == g {
					continue
				}
				cands++
				if lineMetric.Distance(g, id) > theta {
					falsePos++
				}
			}
		}
		return
	}
	c1, f1 := count(one)
	c2, _ := count(two)
	if c1 == 0 || c2 == 0 {
		t.Fatal("no candidates generated")
	}
	fpr1 := float64(f1) / float64(c1)
	noVP := (mFactor - 1) / mFactor // P(d > θ) without any filtering
	if fpr1 >= noVP {
		t.Errorf("1-VP FPR %.3f not below the unfiltered rate %.3f", fpr1, noVP)
	}
	// More VPs: strictly no more candidates (Theorem 5 tightening).
	if c2 > c1 {
		t.Errorf("2 VPs produced more candidates: %d > %d", c2, c1)
	}
}

// lineDBStub builds a placeholder database of n single-vertex graphs; the
// test above supplies its own metric, so structure is irrelevant.
func lineDBStub(t *testing.T, n int) *graph.Database {
	t.Helper()
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		b := graph.NewBuilder(1)
		b.AddVertex(0)
		g, err := b.Build(graph.ID(i))
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAccessors(t *testing.T) {
	db, m := lineDB(t, 12)
	o, _ := Build(db, m, []graph.ID{3, 7})
	if o.NumVPs() != 2 || o.Len() != 12 {
		t.Errorf("NumVPs/Len = %d/%d", o.NumVPs(), o.Len())
	}
	if o.VPs()[1] != 7 {
		t.Errorf("VPs = %v", o.VPs())
	}
	if d := o.VPDistance(0, 3); d != 0 {
		t.Errorf("VPDistance(vp,vp) = %v", d)
	}
	if o.Bytes() <= 0 {
		t.Error("Bytes <= 0")
	}
	if math.IsNaN(o.VPDistance(1, 0)) {
		t.Error("NaN distance")
	}
}
