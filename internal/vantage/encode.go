package vantage

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"graphrep/internal/graph"
)

// snapshot is the serialized form of an Ordering: the vantage points and
// their distance rows. The sorted views are rebuilt on load. Base was added
// for sharded orderings; pre-shard snapshots lack the field and gob decodes
// it as 0, which is exactly the base a full-database ordering has.
type snapshot struct {
	VPs  []graph.ID
	Base graph.ID
	Dist [][]float64
}

// Encode serializes the ordering (gob). Vantage orderings are the costly
// part of an NB-Index to build (O(|V|·|D|) distance computations), so
// persisting them lets a database reopen without recomputing.
func (o *Ordering) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snapshot{VPs: o.vps, Base: o.base, Dist: o.dist})
}

// ReadOrdering deserializes an Ordering written by Encode.
func ReadOrdering(r io.Reader) (*Ordering, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("vantage: decode: %w", err)
	}
	if len(s.VPs) == 0 || len(s.Dist) != len(s.VPs) {
		return nil, fmt.Errorf("vantage: corrupt snapshot: %d vps, %d rows", len(s.VPs), len(s.Dist))
	}
	n := len(s.Dist[0])
	o := &Ordering{
		vps:     s.VPs,
		base:    s.Base,
		dist:    s.Dist,
		byDist:  make([][]graph.ID, len(s.VPs)),
		sortedD: make([][]float64, len(s.VPs)),
	}
	for v, row := range s.Dist {
		if len(row) != n {
			return nil, fmt.Errorf("vantage: corrupt snapshot: row %d has %d entries, want %d", v, len(row), n)
		}
		ids := make([]graph.ID, n)
		for i := range ids {
			ids[i] = s.Base + graph.ID(i)
		}
		sort.Slice(ids, func(a, b int) bool { return row[ids[a]-s.Base] < row[ids[b]-s.Base] })
		o.byDist[v] = ids
		sd := make([]float64, n)
		for i, id := range ids {
			sd[i] = row[id-s.Base]
		}
		o.sortedD[v] = sd
	}
	return o, nil
}
