package shard

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/mmapfile"
	"graphrep/internal/nbindex"
	"graphrep/internal/nbtree"
	"graphrep/internal/vantage"
)

// Format v4 (NBIDX004): the zero-copy container. Unlike v1–v3, which
// interleave length-prefixed gob streams and must be decoded section by
// section, v4 is a flat offset-tabled layout readable in place from a byte
// slice — typically a memory mapping — so opening an index costs O(header +
// directory), not O(data).
//
//	header     magic "NBIDX004" | u64 sectionCount | u64 fileSize
//	directory  sectionCount × { u32 kind | u32 shard | u64 off | u64 len }
//	sections   raw little-endian arrays, each 8-byte aligned, zero-padded
//
// Every array is fixed-stride, so a section becomes a typed slice via
// mmapfile.View without copying. Global sections carry shard 0; per-shard
// sections carry the 0-based shard number (global and per-shard kinds are
// disjoint, so the (kind, shard) key is unique).
const (
	// Global sections.
	secManifest = 1 // u64 shardCount, then per shard u64 base, u64 count
	secGrid     = 2 // f64 ascending θ grid

	// Per-shard vantage ordering.
	secVPs     = 10 // i32 vantage point IDs
	secDist    = 11 // f64 numVPs×count row-major: d(vp, g)
	secSortedD = 12 // f64 numVPs×count: each row ascending
	secByDist  = 13 // i32 numVPs×count: IDs in SortedD order

	// Per-shard NB-Tree in flattened (parallel-array) form.
	secTreeMeta    = 20 // u64 ×5: numNodes, exactDists, prunedDists, nodes, leaves
	secCentroid    = 21 // i32 per node
	secParent      = 22 // i32 per node, −1 at the root
	secFirstChild  = 23 // i32 per node, −1 at leaves
	secNextSibling = 24 // i32 per node, −1 at chain ends
	secSize        = 25 // i32 per node
	secLeaf        = 26 // u8 per node, 0 or 1
	secRadius      = 27 // f64 per node
	secDiameter    = 28 // f64 per node

	secLeafOf = 30 // i32 per graph: leaf node index of base+i

	// Per-shard filter embeddings, offset-tabled like the container itself.
	secEmbOffsets = 40 // u32 per graph plus terminator, into EmbBlob
	secEmbBlob    = 41 // encoded embedding records, concatenated in ID order
)

var v4Magic = [8]byte{'N', 'B', 'I', 'D', 'X', '0', '0', '4'}

const (
	v4HeaderLen   = 24
	v4DirEntryLen = 24
)

// v4section is one directory entry during encoding, paired with the function
// that writes its body.
type v4section struct {
	kind, shard uint32
	length      uint64
	write       func(w io.Writer) error
}

func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// writeLE returns a section body writer emitting v in little-endian — the
// single choke point for array sections, so the writer never touches unsafe.
func writeLE(v any) func(io.Writer) error {
	return func(w io.Writer) error { return binary.Write(w, binary.LittleEndian, v) }
}

// EncodeV4 persists the set in the v4 zero-copy layout. Like the legacy
// encoder, output bytes are a pure function of the set's contents: sections
// are emitted in a fixed order, offsets are derived deterministically, and
// padding is zero.
func (s *Set) EncodeV4(w io.Writer) error {
	var sections []v4section
	add := func(kind, shard uint32, length uint64, write func(io.Writer) error) {
		sections = append(sections, v4section{kind: kind, shard: shard, length: length, write: write})
	}

	manifest := make([]uint64, 0, 1+2*len(s.parts))
	manifest = append(manifest, uint64(len(s.parts)))
	for _, part := range s.parts {
		manifest = append(manifest, uint64(part.Base()), uint64(part.Count()))
	}
	add(secManifest, 0, uint64(8*len(manifest)), writeLE(manifest))
	add(secGrid, 0, uint64(8*len(s.grid)), writeLE(s.grid))

	// Embedding tables are assembled up front: heap-built indexes encode
	// their vectors once here, view-backed indexes pass their blob through.
	tabs := make([]*ged.Table, len(s.parts))
	for p, part := range s.parts {
		tab := part.EmbeddingTable()
		if tab == nil {
			var err error
			if tab, err = ged.NewTableFromEmbeddings(part.Embeddings()); err != nil {
				return fmt.Errorf("shard: shard %d: %w", p, err)
			}
		}
		if tab.Len() != part.Count() {
			return fmt.Errorf("shard: shard %d has %d embeddings for %d graphs", p, tab.Len(), part.Count())
		}
		tabs[p] = tab
	}

	for p, part := range s.parts {
		sh := uint32(p)
		vo, f, tab := part.VO(), part.Flat(), tabs[p]
		count, nv, nn := part.Count(), vo.NumVPs(), f.Len()

		add(secVPs, sh, uint64(4*nv), writeLE(vo.VPs()))
		matrix := func(kind uint32, stride uint64, row func(v int) any) {
			add(kind, sh, stride*uint64(nv)*uint64(count), func(w io.Writer) error {
				for v := 0; v < nv; v++ {
					if err := binary.Write(w, binary.LittleEndian, row(v)); err != nil {
						return err
					}
				}
				return nil
			})
		}
		matrix(secDist, 8, func(v int) any { return vo.DistRow(v) })
		matrix(secSortedD, 8, func(v int) any { return vo.SortedRow(v) })
		matrix(secByDist, 4, func(v int) any { return vo.ByDistRow(v) })

		st := f.Stats()
		meta := []uint64{uint64(nn), uint64(st.ExactDistances), uint64(st.PrunedDistances), uint64(st.Nodes), uint64(st.Leaves)}
		add(secTreeMeta, sh, uint64(8*len(meta)), writeLE(meta))
		add(secCentroid, sh, uint64(4*nn), writeLE(f.Centroids))
		add(secParent, sh, uint64(4*nn), writeLE(f.Parents))
		add(secFirstChild, sh, uint64(4*nn), writeLE(f.FirstChild))
		add(secNextSibling, sh, uint64(4*nn), writeLE(f.NextSibling))
		add(secSize, sh, uint64(4*nn), writeLE(f.Sizes))
		add(secLeaf, sh, uint64(nn), func(w io.Writer) error { _, err := w.Write(f.Leaves); return err })
		add(secRadius, sh, uint64(8*nn), writeLE(f.Radii))
		add(secDiameter, sh, uint64(8*nn), writeLE(f.Diameters))

		add(secLeafOf, sh, uint64(4*count), writeLE(part.LeafOf()))
		add(secEmbOffsets, sh, uint64(4*len(tab.Offsets())), writeLE(tab.Offsets()))
		add(secEmbBlob, sh, uint64(len(tab.Blob())), func(w io.Writer) error { _, err := w.Write(tab.Blob()); return err })
	}

	// Assign aligned offsets, then emit header, directory, and bodies.
	off := uint64(v4HeaderLen + v4DirEntryLen*len(sections))
	offs := make([]uint64, len(sections))
	for i, sec := range sections {
		off = pad8(off)
		offs[i] = off
		off += sec.length
	}
	fileSize := pad8(off)

	var hdr [v4HeaderLen]byte
	copy(hdr[:8], v4Magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(sections)))
	binary.LittleEndian.PutUint64(hdr[16:], fileSize)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var ent [v4DirEntryLen]byte
	for i, sec := range sections {
		binary.LittleEndian.PutUint32(ent[0:], sec.kind)
		binary.LittleEndian.PutUint32(ent[4:], sec.shard)
		binary.LittleEndian.PutUint64(ent[8:], offs[i])
		binary.LittleEndian.PutUint64(ent[16:], sec.length)
		if _, err := w.Write(ent[:]); err != nil {
			return err
		}
	}
	var zeros [8]byte
	pos := uint64(v4HeaderLen + v4DirEntryLen*len(sections))
	for i, sec := range sections {
		if p := offs[i] - pos; p > 0 {
			if _, err := w.Write(zeros[:p]); err != nil {
				return err
			}
		}
		if err := sec.write(w); err != nil {
			return fmt.Errorf("shard: write section kind %d shard %d: %w", sec.kind, sec.shard, err)
		}
		pos = offs[i] + sec.length
	}
	if p := fileSize - pos; p > 0 {
		if _, err := w.Write(zeros[:p]); err != nil {
			return err
		}
	}
	return nil
}

// v4dir is the parsed directory: section lookup by (kind, shard).
type v4dir struct {
	data []byte
	secs map[[2]uint32][]byte
}

// section returns the named section's bytes, or an error naming it.
func (d *v4dir) section(kind, shard uint32) ([]byte, error) {
	b, ok := d.secs[[2]uint32{kind, shard}]
	if !ok {
		return nil, fmt.Errorf("shard: v4 index is missing section kind %d shard %d", kind, shard)
	}
	return b, nil
}

// parseV4 validates the header and directory of a v4 container: magic, file
// size, per-entry alignment and bounds (overflow-safe), no duplicate (kind,
// shard) keys, and no overlapping sections. Section bodies are NOT examined —
// that is each constructor's job — but after parseV4 every section slice is
// guaranteed to lie inside data.
func parseV4(data []byte) (*v4dir, error) {
	if len(data) < v4HeaderLen {
		return nil, fmt.Errorf("shard: v4 index of %d bytes is shorter than the header", len(data))
	}
	if [8]byte(data[:8]) != v4Magic {
		return nil, fmt.Errorf("shard: bad magic %q", data[:8])
	}
	count := binary.LittleEndian.Uint64(data[8:])
	fileSize := binary.LittleEndian.Uint64(data[16:])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("shard: v4 header declares %d bytes, file has %d", fileSize, len(data))
	}
	if count == 0 || count > uint64(len(data)-v4HeaderLen)/v4DirEntryLen {
		return nil, fmt.Errorf("shard: implausible v4 section count %d for %d bytes", count, len(data))
	}
	dirEnd := uint64(v4HeaderLen) + count*v4DirEntryLen
	d := &v4dir{data: data, secs: make(map[[2]uint32][]byte, count)}
	type span struct{ off, end uint64 }
	spans := make([]span, 0, count)
	for i := uint64(0); i < count; i++ {
		ent := data[v4HeaderLen+i*v4DirEntryLen:]
		kind := binary.LittleEndian.Uint32(ent[0:])
		shard := binary.LittleEndian.Uint32(ent[4:])
		off := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		if off%8 != 0 {
			return nil, fmt.Errorf("shard: v4 section %d (kind %d shard %d) at unaligned offset %d", i, kind, shard, off)
		}
		if off < dirEnd || off > fileSize || length > fileSize-off {
			return nil, fmt.Errorf("shard: v4 section %d (kind %d shard %d) spans [%d, %d+%d) outside the file",
				i, kind, shard, off, off, length)
		}
		key := [2]uint32{kind, shard}
		if _, dup := d.secs[key]; dup {
			return nil, fmt.Errorf("shard: v4 index has duplicate section kind %d shard %d", kind, shard)
		}
		d.secs[key] = data[off : off+length : off+length]
		spans = append(spans, span{off: off, end: off + length})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	for i := 1; i < len(spans); i++ {
		if spans[i].off < spans[i-1].end {
			return nil, fmt.Errorf("shard: v4 sections overlap at offset %d", spans[i].off)
		}
	}
	return d, nil
}

// v4view builds a typed view over one section, naming the section on error.
func v4view[T mmapfile.Scalar](d *v4dir, kind, shard uint32) ([]T, error) {
	b, err := d.section(kind, shard)
	if err != nil {
		return nil, err
	}
	v, err := mmapfile.View[T](b)
	if err != nil {
		return nil, fmt.Errorf("shard: v4 section kind %d shard %d: %w", kind, shard, err)
	}
	return v, nil
}

// ReadBytes loads a v4 container from data with no cancellation. See
// ReadBytesContext.
func ReadBytes(data []byte, db *graph.Database, m metric.Metric) (*Set, error) {
	return ReadBytesContext(context.Background(), data, db, m)
}

// ReadBytesContext loads a v4 container directly from a byte slice —
// typically a memory mapping, in which case every array the set serves
// queries from stays a view over the mapping and the load cost is independent
// of the index size. The caller must keep data alive (and the mapping open)
// for the lifetime of the returned set.
//
// Validation is the load path's contract: structural integrity (bounds,
// alignment, overlaps, cross-section consistency, everything scans index by
// value) is checked here, so corrupt or truncated files fail with an error —
// never a panic, and never an out-of-bounds read later at query time.
func ReadBytesContext(ctx context.Context, data []byte, db *graph.Database, m metric.Metric) (*Set, error) {
	d, err := parseV4(data)
	if err != nil {
		return nil, err
	}
	manifest, err := v4view[uint64](d, secManifest, 0)
	if err != nil {
		return nil, err
	}
	if len(manifest) == 0 {
		return nil, fmt.Errorf("shard: v4 manifest is empty")
	}
	shardCount := manifest[0]
	if shardCount == 0 || shardCount > uint64(db.Len()) || uint64(len(manifest)) != 1+2*shardCount {
		return nil, fmt.Errorf("shard: v4 manifest declares %d shards with %d entries for %d graphs",
			shardCount, len(manifest), db.Len())
	}
	gridView, err := v4view[float64](d, secGrid, 0)
	if err != nil {
		return nil, err
	}
	if len(gridView) == 0 || len(gridView) > 1<<20 {
		return nil, fmt.Errorf("shard: implausible grid length %d", len(gridView))
	}
	// The grid is tiny and shared across every shard and session; copying it
	// here means only bulk arrays reference the mapping.
	grid := append([]float64(nil), gridView...)

	s := &Set{db: db, m: m, grid: grid, parts: make([]*nbindex.Index, shardCount)}
	next := graph.ID(0)
	for p := range s.parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		base, count := manifest[1+2*p], manifest[2+2*p]
		// base is compared in uint64 (no graph.ID truncation) and count is
		// bounded by the remaining range, so base+count cannot overflow.
		if base != uint64(next) || count == 0 || count > uint64(db.Len())-base {
			return nil, fmt.Errorf("shard: v4 shard %d declares [%d, %d), want contiguous from %d",
				p, base, base+count, next)
		}
		part, err := readPartV4(d, uint32(p), graph.ID(base), int(count), db, m, grid)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", p, err)
		}
		s.parts[p] = part
		next += graph.ID(count)
	}
	if int(next) != db.Len() {
		return nil, fmt.Errorf("shard: set covers %d graphs, database has %d", next, db.Len())
	}
	return s, nil
}

// readPartV4 assembles one shard's index from its sections using the
// deferred component constructors (vantage.FromViewsDeferred,
// nbtree.NewFlatDeferred, ged.NewTableDeferred,
// nbindex.PartFromViewsDeferred): only O(1)-per-shard shape checks — plus
// the cross-section length couplings the components cannot see — run here,
// so the open stays independent of index size. The O(count) content scans
// run once at the part's first use (nbindex.Index.EnsureValid, called by
// session creation and Insert), which is where corrupt content surfaces as
// an error.
func readPartV4(d *v4dir, sh uint32, base graph.ID, count int, db *graph.Database, m metric.Metric, grid []float64) (*nbindex.Index, error) {
	vps, err := v4view[graph.ID](d, secVPs, sh)
	if err != nil {
		return nil, err
	}
	dist, err := v4view[float64](d, secDist, sh)
	if err != nil {
		return nil, err
	}
	sortedD, err := v4view[float64](d, secSortedD, sh)
	if err != nil {
		return nil, err
	}
	byDist, err := v4view[graph.ID](d, secByDist, sh)
	if err != nil {
		return nil, err
	}
	vo, err := vantage.FromViewsDeferred(vps, base, count, dist, sortedD, byDist)
	if err != nil {
		return nil, err
	}

	meta, err := v4view[uint64](d, secTreeMeta, sh)
	if err != nil {
		return nil, err
	}
	if len(meta) != 5 {
		return nil, fmt.Errorf("nbtree: tree meta has %d entries, want 5", len(meta))
	}
	numNodes := meta[0]
	if numNodes == 0 || numNodes > uint64(2*count) {
		return nil, fmt.Errorf("nbtree: implausible node count %d for %d graphs", numNodes, count)
	}
	centroids, err := v4view[graph.ID](d, secCentroid, sh)
	if err != nil {
		return nil, err
	}
	parents, err := v4view[int32](d, secParent, sh)
	if err != nil {
		return nil, err
	}
	firstChild, err := v4view[int32](d, secFirstChild, sh)
	if err != nil {
		return nil, err
	}
	nextSibling, err := v4view[int32](d, secNextSibling, sh)
	if err != nil {
		return nil, err
	}
	sizes, err := v4view[int32](d, secSize, sh)
	if err != nil {
		return nil, err
	}
	leaves, err := d.section(secLeaf, sh)
	if err != nil {
		return nil, err
	}
	radii, err := v4view[float64](d, secRadius, sh)
	if err != nil {
		return nil, err
	}
	diameters, err := v4view[float64](d, secDiameter, sh)
	if err != nil {
		return nil, err
	}
	if uint64(len(centroids)) != numNodes || uint64(len(leaves)) != numNodes {
		return nil, fmt.Errorf("nbtree: tree sections cover %d/%d nodes, meta declares %d",
			len(centroids), len(leaves), numNodes)
	}
	if meta[3] != numNodes || meta[4] > numNodes {
		return nil, fmt.Errorf("nbtree: tree meta declares %d nodes / %d leaves for %d stored nodes",
			meta[3], meta[4], numNodes)
	}
	// The claimed leaf count (meta[4]) is carried in the stats and verified
	// against the actual flags by the deferred Flat.Validate.
	flat, err := nbtree.NewFlatDeferred(centroids, parents, firstChild, nextSibling, sizes, leaves, radii, diameters,
		nbtree.BuildStats{ExactDistances: int64(meta[1]), PrunedDistances: int64(meta[2]), Leaves: int(meta[4])})
	if err != nil {
		return nil, err
	}

	leafOf, err := v4view[int32](d, secLeafOf, sh)
	if err != nil {
		return nil, err
	}
	embOffs, err := v4view[uint32](d, secEmbOffsets, sh)
	if err != nil {
		return nil, err
	}
	embBlob, err := d.section(secEmbBlob, sh)
	if err != nil {
		return nil, err
	}
	if len(embOffs) != count+1 {
		return nil, fmt.Errorf("ged: embedding table has %d offsets for %d graphs", len(embOffs), count)
	}
	tab, err := ged.NewTableDeferred(embOffs, embBlob)
	if err != nil {
		return nil, err
	}
	return nbindex.PartFromViewsDeferred(db, m, vo, flat, grid, leafOf, tab, 0)
}
