package shard

import (
	"bytes"
	"math/rand"
	"testing"

	"graphrep/internal/dataset"
	"graphrep/internal/metric"
)

// FuzzReadIndexV4 is the hostile-input contract of the zero-copy load path:
// whatever bytes arrive — truncated files, corrupt directories, overlapping
// or misaligned sections, mangled array contents — ReadBytes and the first
// session over its result either return an error or yield queries that run
// without faulting. Nothing on the path may panic or index outside the
// input, because in production the input is a shared read-only mapping of an
// arbitrary on-disk file.
func FuzzReadIndexV4(f *testing.F) {
	db, err := dataset.ByName("dud", 40, 11)
	if err != nil {
		f.Fatal(err)
	}
	m := metric.NewCache(metric.Star(db))
	set, err := Build(db, m, Options{Shards: 2, NumVPs: 3, Branching: 3, ThetaGrid: []float64{3, 6, 9}},
		rand.New(rand.NewSource(11)))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.EncodeV4(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	// Seeds: the pristine file, truncations at structurally interesting
	// boundaries, and single-byte corruptions sprinkled over the header,
	// directory, and section bodies. The mutator takes it from there.
	f.Add(valid)
	for _, cut := range []int{0, 7, 8, 23, 24, 48, len(valid) / 2, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(valid[:cut])
		}
	}
	for _, pos := range []int{8, 16, 28, 32, 40, 100, len(valid) - 9} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0xff
		f.Add(mut)
	}

	thetas := set.Grid()
	theta := thetas[len(thetas)/2]
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBytes(data, db, m)
		if err != nil {
			return
		}
		// ReadBytes checks shape (header, directory, section lengths) in
		// O(1) per shard; the O(n) content validation is deferred to first
		// use, so corrupt content must surface HERE as a session error —
		// never as a panic or out-of-range access.
		sess, err := s.NewSession(func(fv []float64) bool { return fv[0] > 0.4 })
		if err != nil {
			return
		}
		// Content validated too: queries must now be safe. (They need not
		// be meaningful — a fuzzer CAN craft a consistent file describing a
		// different clustering — but every array access must stay in range.)
		if _, err := sess.TopK(theta, 3); err != nil {
			t.Fatalf("query on validated v4 index: %v", err)
		}
	})
}
