package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"graphrep/internal/bitset"
	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbindex"
	"graphrep/internal/nbtree"
	"graphrep/internal/pool"
)

// QuerySession is the query-time surface shared by the single-shard session
// (nbindex.Session, used when the set has one shard) and the multi-shard
// coordinator session. Engines program against this interface so the shard
// count never leaks into the query API.
type QuerySession interface {
	TopK(theta float64, k int) (*core.Result, error)
	TopKContext(ctx context.Context, theta float64, k int) (*core.Result, error)
	SweepTheta(k int, extra ...float64) ([]nbindex.ThetaPoint, error)
	SweepThetaContext(ctx context.Context, k int, extra ...float64) ([]nbindex.ThetaPoint, error)
	LastStats() nbindex.QueryStats
	RelevantCount() int
	PiHatBytes() int64
}

// NewSession runs the initialization phase for relevance function q. See
// NewSessionContext.
func (s *Set) NewSession(q core.Relevance) (QuerySession, error) {
	return s.NewSessionContext(context.Background(), q)
}

// NewSessionContext runs the initialization phase for relevance function q:
// one global π̂ row per relevant graph, assembled by scanning every shard's
// vantage ordering with the graph's shared-VP coordinates. With one shard it
// returns the plain nbindex session (identical behavior and stats to the
// unsharded engine); with more it returns the scatter-gather coordinator.
func (s *Set) NewSessionContext(ctx context.Context, q core.Relevance) (QuerySession, error) {
	// A database opened from a GRDB001 container defers its content
	// validation to first use; settle it before any session traverses graph
	// structure. Repeat sessions hit the cached verdict.
	if err := s.db.EnsureValid(); err != nil {
		return nil, fmt.Errorf("shard: graph store: %w", err)
	}
	if len(s.parts) == 1 {
		return s.parts[0].NewSessionContext(ctx, q)
	}
	return newCoordSession(ctx, s, q)
}

// coordSession is the coordinator's initialization state for one relevance
// function: the global π̂ row of every relevant graph, stored at the graph's
// leaf in its home shard's tree. After initialization it is read-only apart
// from the mutex-guarded LastStats bookkeeping, so concurrent TopK calls are
// safe, exactly like nbindex.Session.
type coordSession struct {
	set  *Set
	grid []float64
	rel  []graph.ID
	// relPos maps a database ID to its position in rel, or −1.
	relPos []int
	// piHat[p][leafNodeIdx] is the GLOBAL π̂ row (summed across shards) of
	// the leaf's graph in shard p's tree; nil rows for irrelevant leaves.
	piHat     [][][]int32
	statsMu   sync.Mutex
	lastStats nbindex.QueryStats // guarded by statsMu
}

func newCoordSession(ctx context.Context, set *Set, q core.Relevance) (*coordSession, error) {
	// Parts loaded from a mapped v4 container defer their content
	// validation to first use; settle it for every shard before any
	// navigation below. Repeat sessions hit the cached verdict.
	for p, part := range set.parts {
		if err := part.EnsureValid(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", p, err)
		}
	}
	s := &coordSession{set: set, grid: set.grid}
	s.rel = core.Relevant(set.db, q)
	s.relPos = make([]int, set.db.Len())
	for i := range s.relPos {
		s.relPos[i] = -1
	}
	for i, id := range s.rel {
		s.relPos[id] = i
	}
	s.piHat = make([][][]int32, len(set.parts))
	for p, part := range set.parts {
		s.piHat[p] = make([][]int32, part.Flat().Len())
	}
	// Global π̂ rows: one coordinate row per relevant graph, scanned against
	// every shard. Each shard scan covers a disjoint ID range, so the summed
	// row equals the unsharded single-scan row exactly (same candidates, same
	// vantage lower bounds, hence the same grid slots). Rows are independent
	// and each lands in its own piHat slot, so the scans run on the worker
	// pool without affecting the result.
	if len(s.grid) > 0 && len(s.rel) > 0 {
		thetaMax := s.grid[len(s.grid)-1]
		isRel := func(id graph.ID) bool { return s.relPos[id] >= 0 }
		err := pool.Ranges(ctx, len(s.rel), set.workers, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				id := s.rel[i]
				home := set.PartFor(id)
				coords := set.parts[home].VO().Coords(id)
				row := make([]int32, len(s.grid))
				for _, part := range set.parts {
					for _, c := range part.VO().CandidatesWithLBCoords(coords, thetaMax, isRel) {
						slot := sort.SearchFloat64s(s.grid, c.LB)
						for t := slot; t < len(s.grid); t++ {
							row[t]++
						}
					}
				}
				s.piHat[home][set.parts[home].LeafIdx(id)] = row
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// RelevantCount returns |L_q| for the session.
func (s *coordSession) RelevantCount() int { return len(s.rel) }

// LastStats returns statistics from the most recently completed TopK call.
func (s *coordSession) LastStats() nbindex.QueryStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.lastStats
}

// PiHatBytes reports the memory consumed by the π̂ rows.
func (s *coordSession) PiHatBytes() int64 {
	var b int64
	for _, rows := range s.piHat {
		for _, row := range rows {
			b += int64(len(row)) * 4
		}
	}
	return b
}

// TopK runs the scatter-gather greedy at threshold theta with budget k. See
// TopKContext.
func (s *coordSession) TopK(theta float64, k int) (*core.Result, error) {
	return s.TopKContext(context.Background(), theta, k)
}

// TopKContext runs the search-and-update phase across every shard tree. Each
// greedy pick advances the per-shard frontiers in parallel on the worker
// pool — every shard enumerates its positive-bound candidate leaves from its
// own tree, independently of the others — then merges them into one list
// ordered by (bound desc, shard, node) and verifies serially down that list.
// A candidate's upper bound comes from its global π̂ row (the sum of
// shard-local π̂ bounds) and its exact marginal gain sums shard-local
// coverage contributions — each shard computes N_θ(g) ∩ shard with its own
// vantage ordering, and those read-only scans also run on the pool. Bounds
// are admissible and every candidate whose bound reaches the best verified
// gain is verified, so the pick is the exact greedy argmax with ties toward
// the lower graph ID — the same answer as the unsharded engine, for any
// shard count and any worker count (the threshold tests that consult mutable
// metric state stay serial in list order, so QueryStats are
// worker-independent too). Cancellation mirrors nbindex: checked on entry,
// at every greedy pick, before every verification, and inside every pool
// fan-out.
func (s *coordSession) TopKContext(ctx context.Context, theta float64, k int) (*core.Result, error) {
	if math.IsNaN(theta) {
		return nil, fmt.Errorf("shard: theta is NaN")
	}
	if theta < 0 {
		return nil, fmt.Errorf("shard: negative theta %v", theta)
	}
	if k <= 0 {
		return nil, fmt.Errorf("shard: non-positive k %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parts := s.set.parts
	res := &core.Result{Relevant: len(s.rel)}
	var st nbindex.QueryStats
	finish := func() {
		s.statsMu.Lock()
		s.lastStats = st
		s.statsMu.Unlock()
		s.set.tel.Load().Observe(st)
	}
	if len(s.rel) == 0 {
		finish()
		return res, nil
	}

	// Per-shard bound state at this θ, mirroring nbindex.Session.TopKContext:
	// leaf bounds come from the smallest session-grid threshold ≥ θ, F is the
	// per-subtree running maximum, sub holds the permanent credit
	// subtractions. Only the containing tree differs per shard.
	slot := sort.SearchFloat64s(s.grid, theta)
	leafBound := func(p, idx int) int32 {
		row := s.piHat[p][idx]
		if row == nil {
			return -1 // irrelevant leaf: never selectable
		}
		if slot >= len(row) {
			return int32(len(s.rel)) // θ beyond the grid: trivial bound
		}
		return row[slot]
	}
	flats := make([]*nbtree.Flat, len(parts))
	sub := make([][]int32, len(parts))
	F := make([][]int32, len(parts))
	for p, part := range parts {
		flats[p] = part.Flat()
	}
	// Each shard's bound arrays are filled independently from its own tree,
	// so the fills run on the worker pool; every iteration writes only its
	// own slots, keeping the arrays identical for any worker count.
	if err := pool.Ranges(ctx, len(parts), s.set.workers, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			f := flats[p]
			sub[p] = make([]int32, f.Len())
			F[p] = make([]int32, f.Len())
			for i := int32(f.Len() - 1); i >= 0; i-- {
				if f.Leaf(i) {
					F[p][i] = leafBound(p, int(i))
					continue
				}
				best := int32(-1)
				for c := f.FirstChild[i]; c != -1; c = f.NextSibling[c] {
					if F[p][c] > best {
						best = F[p][c]
					}
				}
				F[p][i] = best
			}
		}
	}); err != nil {
		return nil, err
	}

	covered := bitset.New(len(s.rel))
	inAnswer := make([]bool, len(s.rel))
	includeUncovered := func(id graph.ID) bool {
		pos := s.relPos[id]
		return pos >= 0 && !covered.Contains(pos)
	}

	// applyCredit records that relevant graph id became covered: one credit
	// at its highest diameter ≤ θ ancestor in its HOME shard's tree (credits
	// never cross shards — bounds in other shards merely stay looser, which
	// is sound).
	applyCredit := func(id graph.ID) {
		p := s.set.PartFor(id)
		f := flats[p]
		a := int32(parts[p].LeafIdx(id))
		for q := f.Parents[a]; q != -1 && f.Diameters[q] <= theta; q = f.Parents[q] {
			a = q
		}
		sub[p][a]++
		for n := a; n != -1; n = f.Parents[n] {
			var best int32
			if f.Leaf(n) {
				best = leafBound(p, int(n))
			} else {
				best = -1
				for c := f.FirstChild[n]; c != -1; c = f.NextSibling[c] {
					if F[p][c] > best {
						best = F[p][c]
					}
				}
			}
			nf := best - sub[p][n]
			if nf == F[p][n] && n != a {
				break // no change propagates further
			}
			F[p][n] = nf
		}
	}

	// collect runs the read-only half of one candidate's verification: g's
	// shared-VP coordinates scanned against every shard's vantage ordering.
	// It touches no stats and no metric state, so any number of collects may
	// run concurrently during a pick (covered and inAnswer are frozen between
	// picks — credits apply only after a pick completes).
	collect := func(g graph.ID) [][]graph.ID {
		coords := parts[s.set.PartFor(g)].VO().Coords(g)
		lists := make([][]graph.ID, len(parts))
		for p, part := range parts {
			lists[p] = part.VO().CandidatesCoords(coords, theta, includeUncovered)
		}
		return lists
	}
	for len(res.Answer) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Advance every shard's frontier on the worker pool: a DFS over the
		// shard's positive-bound subtree collects its candidate leaves, with
		// the ancestor credit subtractions accumulated on the way down (no
		// per-node ancestor walks). Bounds are frozen during a pick — credits
		// apply only after it completes — so each shard's frontier is
		// independent of the others and of the worker count; only wall time
		// changes. The traversal visit counts land in PQPops, the coordinator's
		// frontier-work measure.
		perShard := make([][]frontierCand, len(parts))
		visits := make([]int, len(parts))
		if err := pool.Ranges(ctx, len(parts), s.set.workers, 1, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				f := flats[p]
				if F[p][0] <= 0 {
					continue
				}
				stack := []frontierFrame{{node: 0, acc: 0}}
				for len(stack) > 0 {
					fr := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					visits[p]++
					if f.Leaf(fr.node) {
						perShard[p] = append(perShard[p], frontierCand{
							bound: F[p][fr.node] - fr.acc,
							node:  fr.node,
							cent:  f.Centroids[fr.node],
						})
						continue
					}
					acc := fr.acc + sub[p][fr.node]
					for c := f.FirstChild[fr.node]; c != -1; c = f.NextSibling[c] {
						if F[p][c]-acc > 0 {
							stack = append(stack, frontierFrame{node: c, acc: acc})
						}
					}
				}
			}
		}); err != nil {
			return nil, err
		}
		// Merge serially into one list ordered by (bound desc, shard, node) —
		// the same total order the coordinator heap used to pop leaves in.
		var list []frontierCand
		for p, cs := range perShard {
			st.PQPops += visits[p]
			for _, c := range cs {
				c.part = int32(p)
				list = append(list, c)
			}
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].bound != list[j].bound {
				return list[i].bound > list[j].bound
			}
			if list[i].part != list[j].part {
				return list[i].part < list[j].part
			}
			return list[i].node < list[j].node
		})

		best, bestGain := graph.ID(-1), int32(0)
		var bestNbrs []int // relevant positions newly covered by best
		// Walk the merged frontier in bound order. Candidates whose bound
		// reaches the best verified gain are verified exactly; bounds equal to
		// the best gain are still explored so that ties resolve toward the
		// lowest graph ID, matching the unsharded search and the baseline
		// greedy. After the first verification pins a gain, the remaining
		// still-qualifying candidates' scans are prefetched in one parallel
		// scatter — the scans are pure reads (see collect), while the
		// threshold tests below stay serial in list order: metric.Decide's
		// pruned-vs-exact outcome depends on the distance cache's evolving
		// state, so a fixed decision order keeps QueryStats identical for any
		// worker count.
		collected := make([][][]graph.ID, len(list))
		prefetched := false
		for i, c := range list {
			if c.bound < bestGain {
				break
			}
			pos := s.relPos[c.cent]
			if pos < 0 || inAnswer[pos] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if collected[i] == nil {
				collected[i] = collect(c.cent)
			}
			st.VerifiedLeaves++
			var nbrs []int
			for _, ids := range collected[i] {
				for _, id := range ids {
					st.CandidateScans++
					if id != c.cent {
						leq, pruned := metric.Decide(s.set.m, c.cent, id, theta)
						if pruned {
							st.PrunedDistances++
						} else {
							st.ExactDistances++
						}
						if !leq {
							continue
						}
					}
					nbrs = append(nbrs, s.relPos[id])
				}
			}
			gain := int32(len(nbrs))
			if gain > bestGain || (gain == bestGain && gain > 0 && c.cent < best) {
				best, bestGain, bestNbrs = c.cent, gain, nbrs
			}
			// Prefetch is speculative: candidates the rising best gain later
			// disqualifies have their scans wasted. With parallel workers the
			// waste is hidden wall-clock (the scans overlap); on one worker it
			// is pure extra serial work, so collect on demand instead. Either
			// way CandidateScans counts only consumed lists, so QueryStats are
			// identical for any worker count.
			if !prefetched && pool.Resolve(s.set.workers) > 1 {
				prefetched = true
				var todo []int
				for j := i + 1; j < len(list); j++ {
					if list[j].bound < bestGain {
						break
					}
					if p := s.relPos[list[j].cent]; p < 0 || inAnswer[p] {
						continue
					}
					todo = append(todo, j)
				}
				if err := pool.Ranges(ctx, len(todo), s.set.workers, 1, func(lo, hi int) {
					for t := lo; t < hi; t++ {
						collected[todo[t]] = collect(list[todo[t]].cent)
					}
				}); err != nil {
					return nil, err
				}
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		inAnswer[s.relPos[best]] = true
		res.Answer = append(res.Answer, best)
		res.Gains = append(res.Gains, int(bestGain))
		for _, pos := range bestNbrs {
			covered.Add(pos)
			applyCredit(s.rel[pos])
		}
	}
	res.Covered = covered.Count()
	res.Power = float64(res.Covered) / float64(res.Relevant)
	finish()
	return res, nil
}

// SweepTheta answers the query at every indexed threshold (plus extras). See
// SweepThetaContext.
func (s *coordSession) SweepTheta(k int, extra ...float64) ([]nbindex.ThetaPoint, error) {
	return s.SweepThetaContext(context.Background(), k, extra...)
}

// SweepThetaContext mirrors nbindex's sweep over the coordinator: the shared
// grid plus any extra thresholds, deduplicated ascending, one TopKContext
// each.
func (s *coordSession) SweepThetaContext(ctx context.Context, k int, extra ...float64) ([]nbindex.ThetaPoint, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: non-positive k %d", k)
	}
	thetas := append(append([]float64(nil), s.grid...), extra...)
	sort.Float64s(thetas)
	out := thetas[:0]
	for i, t := range thetas {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	thetas = out
	points := make([]nbindex.ThetaPoint, 0, len(thetas))
	for _, theta := range thetas {
		if theta < 0 {
			return nil, fmt.Errorf("shard: negative theta %v in sweep", theta)
		}
		res, err := s.TopKContext(ctx, theta, k)
		if err != nil {
			return nil, err
		}
		points = append(points, nbindex.ThetaPoint{
			Theta:      theta,
			Power:      res.Power,
			CR:         res.CompressionRatio(),
			AnswerSize: len(res.Answer),
		})
	}
	return points, nil
}

// frontierFrame is one DFS frame of a shard's frontier advance: a tree node
// (flat index) with the credit subtractions accumulated from its ancestors,
// so the node's current bound is F[node] − acc without an ancestor walk.
type frontierFrame struct {
	node int32
	acc  int32
}

// frontierCand is one candidate leaf a shard's frontier produced: its current
// gain upper bound and identity. The coordinator merges the per-shard lists
// by (bound desc, part, node) — the same total order the best-first pop
// sequence follows — so the serial verification walk is deterministic for
// any worker count.
type frontierCand struct {
	bound int32
	part  int32
	node  int32
	cent  graph.ID
}
