package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"graphrep/internal/bitset"
	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbindex"
	"graphrep/internal/nbtree"
	"graphrep/internal/pool"
)

// QuerySession is the query-time surface shared by the single-shard session
// (nbindex.Session, used when the set has one shard) and the multi-shard
// coordinator session. Engines program against this interface so the shard
// count never leaks into the query API.
type QuerySession interface {
	TopK(theta float64, k int) (*core.Result, error)
	TopKContext(ctx context.Context, theta float64, k int) (*core.Result, error)
	SweepTheta(k int, extra ...float64) ([]nbindex.ThetaPoint, error)
	SweepThetaContext(ctx context.Context, k int, extra ...float64) ([]nbindex.ThetaPoint, error)
	LastStats() nbindex.QueryStats
	RelevantCount() int
	PiHatBytes() int64
}

// NewSession runs the initialization phase for relevance function q. See
// NewSessionContext.
func (s *Set) NewSession(q core.Relevance) (QuerySession, error) {
	return s.NewSessionContext(context.Background(), q)
}

// NewSessionContext runs the initialization phase for relevance function q:
// one global π̂ row per relevant graph, assembled by scanning every shard's
// vantage ordering with the graph's shared-VP coordinates. With one shard it
// returns the plain nbindex session (identical behavior and stats to the
// unsharded engine); with more it returns the scatter-gather coordinator.
func (s *Set) NewSessionContext(ctx context.Context, q core.Relevance) (QuerySession, error) {
	if len(s.parts) == 1 {
		return s.parts[0].NewSessionContext(ctx, q)
	}
	return newCoordSession(ctx, s, q)
}

// coordSession is the coordinator's initialization state for one relevance
// function: the global π̂ row of every relevant graph, stored at the graph's
// leaf in its home shard's tree. After initialization it is read-only apart
// from the mutex-guarded LastStats bookkeeping, so concurrent TopK calls are
// safe, exactly like nbindex.Session.
type coordSession struct {
	set  *Set
	grid []float64
	rel  []graph.ID
	// relPos maps a database ID to its position in rel, or −1.
	relPos []int
	// piHat[p][leafNodeIdx] is the GLOBAL π̂ row (summed across shards) of
	// the leaf's graph in shard p's tree; nil rows for irrelevant leaves.
	piHat     [][][]int32
	statsMu   sync.Mutex
	lastStats nbindex.QueryStats // guarded by statsMu
}

func newCoordSession(ctx context.Context, set *Set, q core.Relevance) (*coordSession, error) {
	// Parts loaded from a mapped v4 container defer their content
	// validation to first use; settle it for every shard before any
	// navigation below. Repeat sessions hit the cached verdict.
	for p, part := range set.parts {
		if err := part.EnsureValid(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", p, err)
		}
	}
	s := &coordSession{set: set, grid: set.grid}
	s.rel = core.Relevant(set.db, q)
	s.relPos = make([]int, set.db.Len())
	for i := range s.relPos {
		s.relPos[i] = -1
	}
	for i, id := range s.rel {
		s.relPos[id] = i
	}
	s.piHat = make([][][]int32, len(set.parts))
	for p, part := range set.parts {
		s.piHat[p] = make([][]int32, part.Flat().Len())
	}
	// Global π̂ rows: one coordinate row per relevant graph, scanned against
	// every shard. Each shard scan covers a disjoint ID range, so the summed
	// row equals the unsharded single-scan row exactly (same candidates, same
	// vantage lower bounds, hence the same grid slots). Rows are independent
	// and each lands in its own piHat slot, so the scans run on the worker
	// pool without affecting the result.
	if len(s.grid) > 0 && len(s.rel) > 0 {
		thetaMax := s.grid[len(s.grid)-1]
		isRel := func(id graph.ID) bool { return s.relPos[id] >= 0 }
		err := pool.Ranges(ctx, len(s.rel), set.workers, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				id := s.rel[i]
				home := set.PartFor(id)
				coords := set.parts[home].VO().Coords(id)
				row := make([]int32, len(s.grid))
				for _, part := range set.parts {
					for _, c := range part.VO().CandidatesWithLBCoords(coords, thetaMax, isRel) {
						slot := sort.SearchFloat64s(s.grid, c.LB)
						for t := slot; t < len(s.grid); t++ {
							row[t]++
						}
					}
				}
				s.piHat[home][set.parts[home].LeafIdx(id)] = row
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// RelevantCount returns |L_q| for the session.
func (s *coordSession) RelevantCount() int { return len(s.rel) }

// LastStats returns statistics from the most recently completed TopK call.
func (s *coordSession) LastStats() nbindex.QueryStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.lastStats
}

// PiHatBytes reports the memory consumed by the π̂ rows.
func (s *coordSession) PiHatBytes() int64 {
	var b int64
	for _, rows := range s.piHat {
		for _, row := range rows {
			b += int64(len(row)) * 4
		}
	}
	return b
}

// TopK runs the scatter-gather greedy at threshold theta with budget k. See
// TopKContext.
func (s *coordSession) TopK(theta float64, k int) (*core.Result, error) {
	return s.TopKContext(context.Background(), theta, k)
}

// TopKContext runs the search-and-update phase across every shard tree: one
// best-first search over the merged forest, where a candidate's upper bound
// comes from its global π̂ row (the sum of shard-local π̂ bounds) and its
// exact marginal gain sums shard-local coverage contributions — each shard
// computes N_θ(g) ∩ shard with its own vantage ordering. Bounds are
// admissible and every candidate whose bound reaches the best verified gain
// is verified, so the pick is the exact greedy argmax with ties toward the
// lower graph ID — the same answer as the unsharded engine, for any shard
// count. Cancellation mirrors nbindex: checked on entry, at every greedy
// pick, and periodically inside the search.
func (s *coordSession) TopKContext(ctx context.Context, theta float64, k int) (*core.Result, error) {
	if math.IsNaN(theta) {
		return nil, fmt.Errorf("shard: theta is NaN")
	}
	if theta < 0 {
		return nil, fmt.Errorf("shard: negative theta %v", theta)
	}
	if k <= 0 {
		return nil, fmt.Errorf("shard: non-positive k %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parts := s.set.parts
	res := &core.Result{Relevant: len(s.rel)}
	var st nbindex.QueryStats
	finish := func() {
		s.statsMu.Lock()
		s.lastStats = st
		s.statsMu.Unlock()
		s.set.tel.Load().Observe(st)
	}
	if len(s.rel) == 0 {
		finish()
		return res, nil
	}

	// Per-shard bound state at this θ, mirroring nbindex.Session.TopKContext:
	// leaf bounds come from the smallest session-grid threshold ≥ θ, F is the
	// per-subtree running maximum, sub holds the permanent credit
	// subtractions. Only the containing tree differs per shard.
	slot := sort.SearchFloat64s(s.grid, theta)
	leafBound := func(p, idx int) int32 {
		row := s.piHat[p][idx]
		if row == nil {
			return -1 // irrelevant leaf: never selectable
		}
		if slot >= len(row) {
			return int32(len(s.rel)) // θ beyond the grid: trivial bound
		}
		return row[slot]
	}
	flats := make([]*nbtree.Flat, len(parts))
	sub := make([][]int32, len(parts))
	F := make([][]int32, len(parts))
	for p, part := range parts {
		f := part.Flat()
		flats[p] = f
		sub[p] = make([]int32, f.Len())
		F[p] = make([]int32, f.Len())
		for i := int32(f.Len() - 1); i >= 0; i-- {
			if f.Leaf(i) {
				F[p][i] = leafBound(p, int(i))
				continue
			}
			best := int32(-1)
			for c := f.FirstChild[i]; c != -1; c = f.NextSibling[c] {
				if F[p][c] > best {
					best = F[p][c]
				}
			}
			F[p][i] = best
		}
	}
	subAbove := func(p int, n int32) int32 {
		var t int32
		for q := flats[p].Parents[n]; q != -1; q = flats[p].Parents[q] {
			t += sub[p][q]
		}
		return t
	}
	currentBound := func(p int, n int32) int32 { return F[p][n] - subAbove(p, n) }

	covered := bitset.New(len(s.rel))
	inAnswer := make([]bool, len(s.rel))
	includeUncovered := func(id graph.ID) bool {
		pos := s.relPos[id]
		return pos >= 0 && !covered.Contains(pos)
	}

	// applyCredit records that relevant graph id became covered: one credit
	// at its highest diameter ≤ θ ancestor in its HOME shard's tree (credits
	// never cross shards — bounds in other shards merely stay looser, which
	// is sound).
	applyCredit := func(id graph.ID) {
		p := s.set.PartFor(id)
		f := flats[p]
		a := int32(parts[p].LeafIdx(id))
		for q := f.Parents[a]; q != -1 && f.Diameters[q] <= theta; q = f.Parents[q] {
			a = q
		}
		sub[p][a]++
		for n := a; n != -1; n = f.Parents[n] {
			var best int32
			if f.Leaf(n) {
				best = leafBound(p, int(n))
			} else {
				best = -1
				for c := f.FirstChild[n]; c != -1; c = f.NextSibling[c] {
					if F[p][c] > best {
						best = F[p][c]
					}
				}
			}
			nf := best - sub[p][n]
			if nf == F[p][n] && n != a {
				break // no change propagates further
			}
			F[p][n] = nf
		}
	}

	for len(res.Answer) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best, bestGain := graph.ID(-1), int32(0)
		var bestNbrs []int // relevant positions newly covered by best
		pq := &coordHeap{}
		for p := range parts {
			if b := currentBound(p, 0); b > 0 {
				pq.push(coordEntry{bound: b, part: p, node: 0})
			}
		}
		for len(*pq) > 0 {
			e := pq.pop()
			st.PQPops++
			if st.PQPops&255 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			// Bounds equal to the best gain are still explored so that ties
			// resolve toward the lowest graph ID, matching the unsharded
			// search and the baseline greedy.
			if e.bound < bestGain {
				break
			}
			// Lazy re-evaluation: credits may have shrunk the bound since
			// insertion.
			if cur := currentBound(e.part, e.node); cur < e.bound {
				if cur >= bestGain && cur > 0 {
					pq.push(coordEntry{bound: cur, part: e.part, node: e.node})
				}
				continue
			}
			f := flats[e.part]
			if f.Leaf(e.node) {
				cent := f.Centroids[e.node]
				pos := s.relPos[cent]
				if pos < 0 || inAnswer[pos] {
					continue
				}
				gain, nbrs := s.verify(cent, theta, includeUncovered, &st)
				if gain > bestGain || (gain == bestGain && gain > 0 && cent < best) {
					best, bestGain, bestNbrs = cent, gain, nbrs
				}
				continue
			}
			for c := f.FirstChild[e.node]; c != -1; c = f.NextSibling[c] {
				if b := currentBound(e.part, c); b > 0 && b >= bestGain {
					pq.push(coordEntry{bound: b, part: e.part, node: c})
				}
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		inAnswer[s.relPos[best]] = true
		res.Answer = append(res.Answer, best)
		res.Gains = append(res.Gains, int(bestGain))
		for _, pos := range bestNbrs {
			covered.Add(pos)
			applyCredit(s.rel[pos])
		}
	}
	res.Covered = covered.Count()
	res.Power = float64(res.Covered) / float64(res.Relevant)
	finish()
	return res, nil
}

// verify computes the exact marginal gain of graph g at threshold theta by
// scatter-gathering: every shard is scanned with g's shared-VP coordinates
// for candidates among its own uncovered relevant graphs, then threshold
// tests (metric.Decide — the bounded kernel when the metric supports it)
// settle each. The union of shard candidate sets equals the unsharded
// candidate set, so the gain — and the per-verify work counters — match the
// unsharded engine exactly.
func (s *coordSession) verify(g graph.ID, theta float64, include func(graph.ID) bool, st *nbindex.QueryStats) (int32, []int) {
	st.VerifiedLeaves++
	coords := s.set.parts[s.set.PartFor(g)].VO().Coords(g)
	var nbrs []int
	for _, part := range s.set.parts {
		for _, id := range part.VO().CandidatesCoords(coords, theta, include) {
			st.CandidateScans++
			if id != g {
				leq, pruned := metric.Decide(s.set.m, g, id, theta)
				if pruned {
					st.PrunedDistances++
				} else {
					st.ExactDistances++
				}
				if !leq {
					continue
				}
			}
			nbrs = append(nbrs, s.relPos[id])
		}
	}
	return int32(len(nbrs)), nbrs
}

// SweepTheta answers the query at every indexed threshold (plus extras). See
// SweepThetaContext.
func (s *coordSession) SweepTheta(k int, extra ...float64) ([]nbindex.ThetaPoint, error) {
	return s.SweepThetaContext(context.Background(), k, extra...)
}

// SweepThetaContext mirrors nbindex's sweep over the coordinator: the shared
// grid plus any extra thresholds, deduplicated ascending, one TopKContext
// each.
func (s *coordSession) SweepThetaContext(ctx context.Context, k int, extra ...float64) ([]nbindex.ThetaPoint, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: non-positive k %d", k)
	}
	thetas := append(append([]float64(nil), s.grid...), extra...)
	sort.Float64s(thetas)
	out := thetas[:0]
	for i, t := range thetas {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	thetas = out
	points := make([]nbindex.ThetaPoint, 0, len(thetas))
	for _, theta := range thetas {
		if theta < 0 {
			return nil, fmt.Errorf("shard: negative theta %v in sweep", theta)
		}
		res, err := s.TopKContext(ctx, theta, k)
		if err != nil {
			return nil, err
		}
		points = append(points, nbindex.ThetaPoint{
			Theta:      theta,
			Power:      res.Power,
			CR:         res.CompressionRatio(),
			AnswerSize: len(res.Answer),
		})
	}
	return points, nil
}

// coordEntry is a PQ element: one shard tree's node (flat index) with its
// gain upper bound.
type coordEntry struct {
	bound int32
	part  int
	node  int32
}

// coordHeap is a typed max-heap on bound; ties order by (shard, node index)
// so the search trace is deterministic for any worker count. Entries are
// stored by value — no container/heap, no interface boxing, no per-push
// allocation. (bound, part, node) keys are unique at any instant (a node is
// re-pushed only after its stale entry is popped), so the pop order is a
// strict total order independent of the heap implementation.
type coordHeap []coordEntry

func (h coordHeap) less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	if h[i].part != h[j].part {
		return h[i].part < h[j].part
	}
	return h[i].node < h[j].node
}

// push inserts e and sifts it up.
func (h *coordHeap) push(e coordEntry) {
	*h = append(*h, e)
	a := *h
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

// pop removes and returns the top entry.
func (h *coordHeap) pop() coordEntry {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	*h = a
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && a.less(r, c) {
			c = r
		}
		if !a.less(c, i) {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	return top
}
