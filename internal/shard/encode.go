package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbindex"
)

// Legacy serialization layouts. The current format is v4 (NBIDX004, the
// zero-copy flat container — see v4.go); this file keeps the three gob
// generations loading and the v3 writer available for interop. v3 files
// (NBIDX003, sharded + embeddings) carry the magic, the shared θ grid, the
// shard count, then one section per shard — its declared [base, base+count)
// range, the vantage ordering and NB-Tree snapshots, and the shard's
// filter-embedding vectors. v2 files (NBIDX002) are sharded but lack the
// embedding sections; v1 files (NBIDX001, the pre-shard single-index
// layout) load as one shard. Both pre-embedding compat paths recompute the
// embeddings from the database — they are a pure function of the graphs —
// so every generation answers queries identically to a fresh save.

var setMagic = [8]byte{'N', 'B', 'I', 'D', 'X', '0', '0', '3'}
var v2Magic = [8]byte{'N', 'B', 'I', 'D', 'X', '0', '0', '2'}
var v1Magic = [8]byte{'N', 'B', 'I', 'D', 'X', '0', '0', '1'}

// Encode persists the set in the current default layout — v4, the zero-copy
// container (see v4.go). Like every writer here, output bytes are a pure
// function of the set's contents, identical for any build worker count and
// for either bounded-kernel setting.
func (s *Set) Encode(w io.Writer) error {
	return s.EncodeV4(w)
}

// EncodeV3 persists the set in the legacy v3 sharded gob layout. Output
// bytes are a pure function of the set's contents — shard sections are
// written in shard order, and embeddings depend only on the graphs — so they
// are identical for any build worker count and for either bounded-kernel
// setting. Kept (alongside the v1/v2/v3 readers) so older tooling can still
// consume new indexes; new saves should use Encode.
func (s *Set) EncodeV3(w io.Writer) error {
	if _, err := w.Write(setMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(s.grid))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, s.grid); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(s.parts))); err != nil {
		return err
	}
	for _, part := range s.parts {
		if err := binary.Write(w, binary.LittleEndian, int64(part.Base())); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, int64(part.Count())); err != nil {
			return err
		}
		if err := part.EncodePart(w); err != nil {
			return err
		}
		if err := part.EncodeEmbeddings(w); err != nil {
			return err
		}
	}
	return nil
}

// Read loads a set written by Encode (v3), by the pre-embedding sharded
// Encode (v2), or by the pre-shard single-index Encode (v1, loaded as one
// shard) with no cancellation. See ReadContext.
func Read(r io.Reader, db *graph.Database, m metric.Metric) (*Set, error) {
	return ReadContext(context.Background(), r, db, m)
}

// ReadContext loads a persisted set, reattaching it to the database and
// metric it was built over. Cancellation is observed at every shard-section
// boundary — a cancelled load returns ctx.Err() with no set — which is what
// makes OpenWithIndexContext abortable between shard loads.
func ReadContext(ctx context.Context, r io.Reader, db *graph.Database, m metric.Metric) (*Set, error) {
	// Buffer the stream once so every gob section below decodes exactly (an
	// io.ByteReader keeps encoding/gob from adding its own read-ahead buffer
	// and consuming the next section's bytes).
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("shard: read header: %w", err)
	}
	if magic == v4Magic {
		// v4 is an offset-tabled byte layout, not a stream: slurp the rest
		// and parse in place. Callers with a mapping (or the whole file
		// already in memory) should use ReadBytesContext directly and skip
		// this copy.
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("shard: read v4 body: %w", err)
		}
		return ReadBytesContext(ctx, append(magic[:], rest...), db, m)
	}
	if magic == v1Magic {
		// v1: a single full-database index. nbindex.Read expects the magic
		// it knows, so hand the consumed bytes back.
		ix, err := nbindex.Read(io.MultiReader(bytes.NewReader(magic[:]), r), db, m)
		if err != nil {
			return nil, err
		}
		return &Set{db: db, m: m, grid: ix.Grid(), parts: []*nbindex.Index{ix}}, nil
	}
	withEmbeddings := magic == setMagic
	if !withEmbeddings && magic != v2Magic {
		return nil, fmt.Errorf("shard: bad magic %q", magic[:])
	}
	var gridLen int64
	if err := binary.Read(r, binary.LittleEndian, &gridLen); err != nil {
		return nil, fmt.Errorf("shard: read grid length: %w", err)
	}
	if gridLen <= 0 || gridLen > 1<<20 {
		return nil, fmt.Errorf("shard: implausible grid length %d", gridLen)
	}
	grid := make([]float64, gridLen)
	if err := binary.Read(r, binary.LittleEndian, grid); err != nil {
		return nil, fmt.Errorf("shard: read grid: %w", err)
	}
	var shardCount int64
	if err := binary.Read(r, binary.LittleEndian, &shardCount); err != nil {
		return nil, fmt.Errorf("shard: read shard count: %w", err)
	}
	if shardCount <= 0 || shardCount > int64(db.Len()) {
		return nil, fmt.Errorf("shard: implausible shard count %d for %d graphs", shardCount, db.Len())
	}
	s := &Set{db: db, m: m, grid: grid, parts: make([]*nbindex.Index, shardCount)}
	next := graph.ID(0)
	for p := range s.parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var base, count int64
		if err := binary.Read(r, binary.LittleEndian, &base); err != nil {
			return nil, fmt.Errorf("shard: read shard %d header: %w", p, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("shard: read shard %d header: %w", p, err)
		}
		if graph.ID(base) != next || count <= 0 {
			return nil, fmt.Errorf("shard: shard %d declares [%d, %d), want contiguous from %d", p, base, base+count, next)
		}
		part, err := nbindex.ReadPart(r, db, m, grid, graph.ID(base), int(count))
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", p, err)
		}
		if withEmbeddings {
			if err := part.DecodeEmbeddings(r); err != nil {
				return nil, fmt.Errorf("shard: shard %d: %w", p, err)
			}
		} else if err := part.ComputeEmbeddings(ctx, 0); err != nil {
			// v2 compat: the file carries no embedding sections; rebuild the
			// vectors from the database.
			return nil, fmt.Errorf("shard: shard %d: %w", p, err)
		}
		s.parts[p] = part
		next += graph.ID(count)
	}
	if int(next) != db.Len() {
		return nil, fmt.Errorf("shard: set covers %d graphs, database has %d", next, db.Len())
	}
	return s, nil
}
