// Package shard partitions a graph database into contiguous ID ranges, each
// owning its own NB-Index part (vantage rows + NB-Tree), and coordinates
// top-k representative queries across them. A shard is just a top-level
// cluster: the paper's bound machinery (π̂-vectors, Theorems 6–8) composes
// across disjoint partitions, so sharding preserves exactness while
// unlocking parallel builds and fine-grained write locking.
//
// # Determinism contract
//
// Every shard shares one global vantage point set and one global θ grid,
// both drawn from the build RNG exactly as the unsharded build draws them.
// A graph's embedding coordinates (its distances to the global VPs) are
// therefore valid against any shard's sorted views, so cross-shard candidate
// scans cost zero extra distance computations and the union of per-shard
// candidate sets equals the unsharded candidate set exactly. π̂ rows summed
// across shards equal the unsharded rows, bounds stay admissible, and the
// coordinator's best-first search verifies every candidate whose bound
// reaches the best verified gain — so answers are byte-identical to the
// unsharded engine for any shard count (per-query work counters do vary
// with the shard count, since each count's forest has its own shape).
// With one shard the build passes the global RNG straight through and
// produces bit-identical index bytes to the pre-shard engine.
package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbindex"
	"graphrep/internal/pool"
	"graphrep/internal/vantage"
)

// Options configures a sharded build.
type Options struct {
	// Shards is the number of contiguous ID-range partitions; values ≤ 1
	// mean one shard (the unsharded layout), and counts beyond the database
	// size are clamped so no shard is empty.
	Shards int
	// NumVPs is the size of the global vantage point set (shared by every
	// shard).
	NumVPs int
	// VPPolicy selects the vantage point policy (default SelectRandom).
	VPPolicy vantage.SelectionPolicy
	// Branching is the per-shard NB-Tree fan-out (≥ 2; 0 defaults to 4).
	Branching int
	// ThetaGrid lists the thresholds indexed in π̂-vectors, ascending; one
	// global grid serves every shard.
	ThetaGrid []float64
	// Workers bounds build and session-initialization goroutines (≤ 0 means
	// GOMAXPROCS). Index bytes and answers are identical for any value.
	Workers int
}

// Range is one shard's contiguous ID range [Base, Base+Count).
type Range struct {
	Base  graph.ID
	Count int
}

// Plan partitions n graphs into at most shards contiguous ranges with sizes
// differing by at most one (larger ranges first). Deterministic in (n,
// shards); counts ≤ 1 or ≥ n collapse to the obvious layouts.
func Plan(n, shards int) []Range {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	out := make([]Range, 0, shards)
	base, rem := 0, n%shards
	for i := 0; i < shards; i++ {
		count := n / shards
		if i < rem {
			count++
		}
		out = append(out, Range{Base: graph.ID(base), Count: count})
		base += count
	}
	return out
}

// Set is a sharded NB-Index: one nbindex part per contiguous ID range plus
// the shared θ grid. Immutable after Build apart from Insert (which extends
// only the last shard) and the telemetry attachment.
type Set struct {
	db      *graph.Database
	m       metric.Metric
	grid    []float64
	parts   []*nbindex.Index
	workers int
	timing  nbindex.BuildTiming
	// tel, when set, aggregates QueryStats across every coordinator query;
	// it is also attached to each part so single-shard sessions report to it.
	tel atomic.Pointer[nbindex.Telemetry]
}

// Build constructs a sharded NB-Index with no cancellation. See BuildContext.
func Build(db *graph.Database, m metric.Metric, opt Options, rng *rand.Rand) (*Set, error) {
	return BuildContext(context.Background(), db, m, opt, rng)
}

// BuildContext constructs a sharded NB-Index. The global vantage point set
// is selected from rng exactly as the unsharded build selects it; with one
// shard rng then drives the tree build directly (bit-identical bytes to the
// unsharded index), and with S > 1 each shard derives its own seed from rng
// sequentially and the shard builds run concurrently on the worker pool —
// every randomized decision is pinned before the fan-out, so the set is
// identical for any Workers value. Cancellation is observed at phase
// boundaries and inside every parallel fill.
func BuildContext(ctx context.Context, db *graph.Database, m metric.Metric, opt Options, rng *rand.Rand) (*Set, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("shard: empty database")
	}
	if opt.NumVPs <= 0 {
		return nil, fmt.Errorf("shard: NumVPs = %d", opt.NumVPs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	numVPs := opt.NumVPs
	if numVPs > db.Len() {
		numVPs = db.Len()
	}
	vps, err := vantage.SelectVPs(db, m, numVPs, opt.VPPolicy, rng)
	if err != nil {
		return nil, err
	}
	tVPs := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	plan := Plan(db.Len(), opt.Shards)
	s := &Set{
		db:      db,
		m:       m,
		grid:    append([]float64(nil), opt.ThetaGrid...),
		parts:   make([]*nbindex.Index, len(plan)),
		workers: opt.Workers,
	}
	if len(plan) == 1 {
		// Single shard: keep consuming the caller's RNG stream directly so
		// the part is bit-identical to the pre-shard (unsharded) index.
		part, err := nbindex.BuildPartContext(ctx, db, m, vps, opt.ThetaGrid,
			plan[0].Base, plan[0].Count, opt.Branching, opt.Workers, rng)
		if err != nil {
			return nil, err
		}
		s.parts[0] = part
	} else {
		// Multi-shard: pin one seed per shard from the sequential stream,
		// then build shards concurrently, each on its own deterministic RNG.
		seeds := make([]int64, len(plan))
		for i := range seeds {
			seeds[i] = rng.Int63()
		}
		errs := make([]error, len(plan))
		outer := opt.Workers
		if r := pool.Resolve(outer); r > len(plan) {
			outer = len(plan)
		}
		if err := pool.Ranges(ctx, len(plan), outer, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s.parts[i], errs[i] = nbindex.BuildPartContext(ctx, db, m, vps, opt.ThetaGrid,
					plan[i].Base, plan[i].Count, opt.Branching, opt.Workers,
					rand.New(rand.NewSource(seeds[i])))
			}
		}); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	done := time.Now() //lint:allow detrand build-phase wall-time gauge; timing only, never influences index content
	s.timing.VPSelect = tVPs.Sub(start)
	s.timing.Total = done.Sub(start)
	for _, part := range s.parts {
		t := part.Timing()
		s.timing.Vantage += t.Vantage
		s.timing.Tree += t.Tree
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *Set) Shards() int { return len(s.parts) }

// Part returns shard p's NB-Index part (read-only).
func (s *Set) Part(p int) *nbindex.Index { return s.parts[p] }

// Grid returns the shared indexed thresholds.
func (s *Set) Grid() []float64 { return s.grid }

// Bytes approximates the memory footprint: the sum over shards of vantage
// rows plus NB-Tree structure.
func (s *Set) Bytes() int64 {
	var b int64
	for _, part := range s.parts {
		b += part.Bytes()
	}
	return b
}

// Timing aggregates construction timing: VPSelect and Total are wall times
// of the whole build; Vantage and Tree sum the per-shard phases (they exceed
// wall time when shards build concurrently).
func (s *Set) Timing() nbindex.BuildTiming { return s.timing }

// SetWorkers bounds the goroutines later session initializations use
// (≤ 0 means GOMAXPROCS). Useful after Read, which has no Options.
func (s *Set) SetWorkers(w int) {
	s.workers = w
	for _, part := range s.parts {
		part.SetWorkers(w)
	}
}

// SetTelemetry attaches an aggregator: every TopK call on every session of
// this set (coordinator or single-shard) folds its QueryStats in. Pass nil
// to detach.
func (s *Set) SetTelemetry(t *nbindex.Telemetry) {
	s.tel.Store(t)
	for _, part := range s.parts {
		part.SetTelemetry(t)
	}
}

// Telemetry returns the attached aggregator, or nil.
func (s *Set) Telemetry() *nbindex.Telemetry { return s.tel.Load() }

// PartFor returns the index of the shard owning graph id.
func (s *Set) PartFor(id graph.ID) int {
	lo, hi := 0, len(s.parts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.parts[mid].Base() <= id {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Insert extends the set with a graph already appended to the database (its
// ID must be the database's last). The new graph lands in the last shard —
// the only one whose range borders the database's end — so concurrent
// readers of other shards are unaffected; internal/server exploits this with
// per-shard locks. Not safe concurrently with queries touching the last
// shard.
func (s *Set) Insert(id graph.ID) error {
	// Inserting computes distances against mapped graph content; settle the
	// store's deferred validation first (cached after the first call).
	if err := s.db.EnsureValid(); err != nil {
		return fmt.Errorf("shard: graph store: %w", err)
	}
	return s.parts[len(s.parts)-1].Insert(id)
}
