package shard

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"graphrep/internal/core"
	"graphrep/internal/dataset"
	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/nbindex"
)

func TestPlan(t *testing.T) {
	for _, tc := range []struct {
		n, shards int
		want      []Range
	}{
		{10, 1, []Range{{0, 10}}},
		{10, 0, []Range{{0, 10}}},                // ≤ 1 collapses to one shard
		{10, -3, []Range{{0, 10}}},               // negative too
		{10, 20, nil},                            // clamped to n: checked below
		{10, 3, []Range{{0, 4}, {4, 3}, {7, 3}}}, // larger ranges first
		{12, 4, []Range{{0, 3}, {3, 3}, {6, 3}, {9, 3}}},
	} {
		got := Plan(tc.n, tc.shards)
		if tc.want != nil && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Plan(%d, %d) = %v, want %v", tc.n, tc.shards, got, tc.want)
			continue
		}
		// Structural properties every plan must satisfy.
		next, minC, maxC := graph.ID(0), tc.n, 0
		for _, r := range got {
			if r.Base != next || r.Count <= 0 {
				t.Errorf("Plan(%d, %d): non-contiguous range %+v at %d", tc.n, tc.shards, r, next)
			}
			next += graph.ID(r.Count)
			if r.Count < minC {
				minC = r.Count
			}
			if r.Count > maxC {
				maxC = r.Count
			}
		}
		if int(next) != tc.n {
			t.Errorf("Plan(%d, %d) covers %d graphs", tc.n, tc.shards, next)
		}
		if maxC-minC > 1 {
			t.Errorf("Plan(%d, %d): shard sizes differ by %d", tc.n, tc.shards, maxC-minC)
		}
	}
}

func testSet(t *testing.T, n, shards int, seed int64) (*Set, *graph.Database, metric.Metric) {
	t.Helper()
	db, err := dataset.ByName("dud", n, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := metric.NewCache(metric.Func(func(a, b graph.ID) float64 {
		return ged.StarDistance(db.Graph(a), db.Graph(b))
	}))
	rng := rand.New(rand.NewSource(seed))
	grid := nbindex.ChooseGrid(db, m, 8, 2000, rng)
	set, err := Build(db, m, Options{Shards: shards, NumVPs: 8, ThetaGrid: grid}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return set, db, m
}

// TestCoordSessionStatsParitySingleShard runs the coordinator machinery over
// a 1-shard set and compares it against the plain nbindex session on the same
// part: answers AND QueryStats must match exactly — the coordinator's
// scatter-gather degenerates to precisely the unsharded search when there is
// nothing to scatter over. The one exception is PQPops: the coordinator
// advances per-shard frontiers by enumerating the positive-bound subtree
// (parallel, no evolving best-gain cut) where the plain session runs a
// best-first search with lazy pruning, so the coordinator's traversal count
// is ≥ the plain session's pop count. Every verification-order-dependent
// field (VerifiedLeaves, CandidateScans, Exact/PrunedDistances) must still
// agree exactly — the merged frontier is consumed in the same total order
// the heap popped leaves in.
func TestCoordSessionStatsParitySingleShard(t *testing.T) {
	set, db, _ := testSet(t, 90, 1, 11)
	rel := core.FirstQuartileRelevance(db, nil)

	plain := set.Part(0).NewSession(rel)
	coord, err := newCoordSession(context.Background(), set, rel)
	if err != nil {
		t.Fatal(err)
	}
	if coord.RelevantCount() != plain.RelevantCount() {
		t.Fatalf("relevant count %d vs %d", coord.RelevantCount(), plain.RelevantCount())
	}
	for _, theta := range []float64{3, 5, 8} {
		want, err := plain.TopK(theta, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.TopK(theta, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("θ=%v: coordinator answer %+v, plain %+v", theta, got, want)
		}
		gs, ws := coord.LastStats(), plain.LastStats()
		if gs.PQPops < ws.PQPops {
			t.Errorf("θ=%v: coordinator frontier visits %d < plain pops %d", theta, gs.PQPops, ws.PQPops)
		}
		gs.PQPops, ws.PQPops = 0, 0
		if gs != ws {
			t.Errorf("θ=%v: coordinator stats %+v, plain %+v", theta, gs, ws)
		}
	}
}

// TestEncodeRoundTrip persists a 3-shard set and reloads it: same shard
// layout, same answers, and byte-identical re-encoding.
func TestEncodeRoundTrip(t *testing.T) {
	set, db, m := testSet(t, 100, 3, 4)
	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), buf.Bytes()...)
	loaded, err := Read(&buf, db, m)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != set.Shards() {
		t.Fatalf("loaded %d shards, want %d", loaded.Shards(), set.Shards())
	}
	for p := 0; p < set.Shards(); p++ {
		if loaded.Part(p).Base() != set.Part(p).Base() || loaded.Part(p).Count() != set.Part(p).Count() {
			t.Errorf("shard %d range [%d,+%d), want [%d,+%d)", p,
				loaded.Part(p).Base(), loaded.Part(p).Count(), set.Part(p).Base(), set.Part(p).Count())
		}
	}
	rel := core.FirstQuartileRelevance(db, nil)
	s1, err := set.NewSession(rel)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := loaded.NewSession(rel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s1.TopK(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.TopK(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("loaded set answers %+v, want %+v", got, want)
	}
	var again bytes.Buffer
	if err := loaded.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), blob) {
		t.Error("re-encoded bytes differ")
	}
}

// TestReadContextCancel checks loads abort between shard sections.
func TestReadContextCancel(t *testing.T) {
	set, db, m := testSet(t, 80, 2, 6)
	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReadContext(ctx, &buf, db, m); err != context.Canceled {
		t.Fatalf("cancelled ReadContext returned %v, want context.Canceled", err)
	}
}

// TestPartFor checks the owning-shard lookup across every boundary.
func TestPartFor(t *testing.T) {
	set, db, _ := testSet(t, 91, 4, 2)
	for id := graph.ID(0); int(id) < db.Len(); id++ {
		p := set.PartFor(id)
		part := set.Part(p)
		if id < part.Base() || int(id-part.Base()) >= part.Count() {
			t.Fatalf("PartFor(%d) = %d covering [%d,+%d)", id, p, part.Base(), part.Count())
		}
	}
}

// TestInsertLandsInLastShard appends one graph and checks only the last
// shard grew.
func TestInsertLandsInLastShard(t *testing.T) {
	set, db, _ := testSet(t, 60, 3, 8)
	var before []int
	for p := 0; p < set.Shards(); p++ {
		before = append(before, set.Part(p).Count())
	}
	src := db.Graph(0)
	b := graph.NewBuilder(src.Order())
	for _, l := range src.VertexLabels() {
		b.AddVertex(l)
	}
	for _, e := range src.Edges() {
		b.AddEdge(e.U, e.V, e.Label)
	}
	b.SetFeatures(src.Features())
	g, err := b.Build(graph.ID(db.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(g); err != nil {
		t.Fatal(err)
	}
	if err := set.Insert(g.ID()); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < set.Shards(); p++ {
		want := before[p]
		if p == set.Shards()-1 {
			want++
		}
		if got := set.Part(p).Count(); got != want {
			t.Errorf("shard %d count %d after insert, want %d", p, got, want)
		}
	}
	if set.PartFor(g.ID()) != set.Shards()-1 {
		t.Errorf("inserted graph owned by shard %d, want last", set.PartFor(g.ID()))
	}
}
