// Package analysistest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which the sealed module cache
// rules out).
//
// Fixtures live under testdata/src/<importpath>/ — GOPATH layout, so one
// fixture package can import another (e.g. a stub telemetry package).
// Expectations are trailing comments on the offending line:
//
//	_ = rand.Intn(6) // want `global math/rand`
//
// Each backquoted or double-quoted string after "want" is a regexp that must
// match exactly one diagnostic reported on that line; diagnostics on lines
// with no matching want, and wants with no matching diagnostic, fail the
// test. //lint:allow directives are honored exactly as the replint driver
// honors them, so the escape hatch is testable.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"graphrep/internal/analysis/framework"
)

// wantRe captures the regexp strings of one want comment.
var wantStringRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package from testdata/src/<pkg>, runs the analyzer,
// and reports mismatches between diagnostics and // want expectations.
func Run(t *testing.T, testdataDir string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdataDir, "src")
	loader := framework.NewLoader(func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	})
	for _, pkgPath := range pkgs {
		pkg, err := loader.LoadDir(filepath.Join(srcRoot, filepath.FromSlash(pkgPath)), pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		diags, err := framework.RunAnalyzers(pkg, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
		checkWants(t, pkg, diags)
	}
}

type key struct {
	file string
	line int
}

func checkWants(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, raw := range wantStringRe.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pattern, err := unquote(raw)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, raw, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		res := wants[k]
		matched := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
			continue
		}
		wants[k] = append(res[:matched], res[matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

func unquote(raw string) (string, error) {
	if strings.HasPrefix(raw, "`") {
		return strings.Trim(raw, "`"), nil
	}
	return strconv.Unquote(raw)
}
