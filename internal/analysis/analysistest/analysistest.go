// Package analysistest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which the sealed module cache
// rules out).
//
// Fixtures live under testdata/src/<importpath>/ — GOPATH layout, so one
// fixture package can import another (e.g. a stub telemetry package). All
// fixture packages of one Run share a fact store and execute in import
// order, so facts exported while analyzing a dependency are visible in its
// importers exactly as in the replint driver.
//
// Expectations are trailing comments on the offending line:
//
//	_ = rand.Intn(6) // want `global math/rand`
//
// Each backquoted or double-quoted string after "want" is a regexp that must
// match exactly one diagnostic reported on that line; diagnostics on lines
// with no matching want, and wants with no matching diagnostic, fail the
// test. A string prefixed with an identifier and a colon asserts a fact
// instead of a diagnostic:
//
//	func Bytes() []byte { ... } // want Bytes:`ViewSource`
//
// which requires the analyzer to have exported, on the object named Bytes
// declared on that line, a fact whose fmt.Sprint rendering matches the
// regexp. Facts without wants are not errors (analyzers fact-mark
// liberally); fact wants without facts are. //lint:allow directives are
// honored exactly as the replint driver honors them — including its stale-
// directive diagnostic — so the escape hatch is testable.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"graphrep/internal/analysis/framework"
)

// T is the slice of *testing.T the harness needs. It is an interface so the
// harness itself can be tested with a recording fake.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantItemRe captures one expectation of a want comment: an optional
// "name:" fact prefix and a backquoted or double-quoted regexp.
var wantItemRe = regexp.MustCompile("(?:([A-Za-z_][A-Za-z0-9_]*):)?(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// Run loads each fixture package from testdata/src/<pkg>, runs the analyzer
// over all of them (plus any fixture dependencies) in import order with a
// shared fact store, and reports mismatches between diagnostics/facts and
// // want expectations in the named packages.
func Run(t T, testdataDir string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdataDir, "src")
	loader := framework.NewLoader(func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	})
	requested := make([]*framework.Package, 0, len(pkgs))
	for _, pkgPath := range pkgs {
		pkg, err := loader.LoadDir(filepath.Join(srcRoot, filepath.FromSlash(pkgPath)), pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
			return
		}
		requested = append(requested, pkg)
	}
	store := framework.NewFactStore()
	diagsByPath := map[string][]framework.Diagnostic{}
	for _, pkg := range framework.SortByImports(loader.Cached()) {
		diags, err := framework.RunWithStore(pkg, []*framework.Analyzer{a}, store)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
			return
		}
		diagsByPath[pkg.ImportPath] = diags
	}
	for _, pkg := range requested {
		checkWants(t, pkg, diagsByPath[pkg.ImportPath], store.ObjectFactsAt(a.Name, pkg.Pkg))
	}
}

type key struct {
	file string
	line int
}

// want is one pending expectation: a diagnostic regexp, or — when fact is
// non-empty — a fact on the object of that name.
type want struct {
	fact string
	re   *regexp.Regexp
}

func checkWants(t T, pkg *framework.Package, diags []framework.Diagnostic, facts []framework.ObjectFact) {
	t.Helper()
	wants := map[key][]want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var spec string
				switch {
				case strings.HasPrefix(text, "want "):
					spec = strings.TrimPrefix(text, "want ")
				case strings.Contains(text, "// want "):
					// An expectation can trail other directive text on the
					// same comment (e.g. after a //lint:allow reason).
					spec = text[strings.Index(text, "// want ")+len("// want "):]
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantItemRe.FindAllStringSubmatch(spec, -1) {
					pattern, err := unquote(m[2])
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, m[2], err)
						return
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
						return
					}
					wants[k] = append(wants[k], want{fact: m[1], re: re})
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if w.fact == "" && w.re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
	}
	for _, of := range facts {
		pos := pkg.Fset.Position(of.Object.Pos())
		k := key{pos.Filename, pos.Line}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if w.fact == of.Object.Name() && w.re.MatchString(fmt.Sprint(of.Fact)) {
				matched = i
				break
			}
		}
		if matched >= 0 {
			wants[k] = append(ws[:matched], ws[matched+1:]...)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if w.fact != "" {
				t.Errorf("%s:%d: expected fact matching %s:%q, got none", k.file, k.line, w.fact, w.re)
				continue
			}
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
		}
	}
}

func unquote(raw string) (string, error) {
	if strings.HasPrefix(raw, "`") {
		return strings.Trim(raw, "`"), nil
	}
	return strconv.Unquote(raw)
}
