// Package factuse imports factdep; the diagnostic below only fires if the
// fact exported during factdep's pass survived into this one.
package factuse

import "factdep"

func Use() {
	factdep.MarkRoot() // want `call to marked function MarkRoot`
	factdep.Plain()
}
