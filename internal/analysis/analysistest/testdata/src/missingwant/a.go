// Package missingwant holds wants nothing satisfies; the harness must fail
// on both of them (exercised through a fake testing.T).
package missingwant

func MarkLost() {} // want MarkLost:`wrongname`

func Quiet() {} // want `never reported`
