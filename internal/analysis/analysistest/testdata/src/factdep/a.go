// Package factdep is the fact-exporting side of the harness meta-fixture.
package factdep

func MarkRoot() {} // want MarkRoot:`marked`

func Plain() {}
