package analysistest_test

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/framework"
)

type markFact struct{}

func (*markFact) AFact()         {}
func (*markFact) String() string { return "marked" }

// marker exports a fact on every Mark* function and reports calls to marked
// functions — the smallest analyzer that proves facts cross fixture
// packages in import order.
var marker = &framework.Analyzer{
	Name:      "marker",
	Doc:       "test analyzer: facts on Mark* functions, diagnostics on their calls",
	FactTypes: []framework.Fact{&markFact{}},
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil {
					continue
				}
				if strings.HasPrefix(fn.Name.Name, "Mark") {
					if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
						pass.ExportObjectFact(obj, &markFact{})
					}
				}
			}
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var obj types.Object
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					obj = pass.TypesInfo.Uses[fun]
				case *ast.SelectorExpr:
					obj = pass.TypesInfo.Uses[fun.Sel]
				}
				if obj != nil && pass.HasObjectFact(obj, &markFact{}) {
					pass.Reportf(call.Pos(), "call to marked function %s", obj.Name())
				}
				return true
			})
		}
		return nil
	},
}

func TestFactExportImportOrdering(t *testing.T) {
	// factuse imports factdep but is listed first: the harness must reorder
	// by imports so factdep's facts exist before factuse is analyzed.
	analysistest.Run(t, "testdata", marker, "factuse", "factdep")
}

// fakeT records harness failures instead of failing the real test.
type fakeT struct {
	errors []string
	fatals []string
}

func (f *fakeT) Helper() {}
func (f *fakeT) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}
func (f *fakeT) Fatalf(format string, args ...any) {
	f.fatals = append(f.fatals, fmt.Sprintf(format, args...))
}

func TestMissingWantsFailTheHarness(t *testing.T) {
	ft := &fakeT{}
	analysistest.Run(ft, "testdata", marker, "missingwant")
	if len(ft.fatals) > 0 {
		t.Fatalf("unexpected fatal: %v", ft.fatals)
	}
	var missFact, missDiag bool
	for _, e := range ft.errors {
		if strings.Contains(e, "expected fact matching") {
			missFact = true
		}
		if strings.Contains(e, "expected diagnostic matching") {
			missDiag = true
		}
	}
	if !missFact {
		t.Errorf("missing // want fact did not fail the harness; errors: %v", ft.errors)
	}
	if !missDiag {
		t.Errorf("missing // want diagnostic did not fail the harness; errors: %v", ft.errors)
	}
}
