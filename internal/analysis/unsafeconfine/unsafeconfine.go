// Package unsafeconfine confines memory-unsafe machinery to the one package
// built to contain it: internal/mmapfile. Importing unsafe, and calling the
// raw mapping syscalls (syscall.Mmap / syscall.Munmap), are reported
// everywhere else in the tree.
//
// The v4 zero-copy index format works by reinterpreting mapped bytes as
// typed slices; that reinterpretation is sound only under the alignment,
// endianness, and lifetime invariants mmapfile's View enforces. A second
// unsafe.Slice call site elsewhere would re-derive those invariants ad hoc —
// the audit surface this analyzer exists to keep at exactly one package.
// Callers that need a typed view take a []byte through mmapfile.View; the
// rest of the tree stays provably within the memory-safe subset of the
// language.
package unsafeconfine

import (
	"go/ast"
	"go/types"
	"strings"

	"graphrep/internal/analysis/framework"
)

// Analyzer is the unsafeconfine check.
var Analyzer = &framework.Analyzer{
	Name: "unsafeconfine",
	Doc: "unsafe and raw mmap syscalls are confined to internal/mmapfile; " +
		"everything else takes typed views through mmapfile.View",
	Run: run,
}

// confined reports whether pkg is the one package allowed to hold unsafe
// code. Matching is by import path suffix so the real package and the
// analyzer-fixture stub both qualify.
func confined(pkg *types.Package) bool {
	return pkg.Path() == "mmapfile" || strings.HasSuffix(pkg.Path(), "/mmapfile")
}

// rawSyscalls are the syscall-package functions that create or destroy
// mappings; the confinement applies to them like it does to unsafe, since a
// mapping's lifetime is exactly what makes views over it dangerous.
var rawSyscalls = map[string]bool{
	"Mmap":   true,
	"Munmap": true,
}

func run(pass *framework.Pass) error {
	if confined(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			if imp.Path.Value == `"unsafe"` {
				pass.Reportf(imp.Pos(),
					"import of unsafe outside internal/mmapfile; use mmapfile.View for typed access to raw bytes")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !rawSyscalls[sel.Sel.Name] {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "syscall" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"raw syscall.%s outside internal/mmapfile; open mappings through mmapfile.Open so their lifetime is managed in one place",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
