// Package shardbad is a fixture that reaches for unsafe machinery outside
// the mmapfile confinement boundary.
package shardbad

import (
	sys "syscall"
	"unsafe" // want `import of unsafe outside internal/mmapfile`
)

func bad(fd, n int) ([]byte, error) {
	return sys.Mmap(fd, 0, n, sys.PROT_READ, sys.MAP_SHARED) // want `raw syscall\.Mmap outside internal/mmapfile`
}

func badUnmap(b []byte) error {
	return sys.Munmap(b) // want `raw syscall\.Munmap outside internal/mmapfile`
}

func ptr(p *int) uintptr {
	// Uses of unsafe are not reported separately; the import diagnostic
	// above covers the file.
	return uintptr(unsafe.Pointer(p))
}

type fakeSyscaller struct{}

func (fakeSyscaller) Mmap(int) {}

func good(s fakeSyscaller) {
	// Methods named Mmap on local types are not the syscall.
	fakeSyscaller{}.Mmap(0)
	s.Mmap(1)
	b, _ := sys.Mmap(0, 0, 0, 0, 0) //lint:allow unsafeconfine sanctioned fixture exception
	_ = b
}
