// Package mmapfile is a fixture standing in for internal/mmapfile, the one
// package exempt from the confinement: it exists to hold exactly this code.
package mmapfile

import (
	"syscall"
	"unsafe"
)

func Map(fd, n int) ([]byte, error) {
	return syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_SHARED)
}

func Unmap(b []byte) error { return syscall.Munmap(b) }

func Addr(p *byte) uintptr { return uintptr(unsafe.Pointer(p)) }
