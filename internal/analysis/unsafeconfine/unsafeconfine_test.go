package unsafeconfine_test

import (
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/unsafeconfine"
)

func TestUnsafeconfine(t *testing.T) {
	analysistest.Run(t, "testdata", unsafeconfine.Analyzer, "shardbad", "mmapfile")
}
