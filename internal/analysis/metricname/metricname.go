// Package metricname enforces the telemetry namespace: every metric
// registered on a telemetry.Registry must be a compile-time constant string
// matching ^graphrep_[a-z0-9_]+$, and no name may be registered twice within
// a package. One scrape of GET /metrics covers the whole process, so the
// prefix is what keeps the exposition greppable and collision-free as
// subsystems multiply; constant names are what make this analyzer (and
// grep) able to see the full namespace at compile time.
//
// The check applies to every Registry constructor method (NewCounter,
// MustHistogramVec, NewGaugeFunc, ...). The telemetry package itself is
// exempt — its Must* wrappers forward a name parameter by design — as are
// test files, which register throwaway names on throwaway registries.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"graphrep/internal/analysis/framework"
)

// Analyzer is the metricname check.
var Analyzer = &framework.Analyzer{
	Name: "metricname",
	Doc: "telemetry registrations must use constant metric names matching " +
		"^graphrep_[a-z0-9_]+$, unique within each package",
	Run: run,
}

// NamePattern is the namespace grammar registrations must satisfy.
var NamePattern = regexp.MustCompile(`^graphrep_[a-z0-9_]+$`)

// registerMethods are the telemetry.Registry methods whose first argument is
// a metric name.
var registerMethods = map[string]bool{
	"NewCounter":       true,
	"NewCounterFunc":   true,
	"NewCounterVec":    true,
	"NewGauge":         true,
	"NewGaugeFunc":     true,
	"NewGaugeVec":      true,
	"NewHistogram":     true,
	"NewHistogramVec":  true,
	"MustCounter":      true,
	"MustCounterVec":   true,
	"MustGauge":        true,
	"MustGaugeVec":     true,
	"MustHistogram":    true,
	"MustHistogramVec": true,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "telemetry" {
		return nil
	}
	seen := map[string]token.Position{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registerMethods[sel.Sel.Name] || !isRegistry(pass, sel) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to %s must be a compile-time constant string so the full namespace is auditable",
					sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !NamePattern.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q must match %s", name, NamePattern)
				return true
			}
			if prev, dup := seen[name]; dup {
				pass.Reportf(arg.Pos(),
					"duplicate metric name %q (already registered at %s)", name, prev)
				return true
			}
			seen[name] = pass.Fset.Position(arg.Pos())
			return true
		})
	}
	return nil
}

// isRegistry reports whether sel selects a method on (a pointer to) the
// telemetry package's Registry type. Matching is by type identity shape —
// named type "Registry" in a package named "telemetry" — so the stub
// Registry in analyzer fixtures and the real internal/telemetry one both
// qualify.
func isRegistry(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "telemetry"
}
