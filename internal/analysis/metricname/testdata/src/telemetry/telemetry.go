// Package telemetry is a stub of graphrep/internal/telemetry exposing the
// Registry surface metricname matches on. The analyzer identifies the real
// registry by shape (type Registry in a package named telemetry), so this
// stub exercises the same code path without importing the real module.
package telemetry

type (
	Counter      struct{}
	Gauge        struct{}
	Histogram    struct{}
	CounterVec   struct{}
	GaugeVec     struct{}
	HistogramVec struct{}
)

type Registry struct{}

func (r *Registry) NewCounter(name, help string) (*Counter, error)          { return nil, nil }
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) error { return nil }
func (r *Registry) NewGauge(name, help string) (*Gauge, error)              { return nil, nil }
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) error { return nil }
func (r *Registry) NewHistogram(name, help string, bounds []float64) (*Histogram, error) {
	return nil, nil
}
func (r *Registry) NewCounterVec(name, help, label string) (*CounterVec, error) { return nil, nil }
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) (*HistogramVec, error) {
	return nil, nil
}
func (r *Registry) MustCounter(name, help string) *Counter                       { return nil }
func (r *Registry) MustGauge(name, help string) *Gauge                           { return nil }
func (r *Registry) MustHistogram(name, help string, bounds []float64) *Histogram { return nil }
func (r *Registry) MustCounterVec(name, help, label string) *CounterVec          { return nil }
func (r *Registry) NewGaugeVec(name, help, label string) (*GaugeVec, error)      { return nil, nil }
func (r *Registry) MustGaugeVec(name, help, label string) *GaugeVec              { return nil }
func (r *Registry) MustHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return nil
}
