// Package mpkg exercises the metric-namespace rules.
package mpkg

import "telemetry"

const constName = "graphrep_const_named_total"

type notRegistry struct{}

func (notRegistry) MustCounter(name, help string) {}

func register(r *telemetry.Registry, dynamic string) {
	r.MustCounter("graphrep_ops_total", "ok")
	r.MustGauge("graphrep_in_flight", "ok")
	_, _ = r.NewHistogram("graphrep_latency_seconds", "ok", []float64{1})
	r.MustCounter(constName, "constants are fine")
	_ = r.NewGaugeFunc("graphrep_ratio", "ok", func() float64 { return 0 })
	_, _ = r.NewGaugeVec("graphrep_shard_graphs", "ok", "shard")
	r.MustGaugeVec("graphrep_Shard_bytes", "upper case", "shard") // want `metric name "graphrep_Shard_bytes" must match`

	r.MustCounter("http_requests_total", "missing prefix") // want `metric name "http_requests_total" must match`
	r.MustGauge("graphrep_BadCase", "upper case")          // want `metric name "graphrep_BadCase" must match`
	r.MustCounter("graphrep_", "empty tail")               // want `metric name "graphrep_" must match`
	r.MustCounter(dynamic, "not constant")                 // want `must be a compile-time constant string`
	r.MustCounter("graphrep_ops_total", "dup")             // want `duplicate metric name "graphrep_ops_total"`

	// Same method name on an unrelated type: not a registration.
	notRegistry{}.MustCounter("whatever", "ignored")
}
