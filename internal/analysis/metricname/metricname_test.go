package metricname_test

import (
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analysistest.Run(t, "testdata", metricname.Analyzer, "mpkg")
}
