// Package holder declares a deferred-validated field, its sync.Once
// validator, and every exemption the rule grants.
package holder

import "sync"

// Index mirrors nbindex.Index's deferred-validation shape.
type Index struct {
	// Leaf maps ids to leaf nodes; validated by EnsureValid.
	Leaf []int32 // want Leaf:`DeferredValidated\(EnsureValid\)`

	once sync.Once
	err  error
}

// EnsureValid runs the deferred content check exactly once.
func (ix *Index) EnsureValid() error {
	ix.once.Do(func() {
		ix.err = ix.validate()
	})
	return ix.err
}

// validate is exempt by name: it IS the deferred scan.
func (ix *Index) validate() error {
	for _, l := range ix.Leaf {
		if l < 0 {
			return errNegative
		}
	}
	return nil
}

var errNegative = errorString("holder: negative leaf")

type errorString string

func (e errorString) Error() string { return string(e) }

// Good reads only after the validator ran on this path.
func (ix *Index) Good(i int) (int32, error) {
	if err := ix.EnsureValid(); err != nil {
		return 0, err
	}
	return ix.Leaf[i], nil
}

// Bad is the seeded violation: an index read with no validation call.
func (ix *Index) Bad(i int) int32 {
	return ix.Leaf[i] // want `read of ix.Leaf before EnsureValid`
}

// Allowed shows the escape hatch; the directive is used, so allowcheck
// stays quiet.
func (ix *Index) Allowed(i int) int32 {
	return ix.Leaf[i] //lint:allow oncevalid callers run EnsureValid before navigation
}

// Untouched carries a stale directive: nothing here triggers oncevalid, so
// the framework reports the suppression itself.
func (ix *Index) Untouched() {} //lint:allow oncevalid stale // want `suppresses no oncevalid diagnostic`

// Build is the builder exemption: freshly constructed content was never
// deferred.
func Build(n int) *Index {
	ix := &Index{Leaf: make([]int32, n)}
	for i := range ix.Leaf {
		ix.Leaf[i] = int32(i)
	}
	return ix
}
