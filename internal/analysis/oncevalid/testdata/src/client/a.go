// Package client proves the annotation crosses packages: the fact exported
// on holder.Index.Leaf is enforced here too.
package client

import "holder"

// Sum is the seeded cross-package violation.
func Sum(ix *holder.Index) int32 {
	var s int32
	for _, l := range ix.Leaf { // want `read of ix.Leaf before EnsureValid`
		s += l
	}
	return s
}

// SumValid validates first.
func SumValid(ix *holder.Index) (int32, error) {
	if err := ix.EnsureValid(); err != nil {
		return 0, err
	}
	var s int32
	for _, l := range ix.Leaf {
		s += l
	}
	return s, nil
}
