package oncevalid_test

import (
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/oncevalid"
)

func TestOncevalid(t *testing.T) {
	analysistest.Run(t, "testdata", oncevalid.Analyzer, "holder", "client")
}
