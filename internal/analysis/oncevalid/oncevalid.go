// Package oncevalid defines an analyzer enforcing the deferred-validation
// contract of the v4 zero-copy open path: a struct field whose doc comment
// says "validated by EnsureValid" (or another validator name) holds content
// that no O(n) scan has checked yet, and must not be indexed or iterated
// until the validator — a sync.Once gate — has run on the current path.
//
// The annotation exports a DeferredValidated fact on the field object, so
// the rule follows the field across packages: a client indexing an exported
// annotated field is checked exactly like in-package code. Exempt are the
// validator itself, functions whose name starts with validate/Validate (the
// scan the Once defers), and builders that created the struct locally —
// freshly built content was never deferred.
package oncevalid

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"graphrep/internal/analysis/framework"
)

// DeferredValidated marks a field whose content is only checked once the
// named validator method has run.
type DeferredValidated struct{ Validator string }

func (*DeferredValidated) AFact()           {}
func (f *DeferredValidated) String() string { return "DeferredValidated(" + f.Validator + ")" }

// annotationRe matches the field-doc contract, e.g. "validated by
// EnsureValid".
var annotationRe = regexp.MustCompile(`validated by ([A-Za-z_][A-Za-z0-9_]*)`)

// Analyzer flags reads of deferred-validated fields on paths where the
// validator has not run.
var Analyzer = &framework.Analyzer{
	Name: "oncevalid",
	Doc: "flag reads of deferred-validated fields before the validator runs\n\n" +
		"A field documented \"validated by EnsureValid\" defers its O(n)\n" +
		"content check to a sync.Once; indexing or ranging over it in a\n" +
		"function that has not called the validator first reads content no\n" +
		"invariant covers. The annotation travels as a fact, so exported\n" +
		"fields are protected in downstream packages too.",
	Run:       run,
	FactTypes: []framework.Fact{&DeferredValidated{}},
}

func run(pass *framework.Pass) error {
	// Derive: annotated struct fields export DeferredValidated.
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				validator := fieldValidator(field)
				if validator == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil && obj.Pkg() == pass.Pkg {
						if !pass.HasObjectFact(obj, &DeferredValidated{}) {
							pass.ExportObjectFact(obj, &DeferredValidated{Validator: validator})
						}
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFn(pass, fn)
			}
		}
	}
	return nil
}

// fieldValidator extracts the validator name from a field's doc or line
// comment.
func fieldValidator(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := annotationRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkFn(pass *framework.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fn.Name.Name
	if strings.HasPrefix(name, "validate") || strings.HasPrefix(name, "Validate") {
		return
	}
	// Locals initialized from composite literals: the builder exemption.
	built := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, isU := rhs.(*ast.UnaryExpr); isU {
				rhs = u.X
			}
			if _, isLit := rhs.(*ast.CompositeLit); !isLit {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				built[obj] = true
			}
		}
		return true
	})
	// Calls whose method name could be a validator, with positions, so a
	// read is fine when some call to its validator precedes it in the
	// function.
	validatorCalls := map[string][]token.Pos{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := call.Fun.(type) {
		case *ast.SelectorExpr:
			validatorCalls[f.Sel.Name] = append(validatorCalls[f.Sel.Name], call.Pos())
		case *ast.Ident:
			validatorCalls[f.Name] = append(validatorCalls[f.Name], call.Pos())
		}
		return true
	})
	check := func(sel *ast.SelectorExpr, readPos token.Pos) {
		fieldObj, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !fieldObj.IsField() {
			if s, has := info.Selections[sel]; has && s.Kind() == types.FieldVal {
				fieldObj, _ = s.Obj().(*types.Var)
			}
		}
		if fieldObj == nil {
			return
		}
		var fact DeferredValidated
		if !pass.ImportObjectFact(fieldObj, &fact) {
			return
		}
		if name == fact.Validator {
			return
		}
		if id, isId := sel.X.(*ast.Ident); isId {
			if obj := info.Uses[id]; obj != nil && built[obj] {
				return
			}
		}
		for _, p := range validatorCalls[fact.Validator] {
			if p < readPos {
				return
			}
		}
		pass.Reportf(readPos, "read of %s before %s: deferred validation has not run on this path", types.ExprString(sel), fact.Validator)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if sel, ok := n.X.(*ast.SelectorExpr); ok {
				check(sel, n.Pos())
			}
		case *ast.RangeStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok {
				check(sel, n.Pos())
			}
		}
		return true
	})
}
