package framework

import (
	"encoding/gob"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

type tFact struct{ N int }

func (*tFact) AFact() {}

type tPkgFact struct{ Tag string }

func (*tPkgFact) AFact() {}

func init() {
	gob.Register(&tFact{})
	gob.Register(&tPkgFact{})
}

// checkSrc type-checks one synthetic file and returns its package.
func checkSrc(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

const factSrc = `package p

type Box struct {
	Rows []int
}

func (b *Box) Fill() {}

func Top() {}
`

func TestObjectPathRoundTrip(t *testing.T) {
	pkg := checkSrc(t, factSrc)
	for _, want := range []string{"Top", "Box", "Box.Fill", "Box.Rows"} {
		obj := lookupObjectPath(pkg, want)
		if obj == nil {
			t.Fatalf("lookupObjectPath(%q) = nil", want)
		}
		got, ok := objectPath(obj)
		if !ok || got != want {
			t.Errorf("objectPath(%v) = %q, %v; want %q", obj, got, ok, want)
		}
	}
	if obj := lookupObjectPath(pkg, "Box.Missing"); obj != nil {
		t.Errorf("lookupObjectPath(Box.Missing) = %v, want nil", obj)
	}
}

func TestEncodeDecodeFactsRoundTrip(t *testing.T) {
	pkg := checkSrc(t, factSrc)
	scope := pkg.Scope()
	top := scope.Lookup("Top")
	box := scope.Lookup("Box").(*types.TypeName)
	rows := box.Type().Underlying().(*types.Struct).Field(0)

	src := NewFactStore()
	src.putObject("ana", top, &tFact{N: 7})
	src.putObject("ana", rows, &tFact{N: 42})
	src.putPackage("ana", pkg, &tPkgFact{Tag: "whole-package"})

	data, err := src.EncodeFacts(pkg)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic stream: encoding the same store twice is byte-identical.
	again, err := src.EncodeFacts(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("EncodeFacts is not deterministic for an unchanged store")
	}

	// Decode into a fresh store against a freshly checked package (distinct
	// object identities, as in a separate vet process).
	pkg2 := checkSrc(t, factSrc)
	dst := NewFactStore()
	if err := dst.DecodeFacts(data, pkg2); err != nil {
		t.Fatal(err)
	}
	top2 := pkg2.Scope().Lookup("Top")
	got, ok := dst.obj[top2][factKey{"ana", reflect.TypeOf(&tFact{})}].(*tFact)
	if !ok || got.N != 7 {
		t.Errorf("Top fact after round-trip = %+v, %v; want &{7}", got, ok)
	}
	rows2 := pkg2.Scope().Lookup("Box").(*types.TypeName).Type().Underlying().(*types.Struct).Field(0)
	gotRows, ok := dst.obj[rows2][factKey{"ana", reflect.TypeOf(&tFact{})}].(*tFact)
	if !ok || gotRows.N != 42 {
		t.Errorf("Box.Rows fact after round-trip = %+v, %v; want &{42}", gotRows, ok)
	}
	gotPkg, ok := dst.pkg[pkg2][factKey{"ana", reflect.TypeOf(&tPkgFact{})}].(*tPkgFact)
	if !ok || gotPkg.Tag != "whole-package" {
		t.Errorf("package fact after round-trip = %+v, %v; want whole-package", gotPkg, ok)
	}
}

func TestDecodeFactsEmptyAndStale(t *testing.T) {
	pkg := checkSrc(t, factSrc)
	dst := NewFactStore()
	if err := dst.DecodeFacts(nil, pkg); err != nil {
		t.Errorf("DecodeFacts(nil) = %v, want nil (empty vetx placeholder)", err)
	}

	// A fact addressing an object the current package no longer declares
	// must be skipped, not fatal.
	src := NewFactStore()
	shrunk := checkSrc(t, "package p\n\nfunc Top() {}\n")
	full := checkSrc(t, factSrc)
	src.putObject("ana", full.Scope().Lookup("Top"), &tFact{N: 1})
	src.putObject("ana", full.Scope().Lookup("Box"), &tFact{N: 2})
	data, err := src.EncodeFacts(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.DecodeFacts(data, shrunk); err != nil {
		t.Fatalf("DecodeFacts with stale object = %v, want graceful skip", err)
	}
	if got := dst.obj[shrunk.Scope().Lookup("Top")]; len(got) != 1 {
		t.Errorf("surviving facts on Top = %d, want 1", len(got))
	}
}
