package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package with full syntax and type
// information — what a Pass analyzes.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Dir        string
	ImportPath string
}

// Loader parses and type-checks packages from source. Standard-library
// imports go through the compiler-independent source importer (no export
// data or network needed); every other import path is resolved to a source
// directory by the Resolve hook — the replint driver maps module paths into
// the repo, the analysistest harness maps them into testdata/src. Loaded
// dependencies are cached, so a whole-repo lint type-checks each package
// (and the standard library) once.
type Loader struct {
	Fset    *token.FileSet
	Resolve func(importPath string) (dir string, ok bool)

	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader returns a Loader resolving non-standard-library imports through
// resolve.
func NewLoader(resolve func(importPath string) (dir string, ok bool)) *Loader {
	// The source importer honors go/build's default context; with cgo
	// enabled it would shell out to preprocess cgo-tainted packages (net,
	// os/user). Their pure-Go fallbacks type-check identically for lint
	// purposes, so force them.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   map[string]*Package{},
	}
}

// Cached returns every package this loader has materialized from source —
// the requested directories plus any Resolve-mapped dependencies pulled in
// by type checking — sorted by import path. Feeding the full set to RunAll
// is what lets facts flow from dependencies the caller never named.
func (l *Loader) Cached() []*Package {
	paths := make([]string, 0, len(l.cache))
	for path := range l.cache {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, l.cache[path])
	}
	return out
}

// Import implements types.Importer for dependency resolution during type
// checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg.Pkg, nil
	}
	if dir, ok := l.Resolve(path); ok {
		loaded, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		return loaded.Pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir, retaining the syntax
// trees and full types.Info an analyzer needs. A package already loaded —
// directly or as a dependency of an earlier load — is returned from cache, so
// every import path maps to exactly one *types.Package per Loader; a second
// instance would make its types incompatible with packages that imported the
// first.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	return l.load(dir, importPath)
}

func (l *Loader) load(dir, importPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	p := &Package{
		Fset:       l.Fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Dir:        dir,
		ImportPath: importPath,
	}
	l.cache[importPath] = p
	return p, nil
}

// parseDir parses every buildable non-test Go file in dir, in name order so
// diagnostics come out deterministically. Build-constrained files
// (//go:build tags, _GOOS/_GOARCH suffixes) are filtered through go/build's
// default context, matching what the compiler would select on this host —
// otherwise platform variants of the same function redeclare each other.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}
