// Package framework is a minimal, dependency-free reimplementation of the
// core of golang.org/x/tools/go/analysis: an Analyzer runs over one
// type-checked package (a Pass) and reports position-anchored Diagnostics.
//
// The repo's module cache is sealed (no network, no x/tools), so rather than
// vendoring the real framework this package provides the small slice of it
// the replint analyzers need, built entirely on go/ast, go/types, and
// go/importer. The shape mirrors x/tools deliberately — Analyzer{Name, Doc,
// Run}, Pass.Reportf — so the analyzers port to the real framework by
// changing one import if the dependency ever becomes available.
//
// # Suppression
//
// A diagnostic can be silenced with an explicit escape hatch:
//
//	start := time.Now() //lint:allow detrand build-phase wall-time gauge
//
// The directive names one or more analyzers (comma-separated) and applies to
// diagnostics on its own line or on the line directly below it, so it works
// both as a trailing comment and as a standalone comment above the offending
// statement. Everything after the analyzer list is a free-text reason,
// required by convention: an unexplained allow is a review smell.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. It must be a valid Go identifier.
	Name string
	// Doc is the help text shown by replint -list.
	Doc string
	// Run executes the check over one package, reporting findings through
	// pass.Reportf. Returning an error aborts the whole lint run — reserve
	// it for internal failures, not findings.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file was parsed from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// RunAnalyzers executes each analyzer over the package, filters findings
// through the //lint:allow directives in the package's files, and returns
// the survivors sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := collectAllows(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Pkg.Path(), err)
		}
		for _, d := range pass.diags {
			if !allows.suppressed(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowSet indexes //lint:allow directives: file -> line -> analyzer names.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive covers its own line (trailing comment) and the line below
	// it (standalone comment above the statement).
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

const allowPrefix = "lint:allow"

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				// fields[0] is the comma-separated analyzer list; the rest
				// is the human-readable reason.
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						names[name] = true
					}
				}
			}
		}
	}
	return set
}

// QualifiedCall resolves a call of the form pkg.Fn(...) to the imported
// package's path and the function name. ok is false for method calls, calls
// through locals, conversions, and builtins.
func QualifiedCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pkgName, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}
