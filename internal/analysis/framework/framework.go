// Package framework is a minimal, dependency-free reimplementation of the
// core of golang.org/x/tools/go/analysis: an Analyzer runs over one
// type-checked package (a Pass) and reports position-anchored Diagnostics.
//
// The repo's module cache is sealed (no network, no x/tools), so rather than
// vendoring the real framework this package provides the small slice of it
// the replint analyzers need, built entirely on go/ast, go/types, and
// go/importer. The shape mirrors x/tools deliberately — Analyzer{Name, Doc,
// Run}, Pass.Reportf — so the analyzers port to the real framework by
// changing one import if the dependency ever becomes available.
//
// # Suppression
//
// A diagnostic can be silenced with an explicit escape hatch:
//
//	start := time.Now() //lint:allow detrand build-phase wall-time gauge
//
// The directive names one or more analyzers (comma-separated) and applies to
// diagnostics on its own line or on the line directly below it, so it works
// both as a trailing comment and as a standalone comment above the offending
// statement. Everything after the analyzer list is a free-text reason,
// required by convention: an unexplained allow is a review smell.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. It must be a valid Go identifier.
	Name string
	// Doc is the help text shown by replint -list.
	Doc string
	// Run executes the check over one package, reporting findings through
	// pass.Reportf. Returning an error aborts the whole lint run — reserve
	// it for internal failures, not findings.
	Run func(pass *Pass) error
	// FactTypes lists pointer prototypes of every Fact type this analyzer
	// exports, so drivers that serialize facts can register them with gob.
	FactTypes []Fact
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	store *FactStore
	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file was parsed from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// AllowCheckName is the analyzer name attached to stale-suppression
// diagnostics: a //lint:allow directive that names an analyzer which ran but
// suppressed nothing is itself a finding (the code it excused was fixed, or
// the directive never matched). These diagnostics are not suppressible.
const AllowCheckName = "allowcheck"

// RunAnalyzers executes each analyzer over the package with a private fact
// store — the single-package entry point. Cross-package facts need
// RunWithStore or RunAll.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithStore(pkg, analyzers, NewFactStore())
}

// RunWithStore executes each analyzer over the package, sharing store so
// facts exported while analyzing this package's dependencies are visible
// here (and this package's exports visible downstream). Findings are
// filtered through //lint:allow directives; directives that name one of the
// analyzers run yet suppress nothing are reported under AllowCheckName. The
// survivors come back sorted by position.
func RunWithStore(pkg *Package, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	allows := collectAllows(pkg.Fset, pkg.Files)
	ran := map[string]bool{}
	var out []Diagnostic
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			store:     store,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Pkg.Path(), err)
		}
		for _, d := range pass.diags {
			if !allows.suppressed(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	out = append(out, allows.stale(ran)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowDirective is one analyzer name from one //lint:allow comment, with a
// usage bit so stale directives can be reported after the run.
type allowDirective struct {
	pos  token.Position
	name string
	used bool
}

// allowSet indexes //lint:allow directives: file -> directive line ->
// directives declared on that line.
type allowSet struct {
	byLine map[string]map[int][]*allowDirective
}

func (s *allowSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive covers its own line (trailing comment) and the line below
	// it (standalone comment above the statement).
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.name == analyzer {
				d.used = true
				return true
			}
		}
	}
	return false
}

// stale returns one diagnostic per directive whose analyzer ran in this pass
// yet suppressed nothing. Directives naming analyzers outside ran are left
// alone — a partial run can't judge them.
func (s *allowSet) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range s.byLine {
		for _, ds := range lines {
			for _, d := range ds {
				if d.used || !ran[d.name] {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: AllowCheckName,
					Message:  fmt.Sprintf("//lint:allow %s suppresses no %s diagnostic; remove the stale directive", d.name, d.name),
				})
			}
		}
	}
	return out
}

const allowPrefix = "lint:allow"

func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	set := &allowSet{byLine: map[string]map[int][]*allowDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*allowDirective{}
					set.byLine[pos.Filename] = lines
				}
				// fields[0] is the comma-separated analyzer list; the rest
				// is the human-readable reason.
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						lines[pos.Line] = append(lines[pos.Line], &allowDirective{pos: pos, name: name})
					}
				}
			}
		}
	}
	return set
}

// RunAll executes the analyzers over every package in dependency order with
// one shared fact store, so facts exported while analyzing an imported
// package are visible to its importers. It returns diagnostics keyed by
// import path; callers lint a subset by indexing into the result.
func RunAll(pkgs []*Package, analyzers []*Analyzer) (map[string][]Diagnostic, error) {
	store := NewFactStore()
	out := map[string][]Diagnostic{}
	for _, pkg := range SortByImports(pkgs) {
		diags, err := RunWithStore(pkg, analyzers, store)
		if err != nil {
			return nil, err
		}
		out[pkg.ImportPath] = diags
	}
	return out, nil
}

// SortByImports topologically orders pkgs so every package comes after all
// of its dependencies that are also in pkgs, ties broken by import path for
// determinism. Import cycles can't occur in type-checked Go.
func SortByImports(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		paths = append(paths, p.ImportPath)
	}
	sort.Strings(paths)
	seen := map[string]bool{}
	out := make([]*Package, 0, len(pkgs))
	var visit func(path string)
	visit = func(path string) {
		p, ok := byPath[path]
		if !ok || seen[path] {
			return
		}
		seen[path] = true
		deps := p.Pkg.Imports()
		depPaths := make([]string, 0, len(deps))
		for _, d := range deps {
			depPaths = append(depPaths, d.Path())
		}
		sort.Strings(depPaths)
		for _, d := range depPaths {
			visit(d)
		}
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// QualifiedCall resolves a call of the form pkg.Fn(...) to the imported
// package's path and the function name. ok is false for method calls, calls
// through locals, conversions, and builtins.
func QualifiedCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pkgName, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}
