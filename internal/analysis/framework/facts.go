package framework

// Facts let an analyzer attach typed findings to objects and packages and
// read them back while analyzing a downstream package — the stdlib-only
// counterpart of golang.org/x/tools/go/analysis facts. Within one process
// (the standalone replint driver, analysistest) a FactStore shared across a
// dependency-ordered run carries them directly; under `go vet -vettool` each
// compilation unit is a separate process, so the facts of a package are gob-
// serialized to its .vetx file (EncodeFacts) and read back by its importers
// (DecodeFacts), objects addressed by a stable in-package path.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is a typed datum an analyzer exports on an object or package and
// imports while analyzing downstream packages. Implementations must be
// pointers to gob-encodable structs; the AFact method is a marker only.
type Fact interface{ AFact() }

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact pairs a package with one fact attached to it.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// factKey identifies one fact slot: at most one fact of a given concrete
// type per analyzer may be attached to an object or package; a second
// ExportObjectFact overwrites the first.
type factKey struct {
	analyzer string
	t        reflect.Type
}

// FactStore accumulates facts across a dependency-ordered run. Objects are
// keyed by identity, which is sound because one Loader materializes exactly
// one *types.Package (and therefore one object) per import path.
type FactStore struct {
	obj map[types.Object]map[factKey]Fact
	pkg map[*types.Package]map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		obj: map[types.Object]map[factKey]Fact{},
		pkg: map[*types.Package]map[factKey]Fact{},
	}
}

func (s *FactStore) putObject(analyzer string, obj types.Object, fact Fact) {
	m := s.obj[obj]
	if m == nil {
		m = map[factKey]Fact{}
		s.obj[obj] = m
	}
	m[factKey{analyzer, reflect.TypeOf(fact)}] = fact
}

func (s *FactStore) putPackage(analyzer string, pkg *types.Package, fact Fact) {
	m := s.pkg[pkg]
	if m == nil {
		m = map[factKey]Fact{}
		s.pkg[pkg] = m
	}
	m[factKey{analyzer, reflect.TypeOf(fact)}] = fact
}

// copyInto copies src (a pointer-to-struct fact) into dst of the same
// concrete type, reporting whether the types matched.
func copyInto(dst, src Fact) bool {
	if reflect.TypeOf(dst) != reflect.TypeOf(src) {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
	return true
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis — facts flow with imports, never against them.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.store == nil {
		panic("framework: ExportObjectFact outside a fact-carrying run")
	}
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("framework: %s exports fact on object %v outside package %s",
			p.Analyzer.Name, obj, p.Pkg.Path()))
	}
	p.store.putObject(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies the fact of ptr's concrete type attached to obj by
// this analyzer into ptr, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.store == nil || obj == nil {
		return false
	}
	got, ok := p.store.obj[obj][factKey{p.Analyzer.Name, reflect.TypeOf(ptr)}]
	return ok && copyInto(ptr, got)
}

// HasObjectFact reports whether this analyzer attached a fact of ptr's
// concrete type to obj, without copying it.
func (p *Pass) HasObjectFact(obj types.Object, ptr Fact) bool {
	if p.store == nil || obj == nil {
		return false
	}
	_, ok := p.store.obj[obj][factKey{p.Analyzer.Name, reflect.TypeOf(ptr)}]
	return ok
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.store == nil {
		panic("framework: ExportPackageFact outside a fact-carrying run")
	}
	p.store.putPackage(p.Analyzer.Name, p.Pkg, fact)
}

// ImportPackageFact copies the fact of ptr's concrete type attached to pkg
// by this analyzer into ptr, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if p.store == nil || pkg == nil {
		return false
	}
	got, ok := p.store.pkg[pkg][factKey{p.Analyzer.Name, reflect.TypeOf(ptr)}]
	return ok && copyInto(ptr, got)
}

// AllObjectFacts returns every object fact this analyzer has exported so far
// across the run, in deterministic (object position-independent) name order.
func (p *Pass) AllObjectFacts() []ObjectFact {
	var out []ObjectFact
	if p.store == nil {
		return out
	}
	for obj, m := range p.store.obj {
		for k, f := range m {
			if k.analyzer == p.Analyzer.Name {
				out = append(out, ObjectFact{obj, f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object.Pos() != out[j].Object.Pos() {
			return out[i].Object.Pos() < out[j].Object.Pos()
		}
		return fmt.Sprint(out[i].Fact) < fmt.Sprint(out[j].Fact)
	})
	return out
}

// AllPackageFacts returns every package fact this analyzer has exported so
// far across the run.
func (p *Pass) AllPackageFacts() []PackageFact {
	var out []PackageFact
	if p.store == nil {
		return out
	}
	for pkg, m := range p.store.pkg {
		for k, f := range m {
			if k.analyzer == p.Analyzer.Name {
				out = append(out, PackageFact{pkg, f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Package.Path() < out[j].Package.Path()
	})
	return out
}

// ObjectFactsAt returns, for analysistest, the facts analyzer attached to
// objects defined in pkg, paired with the defining object.
func (s *FactStore) ObjectFactsAt(analyzer string, pkg *types.Package) []ObjectFact {
	var out []ObjectFact
	for obj, m := range s.obj {
		if obj.Pkg() != pkg {
			continue
		}
		for k, f := range m {
			if k.analyzer == analyzer {
				out = append(out, ObjectFact{obj, f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object.Pos() != out[j].Object.Pos() {
			return out[i].Object.Pos() < out[j].Object.Pos()
		}
		return fmt.Sprint(out[i].Fact) < fmt.Sprint(out[j].Fact)
	})
	return out
}

// RegisterFactTypes registers every analyzer's declared fact types with gob
// so EncodeFacts/DecodeFacts can round-trip them. Call once in a driver that
// serializes facts (the vettool mode).
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// wireFact is the serialized form of one fact: the exporting analyzer, the
// in-package path of the object it decorates ("" for a package fact), and
// the fact itself (gob interface encoding).
type wireFact struct {
	Analyzer string
	Object   string
	Fact     Fact
}

// EncodeFacts serializes the facts attached to pkg and to objects defined in
// pkg. Objects with no stable path (locals, anonymous fields) are dropped —
// nothing outside the package could address them anyway. The byte stream is
// deterministic for a given fact set.
func (s *FactStore) EncodeFacts(pkg *types.Package) ([]byte, error) {
	var wire []wireFact
	for obj, m := range s.obj {
		if obj.Pkg() != pkg {
			continue
		}
		path, ok := objectPath(obj)
		if !ok {
			continue
		}
		for k, f := range m {
			wire = append(wire, wireFact{Analyzer: k.analyzer, Object: path, Fact: f})
		}
	}
	for k, f := range s.pkg[pkg] {
		wire = append(wire, wireFact{Analyzer: k.analyzer, Fact: f})
	}
	sort.Slice(wire, func(i, j int) bool {
		a, b := wire[i], wire[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return fmt.Sprintf("%T", a.Fact) < fmt.Sprintf("%T", b.Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("framework: encoding facts for %s: %w", pkg.Path(), err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts merges a serialized fact set for pkg into the store, resolving
// object paths against pkg's scope. Facts whose object no longer resolves
// (or whose type was never registered) are skipped, not fatal: a stale vetx
// from an older analyzer set should degrade to fewer facts, not a broken
// lint run.
func (s *FactStore) DecodeFacts(data []byte, pkg *types.Package) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("framework: decoding facts for %s: %w", pkg.Path(), err)
	}
	for _, w := range wire {
		if w.Fact == nil {
			continue
		}
		if w.Object == "" {
			s.putPackage(w.Analyzer, pkg, w.Fact)
			continue
		}
		if obj := lookupObjectPath(pkg, w.Object); obj != nil {
			s.putObject(w.Analyzer, obj, w.Fact)
		}
	}
	return nil
}

// objectPath returns a stable in-package address for obj: "Name" for
// package-scope objects, "Type.Method" for methods, "Type.Field" for struct
// fields of package-scope named types.
func objectPath(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	scope := pkg.Scope()
	if obj.Parent() == scope {
		return obj.Name(), true
	}
	switch o := obj.(type) {
	case *types.Func:
		if recv := o.Type().(*types.Signature).Recv(); recv != nil {
			if name, ok := recvTypeName(recv.Type()); ok {
				return name + "." + o.Name(), true
			}
		}
	case *types.Var:
		if o.IsField() {
			for _, tn := range scope.Names() {
				named, ok := scope.Lookup(tn).(*types.TypeName)
				if !ok {
					continue
				}
				st, ok := named.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i) == o {
						return tn + "." + o.Name(), true
					}
				}
			}
		}
	}
	return "", false
}

// recvTypeName unwraps a method receiver type to its named type's name.
func recvTypeName(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name(), true
}

// lookupObjectPath resolves a path produced by objectPath within pkg.
func lookupObjectPath(pkg *types.Package, path string) types.Object {
	scope := pkg.Scope()
	dot := strings.IndexByte(path, '.')
	if dot < 0 {
		return scope.Lookup(path)
	}
	named, ok := scope.Lookup(path[:dot]).(*types.TypeName)
	if !ok {
		return nil
	}
	name := path[dot+1:]
	if n, ok := named.Type().(*types.Named); ok {
		for i := 0; i < n.NumMethods(); i++ {
			if m := n.Method(i); m.Name() == name {
				return m
			}
		}
	}
	if st, ok := named.Type().Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == name {
				return f
			}
		}
	}
	return nil
}
