// Package goroctx defines an analyzer that keeps goroutines launched on
// build/query paths cancellable: every `go` statement in a scoped package
// must either observe context cancellation (select on ctx.Done(), poll
// ctx.Err()), be joined by its launching function through a sync.WaitGroup,
// or invoke a function that observes cancellation itself — recorded as a
// CancelAware fact so the property crosses package boundaries (launching
// internal/pool.Ranges in a goroutine is fine because Ranges polls ctx.Err
// and joins its own workers).
//
// PR 2 threaded context through build and query; a goroutine that ignores
// it outlives the request that spawned it — a leak under client disconnects
// and timeouts that only shows up under production churn.
package goroctx

import (
	"go/ast"
	"go/types"

	"graphrep/internal/analysis/framework"
)

// CancelAware marks a function that observes cancellation: it takes a
// context.Context and either references its Done/Err on some path or
// forwards it to a CancelAware callee.
type CancelAware struct{}

func (*CancelAware) AFact()         {}
func (*CancelAware) String() string { return "CancelAware" }

// ScopePackages names the packages (by package name, so fixture stubs
// qualify) whose goroutine launches are checked: the build/query paths
// where a leaked goroutine outlives a cancelled request.
var ScopePackages = map[string]bool{
	"graphrep": true,
	"shard":    true,
	"nbindex":  true,
	"nbtree":   true,
	"vantage":  true,
	"mtree":    true,
	"metric":   true,
	"core":     true,
	"pool":     true,
	"server":   true,
	"ged":      true,
	"mmapfile": true,
}

// Analyzer flags goroutines that neither observe ctx cancellation nor are
// joined by their launcher.
var Analyzer = &framework.Analyzer{
	Name: "goroctx",
	Doc: "flag goroutines on build/query paths that ignore cancellation\n\n" +
		"Every go statement in a scoped package must select on ctx.Done(),\n" +
		"poll ctx.Err(), be joined via a sync.WaitGroup the launcher Waits\n" +
		"on, or call a CancelAware function (fact-propagated, so routing\n" +
		"work through internal/pool.Ranges passes across packages).",
	Run:       run,
	FactTypes: []framework.Fact{&CancelAware{}},
}

func run(pass *framework.Pass) error {
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				fns = append(fns, fn)
			}
		}
	}
	// Derive CancelAware to a fixpoint: forwarding chains (BuildContext →
	// BuildRangeContext → pool.Ranges) resolve bottom-up.
	for iter, changed := 0, true; changed && iter < 10; iter++ {
		changed = false
		for _, fn := range fns {
			if deriveCancelAware(pass, fn) {
				changed = true
			}
		}
	}
	if !ScopePackages[pass.Pkg.Name()] {
		return nil
	}
	for _, fn := range fns {
		checkLaunches(pass, fn)
	}
	return nil
}

// deriveCancelAware exports the fact on fn if it takes a context and
// observes it (directly or through a CancelAware callee), reporting whether
// the fact is new.
func deriveCancelAware(pass *framework.Pass, fn *ast.FuncDecl) bool {
	obj := pass.TypesInfo.Defs[fn.Name]
	if obj == nil || pass.HasObjectFact(obj, &CancelAware{}) {
		return false
	}
	ctxParams := contextParams(pass, fn)
	if len(ctxParams) == 0 {
		return false
	}
	aware := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if aware {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if observesCancel(pass.TypesInfo, n) {
				aware = true
			}
		case *ast.CallExpr:
			if callee := calleeOf(pass.TypesInfo, n); callee != nil && pass.HasObjectFact(callee, &CancelAware{}) {
				for _, arg := range n.Args {
					if id, ok := arg.(*ast.Ident); ok && ctxParams[pass.TypesInfo.Uses[id]] {
						aware = true
					}
				}
			}
		}
		return true
	})
	if !aware {
		return false
	}
	pass.ExportObjectFact(obj, &CancelAware{})
	return true
}

// contextParams returns the set of fn's context.Context parameter objects.
func contextParams(pass *framework.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isContext(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isContext(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// observesCancel reports whether sel is ctx.Done or ctx.Err on a
// context-typed receiver.
func observesCancel(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isContext(tv.Type)
}

func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// checkLaunches reports every `go` statement in fn that has no termination
// story.
func checkLaunches(pass *framework.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if launchOK(pass, fn, g.Call) {
			return true
		}
		pass.Reportf(g.Pos(), "goroutine neither observes ctx cancellation (ctx.Done/ctx.Err) nor is joined by its launcher; route it through internal/pool, select on ctx.Done(), or join it with a WaitGroup the launcher Waits on")
		return true
	})
}

func launchOK(pass *framework.Pass, fn *ast.FuncDecl, call *ast.CallExpr) bool {
	info := pass.TypesInfo
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ok := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if ok {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if observesCancel(info, n) {
					ok = true
				}
			case *ast.CallExpr:
				if callee := calleeOf(info, n); callee != nil && pass.HasObjectFact(callee, &CancelAware{}) {
					for _, arg := range n.Args {
						if tv, has := info.Types[arg]; has && isContext(tv.Type) {
							ok = true
						}
					}
				}
			}
			return true
		})
		if ok {
			return true
		}
		return wgJoined(pass, fn, lit)
	}
	callee := calleeOf(info, call)
	if callee == nil || !pass.HasObjectFact(callee, &CancelAware{}) {
		return false
	}
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isContext(tv.Type) {
			return true
		}
	}
	return false
}

// wgJoined reports whether the goroutine literal calls Done on a
// sync.WaitGroup that the launching function Waits on — the classic
// launch/join pattern (metric.NewMatrix, pool.Ranges).
func wgJoined(pass *framework.Pass, fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	info := pass.TypesInfo
	doneOn := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && isWaitGroup(info, id) {
			if obj := info.Uses[id]; obj != nil {
				doneOn[obj] = true
			}
		}
		return true
	})
	if len(doneOn) == 0 {
		return false
	}
	joined := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && doneOn[obj] {
				joined = true
			}
		}
		return true
	})
	return joined
}

func isWaitGroup(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t.String() == "sync.WaitGroup"
}
