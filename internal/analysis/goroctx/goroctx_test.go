package goroctx_test

import (
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/goroctx"
)

func TestGoroctx(t *testing.T) {
	analysistest.Run(t, "testdata", goroctx.Analyzer, "workpkg", "nbindex")
}
