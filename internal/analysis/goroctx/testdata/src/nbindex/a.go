// Package nbindex (a scope name) exercises every goroutine launch rule.
package nbindex

import (
	"context"
	"sync"

	"workpkg"
)

// Launch covers the accept and reject cases of the go-statement check.
func Launch(ctx context.Context) {
	go workpkg.Work(ctx)    // ok: CancelAware callee with a ctx argument
	go workpkg.Forward(ctx) // ok: transitively CancelAware
	go workpkg.Spin()       // want `goroutine neither observes ctx cancellation`
	go func() {             // ok: selects on ctx.Done
		<-ctx.Done()
	}()
	go func() { // want `goroutine neither observes ctx cancellation`
		workpkg.Spin()
	}()
	go func() { // ok: calls a CancelAware function with a ctx
		workpkg.Work(ctx)
	}()
	go spinForever() // want `goroutine neither observes ctx cancellation`
}

func spinForever() {}

// Joined is the WaitGroup pattern: the launcher Waits on the group every
// worker Dones.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workpkg.Spin()
		}()
	}
	wg.Wait()
}

// Unjoined launches a Done-calling worker but never Waits — still a leak.
func Unjoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine neither observes ctx cancellation`
		defer wg.Done()
	}()
}

// Poll is the pool.Ranges shape: ctx.Err polling inside a joined worker.
func Poll(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			break
		}
	}()
	wg.Wait()
}
