// Package workpkg is outside goroctx's reporting scope; it exists to export
// CancelAware facts consumed by the launching fixture.
package workpkg

import "context"

// Work blocks until cancellation.
func Work(ctx context.Context) { // want Work:`CancelAware`
	<-ctx.Done()
}

// Forward is cancel-aware only transitively, through Work.
func Forward(ctx context.Context) { // want Forward:`CancelAware`
	Work(ctx)
}

// Spin ignores cancellation entirely.
func Spin() {
	for i := 0; i >= 0; i++ {
		_ = i
	}
}
