package detrand_test

import (
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "nbindex", "ged", "outofscope")
}
