// Package detrand enforces the repo's determinism invariant: inside the
// deterministic build/query packages, every random draw must flow from a
// parameter-threaded *rand.Rand (ultimately seeded by Options.Seed) and no
// code may read the wall clock. SaveIndex output and query answers are
// byte-identical for any Options.Workers only because these packages contain
// no hidden entropy sources — this analyzer makes that a build-time fact
// instead of a comment.
//
// Three patterns are reported in the scope packages (non-test files only):
//
//   - calls to math/rand (or math/rand/v2) top-level functions that use the
//     global process-wide source, e.g. rand.Intn, rand.Float64, rand.Shuffle;
//     constructors (rand.New, rand.NewSource, ...) stay legal because they
//     are how the seed gets threaded,
//   - RNG constructors seeded from the clock — rand.New(rand.NewSource(
//     time.Now().UnixNano())) and variants,
//   - any other time.Now call. The sanctioned build-phase wall-time gauge
//     sites carry an explicit `//lint:allow detrand <reason>` escape hatch.
package detrand

import (
	"go/ast"

	"graphrep/internal/analysis/framework"
)

// ScopePackages names the deterministic packages (by package name) the
// analyzer applies to. The list is the repo's determinism boundary: the
// engine facade plus every package on the index build and query paths.
var ScopePackages = map[string]bool{
	"graphrep": true,
	"shard":    true,
	"nbindex":  true,
	"nbtree":   true,
	"vantage":  true,
	"mtree":    true,
	"metric":   true,
	"core":     true,
	"ged":      true,
	"mmapfile": true,
}

// Analyzer is the detrand check.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand state and time.Now in the deterministic " +
		"build/query packages (graphrep, shard, nbindex, nbtree, vantage, mtree, metric, core, ged, mmapfile)",
	Run: run,
}

// constructors are the math/rand top-level functions that do not touch the
// package-global source; they are allowed (they are how seeds get threaded)
// unless their arguments read the clock.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *framework.Pass) error {
	if !ScopePackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		// Calls already reported as part of an enclosing clock-seeded
		// constructor, so the inner time.Now (and nested constructors) do
		// not double-report.
		seen := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || seen[call] {
				return true
			}
			pkgPath, name, ok := framework.QualifiedCall(pass.TypesInfo, call)
			if !ok {
				return true
			}
			switch {
			case isRandPkg(pkgPath) && !constructors[name]:
				pass.Reportf(call.Pos(),
					"call to global %s.%s uses process-wide RNG state; thread a *rand.Rand seeded from Options.Seed instead",
					pkgPath, name)
			case isRandPkg(pkgPath) && argsReadClock(pass, call):
				pass.Reportf(call.Pos(),
					"RNG seeded from the clock (%s.%s with time.Now) breaks build determinism; seed from Options.Seed instead",
					pkgPath, name)
				markClockCalls(pass, call, seen)
			case pkgPath == "time" && name == "Now":
				pass.Reportf(call.Pos(),
					"time.Now in deterministic package %s; thread timings through parameters, or annotate a sanctioned wall-time gauge site with //lint:allow detrand",
					pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}

// argsReadClock reports whether any argument of call contains a time.Now
// call.
func argsReadClock(pass *framework.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if p, name, ok := framework.QualifiedCall(pass.TypesInfo, inner); ok && p == "time" && name == "Now" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// markClockCalls records every nested rand-constructor and time.Now call
// under call so the walk does not report them a second time.
func markClockCalls(pass *framework.Pass, call *ast.CallExpr, seen map[*ast.CallExpr]bool) {
	ast.Inspect(call, func(n ast.Node) bool {
		inner, ok := n.(*ast.CallExpr)
		if !ok || inner == call {
			return true
		}
		if p, name, ok := framework.QualifiedCall(pass.TypesInfo, inner); ok {
			if (isRandPkg(p) && constructors[name]) || (p == "time" && name == "Now") {
				seen[inner] = true
			}
		}
		return true
	})
}
