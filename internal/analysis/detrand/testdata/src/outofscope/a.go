// Package outofscope is not a deterministic scope package: clock reads and
// global rand are legal here.
package outofscope

import (
	"math/rand"
	"time"
)

func fine() {
	_ = rand.Intn(10)
	_ = time.Now()
	_ = rand.New(rand.NewSource(time.Now().UnixNano()))
}
