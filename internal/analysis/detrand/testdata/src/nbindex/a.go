// Package nbindex is a fixture named after a deterministic scope package.
package nbindex

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Intn(10)                  // want `global math/rand\.Intn uses process-wide RNG state`
	_ = rand.Float64()                 // want `global math/rand\.Float64 uses process-wide RNG state`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle uses process-wide RNG state`
	_ = time.Now()                     // want `time\.Now in deterministic package nbindex`
}

func badSeed() {
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `RNG seeded from the clock`
}

func badSourceOnly() {
	_ = rand.NewSource(time.Now().Unix()) // want `RNG seeded from the clock`
}

func good(rng *rand.Rand, seed int64) {
	_ = rng.Intn(10)
	_ = rand.New(rand.NewSource(seed))
	start := time.Now() //lint:allow detrand sanctioned build-phase wall-time gauge site
	_ = start
	//lint:allow detrand standalone directive covers the next line
	_ = time.Now()
}
