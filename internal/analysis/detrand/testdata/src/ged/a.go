// Package ged is a fixture for the widened determinism boundary: the
// distance kernel and the mmap layer joined the scope set, so global RNG
// state and clock reads are reported here too.
package ged

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Intn(10) // want `global math/rand\.Intn uses process-wide RNG state`
	_ = time.Now()    // want `time\.Now in deterministic package ged`
}

func good(rng *rand.Rand) {
	_ = rng.Perm(4)
}
