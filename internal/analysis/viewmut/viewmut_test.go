package viewmut_test

import (
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/viewmut"
)

func TestViewmut(t *testing.T) {
	analysistest.Run(t, "testdata", viewmut.Analyzer, "mmapfile", "vantage", "shard")
}
