// Package shard exercises cross-package taint: views produced by the
// mmapfile fixture flow through the vantage fixture's facts.
package shard

import (
	"sort"

	"mmapfile"
	"vantage"
)

// Load wires mapped sections into the deferred constructor, mutating along
// the way where it must not.
func Load(f *mmapfile.File) (*vantage.Ordering, error) {
	vps, err := mmapfile.View(f.Bytes())
	if err != nil {
		return nil, err
	}
	dist, err := mmapfile.ViewF(f.Bytes())
	if err != nil {
		return nil, err
	}
	vps[0] = 1 // want `write into view-backed slice`
	o := vantage.FromViewsDeferred(vps, dist, 1)
	row := o.DistRow(0)
	sort.Float64s(row) // want `in-place sort of view-backed slice`
	heap := append([]float64(nil), row...)
	sort.Float64s(heap)
	return o, nil
}
