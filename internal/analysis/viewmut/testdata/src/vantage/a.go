// Package vantage mirrors the deferred-constructor shape of the real
// internal/vantage: parameters retained in fields become ViewHolder facts,
// accessors become ViewSources, and Insert is the sanctioned thaw site.
package vantage

import "sort"

// Ordering retains caller-provided (possibly mapped) rows.
type Ordering struct {
	vps  []int64     // want vps:`ViewHolder`
	dist [][]float64 // want dist:`ViewHolder`
}

// FromViewsDeferred retains vps and row-slices of dist without copying.
func FromViewsDeferred(vps []int64, dist []float64, count int) *Ordering {
	o := &Ordering{vps: vps, dist: make([][]float64, len(vps))}
	for v := range vps {
		lo, hi := v*count, (v+1)*count
		o.dist[v] = dist[lo:hi:hi]
	}
	return o
}

// DistRow hands out a possibly-mapped row.
func (o *Ordering) DistRow(v int) []float64 { return o.dist[v] } // want DistRow:`ViewSource`

// Insert is whitelisted in ThawSites: rows are cap==len, so the leading
// append reallocates before the element write lands.
func (o *Ordering) Insert(v int, d float64) {
	o.dist[v] = append(o.dist[v], d)
	o.dist[v][0] = d
}

// Corrupt is the seeded element-write violation.
func (o *Ordering) Corrupt(v int, d float64) {
	o.dist[v][0] = d // want `write into view-backed slice`
}

// SortRow is the seeded in-place sort violation.
func (o *Ordering) SortRow(v int) {
	sort.Float64s(o.dist[v]) // want `in-place sort of view-backed slice`
}

// Grow is the seeded append violation.
func (o *Ordering) Grow(v int) []float64 {
	row := o.dist[v]
	return append(row, 0) // want `append to view-backed slice`
}

// Blit is the seeded copy violation.
func (o *Ordering) Blit(v int, src []float64) {
	copy(o.dist[v], src) // want `copy into view-backed slice`
}

// Scratch shows the escape hatch; the directive is used, so allowcheck
// stays quiet.
func (o *Ordering) Scratch(v int) {
	o.dist[v][0] = 0 //lint:allow viewmut fixture exercises the escape hatch
}

// Build is the builder exemption: writes through a struct this function
// created initialize fresh heap memory.
func Build(n, count int) *Ordering {
	o := &Ordering{dist: make([][]float64, n)}
	for v := range o.dist {
		o.dist[v] = make([]float64, count)
		o.dist[v][0] = 1
		sort.Float64s(o.dist[v])
	}
	return o
}
