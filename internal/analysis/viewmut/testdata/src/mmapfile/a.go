// Package mmapfile mirrors the taint roots of the real internal/mmapfile:
// syscall.Mmap is the primordial source, View aliases its argument, and the
// File retains the mapping in a field.
package mmapfile

import (
	"fmt"
	"syscall"
	"unsafe"
)

// File holds one read-only mapping.
type File struct {
	data []byte // want data:`ViewHolder`
}

// Open maps fd; the mapping taints File.data through the composite literal.
func Open(fd, size int) (*File, error) {
	data, err := syscall.Mmap(fd, 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &File{data: data}, nil
}

// Bytes returns the mapped bytes.
func (f *File) Bytes() []byte { // want Bytes:`ViewSource`
	return f.data[:len(f.data):len(f.data)]
}

// View reinterprets b as int64s, aliasing its memory.
func View(b []byte) ([]int64, error) { // want View:`AliasesParams\(0\)`
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mmapfile: %d bytes", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	s := unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	return s[:n:n], nil
}

// ViewF is View for float64 sections.
func ViewF(b []byte) ([]float64, error) { // want ViewF:`AliasesParams\(0\)`
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mmapfile: %d bytes", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	s := unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	return s[:n:n], nil
}

// Scribble is the seeded violation: a direct write through the mapping.
func (f *File) Scribble() {
	f.data[0] = 0 // want `write into view-backed slice`
}

// Decode is the heap fallback shape: writes through a locally made slice
// are clean even when the input is tainted.
func Decode(f *File) []byte {
	b := f.Bytes()
	out := make([]byte, len(b))
	for i := range out {
		out[i] = b[i]
	}
	return out
}
