// Package viewmut defines an analyzer that taint-tracks slices backed by a
// read-only mapping and flags in-place mutation of them.
//
// The v4 index container is queried through zero-copy views: mmapfile.View
// reinterprets mapped bytes as []T, and the deferred constructors
// (vantage.FromViewsDeferred, nbtree.NewFlatDeferred, ged.NewTableDeferred,
// nbindex.PartFromViewsDeferred) retain those views in struct fields. A
// write through any of them is a write to PROT_READ memory — SIGSEGV at
// best, silent cross-section corruption if the page was ever made private.
// The compiler cannot see this; viewmut can, via three facts that cross
// package boundaries:
//
//   - ViewSource, on a function: its result may alias a mapping (e.g.
//     mmapfile.(*File).Bytes, vantage.(*Ordering).DistRow). Derived from a
//     function returning tainted data; the primordial source is
//     syscall.Mmap itself.
//   - AliasesParams, on a function: its result aliases the memory of the
//     listed parameters (e.g. mmapfile.View aliases its byte argument), so
//     taint flows through the call when a tainted argument flows in.
//   - ViewHolder, on a struct field: the field retains caller-provided
//     slice memory (derived from constructors assigning parameters or
//     tainted values into fields), so every read of the field is tainted
//     everywhere the type is used.
//
// Holder fields are restricted to scalar-element slices (and maps of them) —
// exactly what mapped sections can store — so pointerful bookkeeping slices
// never taint. Writes through struct literals built locally in the same
// function are exempt (a builder initializing its own heap allocation), and
// the named copy-on-write thaw sites in ThawSites are exempt with the
// rationale recorded next to each.
package viewmut

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"graphrep/internal/analysis/framework"
)

// ViewSource marks a function whose result may alias a read-only mapping.
type ViewSource struct{}

func (*ViewSource) AFact()         {}
func (*ViewSource) String() string { return "ViewSource" }

// AliasesParams marks a function whose result aliases the memory of the
// parameters at the listed indices.
type AliasesParams struct{ Params []int }

func (*AliasesParams) AFact() {}
func (f *AliasesParams) String() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = strconv.Itoa(p)
	}
	return "AliasesParams(" + strings.Join(parts, ",") + ")"
}

// ViewHolder marks a struct field that may retain caller-provided (and
// therefore possibly mapping-backed) slice memory.
type ViewHolder struct{}

func (*ViewHolder) AFact()         {}
func (*ViewHolder) String() string { return "ViewHolder" }

// ScopePackages names the packages (by package name, so fixture stubs
// qualify) whose functions are checked for mutations. Facts are derived
// everywhere; only reporting is scoped — these are the packages that touch
// v4 index sections or GRDB001 corpus sections.
var ScopePackages = map[string]bool{
	"mmapfile": true,
	"vantage":  true,
	"nbtree":   true,
	"ged":      true,
	"nbindex":  true,
	"shard":    true,
	"graph":    true,
	"graphrep": true,
}

// ThawSites names the sanctioned copy-on-write mutation sites, keyed by
// qualified function name, with the invariant that makes each safe. A
// mutation inside one of these is the thaw mechanism itself, not a bug.
var ThawSites = map[string]string{
	// Every row is sliced with cap==len (FromViewsDeferred clips capacity),
	// so the leading append must reallocate onto the heap before the
	// element writes and copies that follow touch the row.
	"vantage.(*Ordering).Insert": "rows are cap==len views; the leading append reallocates before any element write",
	// Insert calls thaw() first, which copies leafOf (and rebuilds the
	// tree and embeddings) off the mapping before the rebuild writes.
	"nbindex.(*Index).Insert": "thaw() copies leafOf off the mapping before the leaf-map rebuild writes",
}

// Analyzer flags writes, sorts, copies, and in-place appends through slices
// that may alias a read-only mapping.
var Analyzer = &framework.Analyzer{
	Name: "viewmut",
	Doc: "flag in-place mutation of view-backed (mapped, read-only) slices\n\n" +
		"Slices produced by mmapfile.View alias a PROT_READ mapping; the\n" +
		"deferred v4 constructors retain them in struct fields. viewmut\n" +
		"taint-tracks them across packages via ViewSource/AliasesParams/\n" +
		"ViewHolder facts and reports element writes, copies, sorts, and\n" +
		"appends outside the sanctioned copy-on-write thaw sites.",
	Run:       run,
	FactTypes: []framework.Fact{&ViewSource{}, &AliasesParams{}, &ViewHolder{}},
}

func run(pass *framework.Pass) error {
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				fns = append(fns, fn)
			}
		}
	}
	// Derive facts to a fixpoint: a later function can be the source a
	// previous one retains (and files arrive in name order, not call
	// order), so iterate until no function exports anything new.
	for iter, changed := 0, true; changed && iter < 10; iter++ {
		changed = false
		for _, fn := range fns {
			st := newFnState(pass, fn)
			if st.derive() {
				changed = true
			}
		}
	}
	if !ScopePackages[pass.Pkg.Name()] {
		return nil
	}
	for _, fn := range fns {
		st := newFnState(pass, fn)
		if _, ok := ThawSites[st.qualifiedName()]; ok {
			continue
		}
		st.report()
	}
	return nil
}

// fnState is the per-function taint/alias analysis: which locals are
// view-tainted, which alias which parameters, and which locals hold a
// struct the function built itself.
type fnState struct {
	pass     *framework.Pass
	fn       *ast.FuncDecl
	paramIdx map[types.Object]int
	tainted  map[types.Object]bool
	aliases  map[types.Object]map[int]bool
	built    map[types.Object]bool
}

func newFnState(pass *framework.Pass, fn *ast.FuncDecl) *fnState {
	st := &fnState{
		pass:     pass,
		fn:       fn,
		paramIdx: map[types.Object]int{},
		tainted:  map[types.Object]bool{},
		aliases:  map[types.Object]map[int]bool{},
		built:    map[types.Object]bool{},
	}
	idx := 0
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					st.paramIdx[obj] = idx
				}
				idx++
			}
		}
	}
	st.propagate()
	return st
}

// qualifiedName renders pkg.Fn or pkg.(*Recv).Fn / pkg.Recv.Fn — the
// ThawSites key format.
func (st *fnState) qualifiedName() string {
	pkg := st.pass.Pkg.Name()
	if st.fn.Recv == nil || len(st.fn.Recv.List) == 0 {
		return pkg + "." + st.fn.Name.Name
	}
	recv := st.fn.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return pkg + ".(*" + id.Name + ")." + st.fn.Name.Name
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		return pkg + "." + id.Name + "." + st.fn.Name.Name
	}
	return pkg + "." + st.fn.Name.Name
}

// propagate runs local taint and alias flow over the body (closures
// included) until stable.
func (st *fnState) propagate() {
	for iter, changed := 0, true; changed && iter < 10; iter++ {
		changed = false
		ast.Inspect(st.fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if st.flowAssign(n) {
					changed = true
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if st.assignTo(name, st.taint(n.Values[i]), st.aliasSet(n.Values[i]), n.Values[i]) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if id, ok := n.Value.(*ast.Ident); ok && st.isSliceOrArray(n.X) {
					if st.assignTo(id, st.taint(n.X), nil, nil) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

func (st *fnState) flowAssign(n *ast.AssignStmt) bool {
	changed := false
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Tuple assignment: every slice-typed LHS inherits the call's
		// taint (v, err := v4view(...)).
		t := st.taint(n.Rhs[0])
		al := st.aliasSet(n.Rhs[0])
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if st.assignTo(id, t, al, n.Rhs[0]) {
					changed = true
				}
			}
		}
		return changed
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if st.assignTo(id, st.taint(n.Rhs[i]), st.aliasSet(n.Rhs[i]), n.Rhs[i]) {
				changed = true
			}
		}
	}
	return changed
}

// assignTo records taint/alias flow into a local, and whether the local was
// initialized from a composite literal (a builder-owned struct).
func (st *fnState) assignTo(id *ast.Ident, taint bool, aliases map[int]bool, rhs ast.Expr) bool {
	if id.Name == "_" {
		return false
	}
	obj := st.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = st.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return false
	}
	changed := false
	if taint && !st.tainted[obj] {
		st.tainted[obj] = true
		changed = true
	}
	for p := range aliases {
		if st.aliases[obj] == nil {
			st.aliases[obj] = map[int]bool{}
		}
		if !st.aliases[obj][p] {
			st.aliases[obj][p] = true
			changed = true
		}
	}
	if rhs != nil && !st.built[obj] {
		e := rhs
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = u.X
		}
		if _, ok := e.(*ast.CompositeLit); ok {
			if _, isStruct := typeUnder(st.pass.TypesInfo.Types[rhs].Type).(*types.Struct); isStruct || isPtrToStruct(st.pass.TypesInfo.Types[rhs].Type) {
				st.built[obj] = true
				changed = true
			}
		}
	}
	return changed
}

// taint reports whether e may hold view-backed memory.
func (st *fnState) taint(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = st.pass.TypesInfo.Defs[e]
		}
		return obj != nil && st.tainted[obj]
	case *ast.SelectorExpr:
		if f := st.fieldOf(e); f != nil && st.hasHolder(f) {
			return true
		}
		return st.taint(e.X)
	case *ast.IndexExpr:
		return st.taint(e.X)
	case *ast.IndexListExpr:
		return st.taint(e.X)
	case *ast.SliceExpr:
		return st.taint(e.X)
	case *ast.ParenExpr:
		return st.taint(e.X)
	case *ast.StarExpr:
		return st.taint(e.X)
	case *ast.UnaryExpr:
		return st.taint(e.X)
	case *ast.CallExpr:
		return st.callTaint(e)
	}
	return false
}

func (st *fnState) callTaint(call *ast.CallExpr) bool {
	info := st.pass.TypesInfo
	if path, name, ok := framework.QualifiedCall(info, call); ok {
		// The primordial source: the mapping itself.
		if path == "syscall" && name == "Mmap" {
			return true
		}
	}
	// Reinterpreting conversions and unsafe plumbing forward taint.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && st.taint(call.Args[0])
	}
	if fun := unwrapFun(call.Fun); fun != nil {
		if id, ok := fun.(*ast.Ident); ok {
			if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "append" {
				return len(call.Args) > 0 && st.taint(call.Args[0])
			}
		}
	}
	if path, name, ok := framework.QualifiedCall(info, call); ok && path == "unsafe" && (name == "Slice" || name == "Pointer") {
		for _, a := range call.Args {
			if st.taint(a) {
				return true
			}
		}
		return false
	}
	callee := st.callee(call)
	if callee == nil {
		return false
	}
	if st.pass.HasObjectFact(callee, &ViewSource{}) {
		return true
	}
	var ap AliasesParams
	if st.pass.ImportObjectFact(callee, &ap) {
		for _, p := range ap.Params {
			if p < len(call.Args) && st.taint(call.Args[p]) {
				return true
			}
		}
	}
	return false
}

// aliasSet returns the parameter indices whose memory e may alias.
func (st *fnState) aliasSet(e ast.Expr) map[int]bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = st.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return nil
		}
		if idx, ok := st.paramIdx[obj]; ok {
			return map[int]bool{idx: true}
		}
		return st.aliases[obj]
	case *ast.IndexExpr:
		return st.aliasSet(e.X)
	case *ast.SliceExpr:
		return st.aliasSet(e.X)
	case *ast.ParenExpr:
		return st.aliasSet(e.X)
	case *ast.StarExpr:
		return st.aliasSet(e.X)
	case *ast.UnaryExpr:
		return st.aliasSet(e.X)
	case *ast.CallExpr:
		return st.callAliases(e)
	}
	return nil
}

func (st *fnState) callAliases(call *ast.CallExpr) map[int]bool {
	info := st.pass.TypesInfo
	union := func(exprs ...ast.Expr) map[int]bool {
		var out map[int]bool
		for _, a := range exprs {
			for p := range st.aliasSet(a) {
				if out == nil {
					out = map[int]bool{}
				}
				out[p] = true
			}
		}
		return out
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return union(call.Args...)
	}
	if path, name, ok := framework.QualifiedCall(info, call); ok && path == "unsafe" && (name == "Slice" || name == "Pointer") {
		return union(call.Args...)
	}
	if fun := unwrapFun(call.Fun); fun != nil {
		if id, ok := fun.(*ast.Ident); ok {
			if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "append" && len(call.Args) > 0 {
				return union(call.Args[0])
			}
		}
	}
	callee := st.callee(call)
	if callee == nil {
		return nil
	}
	var ap AliasesParams
	if st.pass.ImportObjectFact(callee, &ap) {
		var args []ast.Expr
		for _, p := range ap.Params {
			if p < len(call.Args) {
				args = append(args, call.Args[p])
			}
		}
		return union(args...)
	}
	return nil
}

// callee resolves the called function or method object, unwrapping generic
// instantiations.
func (st *fnState) callee(call *ast.CallExpr) types.Object {
	switch fun := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		return st.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return st.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func unwrapFun(e ast.Expr) ast.Expr {
	for {
		switch f := e.(type) {
		case *ast.ParenExpr:
			e = f.X
		case *ast.IndexExpr:
			e = f.X
		case *ast.IndexListExpr:
			e = f.X
		default:
			return e
		}
	}
}

// fieldOf resolves a selector to the struct field object it reads, if any.
func (st *fnState) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := st.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Package-qualified or unselected uses fall back to Uses.
	if v, ok := st.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func (st *fnState) hasHolder(f *types.Var) bool {
	return st.pass.HasObjectFact(f, &ViewHolder{})
}

// derive exports facts this function justifies, reporting whether anything
// new was learned.
func (st *fnState) derive() bool {
	changed := false
	info := st.pass.TypesInfo
	// Field retention: assignments and composite literals that store
	// parameter-aliased or tainted values into holder-eligible fields.
	ast.Inspect(st.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) > i {
					rhs = n.Rhs[i]
				}
				if f := st.retainTarget(lhs); f != nil && st.retains(rhs) {
					if st.exportHolder(f) {
						changed = true
					}
				}
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			if _, isStruct := typeUnder(tv.Type).(*types.Struct); !isStruct {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				f, ok := info.Uses[key].(*types.Var)
				if !ok || !f.IsField() {
					continue
				}
				if st.retains(kv.Value) && st.exportHolder(f) {
					changed = true
				}
			}
		}
		return true
	})
	// Return flow: a tainted result makes the function a ViewSource; a
	// parameter-aliased result records AliasesParams. Only the function's
	// own returns count — closures return to their own callers.
	fnObj := info.Defs[st.fn.Name]
	if fnObj == nil {
		return changed
	}
	aliased := map[int]bool{}
	source := false
	ast.Inspect(st.fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !st.isSliceOrArray(res) {
				continue
			}
			if st.taint(res) {
				source = true
			}
			for p := range st.aliasSet(res) {
				aliased[p] = true
			}
		}
		return true
	})
	if source && !st.pass.HasObjectFact(fnObj, &ViewSource{}) {
		st.pass.ExportObjectFact(fnObj, &ViewSource{})
		changed = true
	}
	if len(aliased) > 0 {
		var old AliasesParams
		st.pass.ImportObjectFact(fnObj, &old)
		merged := map[int]bool{}
		for _, p := range old.Params {
			merged[p] = true
		}
		for p := range aliased {
			merged[p] = true
		}
		if len(merged) > len(old.Params) {
			ps := make([]int, 0, len(merged))
			for p := range merged {
				ps = append(ps, p)
			}
			sort.Ints(ps)
			st.pass.ExportObjectFact(fnObj, &AliasesParams{Params: ps})
			changed = true
		}
	}
	return changed
}

// retainTarget resolves an assignment LHS of the form x.f or x.f[i] to the
// field being written into, for retention purposes.
func (st *fnState) retainTarget(lhs ast.Expr) *types.Var {
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		lhs = ix.X
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return st.fieldOf(sel)
}

// retains reports whether storing e into a field constitutes retention of
// possibly-mapped memory: e is tainted or aliases a parameter.
func (st *fnState) retains(e ast.Expr) bool {
	if !st.isSliceOrArray(e) {
		return false
	}
	return st.taint(e) || len(st.aliasSet(e)) > 0
}

func (st *fnState) exportHolder(f *types.Var) bool {
	if f.Pkg() != st.pass.Pkg || !holderEligible(f.Type()) {
		return false
	}
	if st.pass.HasObjectFact(f, &ViewHolder{}) {
		return false
	}
	st.pass.ExportObjectFact(f, &ViewHolder{})
	return true
}

// report sweeps the body for mutations of tainted slices.
func (st *fnState) report() {
	info := st.pass.TypesInfo
	ast.Inspect(st.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if st.mutable(ix.X) {
					st.pass.Reportf(lhs.Pos(), "write into view-backed slice %s; it may alias the read-only mapping — thaw (copy) before mutating", types.ExprString(ix.X))
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := n.X.(*ast.IndexExpr); ok && st.mutable(ix.X) {
				st.pass.Reportf(n.Pos(), "write into view-backed slice %s; it may alias the read-only mapping — thaw (copy) before mutating", types.ExprString(ix.X))
			}
		case *ast.CallExpr:
			st.reportCall(n, info)
		}
		return true
	})
}

func (st *fnState) reportCall(call *ast.CallExpr, info *types.Info) {
	if fun := unwrapFun(call.Fun); fun != nil {
		if id, ok := fun.(*ast.Ident); ok {
			if b, isB := info.Uses[id].(*types.Builtin); isB && len(call.Args) > 0 {
				switch b.Name() {
				case "append":
					if st.mutable(call.Args[0]) {
						st.pass.Reportf(call.Pos(), "append to view-backed slice %s outside a sanctioned thaw site; copy it off the mapping first", types.ExprString(call.Args[0]))
					}
				case "copy":
					if st.mutable(call.Args[0]) {
						st.pass.Reportf(call.Pos(), "copy into view-backed slice %s; it may alias the read-only mapping — thaw before mutating", types.ExprString(call.Args[0]))
					}
				}
				return
			}
		}
	}
	path, name, ok := framework.QualifiedCall(info, call)
	if !ok || len(call.Args) == 0 {
		return
	}
	inPlaceSort := (path == "sort" && (name == "Slice" || name == "SliceStable" || name == "Ints" ||
		name == "Float64s" || name == "Strings")) ||
		(path == "slices" && strings.HasPrefix(name, "Sort")) ||
		(path == "slices" && name == "Reverse")
	if inPlaceSort && st.mutable(call.Args[0]) {
		st.pass.Reportf(call.Pos(), "in-place sort of view-backed slice %s; it may alias the read-only mapping — sort a copy", types.ExprString(call.Args[0]))
	}
}

// mutable reports whether writing through e is a violation: e is a tainted
// slice (not a map) and is not rooted in a struct this function built.
func (st *fnState) mutable(e ast.Expr) bool {
	if !st.isSliceOrArray(e) {
		return false
	}
	return st.taint(e) && !st.builderRooted(e)
}

func (st *fnState) isSliceOrArray(e ast.Expr) bool {
	tv, ok := st.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch typeUnder(tv.Type).(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// builderRooted reports whether e reaches its memory through a struct the
// function created itself (composite literal) — initializing a fresh heap
// allocation is not a mutation of mapped memory.
func (st *fnState) builderRooted(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			obj := st.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = st.pass.TypesInfo.Defs[x]
			}
			return obj != nil && st.built[obj]
		default:
			return false
		}
	}
}

// holderEligible restricts ViewHolder to field types a mapped section could
// actually back: slices of fixed-stride scalars, nested slices of them
// (row-sliced matrices), and maps whose values are such slices (section
// directories).
func holderEligible(t types.Type) bool {
	switch u := typeUnder(t).(type) {
	case *types.Slice:
		return scalarElem(u.Elem())
	case *types.Map:
		if s, ok := typeUnder(u.Elem()).(*types.Slice); ok {
			return scalarElem(s.Elem())
		}
	}
	return false
}

func scalarElem(t types.Type) bool {
	switch u := typeUnder(t).(type) {
	case *types.Basic:
		return u.Info()&(types.IsNumeric|types.IsBoolean) != 0
	case *types.Slice:
		return scalarElem(u.Elem())
	}
	return false
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem().Underlying()
	}
	return t.Underlying()
}

func isPtrToStruct(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	_, ok = ptr.Elem().Underlying().(*types.Struct)
	return ok
}
