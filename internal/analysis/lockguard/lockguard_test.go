package lockguard_test

import (
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "lockpkg")
}
