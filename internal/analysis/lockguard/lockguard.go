// Package lockguard enforces the repo's `// guarded by <mu>` annotation
// convention: a struct field carrying that comment may only be accessed
// inside functions that visibly lock the named mutex (a call to
// <mu>.Lock/RLock/TryLock/TryRLock anywhere in the function, including its
// closures) or whose name ends in "Locked" (the caller-holds-the-lock
// convention, e.g. sessionLocked).
//
// The check is deliberately flow-insensitive — it asks "does this function
// participate in the locking discipline at all", not "is the lock held at
// this instruction" — which keeps it free of false positives on the
// lock/compute/unlock-then-relock shapes real code uses, while still
// catching the dangerous case: a new call site touching guarded state with
// no locking in sight. Test files are exempt (single-goroutine tests poke
// fields directly). gVisor's checklocks is the full-strength version of this
// idea; this is the 200-line variant the invariants here need.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"graphrep/internal/analysis/framework"
)

// Analyzer is the lockguard check.
var Analyzer = &framework.Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by <mu>` may only be accessed in " +
		"functions that lock <mu> or are named *Locked",
	Run: run,
}

var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lockMethods are the mutex acquisition entry points; seeing any of them on
// a selector whose terminal field matches the guard name counts as locking.
var lockMethods = map[string]bool{
	"Lock":     true,
	"RLock":    true,
	"TryLock":  true,
	"TryRLock": true,
}

func run(pass *framework.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			locked := lockedMutexes(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection := pass.TypesInfo.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal {
					return true
				}
				mu, guarded := guards[selection.Obj()]
				if guarded && !locked[mu] {
					pass.Reportf(sel.Sel.Pos(),
						"field %s is guarded by %s, but %s neither locks %s nor is named *Locked",
						sel.Sel.Name, mu, fn.Name.Name, mu)
				}
				return true
			})
		}
	}
	return nil
}

// collectGuards maps each annotated field object to the name of the mutex
// field guarding it.
func collectGuards(pass *framework.Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := field.Doc.Text() + " " + field.Comment.Text()
				m := guardRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = m[1]
					}
				}
			}
			return true
		})
	}
	return guards
}

// lockedMutexes collects the terminal field names of every mutex this
// function acquires anywhere in its body: s.mu.RLock(), mu.Lock(), and the
// per-shard slice form s.locks[i].RLock() all yield their field name ("mu",
// "locks").
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockMethods[sel.Sel.Name] {
			return true
		}
		recv := sel.X
		if idx, ok := recv.(*ast.IndexExpr); ok {
			// Element of a mutex slice/array/map: the guard name is the
			// collection's field name.
			recv = idx.X
		}
		switch recv := recv.(type) {
		case *ast.SelectorExpr:
			locked[recv.Sel.Name] = true
		case *ast.Ident:
			locked[recv.Name] = true
		}
		return true
	})
	return locked
}
