// Package lockpkg exercises the guarded-field annotation convention.
package lockpkg

import "sync"

type Store struct {
	mu sync.RWMutex
	// count is the running total.
	// guarded by mu
	count int

	statsMu sync.Mutex
	stats   []int // guarded by statsMu

	free int // unannotated fields are never checked
}

func (s *Store) Add(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count += n
}

func (s *Store) Read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

func (s *Store) addLocked(n int) {
	s.count += n
}

func (s *Store) Racy() int {
	return s.count // want `field count is guarded by mu, but Racy neither locks mu nor is named \*Locked`
}

func (s *Store) WrongLock() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.count++ // want `field count is guarded by mu`
	s.stats = append(s.stats, s.free)
}

func (s *Store) ClosureLock() {
	fn := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.count++
	}
	fn()
}

func (s *Store) TryRead() (int, bool) {
	if !s.mu.TryRLock() {
		return 0, false
	}
	defer s.mu.RUnlock()
	return s.count, true
}

type Sharded struct {
	locks []sync.RWMutex
	// tables[i] is shard i's table.
	// guarded by locks
	tables [][]int
}

func (s *Sharded) ReadShard(i, j int) int {
	s.locks[i].RLock()
	defer s.locks[i].RUnlock()
	return s.tables[i][j]
}

func (s *Sharded) RacyShard(i, j int) int {
	return s.tables[i][j] // want `field tables is guarded by locks, but RacyShard neither locks locks nor is named \*Locked`
}
