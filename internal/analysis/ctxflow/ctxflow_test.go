package ctxflow_test

import (
	"testing"

	"graphrep/internal/analysis/analysistest"
	"graphrep/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxpkg")
}
