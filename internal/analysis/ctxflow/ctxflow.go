// Package ctxflow enforces the context-propagation contract behind the
// server's 499/504 paths: an exported function (or method) that accepts a
// context.Context must actually run under it. Inside such a function, in
// non-main non-test packages:
//
//   - context.Background() and context.TODO() are forbidden — minting a
//     fresh root silently detaches the work from the caller's cancellation
//     and deadline, which is exactly the bug class that made /query hang
//     behind dead connections,
//   - every call to a callee that itself accepts a context.Context must be
//     passed a context derived from the function's own ctx parameter
//     (directly, or through locals assigned from it — context.WithTimeout
//     chains are tracked).
//
// Unexported helpers and ctx-less convenience wrappers (Build calling
// BuildContext with context.Background()) are intentionally out of scope:
// the contract binds the exported API surface, where the caller handed over
// a context and is owed its enforcement.
package ctxflow

import (
	"go/ast"
	"go/types"

	"graphrep/internal/analysis/framework"
)

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "exported functions taking a context.Context must not call " +
		"context.Background/TODO and must forward their ctx to every callee that accepts one",
	Run: run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			ctxParams := contextParams(pass, fn)
			if len(ctxParams) == 0 {
				continue
			}
			checkFunc(pass, fn, ctxParams)
		}
	}
	return nil
}

// contextParams returns the objects of fn's context.Context-typed
// parameters.
func contextParams(pass *framework.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	params := map[types.Object]bool{}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isContext(obj.Type()) {
				params[obj] = true
			}
		}
	}
	return params
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, ctxParams map[types.Object]bool) {
	tainted := deriveContexts(pass, fn.Body, ctxParams)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := framework.QualifiedCall(pass.TypesInfo, call); ok &&
			pkg == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(),
				"%s takes a context.Context but calls context.%s; forward ctx instead of minting a fresh root context",
				fn.Name.Name, name)
			return true
		}
		sig := calleeSignature(pass, call)
		if sig == nil {
			return true
		}
		idx := contextParamIndex(sig)
		if idx < 0 || idx >= len(call.Args) {
			return true
		}
		arg := call.Args[idx]
		// A Background/TODO argument was already reported by the scan above.
		if containsRootContext(pass, arg) {
			return true
		}
		if !mentionsAny(pass, arg, tainted) {
			pass.Reportf(arg.Pos(),
				"%s does not forward its ctx to %s, which accepts a context.Context",
				fn.Name.Name, calleeName(call))
		}
		return true
	})
}

// deriveContexts computes the set of context-typed objects derived from the
// function's ctx parameters: the parameters themselves plus any local
// assigned from an expression mentioning a member of the set
// (ctx2, cancel := context.WithTimeout(ctx, d), sctx := ctx, ...).
// Iterates to a fixpoint so chains of derivations resolve in any order.
func deriveContexts(pass *framework.Pass, body *ast.BlockStmt, seed map[types.Object]bool) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for obj := range seed {
		tainted[obj] = true
	}
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Locals assigned from Background/TODO count as derived too: the
			// mint itself is already reported at its call site, and one
			// diagnostic per root cause beats a cascade at every use.
			fromTainted := false
			for _, rhs := range assign.Rhs {
				if mentionsAny(pass, rhs, tainted) || containsRootContext(pass, rhs) {
					fromTainted = true
					break
				}
			}
			if !fromTainted {
				return true
			}
			for _, lhs := range assign.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ident]
				if obj == nil {
					obj = pass.TypesInfo.Uses[ident]
				}
				if obj != nil && isContext(obj.Type()) && !tainted[obj] {
					tainted[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return tainted
		}
	}
}

func mentionsAny(pass *framework.Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[ident]] {
			found = true
		}
		return !found
	})
	return found
}

func containsRootContext(pass *framework.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, name, ok := framework.QualifiedCall(pass.TypesInfo, call); ok &&
				pkg == "context" && (name == "Background" || name == "TODO") {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeSignature returns the signature of the called function, or nil for
// conversions, builtins, and calls whose type is unknown.
func calleeSignature(pass *framework.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// contextParamIndex returns the index of the first context.Context parameter
// of sig, or -1.
func contextParamIndex(sig *types.Signature) int {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContext(params.At(i).Type()) {
			return i
		}
	}
	return -1
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	default:
		return "the callee"
	}
}
