// Package ctxpkg exercises the context-propagation contract.
package ctxpkg

import (
	"context"
	"time"
)

func helper(ctx context.Context, n int) error { return ctx.Err() }

func noCtx(n int) int { return n }

// Forward is the happy path: ctx reaches every ctx-accepting callee.
func Forward(ctx context.Context) error {
	noCtx(1)
	return helper(ctx, 1)
}

// ForwardDerived passes a context derived from ctx — still a forward.
func ForwardDerived(ctx context.Context) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	sub := tctx
	return helper(sub, 1)
}

// MintsBackground detaches the callee from the caller's cancellation.
func MintsBackground(ctx context.Context) error {
	return helper(context.Background(), 1) // want `MintsBackground takes a context\.Context but calls context\.Background`
}

// MintsTODO is the same bug with TODO.
func MintsTODO(ctx context.Context) error {
	_ = ctx
	c := context.TODO() // want `MintsTODO takes a context\.Context but calls context\.TODO`
	return helper(c, 1)
}

var stored context.Context

// DropsCtx calls a ctx-accepting callee with an unrelated context.
func DropsCtx(ctx context.Context) error {
	return helper(stored, 1) // want `DropsCtx does not forward its ctx to helper`
}

// unexported functions are outside the contract.
func relaxed(ctx context.Context) error {
	return helper(context.Background(), 1)
}

// NoContextParam has no ctx to forward; Background is its job.
func NoContextParam() error {
	return helper(context.Background(), 1)
}
