package dataset

import (
	"math"
	"testing"

	"graphrep/internal/ged"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/stats"
)

func TestPresetsProduceValidDatabases(t *testing.T) {
	for _, name := range Names() {
		db, err := ByName(name, 80, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if db.Len() != 80 {
			t.Fatalf("%s: len = %d", name, db.Len())
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
		st := db.Stats()
		if st.AvgNodes < 2 || st.AvgEdges < 1 {
			t.Errorf("%s: degenerate stats %+v", name, st)
		}
	}
	if _, err := ByName("nope", 10, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := DUDLike(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DUDLike(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		ga, gb := a.Graph(graph.ID(i)), b.Graph(graph.ID(i))
		if ga.Order() != gb.Order() || ga.Size() != gb.Size() {
			t.Fatalf("graph %d differs structurally", i)
		}
		for v := 0; v < ga.Order(); v++ {
			if ga.VertexLabel(v) != gb.VertexLabel(v) {
				t.Fatalf("graph %d label %d differs", i, v)
			}
		}
		for d := range ga.Features() {
			if ga.Features()[d] != gb.Features()[d] {
				t.Fatalf("graph %d feature %d differs", i, d)
			}
		}
	}
	c, err := DUDLike(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len() && same; i++ {
		if a.Graph(graph.ID(i)).Order() != c.Graph(graph.ID(i)).Order() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical structure sequence")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{N: 5, MinOrder: 3, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Config{
		{N: 0, MinOrder: 3, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 1},
		{N: 5, MinOrder: 1, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 1},
		{N: 5, MinOrder: 6, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 1},
		{N: 5, MinOrder: 3, MaxOrder: 5, VertexLabels: 0, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 1},
		{N: 5, MinOrder: 3, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 0, FeatureDim: 1},
		{N: 5, MinOrder: 3, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 0},
		{N: 5, MinOrder: 3, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 1, OutlierFrac: 2},
		{N: 5, MinOrder: 3, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 1, Edits: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("Generate accepted bad config %d", i)
		}
	}
}

// Families must be structurally tight: intra-family distances should be much
// smaller than inter-family distances on average. This is what makes the
// datasets meaningful for representative queries.
func TestFamiliesAreStructurallyClustered(t *testing.T) {
	cfg := Config{
		N: 60, Seed: 3,
		MinOrder: 10, MaxOrder: 14,
		VertexLabels: 8, EdgeLabels: 2,
		MeanFamily: 15, OutlierFrac: 0, Edits: 2,
		FeatureDim: 2, FeatureNoise: 0.05,
	}
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := metric.NewCache(metric.Star(db))
	// Recover families by feature profile proximity: members share a
	// profile, so feature distance identifies the planted partition.
	var intra, inter []float64
	for i := 0; i < db.Len(); i++ {
		for j := i + 1; j < db.Len(); j++ {
			fi, fj := db.Graph(graph.ID(i)).Features(), db.Graph(graph.ID(j)).Features()
			fd := math.Hypot(fi[0]-fj[0], fi[1]-fj[1])
			d := m.Distance(graph.ID(i), graph.ID(j))
			if fd < 0.12 {
				intra = append(intra, d)
			} else if fd > 0.5 {
				inter = append(inter, d)
			}
		}
	}
	if len(intra) < 10 || len(inter) < 10 {
		t.Skipf("too few pairs classified: intra=%d inter=%d", len(intra), len(inter))
	}
	mi, mo := stats.Mean(intra), stats.Mean(inter)
	if mi >= mo {
		t.Errorf("intra-family mean distance %v >= inter-family %v", mi, mo)
	}
}

// The Amazon-like preset must have a wider distance spread than the DUD-like
// preset — the property that drives the paper's per-dataset θ choices.
func TestAmazonSpreadExceedsDUD(t *testing.T) {
	dud, err := DUDLike(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	amz, err := AmazonLike(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(db *graph.Database) float64 {
		m := metric.Star(db)
		var ds []float64
		for i := 0; i < db.Len(); i++ {
			for j := i + 1; j < db.Len(); j += 3 {
				ds = append(ds, m.Distance(graph.ID(i), graph.ID(j)))
			}
		}
		return stats.StdDev(ds)
	}
	if sd, sa := spread(dud), spread(amz); sa <= sd {
		t.Errorf("amazon σ=%v not wider than dud σ=%v", sa, sd)
	}
}

func TestGraphsAreConnectedEnough(t *testing.T) {
	// Scaffolds attach every vertex to an earlier one, so members should
	// have at least order-1 edges (pendant additions preserve this).
	db, err := DUDLike(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range db.Graphs() {
		if g.Size() < g.Order()-1 {
			t.Errorf("graph %d: %d edges for %d vertices", g.ID(), g.Size(), g.Order())
		}
	}
}

func TestMaxDegreeCapRespected(t *testing.T) {
	db, err := DUDLike(60, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range db.Graphs() {
		for v := 0; v < g.Order(); v++ {
			if d := g.Degree(v); d > 4 {
				t.Fatalf("graph %d vertex %d has degree %d > valence cap 4", g.ID(), v, d)
			}
		}
	}
	// Config validation.
	bad := Config{N: 5, MinOrder: 3, MaxOrder: 5, VertexLabels: 2, EdgeLabels: 1, MeanFamily: 3, FeatureDim: 1, MaxDegree: 1}
	if err := bad.Validate(); err == nil {
		t.Error("MaxDegree=1 accepted")
	}
}

func TestPerturbationsStayClose(t *testing.T) {
	// Members of one family should sit within a bounded star distance of
	// each other: each edit moves the star distance by O(1) per incident
	// star.
	cfg := Config{
		N: 12, Seed: 9,
		MinOrder: 10, MaxOrder: 10,
		VertexLabels: 5, EdgeLabels: 2,
		MeanFamily: 50, OutlierFrac: 0, Edits: 1,
		FeatureDim: 1, FeatureNoise: 0.01,
	}
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < db.Len(); i++ {
		d := ged.StarDistance(db.Graph(0), db.Graph(graph.ID(i)))
		// One edit touches at most a handful of stars; 2 edits across the
		// pair bound the distance well below scaffold-scale distances.
		if d > 20 {
			t.Errorf("family member %d at star distance %v from member 0", i, d)
		}
	}
}
