// Package dataset generates the synthetic graph databases that stand in for
// the paper's three real datasets (Table 3): the DUD molecular repository,
// DBLP 2-hop collaboration neighborhoods, and Amazon co-purchase
// neighborhoods. None of those corpora ship with this repository, so the
// generators reproduce the *properties the evaluation exercises* instead:
//
//   - planted structural families of varying size and tightness (the
//     clusters representative queries summarize), including singleton
//     "relevant outlier" families (the objects that blow up DisC answers);
//   - feature vectors correlated with structural family, so query-time
//     relevance functions select structurally coherent subpopulations
//     ("natural correlations between the feature and the structural space",
//     §8.1);
//   - per-dataset distance-scale differences: DUD-like graphs are small and
//     tightly clustered (low σ — the worst case for vantage FPR, Fig. 5(f)),
//     while Amazon-like graphs are heterogeneous, putting pairwise distances
//     much farther apart (the paper uses θ = 75 there vs θ = 10 for DUD).
//
// All generators are deterministic in (n, seed).
package dataset

import (
	"fmt"
	"math/rand"

	"graphrep/internal/graph"
)

// Config controls the family-structured generator underlying all presets.
type Config struct {
	// N is the number of graphs.
	N int
	// Seed makes generation deterministic.
	Seed int64
	// MinOrder and MaxOrder bound scaffold vertex counts.
	MinOrder, MaxOrder int
	// VertexLabels and EdgeLabels are alphabet sizes (≥ 1).
	VertexLabels, EdgeLabels int
	// MeanFamily is the mean family size; family sizes are geometric-ish so
	// a few families are large and many are small.
	MeanFamily int
	// OutlierFrac is the fraction of graphs emitted as singleton families.
	OutlierFrac float64
	// Edits is the maximum number of perturbation edits applied to a family
	// member relative to its scaffold; larger values loosen clusters.
	Edits int
	// ExtraEdgeProb adds shortcut edges to scaffolds, controlling density.
	ExtraEdgeProb float64
	// FeatureDim is the feature vector dimensionality (≥ 1).
	FeatureDim int
	// FeatureNoise is the per-dimension noise around the family profile;
	// small values correlate features tightly with structure.
	FeatureNoise float64
	// ProfileSparsity zeroes this fraction of each family profile's
	// dimensions, for sparse semantics such as topic vectors (example 2 of
	// Table 1). 0 keeps profiles dense.
	ProfileSparsity float64
	// MaxDegree caps vertex degrees (0 = unlimited). The molecule preset
	// uses 4 — a valence cap that keeps generated structures chemically
	// plausible.
	MaxDegree int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("dataset: N = %d", c.N)
	case c.MinOrder < 2 || c.MaxOrder < c.MinOrder:
		return fmt.Errorf("dataset: bad order range [%d,%d]", c.MinOrder, c.MaxOrder)
	case c.VertexLabels < 1 || c.EdgeLabels < 1:
		return fmt.Errorf("dataset: empty label alphabet")
	case c.MeanFamily < 1:
		return fmt.Errorf("dataset: MeanFamily = %d", c.MeanFamily)
	case c.OutlierFrac < 0 || c.OutlierFrac > 1:
		return fmt.Errorf("dataset: OutlierFrac = %v", c.OutlierFrac)
	case c.FeatureDim < 1:
		return fmt.Errorf("dataset: FeatureDim = %d", c.FeatureDim)
	case c.Edits < 0:
		return fmt.Errorf("dataset: Edits = %d", c.Edits)
	case c.ProfileSparsity < 0 || c.ProfileSparsity > 1:
		return fmt.Errorf("dataset: ProfileSparsity = %v", c.ProfileSparsity)
	case c.MaxDegree < 0 || (c.MaxDegree > 0 && c.MaxDegree < 2):
		return fmt.Errorf("dataset: MaxDegree = %d (need 0 or ≥ 2)", c.MaxDegree)
	}
	return nil
}

// Generate produces a database according to cfg.
func Generate(cfg Config) (*graph.Database, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	graphs := make([]*graph.Graph, 0, cfg.N)
	id := 0
	for id < cfg.N {
		// Family size: 1 for outliers, otherwise 1 + geometric with the
		// configured mean (clipped to what remains).
		size := 1
		if rng.Float64() >= cfg.OutlierFrac {
			size = 1 + geometric(rng, cfg.MeanFamily)
		}
		if size > cfg.N-id {
			size = cfg.N - id
		}
		scaffold := makeScaffold(rng, cfg)
		profile := makeProfile(rng, cfg.FeatureDim)
		if cfg.ProfileSparsity > 0 {
			for i := range profile {
				if rng.Float64() < cfg.ProfileSparsity {
					profile[i] = 0
				}
			}
		}
		for s := 0; s < size; s++ {
			g, err := perturb(rng, cfg, scaffold, profile, graph.ID(id))
			if err != nil {
				return nil, err
			}
			graphs = append(graphs, g)
			id++
		}
	}
	return graph.NewDatabase(graphs)
}

// geometric samples a geometric-ish variate with the given mean.
func geometric(rng *rand.Rand, mean int) int {
	n := 0
	p := 1.0 / float64(mean)
	for rng.Float64() > p {
		n++
		if n > 50*mean {
			break
		}
	}
	return n
}

// scaffold is the shared core of a structural family.
type scaffold struct {
	labels []graph.Label
	edges  []graph.Edge
}

// makeScaffold builds a connected labelled backbone: a cycle or path core
// plus pendant chains and optional shortcut edges (ring systems with side
// chains, in the molecule reading).
func makeScaffold(rng *rand.Rand, cfg Config) scaffold {
	order := cfg.MinOrder + rng.Intn(cfg.MaxOrder-cfg.MinOrder+1)
	sc := scaffold{labels: make([]graph.Label, order)}
	for v := range sc.labels {
		sc.labels[v] = graph.Label(rng.Intn(cfg.VertexLabels))
	}
	// Core: first coreLen vertices form a cycle (if ≥ 3) or path.
	coreLen := 3 + rng.Intn(4)
	if coreLen > order {
		coreLen = order
	}
	elabel := func() graph.Label { return graph.Label(rng.Intn(cfg.EdgeLabels)) }
	for v := 0; v+1 < coreLen; v++ {
		sc.edges = append(sc.edges, graph.Edge{U: v, V: v + 1, Label: elabel()})
	}
	if coreLen >= 3 {
		sc.edges = append(sc.edges, graph.Edge{U: 0, V: coreLen - 1, Label: elabel()})
	}
	// Remaining vertices attach to an earlier vertex with degree headroom
	// (pendant chains).
	deg := make([]int, order)
	for _, e := range sc.edges {
		deg[e.U]++
		deg[e.V]++
	}
	room := func(v int) bool { return cfg.MaxDegree == 0 || deg[v] < cfg.MaxDegree }
	for v := coreLen; v < order; v++ {
		u := rng.Intn(v)
		for tries := 0; !room(u) && tries < 4*v; tries++ {
			u = rng.Intn(v)
		}
		if !room(u) {
			for u = 0; u < v && !room(u); u++ {
			}
			if u == v {
				continue // no headroom anywhere: leave v isolated of extras
			}
		}
		sc.edges = append(sc.edges, graph.Edge{U: u, V: v, Label: elabel()})
		deg[u]++
		deg[v]++
	}
	// Shortcuts.
	for u := 0; u < order; u++ {
		for v := u + 2; v < order; v++ {
			if rng.Float64() < cfg.ExtraEdgeProb && room(u) && room(v) {
				if !hasEdge(sc.edges, u, v) {
					sc.edges = append(sc.edges, graph.Edge{U: u, V: v, Label: elabel()})
					deg[u]++
					deg[v]++
				}
			}
		}
	}
	return sc
}

func hasEdge(edges []graph.Edge, u, v int) bool {
	for _, e := range edges {
		if e.U == u && e.V == v {
			return true
		}
	}
	return false
}

// makeProfile draws a family feature profile in [0,1]^dim.
func makeProfile(rng *rand.Rand, dim int) []float64 {
	p := make([]float64, dim)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// perturb derives a family member: up to cfg.Edits random structural edits
// of the scaffold (relabel a vertex, add a pendant vertex, relabel an edge)
// plus features sampled around the family profile.
func perturb(rng *rand.Rand, cfg Config, sc scaffold, profile []float64, id graph.ID) (*graph.Graph, error) {
	labels := append([]graph.Label(nil), sc.labels...)
	edges := append([]graph.Edge(nil), sc.edges...)
	deg := make([]int, len(labels))
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	edits := rng.Intn(cfg.Edits + 1)
	for e := 0; e < edits; e++ {
		switch rng.Intn(3) {
		case 0: // relabel a vertex
			labels[rng.Intn(len(labels))] = graph.Label(rng.Intn(cfg.VertexLabels))
		case 1: // add a pendant vertex (respecting the degree cap)
			u := rng.Intn(len(labels))
			if cfg.MaxDegree > 0 && deg[u] >= cfg.MaxDegree {
				continue
			}
			labels = append(labels, graph.Label(rng.Intn(cfg.VertexLabels)))
			deg = append(deg, 1)
			deg[u]++
			edges = append(edges, graph.Edge{U: u, V: len(labels) - 1, Label: graph.Label(rng.Intn(cfg.EdgeLabels))})
		case 2: // relabel an edge
			if len(edges) > 0 {
				edges[rng.Intn(len(edges))].Label = graph.Label(rng.Intn(cfg.EdgeLabels))
			}
		}
	}
	b := graph.NewBuilder(len(labels))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.Label)
	}
	feats := make([]float64, cfg.FeatureDim)
	for i := range feats {
		feats[i] = clamp01(profile[i] + rng.NormFloat64()*cfg.FeatureNoise)
	}
	b.SetFeatures(feats)
	return b.Build(id)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// DUDLike emulates the DUD molecular repository: small molecule-sized
// graphs (~26 vertices), ~10 atom labels, 3 bond labels, tight families, a
// 10-dimensional binding-affinity feature vector.
func DUDLike(n int, seed int64) (*graph.Database, error) {
	return Generate(Config{
		N: n, Seed: seed,
		MinOrder: 18, MaxOrder: 32,
		VertexLabels: 10, EdgeLabels: 3,
		MeanFamily: 20, OutlierFrac: 0.04, Edits: 4,
		ExtraEdgeProb: 0.01,
		FeatureDim:    10, FeatureNoise: 0.08,
		MaxDegree: 4, // valence cap
	})
}

// DBLPLike emulates 2-hop collaboration neighborhoods: denser mid-sized
// graphs labelled by community, 1-D activity feature.
func DBLPLike(n int, seed int64) (*graph.Database, error) {
	return Generate(Config{
		N: n, Seed: seed,
		MinOrder: 25, MaxOrder: 60,
		VertexLabels: 6, EdgeLabels: 1,
		MeanFamily: 12, OutlierFrac: 0.08, Edits: 6,
		ExtraEdgeProb: 0.12,
		FeatureDim:    1, FeatureNoise: 0.1,
	})
}

// AmazonLike emulates co-purchase neighborhoods: heterogeneous sizes and
// loose families, so pairwise distances are spread far apart (the dataset
// where the paper operates at θ = 75).
func AmazonLike(n int, seed int64) (*graph.Database, error) {
	return Generate(Config{
		N: n, Seed: seed,
		MinOrder: 8, MaxOrder: 70,
		VertexLabels: 12, EdgeLabels: 1,
		MeanFamily: 10, OutlierFrac: 0.12, Edits: 10,
		ExtraEdgeProb: 0.08,
		FeatureDim:    1, FeatureNoise: 0.12,
	})
}

// Cascades emulates information cascade structures (Table 1, example 2):
// shallow tree-like reshare graphs whose vertices are labelled by user
// community and whose feature vector holds per-topic weights (sparse —
// cascades cover few topics). Families are recurring "memes": a shared
// cascade shape and topic mix. Query functions are typically topic-set
// similarities (core.TopicRelevance).
func Cascades(n int, seed int64) (*graph.Database, error) {
	return Generate(Config{
		N: n, Seed: seed,
		MinOrder: 8, MaxOrder: 40,
		VertexLabels: 12, EdgeLabels: 1,
		MeanFamily: 15, OutlierFrac: 0.06, Edits: 5,
		ExtraEdgeProb: 0.015, // cascades are nearly trees
		FeatureDim:    8, FeatureNoise: 0.06,
		ProfileSparsity: 0.6,
	})
}

// BugTraces emulates function call graphs from crash reports (Table 1,
// example 3): vertices labelled by function, edges by call relation, and a
// feature vector of occurrence counts over the last 7 days. Families are
// distinct root-cause bugs sharing a core call structure. Query functions
// are typically recency-weighted counts (core.WeightedRelevance).
func BugTraces(n int, seed int64) (*graph.Database, error) {
	return Generate(Config{
		N: n, Seed: seed,
		MinOrder: 10, MaxOrder: 30,
		VertexLabels: 20, EdgeLabels: 2,
		MeanFamily: 18, OutlierFrac: 0.05, Edits: 3,
		ExtraEdgeProb: 0.05,
		FeatureDim:    7, FeatureNoise: 0.1,
	})
}

// Names lists the available presets.
func Names() []string { return []string{"dud", "dblp", "amazon", "cascades", "bugs"} }

// ByName builds a preset dataset by name (see Names).
func ByName(name string, n int, seed int64) (*graph.Database, error) {
	switch name {
	case "dud":
		return DUDLike(n, seed)
	case "dblp":
		return DBLPLike(n, seed)
	case "amazon":
		return AmazonLike(n, seed)
	case "cascades":
		return Cascades(n, seed)
	case "bugs":
		return BugTraces(n, seed)
	default:
		return nil, fmt.Errorf("dataset: unknown preset %q (have %v)", name, Names())
	}
}
