package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatalf("new set: len=%d count=%d", s.Len(), s.Count())
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	if !s.Contains(64) || s.Contains(63) {
		t.Error("Contains wrong")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Error("Remove failed")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Error("Clear failed")
	}
}

func TestSetOps(t *testing.T) {
	a, b := New(100), New(100)
	for _, i := range []int{1, 5, 70} {
		a.Add(i)
	}
	for _, i := range []int{5, 70, 99} {
		b.Add(i)
	}
	u := a.Clone()
	u.Or(b)
	if !reflect.DeepEqual(u.Slice(), []int{1, 5, 70, 99}) {
		t.Errorf("Or = %v", u.Slice())
	}
	d := a.Clone()
	d.AndNot(b)
	if !reflect.DeepEqual(d.Slice(), []int{1}) {
		t.Errorf("AndNot = %v", d.Slice())
	}
	x := a.Clone()
	x.And(b)
	if !reflect.DeepEqual(x.Slice(), []int{5, 70}) {
		t.Errorf("And = %v", x.Slice())
	}
	if got := a.CountAndNot(b); got != 1 {
		t.Errorf("CountAndNot = %d", got)
	}
	if got := a.CountAnd(b); got != 2 {
		t.Errorf("CountAnd = %d", got)
	}
	if a.Equal(b) {
		t.Error("Equal(a,b) = true")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Equal(a, clone) = false")
	}
	if a.Equal(New(5)) {
		t.Error("Equal across capacities")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Add(i)
	}
	seen := 0
	s.Range(func(i int) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Errorf("early stop saw %d", seen)
	}
}

// Property: CountAndNot agrees with materialized AndNot, and Or/AndNot obey
// |a ∪ b| = |a| + |b \ a|.
func TestCountProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Float64() < 0.3 {
				a.Add(i)
			}
			if r.Float64() < 0.3 {
				b.Add(i)
			}
		}
		d := a.Clone()
		d.AndNot(b)
		if d.Count() != a.CountAndNot(b) {
			return false
		}
		u := a.Clone()
		u.Or(b)
		return u.Count() == a.Count()+b.CountAndNot(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSliceRoundTrip(t *testing.T) {
	s := New(77)
	want := []int{0, 13, 64, 76}
	for _, i := range want {
		s.Add(i)
	}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("Slice = %v, want %v", got, want)
	}
}
