// Package bitset provides a dense fixed-capacity bit set. θ-neighborhoods
// and coverage sets over the relevant graphs are represented as bitsets so
// that the greedy update N(g) ← N(g)\N(g*) (Alg. 1, lines 6–7) and coverage
// counting are word-parallel.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value of Set is unusable; create
// sets with New.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for bits [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// Add sets bit i.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Remove clears bit i.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Or sets s = s ∪ t. The sets must have equal capacity.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// AndNot sets s = s \ t. The sets must have equal capacity.
func (s *Set) AndNot(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// And sets s = s ∩ t. The sets must have equal capacity.
func (s *Set) And(t *Set) {
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// CountAndNot returns |s \ t| without modifying s: the marginal gain
// computation of the greedy loop.
func (s *Set) CountAndNot(t *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ t.words[i])
	}
	return c
}

// CountAnd returns |s ∩ t| without modifying s.
func (s *Set) CountAnd(t *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// Range calls fn for every set bit in ascending order; fn returning false
// stops the iteration.
func (s *Set) Range(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi<<6 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the set bits in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.Range(func(i int) bool { out = append(out, i); return true })
	return out
}

// Equal reports whether s and t contain the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}
