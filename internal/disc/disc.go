// Package disc implements the DisC diversity baseline (Drosou & Pitoura,
// "DisC diversity: result diversification based on dissimilarity and
// coverage", PVLDB 2012) in the form the paper compares against: the
// Grey-Greedy-DisC(Pruned) heuristic. DisC computes a covering independent
// set over the relevant objects — every relevant object lies within θ of
// some answer object, and answer objects are mutually more than θ apart.
//
// Unlike top-k representative queries, DisC has no budget: the answer grows
// until every relevant object is covered (Fig. 2(a) shows the resulting
// near-linear growth). For the scalability comparison the computation can be
// truncated at a target size (§8.2: "we stop the computation as soon as it
// attains a size of k").
package disc

import (
	"fmt"

	"graphrep/internal/bitset"
	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// Result is a DisC answer.
type Result struct {
	// Answer lists the selected objects in pick order.
	Answer []graph.ID
	// Covered is the number of relevant objects within θ of the answer.
	Covered int
	// Relevant is the number of relevant objects.
	Relevant int
	// Complete reports whether every relevant object is covered (false when
	// the computation was truncated by maxSize).
	Complete bool
}

// CompressionRatio is |covered| / |answer| — the measure Table 4's last row
// reports for DisC.
func (r *Result) CompressionRatio() float64 {
	if len(r.Answer) == 0 {
		return 0
	}
	return float64(r.Covered) / float64(len(r.Answer))
}

// Cover runs Grey-Greedy-DisC over the relevant graphs: neighborhoods are
// materialized through the range searcher (the M-tree in the paper's
// setup), then objects are greedily selected by how many still-uncovered
// ("white") objects they cover, until full coverage or maxSize answers
// (maxSize ≤ 0 means unbounded).
//
// Selected objects are mutually > θ apart: a pick covers (greys) its whole
// θ-neighborhood, and only uncovered objects are ever picked.
func Cover(db *graph.Database, rs metric.RangeSearcher, relevance core.Relevance, theta float64, maxSize int) (*Result, error) {
	if relevance == nil {
		return nil, fmt.Errorf("disc: nil relevance function")
	}
	if theta < 0 {
		return nil, fmt.Errorf("disc: negative theta %v", theta)
	}
	rel := core.Relevant(db, relevance)
	nb := core.RangeNeighborhoods(db, rs, rel, theta)
	res := &Result{Relevant: len(rel)}
	if len(rel) == 0 {
		res.Complete = true
		return res, nil
	}
	covered := bitset.New(len(rel))
	for covered.Count() < len(rel) {
		if maxSize > 0 && len(res.Answer) >= maxSize {
			break
		}
		best, bestGain := -1, 0
		for i := range rel {
			if covered.Contains(i) {
				continue // grey or black objects are never picked
			}
			if gain := nb.Sets[i].CountAndNot(covered); gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		covered.Or(nb.Sets[best])
		res.Answer = append(res.Answer, rel[best])
	}
	res.Covered = covered.Count()
	res.Complete = res.Covered == len(rel)
	return res, nil
}

// Independent verifies the DisC independence invariant: all answer objects
// pairwise more than θ apart. Intended for tests.
func Independent(m metric.Metric, answer []graph.ID, theta float64) bool {
	for i := 0; i < len(answer); i++ {
		for j := i + 1; j < len(answer); j++ {
			if m.Distance(answer[i], answer[j]) <= theta {
				return false
			}
		}
	}
	return true
}
