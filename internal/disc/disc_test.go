package disc

import (
	"math/rand"
	"testing"

	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

func randDB(t testing.TB, n int, seed int64) (*graph.Database, metric.Metric) {
	if t != nil {
		t.Helper()
	}
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := 2 + rng.Intn(6)
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(graph.Label(rng.Intn(3)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(u, v, 0)
				}
			}
		}
		b.SetFeatures([]float64{rng.Float64()})
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func allRelevant([]float64) bool { return true }

func TestCoverCoversEverything(t *testing.T) {
	db, m := randDB(t, 50, 1)
	rs := metric.NewLinearScan(db.Len(), m)
	res, err := Cover(db, rs, allRelevant, 4, 0)
	if err != nil {
		t.Fatalf("Cover: %v", err)
	}
	if !res.Complete || res.Covered != 50 || res.Relevant != 50 {
		t.Fatalf("res = %+v, want complete cover of 50", res)
	}
	// Coverage: every relevant object within θ of some answer object.
	for i := 0; i < db.Len(); i++ {
		ok := false
		for _, a := range res.Answer {
			if m.Distance(graph.ID(i), a) <= 4 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("object %d uncovered", i)
		}
	}
	// Independence: answer objects mutually > θ apart.
	if !Independent(m, res.Answer, 4) {
		t.Error("answer not independent")
	}
	if res.CompressionRatio() <= 0 {
		t.Error("CR <= 0")
	}
}

func TestCoverTruncation(t *testing.T) {
	db, m := randDB(t, 60, 2)
	rs := metric.NewLinearScan(db.Len(), m)
	full, err := Cover(db, rs, allRelevant, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Answer) < 3 {
		t.Skipf("θ too generous: full answer has %d objects", len(full.Answer))
	}
	trunc, err := Cover(db, rs, allRelevant, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trunc.Answer) != 3 {
		t.Errorf("truncated answer size = %d, want 3", len(trunc.Answer))
	}
	if trunc.Complete {
		t.Error("truncated result claims completeness")
	}
}

func TestCoverEmptyRelevant(t *testing.T) {
	db, m := randDB(t, 10, 3)
	rs := metric.NewLinearScan(db.Len(), m)
	res, err := Cover(db, rs, func([]float64) bool { return false }, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answer) != 0 || !res.Complete || res.CompressionRatio() != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestCoverErrors(t *testing.T) {
	db, m := randDB(t, 5, 4)
	rs := metric.NewLinearScan(db.Len(), m)
	if _, err := Cover(db, rs, nil, 4, 0); err == nil {
		t.Error("nil relevance accepted")
	}
	if _, err := Cover(db, rs, allRelevant, -1, 0); err == nil {
		t.Error("negative theta accepted")
	}
}

// Fig. 2(a) behaviour: DisC answer size grows with the relevant count, and a
// REP answer of the same size never covers less.
func TestDisCGrowsWithRelevantSet(t *testing.T) {
	db, m := randDB(t, 120, 5)
	rs := metric.NewLinearScan(db.Len(), m)
	small, err := Cover(db, rs, func(f []float64) bool { return f[0] > 0.7 }, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Cover(db, rs, allRelevant, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if large.Relevant <= small.Relevant {
		t.Skip("relevance split degenerate")
	}
	if len(large.Answer) < len(small.Answer) {
		t.Errorf("answer shrank as relevant set grew: %d -> %d", len(small.Answer), len(large.Answer))
	}
}

// REP with the same budget as a truncated DisC run is never worse in
// coverage: truncated DisC is a feasible (independence-constrained) answer
// for the coverage objective REP's greedy maximizes step by step.
func TestREPCoverageCompetitiveWithDisC(t *testing.T) {
	db, m := randDB(t, 80, 6)
	rs := metric.NewLinearScan(db.Len(), m)
	theta := 3.0
	dc, err := Cover(db, rs, allRelevant, theta, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.BaselineGreedy(db, m, core.Query{Relevance: allRelevant, Theta: theta, K: len(dc.Answer)})
	if err != nil {
		t.Fatal(err)
	}
	rel := core.Relevant(db, allRelevant)
	_, discCovered := core.Power(db, m, rel, dc.Answer, theta)
	// Not a theorem for arbitrary greedy divergence, but with the first pick
	// identical (both take the max-coverage object) REP should in practice
	// match or beat DisC; a regression here signals a broken greedy.
	if rep.Covered+2 < discCovered {
		t.Errorf("REP covered %d, DisC covered %d with equal budget", rep.Covered, discCovered)
	}
}
