package disc

import (
	"testing"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

func zoomFixture(t *testing.T) (*graph.Database, metric.Metric, metric.RangeSearcher, *Result) {
	t.Helper()
	db, m := randDB(t, 80, 40)
	rs := metric.NewLinearScan(db.Len(), m)
	base, err := Cover(db, rs, allRelevant, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Complete {
		t.Fatal("base cover incomplete")
	}
	return db, m, rs, base
}

func TestZoomInCoversAtFinerRadius(t *testing.T) {
	db, m, rs, base := zoomFixture(t)
	zoomed, err := ZoomIn(db, rs, allRelevant, base.Answer, 2, 0)
	if err != nil {
		t.Fatalf("ZoomIn: %v", err)
	}
	if !zoomed.Complete {
		t.Fatal("zoom-in cover incomplete")
	}
	// Finer radius needs at least as many answers.
	if len(zoomed.Answer) < len(base.Answer) {
		t.Errorf("zoom-in shrank the answer: %d -> %d", len(base.Answer), len(zoomed.Answer))
	}
	// Every old answer object is retained.
	old := make(map[graph.ID]bool)
	for _, id := range zoomed.Answer {
		old[id] = true
	}
	for _, id := range base.Answer {
		if !old[id] {
			t.Errorf("zoom-in dropped old answer %d", id)
		}
	}
	// Coverage at the new radius.
	for i := 0; i < db.Len(); i++ {
		ok := false
		for _, a := range zoomed.Answer {
			if m.Distance(graph.ID(i), a) <= 2 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("object %d uncovered after zoom-in", i)
		}
	}
}

func TestZoomOutShrinksAndStaysIndependent(t *testing.T) {
	db, m, rs, base := zoomFixture(t)
	zoomed, err := ZoomOut(db, rs, allRelevant, base.Answer, 8, 0)
	if err != nil {
		t.Fatalf("ZoomOut: %v", err)
	}
	if !zoomed.Complete {
		t.Fatal("zoom-out cover incomplete")
	}
	if len(zoomed.Answer) > len(base.Answer) {
		t.Errorf("zoom-out grew the answer: %d -> %d", len(base.Answer), len(zoomed.Answer))
	}
	if !Independent(m, zoomed.Answer, 8) {
		t.Error("zoom-out answer not independent at the new radius")
	}
	_ = db
}

func TestZoomTruncation(t *testing.T) {
	db, _, rs, base := zoomFixture(t)
	trunc, err := ZoomIn(db, rs, allRelevant, base.Answer[:2], 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trunc.Answer) > 3 {
		t.Errorf("maxSize ignored: %d answers", len(trunc.Answer))
	}
}

func TestZoomErrorsAndEmpty(t *testing.T) {
	db, _, rs, base := zoomFixture(t)
	if _, err := ZoomIn(db, rs, nil, base.Answer, 2, 0); err == nil {
		t.Error("ZoomIn nil relevance accepted")
	}
	if _, err := ZoomOut(db, rs, nil, base.Answer, 8, 0); err == nil {
		t.Error("ZoomOut nil relevance accepted")
	}
	if _, err := ZoomIn(db, rs, allRelevant, base.Answer, -1, 0); err == nil {
		t.Error("ZoomIn negative theta accepted")
	}
	if _, err := ZoomOut(db, rs, allRelevant, base.Answer, -1, 0); err == nil {
		t.Error("ZoomOut negative theta accepted")
	}
	none := func([]float64) bool { return false }
	in, err := ZoomIn(db, rs, none, base.Answer, 2, 0)
	if err != nil || !in.Complete || len(in.Answer) != 0 {
		t.Errorf("ZoomIn empty relevant: %+v, %v", in, err)
	}
	out, err := ZoomOut(db, rs, none, base.Answer, 8, 0)
	if err != nil || !out.Complete || len(out.Answer) != 0 {
		t.Errorf("ZoomOut empty relevant: %+v, %v", out, err)
	}
}
