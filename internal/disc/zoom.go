package disc

import (
	"fmt"

	"graphrep/internal/bitset"
	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// The DisC paper defines adaptive zooming: given a DisC answer at θ, derive
// an answer at a smaller radius (zoom-in: finer-grained, larger answer) or a
// larger radius (zoom-out: coarser, smaller answer) while reusing the
// current answer instead of recomputing from scratch. These operators are
// what the paper's Fig. 6(i) refinement comparison exercises on the DisC
// side.

// ZoomIn adapts a DisC answer computed at some θ to a smaller radius
// newTheta: current answer objects are kept (they remain mutually
// independent at any smaller radius) and the objects they no longer cover
// are covered greedily by fresh picks.
func ZoomIn(db *graph.Database, rs metric.RangeSearcher, relevance core.Relevance, answer []graph.ID, newTheta float64, maxSize int) (*Result, error) {
	if relevance == nil {
		return nil, fmt.Errorf("disc: nil relevance function")
	}
	if newTheta < 0 {
		return nil, fmt.Errorf("disc: negative theta %v", newTheta)
	}
	rel := core.Relevant(db, relevance)
	nb := core.RangeNeighborhoods(db, rs, rel, newTheta)
	res := &Result{Relevant: len(rel)}
	if len(rel) == 0 {
		res.Complete = true
		return res, nil
	}
	covered := bitset.New(len(rel))
	inAnswer := make([]bool, len(rel))
	// Seed with the old answer (still independent at the smaller radius).
	for _, id := range answer {
		p := nb.Pos[id]
		if p < 0 || inAnswer[p] {
			continue
		}
		inAnswer[p] = true
		covered.Or(nb.Sets[p])
		res.Answer = append(res.Answer, id)
	}
	extendCover(nb, covered, inAnswer, res, maxSize)
	res.Covered = covered.Count()
	res.Complete = res.Covered == len(rel)
	return res, nil
}

// ZoomOut adapts a DisC answer to a larger radius newTheta: a maximal
// independent subset of the current answer (answers at the old radius may be
// closer than the new one) seeds the cover, and any remaining uncovered
// objects are covered greedily. The result is usually much smaller than the
// zoomed-in answer.
func ZoomOut(db *graph.Database, rs metric.RangeSearcher, relevance core.Relevance, answer []graph.ID, newTheta float64, maxSize int) (*Result, error) {
	if relevance == nil {
		return nil, fmt.Errorf("disc: nil relevance function")
	}
	if newTheta < 0 {
		return nil, fmt.Errorf("disc: negative theta %v", newTheta)
	}
	rel := core.Relevant(db, relevance)
	nb := core.RangeNeighborhoods(db, rs, rel, newTheta)
	res := &Result{Relevant: len(rel)}
	if len(rel) == 0 {
		res.Complete = true
		return res, nil
	}
	covered := bitset.New(len(rel))
	inAnswer := make([]bool, len(rel))
	// Greedily keep old answers by coverage, skipping those now within
	// newTheta of an already-kept answer (independence at the new radius).
	for {
		best, bestGain := -1, 0
		for _, id := range answer {
			p := nb.Pos[id]
			if p < 0 || inAnswer[p] || covered.Contains(p) {
				continue
			}
			if gain := nb.Sets[p].CountAndNot(covered); gain > bestGain {
				best, bestGain = p, gain
			}
		}
		if best < 0 {
			break
		}
		inAnswer[best] = true
		covered.Or(nb.Sets[best])
		res.Answer = append(res.Answer, rel[best])
		if maxSize > 0 && len(res.Answer) >= maxSize {
			break
		}
	}
	extendCover(nb, covered, inAnswer, res, maxSize)
	res.Covered = covered.Count()
	res.Complete = res.Covered == len(rel)
	return res, nil
}

// extendCover runs the Grey-Greedy loop until full coverage or maxSize.
func extendCover(nb *core.Neighborhoods, covered *bitset.Set, inAnswer []bool, res *Result, maxSize int) {
	for covered.Count() < len(nb.Rel) {
		if maxSize > 0 && len(res.Answer) >= maxSize {
			return
		}
		best, bestGain := -1, 0
		for i := range nb.Rel {
			if inAnswer[i] || covered.Contains(i) {
				continue
			}
			if gain := nb.Sets[i].CountAndNot(covered); gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return
		}
		inAnswer[best] = true
		covered.Or(nb.Sets[best])
		res.Answer = append(res.Answer, nb.Rel[best])
	}
}
