package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a line-oriented exchange format, one block per graph:
//
//	g <id> <order> <size> <featureDim>
//	v <label> <label> ...            (order labels)
//	e <u> <v> <label>                (size lines)
//	f <f1> <f2> ...                  (featureDim values; omitted when 0)
//
// It is deliberately simple: diffable, greppable, and stable across versions.

// WriteDatabase writes db in the text format.
func WriteDatabase(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	for i, n := 0, db.Len(); i < n; i++ {
		if err := writeGraph(bw, db.Graph(ID(i))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeGraph(w *bufio.Writer, g *Graph) error {
	if _, err := fmt.Fprintf(w, "g %d %d %d %d\n", g.id, g.Order(), g.Size(), len(g.features)); err != nil {
		return err
	}
	w.WriteString("v")
	for _, l := range g.labels {
		fmt.Fprintf(w, " %d", l)
	}
	w.WriteByte('\n')
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "e %d %d %d\n", e.U, e.V, e.Label)
	}
	if len(g.features) > 0 {
		w.WriteString("f")
		for _, f := range g.features {
			fmt.Fprintf(w, " %g", f)
		}
		w.WriteByte('\n')
	}
	return nil
}

// ReadDatabase parses the text format produced by WriteDatabase.
func ReadDatabase(r io.Reader) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var graphs []*Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !strings.HasPrefix(text, "g ") {
			return nil, fmt.Errorf("graph: line %d: expected graph header, got %q", line, text)
		}
		var id, order, size, dim int
		if _, err := fmt.Sscanf(text, "g %d %d %d %d", &id, &order, &size, &dim); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad header %q: %w", line, text, err)
		}
		b := NewBuilder(order)
		if !sc.Scan() {
			return nil, fmt.Errorf("graph: line %d: missing vertex line", line)
		}
		line++
		vparts := strings.Fields(sc.Text())
		if len(vparts) != order+1 || vparts[0] != "v" {
			return nil, fmt.Errorf("graph: line %d: want %d vertex labels", line, order)
		}
		for _, p := range vparts[1:] {
			l, err := strconv.ParseUint(p, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad label %q: %w", line, p, err)
			}
			b.AddVertex(Label(l))
		}
		for i := 0; i < size; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("graph: line %d: missing edge %d", line, i)
			}
			line++
			var u, v int
			var l uint32
			if _, err := fmt.Sscanf(sc.Text(), "e %d %d %d", &u, &v, &l); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q: %w", line, sc.Text(), err)
			}
			b.AddEdge(u, v, Label(l))
		}
		if dim > 0 {
			if !sc.Scan() {
				return nil, fmt.Errorf("graph: line %d: missing feature line", line)
			}
			line++
			fparts := strings.Fields(sc.Text())
			if len(fparts) != dim+1 || fparts[0] != "f" {
				return nil, fmt.Errorf("graph: line %d: want %d features", line, dim)
			}
			feats := make([]float64, dim)
			for j, p := range fparts[1:] {
				f, err := strconv.ParseFloat(p, 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad feature %q: %w", line, p, err)
				}
				feats[j] = f
			}
			b.SetFeatures(feats)
		}
		g, err := b.Build(ID(id))
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		graphs = append(graphs, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewDatabase(graphs)
}
