package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.AddVertex(0)
	}
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(4, 5, 0)
	g := b.MustBuild(0)
	comps := g.Components()
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("Components = %v, want %v", comps, want)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestConnectedCases(t *testing.T) {
	empty := NewBuilder(0).MustBuild(0)
	if !empty.Connected() {
		t.Error("empty graph not connected")
	}
	single := NewBuilder(1)
	single.AddVertex(1)
	if !single.MustBuild(0).Connected() {
		t.Error("single vertex not connected")
	}
	tri := NewBuilder(3)
	for i := 0; i < 3; i++ {
		tri.AddVertex(0)
	}
	tri.AddEdge(0, 1, 0)
	tri.AddEdge(1, 2, 0)
	if !tri.MustBuild(0).Connected() {
		t.Error("path not connected")
	}
}

// Property: component sizes sum to the order, and every edge stays within
// one component.
func TestComponentsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 0, 12)
		comps := g.Components()
		total := 0
		compOf := make([]int, g.Order())
		for ci, comp := range comps {
			total += len(comp)
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		if total != g.Order() {
			return false
		}
		for _, e := range g.Edges() {
			if compOf[e.U] != compOf[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}
