package graph

import "sort"

// Star is the 1-hop decomposition unit of Zeng et al. ("Comparing Stars",
// VLDB 2009): a center vertex label plus the sorted multiset of (edge label,
// leaf label) pairs around it. The star-matching distance in internal/ged
// compares two graphs by optimally assigning their stars; with the metric
// ground cost used there the resulting distance is itself a metric, which is
// what makes every triangle-inequality theorem in the paper sound.
type Star struct {
	Center Label
	// Spokes are sorted by (EdgeLabel, LeafLabel).
	Spokes []Spoke
}

// Spoke is one incident edge of a star.
type Spoke struct {
	EdgeLabel Label
	LeafLabel Label
}

// Degree returns the number of spokes.
func (s Star) Degree() int { return len(s.Spokes) }

// Stars returns the star decomposition of g: one star per vertex.
func (g *Graph) Stars() []Star {
	stars := make([]Star, g.Order())
	for v := 0; v < g.Order(); v++ {
		st := Star{Center: g.labels[v], Spokes: make([]Spoke, 0, g.Degree(v))}
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			st.Spokes = append(st.Spokes, Spoke{EdgeLabel: g.adjLabel[i], LeafLabel: g.labels[g.adjTo[i]]})
		}
		sort.Slice(st.Spokes, func(i, j int) bool {
			if st.Spokes[i].EdgeLabel != st.Spokes[j].EdgeLabel {
				return st.Spokes[i].EdgeLabel < st.Spokes[j].EdgeLabel
			}
			return st.Spokes[i].LeafLabel < st.Spokes[j].LeafLabel
		})
		stars[v] = st
	}
	return stars
}
