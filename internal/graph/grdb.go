package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"graphrep/internal/mmapfile"
)

// Format GRDB001: the zero-copy graph container, the corpus-side sibling of
// the NBIDX004 index container. Where the text format parses every graph into
// heap-resident CSR slices, a GRDB001 file is a flat offset-tabled layout
// readable in place from a byte slice — typically a memory mapping — so
// opening a database costs O(header + directory), not O(corpus), and graph
// content stays in the page cache, shared across processes serving one file.
//
//	header     magic "GRDB001\0" | u64 sectionCount | u64 fileSize
//	directory  sectionCount × { u32 kind | u32 reserved | u64 off | u64 len }
//	sections   raw little-endian arrays, each 8-byte aligned, zero-padded
//
// The sections form one database-wide CSR: a per-graph vertex offset table
// into global label/adjacency-offset arrays, and a global half-edge array the
// adjacency offsets index. A Graph handle materialized from the container is
// three subslices plus two shared slices — no decoding, no copying.
const (
	grdbMeta     = 1 // u64 ×4: graphCount, featureDim, totalVertices, totalHalves
	grdbVtxOff   = 2 // u64 graphCount+1: graph -> first vertex, prefix sums
	grdbAdjOff   = 3 // u64 totalVertices+1: vertex -> first half-edge, prefix sums
	grdbLabels   = 4 // u32 totalVertices: vertex labels
	grdbAdjTo    = 5 // i32 totalHalves: neighbor (graph-local vertex index)
	grdbAdjLabel = 6 // u32 totalHalves: connecting edge label
	grdbFeatures = 7 // f64 graphCount×featureDim, row-major
)

// GRDBMagic is the 8-byte magic prefix of a GRDB001 container, exported so
// CLI loaders can sniff the format.
var GRDBMagic = [8]byte{'G', 'R', 'D', 'B', '0', '0', '1', 0}

const (
	grdbHeaderLen   = 24
	grdbDirEntryLen = 24
)

func grdbPad8(n uint64) uint64 { return (n + 7) &^ 7 }

// grdbSection is one directory entry during encoding, paired with the
// function that writes its body.
type grdbSection struct {
	kind   uint32
	length uint64
	write  func(w io.Writer) error
}

// grdbWriteLE returns a section body writer emitting v in little-endian —
// the single choke point for array sections, so the writer never touches
// unsafe.
func grdbWriteLE(v any) func(io.Writer) error {
	return func(w io.Writer) error { return binary.Write(w, binary.LittleEndian, v) }
}

// SaveDatabase persists db in the GRDB001 zero-copy layout. Output bytes are
// a pure function of the database contents: sections are emitted in a fixed
// order, offsets are derived deterministically, and padding is zero — so the
// same corpus always produces the same file, byte for byte, whether it was
// text-loaded, generated, or itself mapped.
func SaveDatabase(w io.Writer, db *Database) error {
	n := db.Len()
	dim := db.FeatureDim()
	vtxOff := make([]uint64, n+1)
	var adjOff []uint64
	var labels []Label
	var adjTo []int32
	var adjLabel []Label
	features := make([]float64, 0, n*dim)
	adjOff = append(adjOff, 0)
	for i := 0; i < n; i++ {
		g := db.Graph(ID(i))
		if len(g.Features()) != dim {
			return fmt.Errorf("graph: graph %d has feature dim %d, want %d", i, len(g.Features()), dim)
		}
		vtxOff[i+1] = vtxOff[i] + uint64(g.Order())
		labels = append(labels, g.labels...)
		base := adjOff[len(adjOff)-1]
		for v := 0; v < g.Order(); v++ {
			// Rebase the graph's absolute offsets (mapped handles carry
			// file-global values) onto this file's half-edge array.
			adjOff = append(adjOff, base+(g.adjOff[v+1]-g.adjOff[0]))
		}
		adjTo = append(adjTo, g.adjTo[g.adjOff[0]:g.adjOff[g.Order()]]...)
		adjLabel = append(adjLabel, g.adjLabel[g.adjOff[0]:g.adjOff[g.Order()]]...)
		features = append(features, g.Features()...)
	}

	meta := []uint64{uint64(n), uint64(dim), vtxOff[n], uint64(len(adjTo))}
	sections := []grdbSection{
		{grdbMeta, uint64(8 * len(meta)), grdbWriteLE(meta)},
		{grdbVtxOff, uint64(8 * len(vtxOff)), grdbWriteLE(vtxOff)},
		{grdbAdjOff, uint64(8 * len(adjOff)), grdbWriteLE(adjOff)},
		{grdbLabels, uint64(4 * len(labels)), grdbWriteLE(labels)},
		{grdbAdjTo, uint64(4 * len(adjTo)), grdbWriteLE(adjTo)},
		{grdbAdjLabel, uint64(4 * len(adjLabel)), grdbWriteLE(adjLabel)},
		{grdbFeatures, uint64(8 * len(features)), grdbWriteLE(features)},
	}

	off := uint64(grdbHeaderLen + grdbDirEntryLen*len(sections))
	offs := make([]uint64, len(sections))
	for i, sec := range sections {
		off = grdbPad8(off)
		offs[i] = off
		off += sec.length
	}
	fileSize := grdbPad8(off)

	var hdr [grdbHeaderLen]byte
	copy(hdr[:8], GRDBMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(sections)))
	binary.LittleEndian.PutUint64(hdr[16:], fileSize)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var ent [grdbDirEntryLen]byte
	for i, sec := range sections {
		binary.LittleEndian.PutUint32(ent[0:], sec.kind)
		binary.LittleEndian.PutUint32(ent[4:], 0)
		binary.LittleEndian.PutUint64(ent[8:], offs[i])
		binary.LittleEndian.PutUint64(ent[16:], sec.length)
		if _, err := w.Write(ent[:]); err != nil {
			return err
		}
	}
	var zeros [8]byte
	pos := uint64(grdbHeaderLen + grdbDirEntryLen*len(sections))
	for i, sec := range sections {
		if p := offs[i] - pos; p > 0 {
			if _, err := w.Write(zeros[:p]); err != nil {
				return err
			}
		}
		if err := sec.write(w); err != nil {
			return fmt.Errorf("graph: write section kind %d: %w", sec.kind, err)
		}
		pos = offs[i] + sec.length
	}
	if p := fileSize - pos; p > 0 {
		if _, err := w.Write(zeros[:p]); err != nil {
			return err
		}
	}
	return nil
}

// grdbDir is the parsed directory: section lookup by kind.
type grdbDir struct {
	secs map[uint32][]byte
}

func (d *grdbDir) section(kind uint32) ([]byte, error) {
	b, ok := d.secs[kind]
	if !ok {
		return nil, fmt.Errorf("graph: GRDB container is missing section kind %d", kind)
	}
	return b, nil
}

// parseGRDB validates the header and directory of a GRDB001 container:
// magic, file size, per-entry alignment and bounds (overflow-safe), no
// duplicate kinds, and no overlapping sections. Section bodies are NOT
// examined — that is the store constructor's and EnsureValid's job — but
// after parseGRDB every section slice is guaranteed to lie inside data.
func parseGRDB(data []byte) (*grdbDir, error) {
	if len(data) < grdbHeaderLen {
		return nil, fmt.Errorf("graph: GRDB container of %d bytes is shorter than the header", len(data))
	}
	if [8]byte(data[:8]) != GRDBMagic {
		return nil, fmt.Errorf("graph: bad GRDB magic %q", data[:8])
	}
	count := binary.LittleEndian.Uint64(data[8:])
	fileSize := binary.LittleEndian.Uint64(data[16:])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("graph: GRDB header declares %d bytes, file has %d", fileSize, len(data))
	}
	if count == 0 || count > uint64(len(data)-grdbHeaderLen)/grdbDirEntryLen {
		return nil, fmt.Errorf("graph: implausible GRDB section count %d for %d bytes", count, len(data))
	}
	dirEnd := uint64(grdbHeaderLen) + count*grdbDirEntryLen
	d := &grdbDir{secs: make(map[uint32][]byte, count)}
	type span struct{ off, end uint64 }
	spans := make([]span, 0, count)
	for i := uint64(0); i < count; i++ {
		ent := data[grdbHeaderLen+i*grdbDirEntryLen:]
		kind := binary.LittleEndian.Uint32(ent[0:])
		off := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		if off%8 != 0 {
			return nil, fmt.Errorf("graph: GRDB section %d (kind %d) at unaligned offset %d", i, kind, off)
		}
		if off < dirEnd || off > fileSize || length > fileSize-off {
			return nil, fmt.Errorf("graph: GRDB section %d (kind %d) spans [%d, %d+%d) outside the file",
				i, kind, off, off, length)
		}
		if _, dup := d.secs[kind]; dup {
			return nil, fmt.Errorf("graph: GRDB container has duplicate section kind %d", kind)
		}
		d.secs[kind] = data[off : off+length : off+length]
		spans = append(spans, span{off: off, end: off + length})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	for i := 1; i < len(spans); i++ {
		if spans[i].off < spans[i-1].end {
			return nil, fmt.Errorf("graph: GRDB sections overlap at offset %d", spans[i].off)
		}
	}
	return d, nil
}

// grdbView builds a typed view over one section, naming the section on error.
func grdbView[T mmapfile.Scalar](d *grdbDir, kind uint32) ([]T, error) {
	b, err := d.section(kind)
	if err != nil {
		return nil, err
	}
	v, err := mmapfile.View[T](b)
	if err != nil {
		return nil, fmt.Errorf("graph: GRDB section kind %d: %w", kind, err)
	}
	return v, nil
}

// mappedStore serves graphs as zero-copy views over a GRDB001 image. Opening
// one runs only the O(1) shape checks below; the O(corpus) content scan
// (offset monotonicity, neighbor ranges, mirror-edge consistency, finite
// features) defers to EnsureValid — a sync.Once the session-creation and
// Insert paths trigger — which is what keeps open time flat in corpus size.
type mappedStore struct {
	f   *mmapfile.File // backing image; nil when built from foreign bytes
	n   int            // graph count
	dim int            // feature dimensionality
	// The CSR sections. Cross-section length couplings and endpoint values
	// are checked at open; interior offset values are content the deferred
	// scan bounds before anything indexes through them.

	// vtxOff maps graph -> first vertex; interior values are
	// validated by EnsureValid (nondecreasing, 32-bit orders).
	vtxOff []uint64
	// adjOff maps vertex -> first half-edge; interior values are
	// validated by EnsureValid (nondecreasing, every row inside adjTo).
	adjOff   []uint64
	labels   []Label
	adjTo    []int32
	adjLabel []Label
	features []float64

	validateOnce sync.Once
	validateErr  error
}

// OpenDatabaseBytes opens a GRDB001 image already resident in memory. The
// returned database serves graph content as views over data, so data must
// stay alive and unmodified for the database's lifetime. Close is a no-op.
func OpenDatabaseBytes(data []byte) (*Database, error) {
	s, err := newMappedStore(data, nil)
	if err != nil {
		return nil, err
	}
	return newDatabase(s), nil
}

// OpenDatabaseFile opens a GRDB001 container written by SaveDatabase,
// memory-mapping it unless disableMmap is set (or the platform lacks mmap, or
// GRAPHREP_DISABLE_MMAP is set), and serving every graph zero-copy from the
// mapping. Open cost is O(1) in the corpus size: only the header, directory,
// and section shape are checked here, and the deferred content validation
// (EnsureValid) runs once on first indexed use. Call Database.Close when done
// to release the mapping — after no reads remain in flight.
func OpenDatabaseFile(path string, disableMmap bool) (*Database, error) {
	var f *mmapfile.File
	var err error
	if disableMmap {
		f, err = mmapfile.OpenReadAll(path)
	} else {
		f, err = mmapfile.Open(path)
	}
	if err != nil {
		return nil, err
	}
	s, err := newMappedStore(f.Bytes(), f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return newDatabase(s), nil
}

// newMappedStore parses the container and runs the O(1) shape checks: every
// section present and typed, lengths coupled to the meta counts, and the
// offset-table endpoints equal to those counts. Interior offsets, neighbors,
// labels, and features are content — EnsureValid's job.
func newMappedStore(data []byte, f *mmapfile.File) (*mappedStore, error) {
	d, err := parseGRDB(data)
	if err != nil {
		return nil, err
	}
	meta, err := grdbView[uint64](d, grdbMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != 4 {
		return nil, fmt.Errorf("graph: GRDB meta has %d entries, want 4", len(meta))
	}
	gc, dim, totalV, totalH := meta[0], meta[1], meta[2], meta[3]
	if gc > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("graph: GRDB declares %d graphs; IDs are 32-bit", gc)
	}
	if dim > 1<<20 {
		return nil, fmt.Errorf("graph: implausible GRDB feature dim %d", dim)
	}
	// Every count must be backed by section bytes, so the length couplings
	// below also bound gc/totalV/totalH by the file size.
	vtxOff, err := grdbView[uint64](d, grdbVtxOff)
	if err != nil {
		return nil, err
	}
	adjOff, err := grdbView[uint64](d, grdbAdjOff)
	if err != nil {
		return nil, err
	}
	labels, err := grdbView[Label](d, grdbLabels)
	if err != nil {
		return nil, err
	}
	adjTo, err := grdbView[int32](d, grdbAdjTo)
	if err != nil {
		return nil, err
	}
	adjLabel, err := grdbView[Label](d, grdbAdjLabel)
	if err != nil {
		return nil, err
	}
	features, err := grdbView[float64](d, grdbFeatures)
	if err != nil {
		return nil, err
	}
	if uint64(len(vtxOff)) != gc+1 {
		return nil, fmt.Errorf("graph: GRDB vertex offsets have %d entries for %d graphs", len(vtxOff), gc)
	}
	if uint64(len(adjOff)) != totalV+1 {
		return nil, fmt.Errorf("graph: GRDB adjacency offsets have %d entries for %d vertices", len(adjOff), totalV)
	}
	if uint64(len(labels)) != totalV {
		return nil, fmt.Errorf("graph: GRDB labels cover %d vertices, meta declares %d", len(labels), totalV)
	}
	if uint64(len(adjTo)) != totalH || uint64(len(adjLabel)) != totalH {
		return nil, fmt.Errorf("graph: GRDB adjacency covers %d/%d halves, meta declares %d",
			len(adjTo), len(adjLabel), totalH)
	}
	if totalH%2 != 0 {
		return nil, fmt.Errorf("graph: GRDB half-edge count %d is odd", totalH)
	}
	if uint64(len(features)) != gc*dim {
		return nil, fmt.Errorf("graph: GRDB features cover %d values for %d graphs × dim %d",
			len(features), gc, dim)
	}
	if vtxOff[0] != 0 || vtxOff[gc] != totalV {
		return nil, fmt.Errorf("graph: GRDB vertex offsets span [%d, %d], want [0, %d]",
			vtxOff[0], vtxOff[gc], totalV)
	}
	if adjOff[0] != 0 || adjOff[totalV] != totalH {
		return nil, fmt.Errorf("graph: GRDB adjacency offsets span [%d, %d], want [0, %d]",
			adjOff[0], adjOff[totalV], totalH)
	}
	return &mappedStore{
		f: f, n: int(gc), dim: int(dim),
		vtxOff: vtxOff, adjOff: adjOff, labels: labels,
		adjTo: adjTo, adjLabel: adjLabel, features: features,
	}, nil
}

func (s *mappedStore) Len() int        { return s.n }
func (s *mappedStore) FeatureDim() int { return s.dim }
func (s *mappedStore) Mapped() bool    { return s.f != nil && s.f.Mapped() }

// Graph materializes a handle for id: three subslices of the mapped sections
// plus the two shared half-edge arrays — O(1) time and a small constant of
// heap, independent of the graph's size, with no content copied off the
// mapping. Handles are not cached: the store's heap retention stays a small
// constant rather than O(corpus), which is the point of the mapped path.
func (s *mappedStore) Graph(id ID) *Graph {
	lo := s.vtxOff[id]   //lint:allow oncevalid sessions, Insert, and Validate run EnsureValid before any graph access
	hi := s.vtxOff[id+1] //lint:allow oncevalid sessions, Insert, and Validate run EnsureValid before any graph access
	g := &Graph{
		id:       id,
		labels:   s.labels[lo:hi:hi],
		adjOff:   s.adjOff[lo : hi+1 : hi+1],
		adjTo:    s.adjTo[:len(s.adjTo):len(s.adjTo)],
		adjLabel: s.adjLabel[:len(s.adjLabel):len(s.adjLabel)],
	}
	if s.dim > 0 {
		f := uint64(id) * uint64(s.dim)
		g.features = s.features[f : f+uint64(s.dim) : f+uint64(s.dim)]
	}
	return g
}

func (s *mappedStore) Features(id ID) []float64 {
	if s.dim == 0 {
		return nil
	}
	f := uint64(id) * uint64(s.dim)
	return s.features[f : f+uint64(s.dim) : f+uint64(s.dim)]
}

func (s *mappedStore) Close() error {
	if s.f == nil {
		return nil
	}
	return s.f.Close()
}

// EnsureValid runs the deferred O(corpus) content scan exactly once and
// caches the verdict: offset tables nondecreasing (with per-graph orders
// fitting the 32-bit neighbor encoding), every adjacency row strictly
// ascending within [0, order) with no self-loops, every half-edge mirrored
// with an equal label on the other endpoint, and every feature finite. After
// a nil return, every Graph method on every handle is panic-free: all
// indexing is through values this scan bounded.
func (s *mappedStore) EnsureValid() error {
	s.validateOnce.Do(func() { s.validateErr = s.validate() })
	return s.validateErr
}

// validate is EnsureValid's single-run body.
func (s *mappedStore) validate() error {
	// Monotone offset tables first: with the endpoint equalities checked at
	// open, nondecreasing offsets bound every interior value, so the scans
	// below (and every Graph handle afterwards) index in range.
	for i := 0; i+1 < len(s.vtxOff); i++ {
		if s.vtxOff[i] > s.vtxOff[i+1] {
			return fmt.Errorf("graph: GRDB vertex offsets decrease at graph %d", i)
		}
	}
	for i := 0; i+1 < len(s.adjOff); i++ {
		if s.adjOff[i] > s.adjOff[i+1] {
			return fmt.Errorf("graph: GRDB adjacency offsets decrease at vertex %d", i)
		}
	}
	// Every half whose neighbor is the lower endpoint is matched (by binary
	// search) against a distinct higher-neighbor half in the mirror row; the
	// count equality below then makes that injection a bijection, so no
	// unmirrored half of either orientation survives.
	var lowHalves, highHalves uint64
	for i := 0; i < s.n; i++ {
		lo, hi := s.vtxOff[i], s.vtxOff[i+1]
		if hi-lo > uint64(math.MaxInt32) {
			return fmt.Errorf("graph: GRDB graph %d has %d vertices; orders are 32-bit", i, hi-lo)
		}
		order := int64(hi - lo)
		for v := lo; v < hi; v++ {
			local := int64(v - lo)
			prev := int64(-1)
			for j := s.adjOff[v]; j < s.adjOff[v+1]; j++ {
				w := int64(s.adjTo[j])
				if w < 0 || w >= order {
					return fmt.Errorf("graph: GRDB graph %d vertex %d has neighbor %d outside [0, %d)", i, local, w, order)
				}
				if w == local {
					return fmt.Errorf("graph: GRDB graph %d has a self-loop on vertex %d", i, local)
				}
				if w <= prev {
					return fmt.Errorf("graph: GRDB graph %d vertex %d has non-ascending neighbor %d", i, local, w)
				}
				prev = w
				if w > local {
					highHalves++
					continue // verified from the lower endpoint's half
				}
				lowHalves++
				// Mirror check: the reverse half (w -> local) must exist with
				// the same label. Rows are ascending, so binary search.
				gw := lo + uint64(w)
				mLo := s.adjOff[gw]
				row := s.adjTo[mLo:s.adjOff[gw+1]]
				k := sort.Search(len(row), func(k int) bool { return int64(row[k]) >= local })
				if k == len(row) || int64(row[k]) != local {
					return fmt.Errorf("graph: GRDB graph %d edge (%d,%d) has no mirror half", i, w, local)
				}
				if s.adjLabel[mLo+uint64(k)] != s.adjLabel[j] {
					return fmt.Errorf("graph: GRDB graph %d edge (%d,%d) has mismatched labels %d/%d",
						i, w, local, s.adjLabel[mLo+uint64(k)], s.adjLabel[j])
				}
			}
		}
	}
	if lowHalves != highHalves {
		return fmt.Errorf("graph: GRDB adjacency has %d lower and %d higher halves; every edge needs one of each",
			lowHalves, highHalves)
	}
	for i, f := range s.features {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("graph: GRDB graph %d has non-finite feature %v", i/s.dim, f)
		}
	}
	return nil
}
