// Package graph provides the labelled undirected graph model used throughout
// the library. Graphs are the database objects of top-k representative
// queries: each graph carries a vertex-labelled, edge-labelled structure plus
// a numeric feature vector on which query-time relevance functions operate.
//
// Graphs are immutable once built (see Builder); immutability makes them safe
// to share between indexes, caches, and concurrent query workers without
// copying. The adjacency is stored in CSR form (offset table plus flat
// neighbor/label arrays), which is both the compact heap layout and, for
// databases opened from a GRDB001 container, a set of zero-copy views over a
// read-only mapping — one Graph value reads identically either way.
package graph

import (
	"fmt"
	"sort"
)

// Label identifies a vertex or edge type, e.g. an atom symbol, a community
// id, or a product category. The zero Label is valid and means "unlabelled".
type Label uint32

// Edge is an undirected labelled edge between two vertex indices.
type Edge struct {
	U, V  int
	Label Label
}

// Graph is an immutable labelled undirected graph tagged with a feature
// vector. Construct graphs with a Builder or one of the dataset generators.
//
// The adjacency is CSR: vertex v's incident half-edges occupy
// adjTo[adjOff[v]:adjOff[v+1]] (graph-local neighbor indices, ascending) with
// matching edge labels in adjLabel. Offsets are absolute indices into
// adjTo/adjLabel, not rebased per graph: a heap-built graph starts at
// adjOff[0] == 0 and owns exactly its own halves, while a graph served from a
// mapped database slices its offset row out of the file-global offset table
// and shares the file-global adjTo/adjLabel arrays. Every method indexes
// through adjOff, so it cannot tell the difference.
type Graph struct {
	id     ID
	labels []Label // vertex labels, indexed by vertex
	// adjOff has Order()+1 entries: absolute half-edge bounds per vertex.
	adjOff   []uint64
	adjTo    []int32   // neighbor vertex (graph-local), ascending per row
	adjLabel []Label   // connecting edge label, parallel to adjTo
	features []float64 // feature vector the relevance function sees
}

// ID uniquely identifies a graph within a Database.
type ID int32

// Order returns the number of vertices.
func (g *Graph) Order() int { return len(g.labels) }

// Size returns the number of edges.
func (g *Graph) Size() int {
	if len(g.adjOff) == 0 {
		return 0
	}
	return int(g.adjOff[len(g.adjOff)-1]-g.adjOff[0]) / 2
}

// ID returns the graph's database identifier.
func (g *Graph) ID() ID { return g.id }

// VertexLabel returns the label of vertex v.
func (g *Graph) VertexLabel(v int) Label { return g.labels[v] }

// VertexLabels returns the slice of all vertex labels. The caller must not
// modify the returned slice: for a mapped database it aliases the read-only
// mapping.
func (g *Graph) VertexLabels() []Label { return g.labels }

// Edges returns the normalized edge list (U < V, sorted by (U, V)). The list
// is derived from the CSR adjacency on every call, so callers on hot paths
// should iterate Neighbors instead; the returned slice is the caller's own.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.Size())
	for v := 0; v < g.Order(); v++ {
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if w := int(g.adjTo[i]); w > v {
				edges = append(edges, Edge{U: v, V: w, Label: g.adjLabel[i]})
			}
		}
	}
	return edges
}

// Features returns the graph's feature vector. The caller must not modify the
// returned slice.
func (g *Graph) Features() []float64 { return g.features }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.adjOff[v+1] - g.adjOff[v]) }

// Neighbors calls fn for every neighbor of v (ascending) with the connecting
// edge label.
func (g *Graph) Neighbors(v int, fn func(w int, l Label)) {
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		fn(int(g.adjTo[i]), g.adjLabel[i])
	}
}

// EdgeLabel returns the label of edge (u,v) and whether the edge exists.
func (g *Graph) EdgeLabel(u, v int) (Label, bool) {
	for i := g.adjOff[u]; i < g.adjOff[u+1]; i++ {
		if int(g.adjTo[i]) == v {
			return g.adjLabel[i], true
		}
	}
	return 0, false
}

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeLabel(u, v)
	return ok
}

// String renders a compact human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(id=%d, |V|=%d, |E|=%d)", g.id, g.Order(), g.Size())
}

// LabelHistogram returns label -> count over vertices.
func (g *Graph) LabelHistogram() map[Label]int {
	h := make(map[Label]int, 8)
	for _, l := range g.labels {
		h[l]++
	}
	return h
}

// EdgeLabelHistogram returns label -> count over edges.
func (g *Graph) EdgeLabelHistogram() map[Label]int {
	h := make(map[Label]int, 8)
	for v := 0; v < g.Order(); v++ {
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if int(g.adjTo[i]) > v {
				h[g.adjLabel[i]]++
			}
		}
	}
	return h
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	labels   []Label
	edges    []Edge
	features []float64
	err      error
}

// NewBuilder returns a Builder pre-sized for n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{labels: make([]Label, 0, n)}
}

// AddVertex appends a vertex with the given label and returns its index.
func (b *Builder) AddVertex(l Label) int {
	b.labels = append(b.labels, l)
	return len(b.labels) - 1
}

// AddEdge records an undirected edge between u and v. Self-loops and
// out-of-range endpoints are recorded as errors surfaced by Build.
func (b *Builder) AddEdge(u, v int, l Label) {
	if b.err != nil {
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop on vertex %d", u)
		return
	}
	if u < 0 || v < 0 || u >= len(b.labels) || v >= len(b.labels) {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", u, v, len(b.labels))
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{U: u, V: v, Label: l})
}

// SetFeatures attaches the feature vector. The slice is copied.
func (b *Builder) SetFeatures(f []float64) {
	b.features = append([]float64(nil), f...)
}

// Build finalizes the graph with the given id. Duplicate edges are an error.
func (b *Builder) Build(id ID) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	edges := append([]Edge(nil), b.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for i := 1; i < len(edges); i++ {
		if edges[i].U == edges[i-1].U && edges[i].V == edges[i-1].V {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", edges[i].U, edges[i].V)
		}
	}
	n := len(b.labels)
	adjOff := make([]uint64, n+1)
	for _, e := range edges {
		adjOff[e.U+1]++
		adjOff[e.V+1]++
	}
	for v := 0; v < n; v++ {
		adjOff[v+1] += adjOff[v]
	}
	adjTo := make([]int32, 2*len(edges))
	adjLabel := make([]Label, 2*len(edges))
	cur := append([]uint64(nil), adjOff[:n]...)
	// Filling rows in sorted-edge order leaves every row ascending: vertex
	// v first receives its lower neighbors (edges where it is V, U ascending
	// through the sort) and then its higher neighbors (edges where it is U,
	// V ascending).
	for _, e := range edges {
		adjTo[cur[e.U]], adjLabel[cur[e.U]] = int32(e.V), e.Label
		cur[e.U]++
		adjTo[cur[e.V]], adjLabel[cur[e.V]] = int32(e.U), e.Label
		cur[e.V]++
	}
	return &Graph{
		id:       id,
		labels:   append([]Label(nil), b.labels...),
		adjOff:   adjOff,
		adjTo:    adjTo,
		adjLabel: adjLabel,
		features: b.features,
	}, nil
}

// MustBuild is Build that panics on error; intended for tests and literals.
func (b *Builder) MustBuild(id ID) *Graph {
	g, err := b.Build(id)
	if err != nil {
		panic(err)
	}
	return g
}

// Clone returns a copy of g with a new id. Used by generators that derive
// perturbed family members from a scaffold.
func (g *Graph) Clone(id ID) *Builder {
	b := NewBuilder(g.Order())
	b.labels = append(b.labels, g.labels...)
	b.edges = append(b.edges, g.Edges()...)
	b.features = append([]float64(nil), g.features...)
	_ = id // id is assigned at Build time by the caller
	return b
}
