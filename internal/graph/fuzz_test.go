package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzReadDatabase hardens the text parser: arbitrary input must either
// parse into a database that validates and round-trips, or fail cleanly —
// never panic or loop.
func FuzzReadDatabase(f *testing.F) {
	seeds := []string{
		"",
		"# empty\n",
		"g 0 1 0 0\nv 3\n",
		"g 0 2 1 1\nv 3 4\ne 0 1 7\nf 0.25\n",
		"g 0 3 3 2\nv 1 2 3\ne 0 1 10\ne 1 2 11\ne 0 2 12\nf 0.5 1.5\n",
		"g 0 1 0 0\nv 3\ng 1 1 0 0\nv 4\n",
		"g 0 2 1 0\nv 1 1\ne 1 0 0\n",
		"g 0 1 1 0\nv 1\ne 0 0 0\n",            // self loop
		"g 0 1 0 0\nv 99999999999999\n",        // label overflow
		"g 5 1 0 0\nv 3\n",                     // wrong id
		"g 0 2 2 0\nv 1 1\ne 0 1 0\ne 0 1 1\n", // duplicate edge
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ReadDatabase(strings.NewReader(input))
		if err != nil {
			return // clean failure
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("parsed database fails validation: %v", err)
		}
		// Round trip must be stable.
		var buf bytes.Buffer
		if err := WriteDatabase(&buf, db); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		db2, err := ReadDatabase(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d vs %d", db2.Len(), db.Len())
		}
	})
}

// FuzzReadGRDB hardens the flat container against hostile bytes. The safety
// contract has two gates: OpenDatabaseBytes may reject outright, and
// EnsureValid may reject content the O(1) open skipped — but once both pass,
// every read path must be safe to drive to completion (no panic, no
// out-of-range access through the zero-copy views).
func FuzzReadGRDB(f *testing.F) {
	// Seed with valid containers of varied shape plus cheap corruptions of
	// one of them, so the fuzzer starts inside and just past the format.
	valid := func(n, dim int, seed int64) []byte {
		rng := rand.New(rand.NewSource(seed))
		graphs := make([]*Graph, n)
		for i := range graphs {
			order := 1 + rng.Intn(5)
			b := NewBuilder(order)
			for v := 0; v < order; v++ {
				b.AddVertex(Label(rng.Intn(4)))
			}
			for u := 0; u < order; u++ {
				for v := u + 1; v < order; v++ {
					if rng.Intn(2) == 0 {
						b.AddEdge(u, v, Label(rng.Intn(3)))
					}
				}
			}
			if dim > 0 {
				feats := make([]float64, dim)
				for j := range feats {
					feats[j] = rng.NormFloat64()
				}
				b.SetFeatures(feats)
			}
			g, err := b.Build(ID(i))
			if err != nil {
				f.Fatal(err)
			}
			graphs[i] = g
		}
		db, err := NewDatabase(graphs)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveDatabase(&buf, db); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	base := valid(6, 2, 1)
	f.Add([]byte{})
	f.Add(base)
	f.Add(valid(1, 0, 2))
	f.Add(valid(10, 1, 3))
	for _, pos := range []int{0, 8, 16, 24, 40, len(base) / 2, len(base) - 8} {
		mut := append([]byte(nil), base...)
		mut[pos] ^= 0x81
		f.Add(mut)
	}
	f.Add(base[:len(base)-4])
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := OpenDatabaseBytes(data)
		if err != nil {
			return // clean rejection at open
		}
		if err := db.EnsureValid(); err != nil {
			return // clean rejection at the deferred content scan
		}
		// Both gates passed: every read surface must now be total.
		for i := 0; i < db.Len(); i++ {
			g := db.Graph(ID(i))
			_ = g.Edges()
			_ = g.Stars()
			_ = g.WLHash(2)
			_ = g.Components()
			for v := 0; v < g.Order(); v++ {
				_ = g.Degree(v)
				_ = g.VertexLabel(v)
			}
			_ = db.Features(ID(i))
		}
		// A validated container must re-save into a container with identical
		// content. (Not necessarily identical bytes: parseGRDB tolerates
		// section orderings and padding gaps SaveDatabase never emits.)
		var buf bytes.Buffer
		if err := SaveDatabase(&buf, db); err != nil {
			t.Fatalf("re-save of validated container: %v", err)
		}
		db2, err := OpenDatabaseBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("reopen of re-saved container: %v", err)
		}
		if err := db2.EnsureValid(); err != nil {
			t.Fatalf("re-saved container fails validation: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("re-save changed length: %d vs %d", db2.Len(), db.Len())
		}
		for i := 0; i < db.Len(); i++ {
			if db2.Graph(ID(i)).WLHash(2) != db.Graph(ID(i)).WLHash(2) {
				t.Fatalf("re-save changed graph %d", i)
			}
		}
	})
}
