package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDatabase hardens the text parser: arbitrary input must either
// parse into a database that validates and round-trips, or fail cleanly —
// never panic or loop.
func FuzzReadDatabase(f *testing.F) {
	seeds := []string{
		"",
		"# empty\n",
		"g 0 1 0 0\nv 3\n",
		"g 0 2 1 1\nv 3 4\ne 0 1 7\nf 0.25\n",
		"g 0 3 3 2\nv 1 2 3\ne 0 1 10\ne 1 2 11\ne 0 2 12\nf 0.5 1.5\n",
		"g 0 1 0 0\nv 3\ng 1 1 0 0\nv 4\n",
		"g 0 2 1 0\nv 1 1\ne 1 0 0\n",
		"g 0 1 1 0\nv 1\ne 0 0 0\n",            // self loop
		"g 0 1 0 0\nv 99999999999999\n",        // label overflow
		"g 5 1 0 0\nv 3\n",                     // wrong id
		"g 0 2 2 0\nv 1 1\ne 0 1 0\ne 0 1 1\n", // duplicate edge
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ReadDatabase(strings.NewReader(input))
		if err != nil {
			return // clean failure
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("parsed database fails validation: %v", err)
		}
		// Round trip must be stable.
		var buf bytes.Buffer
		if err := WriteDatabase(&buf, db); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		db2, err := ReadDatabase(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d vs %d", db2.Len(), db.Len())
		}
	})
}
