package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWLHashEqualForIsomorphicRelabelings(t *testing.T) {
	// The same graph built with vertices in a different order (an explicit
	// isomorphism) must hash identically.
	b1 := NewBuilder(4)
	for _, l := range []Label{1, 2, 3, 4} {
		b1.AddVertex(l)
	}
	b1.AddEdge(0, 1, 7)
	b1.AddEdge(1, 2, 8)
	b1.AddEdge(2, 3, 9)
	g1 := b1.MustBuild(0)

	// Permutation (0 1 2 3) -> (3 2 1 0).
	b2 := NewBuilder(4)
	for _, l := range []Label{4, 3, 2, 1} {
		b2.AddVertex(l)
	}
	b2.AddEdge(3, 2, 7)
	b2.AddEdge(2, 1, 8)
	b2.AddEdge(1, 0, 9)
	g2 := b2.MustBuild(1)

	for _, rounds := range []int{0, 1, 3} {
		if g1.WLHash(rounds) != g2.WLHash(rounds) {
			t.Errorf("rounds=%d: isomorphic graphs hash differently", rounds)
		}
	}
}

func TestWLHashDistinguishesStructures(t *testing.T) {
	path := func(id ID) *Graph {
		b := NewBuilder(4)
		for i := 0; i < 4; i++ {
			b.AddVertex(1)
		}
		b.AddEdge(0, 1, 0)
		b.AddEdge(1, 2, 0)
		b.AddEdge(2, 3, 0)
		return b.MustBuild(id)
	}
	star := func(id ID) *Graph {
		b := NewBuilder(4)
		for i := 0; i < 4; i++ {
			b.AddVertex(1)
		}
		b.AddEdge(0, 1, 0)
		b.AddEdge(0, 2, 0)
		b.AddEdge(0, 3, 0)
		return b.MustBuild(id)
	}
	// Same size and labels: only refinement separates them.
	if path(0).WLHash(2) == star(1).WLHash(2) {
		t.Error("path and star hash equal after refinement")
	}
	// Different labels separate immediately.
	b := NewBuilder(1)
	b.AddVertex(5)
	c := NewBuilder(1)
	c.AddVertex(6)
	if b.MustBuild(0).WLHash(0) == c.MustBuild(1).WLHash(0) {
		t.Error("different single labels hash equal")
	}
}

// Property: hashing is invariant under random vertex permutations.
func TestWLHashPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 0, 9)
		perm := r.Perm(g.Order())
		b := NewBuilder(g.Order())
		for i := 0; i < g.Order(); i++ {
			b.AddVertex(0)
		}
		// Set labels under the permutation.
		b.labels = make([]Label, g.Order())
		for v := 0; v < g.Order(); v++ {
			b.labels[perm[v]] = g.VertexLabel(v)
		}
		for _, e := range g.Edges() {
			b.AddEdge(perm[e.U], perm[e.V], e.Label)
		}
		h, err := b.Build(99)
		if err != nil {
			return false
		}
		return g.WLHash(3) == h.WLHash(3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWLHash(b *testing.B) {
	g := randomGraph(rand.New(rand.NewSource(1)), 0, 26)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WLHash(3)
	}
}

func TestWLHashNegativeRounds(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 0, 5)
	if g.WLHash(-1) != g.WLHash(0) {
		t.Error("negative rounds not clamped")
	}
}
