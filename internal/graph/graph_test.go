package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T, id ID) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddVertex(1)
	b.AddVertex(2)
	b.AddVertex(3)
	b.AddEdge(0, 1, 10)
	b.AddEdge(1, 2, 11)
	b.AddEdge(2, 0, 12)
	b.SetFeatures([]float64{0.5, 1.5})
	g, err := b.Build(id)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := triangle(t, 7)
	if g.ID() != 7 {
		t.Errorf("ID = %d, want 7", g.ID())
	}
	if g.Order() != 3 || g.Size() != 3 {
		t.Errorf("order/size = %d/%d, want 3/3", g.Order(), g.Size())
	}
	if got := g.VertexLabel(1); got != 2 {
		t.Errorf("VertexLabel(1) = %d, want 2", got)
	}
	if d := g.Degree(0); d != 2 {
		t.Errorf("Degree(0) = %d, want 2", d)
	}
	if l, ok := g.EdgeLabel(2, 1); !ok || l != 11 {
		t.Errorf("EdgeLabel(2,1) = %d,%v want 11,true", l, ok)
	}
	if g.HasEdge(0, 0) {
		t.Error("HasEdge(0,0) = true")
	}
	if !strings.Contains(g.String(), "|V|=3") {
		t.Errorf("String() = %q", g.String())
	}
}

func TestBuilderEdgeNormalization(t *testing.T) {
	b := NewBuilder(2)
	b.AddVertex(0)
	b.AddVertex(0)
	b.AddEdge(1, 0, 5) // reversed endpoints must be normalized
	g, err := b.Build(0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	e := g.Edges()[0]
	if e.U != 0 || e.V != 1 || e.Label != 5 {
		t.Errorf("edge = %+v, want {0 1 5}", e)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(b *Builder)
	}{
		{"self-loop", func(b *Builder) { b.AddEdge(0, 0, 0) }},
		{"out-of-range", func(b *Builder) { b.AddEdge(0, 9, 0) }},
		{"negative", func(b *Builder) { b.AddEdge(-1, 0, 0) }},
		{"duplicate", func(b *Builder) { b.AddEdge(0, 1, 0); b.AddEdge(1, 0, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(2)
			b.AddVertex(0)
			b.AddVertex(0)
			tc.mod(b)
			if _, err := b.Build(0); err == nil {
				t.Error("Build succeeded, want error")
			}
		})
	}
}

func TestNeighbors(t *testing.T) {
	g := triangle(t, 0)
	var got []int
	g.Neighbors(1, func(w int, l Label) { got = append(got, w) })
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("neighbors of 1 = %v, want [0 2]", got)
	}
}

func TestHistograms(t *testing.T) {
	g := triangle(t, 0)
	vh := g.LabelHistogram()
	if len(vh) != 3 || vh[1] != 1 {
		t.Errorf("LabelHistogram = %v", vh)
	}
	eh := g.EdgeLabelHistogram()
	if len(eh) != 3 || eh[10] != 1 {
		t.Errorf("EdgeLabelHistogram = %v", eh)
	}
}

func TestClone(t *testing.T) {
	g := triangle(t, 0)
	g2, err := g.Clone(1).Build(1)
	if err != nil {
		t.Fatalf("Clone Build: %v", err)
	}
	if g2.Order() != g.Order() || g2.Size() != g.Size() {
		t.Error("clone differs structurally")
	}
	if !reflect.DeepEqual(g2.Features(), g.Features()) {
		t.Error("clone features differ")
	}
}

func TestDatabaseValidate(t *testing.T) {
	db, err := NewDatabase([]*Graph{triangle(t, 0), triangle(t, 1)})
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	if err := db.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if db.FeatureDim() != 2 {
		t.Errorf("FeatureDim = %d, want 2", db.FeatureDim())
	}
	if _, err := NewDatabase([]*Graph{triangle(t, 5)}); err == nil {
		t.Error("NewDatabase accepted wrong id")
	}
	if _, err := NewDatabase([]*Graph{nil}); err == nil {
		t.Error("NewDatabase accepted nil graph")
	}
}

func TestDatabaseStats(t *testing.T) {
	db, _ := NewDatabase([]*Graph{triangle(t, 0), triangle(t, 1)})
	s := db.Stats()
	if s.Graphs != 2 || s.AvgNodes != 3 || s.AvgEdges != 3 || s.MaxNodes != 3 || s.Labels != 3 {
		t.Errorf("Stats = %+v", s)
	}
	empty, _ := NewDatabase(nil)
	if s := empty.Stats(); s.Graphs != 0 || s.AvgNodes != 0 {
		t.Errorf("empty Stats = %+v", s)
	}
}

func TestStars(t *testing.T) {
	g := triangle(t, 0)
	stars := g.Stars()
	if len(stars) != 3 {
		t.Fatalf("len(stars) = %d", len(stars))
	}
	s0 := stars[0]
	if s0.Center != 1 || s0.Degree() != 2 {
		t.Errorf("star 0 = %+v", s0)
	}
	// Spokes must be sorted by (edge label, leaf label).
	for _, s := range stars {
		for i := 1; i < len(s.Spokes); i++ {
			a, b := s.Spokes[i-1], s.Spokes[i]
			if a.EdgeLabel > b.EdgeLabel || (a.EdgeLabel == b.EdgeLabel && a.LeafLabel > b.LeafLabel) {
				t.Errorf("spokes unsorted: %+v", s.Spokes)
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := triangle(t, 0)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "tri"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`graph "tri"`, "n0 [label=\"v0:1\"]", "n0 -- n1", "label=\"10\""} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Unlabelled edges omit the label attribute.
	b := NewBuilder(2)
	b.AddVertex(0)
	b.AddVertex(0)
	b.AddEdge(0, 1, 0)
	buf.Reset()
	if err := WriteDOT(&buf, b.MustBuild(1), "plain"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "label=\"0\"") {
		t.Error("zero edge label rendered")
	}
}

// randomGraph builds a random graph for property tests.
func randomGraph(rng *rand.Rand, id ID, maxN int) *Graph {
	n := 1 + rng.Intn(maxN)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(Label(rng.Intn(5)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.3 {
				b.AddEdge(u, v, Label(rng.Intn(3)))
			}
		}
	}
	b.SetFeatures([]float64{rng.Float64(), rng.Float64()})
	g, err := b.Build(id)
	if err != nil {
		panic(err)
	}
	return g
}

func TestEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := make([]*Graph, 25)
	for i := range graphs {
		graphs[i] = randomGraph(rng, ID(i), 12)
	}
	db, err := NewDatabase(graphs)
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, db); err != nil {
		t.Fatalf("WriteDatabase: %v", err)
	}
	got, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatalf("ReadDatabase: %v", err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip len %d, want %d", got.Len(), db.Len())
	}
	for i := range graphs {
		a, b := db.Graph(ID(i)), got.Graph(ID(i))
		if !reflect.DeepEqual(a.VertexLabels(), b.VertexLabels()) {
			t.Errorf("graph %d labels differ", i)
		}
		if !reflect.DeepEqual(a.Edges(), b.Edges()) {
			t.Errorf("graph %d edges differ", i)
		}
		if !reflect.DeepEqual(a.Features(), b.Features()) {
			t.Errorf("graph %d features differ: %v vs %v", i, a.Features(), b.Features())
		}
	}
}

func TestReadDatabaseErrors(t *testing.T) {
	bad := []string{
		"x 0 0 0 0",
		"g 0 1 0 0\nw 3",
		"g 0 1 1 0\nv 3",
		"g 0 1 1 0\nv 3\nq 0 0 0",
		"g 0 1 0 2\nv 3\nf 1.0",
		"g 0 2 0 0\nv 3 notalabel",
	}
	for i, s := range bad {
		if _, err := ReadDatabase(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: ReadDatabase(%q) succeeded, want error", i, s)
		}
	}
	// Comments and blank lines are allowed.
	ok := "# comment\n\ng 0 1 0 0\nv 3\n"
	db, err := ReadDatabase(strings.NewReader(ok))
	if err != nil || db.Len() != 1 {
		t.Errorf("ReadDatabase with comments: %v, len %d", err, db.Len())
	}
}

// Property: stars of any graph preserve the degree sequence and label multiset.
func TestStarsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 0, 10)
		stars := g.Stars()
		if len(stars) != g.Order() {
			return false
		}
		spokes := 0
		for v, s := range stars {
			if s.Center != g.VertexLabel(v) || s.Degree() != g.Degree(v) {
				return false
			}
			spokes += s.Degree()
		}
		return spokes == 2*g.Size()
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
