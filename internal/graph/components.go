package graph

// Connected reports whether the graph is connected (true for the empty and
// single-vertex graphs).
func (g *Graph) Connected() bool {
	return len(g.Components()) <= 1
}

// Components returns the vertex sets of the graph's connected components,
// each sorted ascending, ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	n := g.Order()
	seen := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
				if w := int(g.adjTo[i]); !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

// sortInts is insertion sort: component slices are small and this avoids an
// import for one call site.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
