package graph

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Database is an ordered collection of graphs. Graph IDs equal their position
// in the collection; every index structure in this library addresses graphs
// by ID.
//
// The collection is copy-on-write: Append publishes a fresh slice instead of
// mutating the current one, so any number of readers may run concurrently
// with one Append and each sees either the old or the new snapshot, never a
// torn one. Concurrent Appends must still be serialized by the caller
// (internal/server holds the last shard's write lock around each insert).
type Database struct {
	graphs atomic.Pointer[[]*Graph]
}

// snapshot returns the current immutable graph slice.
func (db *Database) snapshot() []*Graph { return *db.graphs.Load() }

// NewDatabase assembles a database from graphs whose IDs must equal their
// slice positions. The database takes ownership of the slice; the caller must
// not modify it afterwards.
func NewDatabase(graphs []*Graph) (*Database, error) {
	for i, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("graph: nil graph at position %d", i)
		}
		if int(g.ID()) != i {
			return nil, fmt.Errorf("graph: graph at position %d has id %d", i, g.ID())
		}
	}
	db := &Database{}
	db.graphs.Store(&graphs)
	return db, nil
}

// Len returns the number of graphs.
func (db *Database) Len() int { return len(db.snapshot()) }

// Append adds a graph to the end of the database. Its ID must equal the
// current length and its feature dimensionality must match. Append copies the
// graph slice and atomically publishes the copy, so it is safe to run
// concurrently with readers; concurrent Appends must be serialized by the
// caller.
func (db *Database) Append(g *Graph) error {
	cur := db.snapshot()
	if g == nil {
		return fmt.Errorf("graph: nil graph")
	}
	if int(g.ID()) != len(cur) {
		return fmt.Errorf("graph: appended graph has id %d, want %d", g.ID(), len(cur))
	}
	if len(cur) > 0 && len(g.Features()) != len(cur[0].Features()) {
		return fmt.Errorf("graph: appended feature dim %d, want %d", len(g.Features()), len(cur[0].Features()))
	}
	next := make([]*Graph, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = g
	db.graphs.Store(&next)
	return nil
}

// Graph returns the graph with the given id.
func (db *Database) Graph(id ID) *Graph { return db.snapshot()[id] }

// Graphs returns the current snapshot slice. The caller must not modify it;
// graphs appended later do not appear in it.
func (db *Database) Graphs() []*Graph { return db.snapshot() }

// FeatureDim returns the dimensionality of the feature vectors, or 0 for an
// empty database. All graphs are expected to share one dimensionality.
func (db *Database) FeatureDim() int {
	g := db.snapshot()
	if len(g) == 0 {
		return 0
	}
	return len(g[0].Features())
}

// Validate checks structural invariants of the database: consistent feature
// dimensionality and well-formed graphs.
func (db *Database) Validate() error {
	dim := db.FeatureDim()
	for _, g := range db.snapshot() {
		if len(g.Features()) != dim {
			return fmt.Errorf("graph %d: feature dim %d, want %d", g.ID(), len(g.Features()), dim)
		}
		for _, e := range g.Edges() {
			if e.U < 0 || e.V >= g.Order() || e.U >= e.V {
				return fmt.Errorf("graph %d: malformed edge %+v", g.ID(), e)
			}
		}
		for _, f := range g.Features() {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("graph %d: non-finite feature %v", g.ID(), f)
			}
		}
	}
	return nil
}

// Stats summarizes a database the way Table 3 in the paper does.
type Stats struct {
	Graphs   int
	AvgNodes float64
	AvgEdges float64
	MaxNodes int
	MaxEdges int
	Labels   int
}

// Stats computes summary statistics over the database.
func (db *Database) Stats() Stats {
	var s Stats
	graphs := db.snapshot()
	s.Graphs = len(graphs)
	labels := make(map[Label]struct{})
	for _, g := range graphs {
		s.AvgNodes += float64(g.Order())
		s.AvgEdges += float64(g.Size())
		if g.Order() > s.MaxNodes {
			s.MaxNodes = g.Order()
		}
		if g.Size() > s.MaxEdges {
			s.MaxEdges = g.Size()
		}
		for _, l := range g.VertexLabels() {
			labels[l] = struct{}{}
		}
	}
	if s.Graphs > 0 {
		s.AvgNodes /= float64(s.Graphs)
		s.AvgEdges /= float64(s.Graphs)
	}
	s.Labels = len(labels)
	return s
}
