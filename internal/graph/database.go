package graph

import (
	"fmt"
	"math"
)

// Database is an ordered collection of graphs. Graph IDs equal their position
// in the collection; every index structure in this library addresses graphs
// by ID.
type Database struct {
	graphs []*Graph
}

// NewDatabase assembles a database from graphs whose IDs must equal their
// slice positions.
func NewDatabase(graphs []*Graph) (*Database, error) {
	for i, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("graph: nil graph at position %d", i)
		}
		if int(g.ID()) != i {
			return nil, fmt.Errorf("graph: graph at position %d has id %d", i, g.ID())
		}
	}
	return &Database{graphs: graphs}, nil
}

// Len returns the number of graphs.
func (db *Database) Len() int { return len(db.graphs) }

// Append adds a graph to the end of the database. Its ID must equal the
// current length and its feature dimensionality must match. Append is not
// safe to call concurrently with queries against the database.
func (db *Database) Append(g *Graph) error {
	if g == nil {
		return fmt.Errorf("graph: nil graph")
	}
	if int(g.ID()) != len(db.graphs) {
		return fmt.Errorf("graph: appended graph has id %d, want %d", g.ID(), len(db.graphs))
	}
	if len(db.graphs) > 0 && len(g.Features()) != db.FeatureDim() {
		return fmt.Errorf("graph: appended feature dim %d, want %d", len(g.Features()), db.FeatureDim())
	}
	db.graphs = append(db.graphs, g)
	return nil
}

// Graph returns the graph with the given id.
func (db *Database) Graph(id ID) *Graph { return db.graphs[id] }

// Graphs returns the underlying slice. The caller must not modify it.
func (db *Database) Graphs() []*Graph { return db.graphs }

// FeatureDim returns the dimensionality of the feature vectors, or 0 for an
// empty database. All graphs are expected to share one dimensionality.
func (db *Database) FeatureDim() int {
	if len(db.graphs) == 0 {
		return 0
	}
	return len(db.graphs[0].Features())
}

// Validate checks structural invariants of the database: consistent feature
// dimensionality and well-formed graphs.
func (db *Database) Validate() error {
	dim := db.FeatureDim()
	for _, g := range db.graphs {
		if len(g.Features()) != dim {
			return fmt.Errorf("graph %d: feature dim %d, want %d", g.ID(), len(g.Features()), dim)
		}
		for _, e := range g.Edges() {
			if e.U < 0 || e.V >= g.Order() || e.U >= e.V {
				return fmt.Errorf("graph %d: malformed edge %+v", g.ID(), e)
			}
		}
		for _, f := range g.Features() {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("graph %d: non-finite feature %v", g.ID(), f)
			}
		}
	}
	return nil
}

// Stats summarizes a database the way Table 3 in the paper does.
type Stats struct {
	Graphs   int
	AvgNodes float64
	AvgEdges float64
	MaxNodes int
	MaxEdges int
	Labels   int
}

// Stats computes summary statistics over the database.
func (db *Database) Stats() Stats {
	var s Stats
	s.Graphs = len(db.graphs)
	labels := make(map[Label]struct{})
	for _, g := range db.graphs {
		s.AvgNodes += float64(g.Order())
		s.AvgEdges += float64(g.Size())
		if g.Order() > s.MaxNodes {
			s.MaxNodes = g.Order()
		}
		if g.Size() > s.MaxEdges {
			s.MaxEdges = g.Size()
		}
		for _, l := range g.VertexLabels() {
			labels[l] = struct{}{}
		}
	}
	if s.Graphs > 0 {
		s.AvgNodes /= float64(s.Graphs)
		s.AvgEdges /= float64(s.Graphs)
	}
	s.Labels = len(labels)
	return s
}
