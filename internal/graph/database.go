package graph

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Store is the physical representation of a database prefix: the read API
// every Database method goes through. Two implementations exist — heapStore
// (graphs built in memory by the text loader, the generators, or NewDatabase)
// and mappedStore (zero-copy views over a GRDB001 container, see grdb.go).
// Consumers never see a Store directly; they hold a *Database, whose
// copy-on-write snapshot pairs one immutable Store with a heap-resident tail
// of appended graphs.
type Store interface {
	// Len returns the number of graphs in the store.
	Len() int
	// Graph returns the graph with the given id (0 ≤ id < Len). Heap stores
	// return the resident graph; mapped stores materialize a small handle
	// whose slices alias the mapping.
	Graph(id ID) *Graph
	// Features returns id's feature vector without materializing a handle.
	Features(id ID) []float64
	// FeatureDim returns the feature dimensionality (0 when empty).
	FeatureDim() int
	// EnsureValid runs the store's deferred O(n) content validation once and
	// returns its cached verdict. Heap stores are validated by construction
	// and return nil.
	EnsureValid() error
	// Close releases the store's backing resources (a mapping, if any).
	Close() error
	// Mapped reports whether graph content is served from a mapping rather
	// than the heap.
	Mapped() bool
}

// dbState is one atomic snapshot of a database: an immutable base store plus
// the copy-on-write tail of graphs appended since open. The tail is the thaw
// mechanism of the mapped path — appends land on the heap while the mapped
// prefix stays untouched — and doubles as the publish unit that keeps
// Append's atomic-snapshot semantics.
type dbState struct {
	base Store
	tail []*Graph
}

// Database is an ordered collection of graphs. Graph IDs equal their position
// in the collection; every index structure in this library addresses graphs
// by ID.
//
// The collection is copy-on-write: Append publishes a fresh snapshot instead
// of mutating the current one, so any number of readers may run concurrently
// with one Append and each sees either the old or the new snapshot, never a
// torn one. Concurrent Appends must still be serialized by the caller
// (internal/server holds the last shard's write lock around each insert).
type Database struct {
	state atomic.Pointer[dbState]
}

// snapshot returns the current immutable state.
func (db *Database) snapshot() *dbState { return db.state.Load() }

// heapStore serves graphs resident in memory: the text loader, the dataset
// generators, and NewDatabase all produce one.
type heapStore struct {
	graphs []*Graph
}

func (s *heapStore) Len() int           { return len(s.graphs) }
func (s *heapStore) Graph(id ID) *Graph { return s.graphs[id] }
func (s *heapStore) Features(id ID) []float64 {
	return s.graphs[id].features
}
func (s *heapStore) FeatureDim() int {
	if len(s.graphs) == 0 {
		return 0
	}
	return len(s.graphs[0].features)
}
func (s *heapStore) EnsureValid() error { return nil }
func (s *heapStore) Close() error       { return nil }
func (s *heapStore) Mapped() bool       { return false }

// newDatabase wraps a base store in a Database with an empty tail.
func newDatabase(base Store) *Database {
	db := &Database{}
	db.state.Store(&dbState{base: base})
	return db
}

// NewDatabase assembles a database from graphs whose IDs must equal their
// slice positions. The database takes ownership of the slice; the caller must
// not modify it afterwards.
func NewDatabase(graphs []*Graph) (*Database, error) {
	for i, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("graph: nil graph at position %d", i)
		}
		if int(g.ID()) != i {
			return nil, fmt.Errorf("graph: graph at position %d has id %d", i, g.ID())
		}
	}
	return newDatabase(&heapStore{graphs: graphs}), nil
}

// Len returns the number of graphs.
func (db *Database) Len() int {
	st := db.snapshot()
	return st.base.Len() + len(st.tail)
}

// Append adds a graph to the end of the database. Its ID must equal the
// current length and its feature dimensionality must match. Append copies the
// tail slice and atomically publishes a new snapshot, so it is safe to run
// concurrently with readers; concurrent Appends must be serialized by the
// caller. Appends onto a mapped database land on the heap — the mapped
// prefix is immutable, exactly like a thawed index shard.
func (db *Database) Append(g *Graph) error {
	st := db.snapshot()
	n := st.base.Len() + len(st.tail)
	if g == nil {
		return fmt.Errorf("graph: nil graph")
	}
	if int(g.ID()) != n {
		return fmt.Errorf("graph: appended graph has id %d, want %d", g.ID(), n)
	}
	if n > 0 && len(g.Features()) != db.FeatureDim() {
		return fmt.Errorf("graph: appended feature dim %d, want %d", len(g.Features()), db.FeatureDim())
	}
	next := &dbState{base: st.base, tail: make([]*Graph, len(st.tail)+1)}
	copy(next.tail, st.tail)
	next.tail[len(st.tail)] = g
	db.state.Store(next)
	return nil
}

// Graph returns the graph with the given id.
func (db *Database) Graph(id ID) *Graph {
	st := db.snapshot()
	if n := st.base.Len(); int(id) < n {
		return st.base.Graph(id)
	} else {
		return st.tail[int(id)-n]
	}
}

// Features returns id's feature vector — the read every relevance function
// and score performs — without materializing a graph handle on the mapped
// path. The caller must not modify the returned slice.
func (db *Database) Features(id ID) []float64 {
	st := db.snapshot()
	if n := st.base.Len(); int(id) < n {
		return st.base.Features(id)
	} else {
		return st.tail[int(id)-n].features
	}
}

// Graphs returns a freshly assembled slice of every graph in the current
// snapshot; graphs appended later do not appear in it. The caller must not
// modify the graphs. Prefer Len/Graph/Features iteration on large databases:
// on the mapped path Graphs materializes one handle per graph.
func (db *Database) Graphs() []*Graph {
	st := db.snapshot()
	out := make([]*Graph, st.base.Len()+len(st.tail))
	for i := 0; i < st.base.Len(); i++ {
		out[i] = st.base.Graph(ID(i))
	}
	copy(out[st.base.Len():], st.tail)
	return out
}

// FeatureDim returns the dimensionality of the feature vectors, or 0 for an
// empty database. All graphs are expected to share one dimensionality.
func (db *Database) FeatureDim() int {
	st := db.snapshot()
	if st.base.Len() > 0 {
		return st.base.FeatureDim()
	}
	if len(st.tail) > 0 {
		return len(st.tail[0].features)
	}
	return 0
}

// EnsureValid runs the deferred O(n) content validation of a mapped store
// once (a sync.Once gate; later calls return the cached verdict) and is a
// no-op for heap databases, whose content was validated at construction.
// Session creation and Insert call it, so every indexed query path reads
// validated content; callers that traverse graph structure without going
// through the index (or the Validate method) should call it themselves after
// OpenDatabaseFile.
func (db *Database) EnsureValid() error { return db.snapshot().base.EnsureValid() }

// Mapped reports whether the database prefix is served zero-copy from a
// mapping (opened via OpenDatabaseFile) rather than the heap.
func (db *Database) Mapped() bool { return db.snapshot().base.Mapped() }

// Close releases the backing store — the file mapping, for a database opened
// with OpenDatabaseFile. No reads may be in flight or issued afterwards:
// graph handles alias the mapping being unmapped. Close is a no-op for heap
// databases, and idempotent.
func (db *Database) Close() error { return db.snapshot().base.Close() }

// Validate checks structural invariants of the database: consistent feature
// dimensionality and well-formed graphs. For a mapped database the deferred
// content validation runs first, so Validate subsumes EnsureValid.
func (db *Database) Validate() error {
	if err := db.EnsureValid(); err != nil {
		return err
	}
	dim := db.FeatureDim()
	for i, n := 0, db.Len(); i < n; i++ {
		g := db.Graph(ID(i))
		if len(g.Features()) != dim {
			return fmt.Errorf("graph %d: feature dim %d, want %d", g.ID(), len(g.Features()), dim)
		}
		for _, e := range g.Edges() {
			if e.U < 0 || e.V >= g.Order() || e.U >= e.V {
				return fmt.Errorf("graph %d: malformed edge %+v", g.ID(), e)
			}
		}
		for _, f := range g.Features() {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("graph %d: non-finite feature %v", g.ID(), f)
			}
		}
	}
	return nil
}

// Stats summarizes a database the way Table 3 in the paper does.
type Stats struct {
	Graphs   int
	AvgNodes float64
	AvgEdges float64
	MaxNodes int
	MaxEdges int
	Labels   int
}

// Stats computes summary statistics over the database.
func (db *Database) Stats() Stats {
	var s Stats
	s.Graphs = db.Len()
	labels := make(map[Label]struct{})
	for i := 0; i < s.Graphs; i++ {
		g := db.Graph(ID(i))
		s.AvgNodes += float64(g.Order())
		s.AvgEdges += float64(g.Size())
		if g.Order() > s.MaxNodes {
			s.MaxNodes = g.Order()
		}
		if g.Size() > s.MaxEdges {
			s.MaxEdges = g.Size()
		}
		for _, l := range g.VertexLabels() {
			labels[l] = struct{}{}
		}
	}
	if s.Graphs > 0 {
		s.AvgNodes /= float64(s.Graphs)
		s.AvgEdges /= float64(s.Graphs)
	}
	s.Labels = len(labels)
	return s
}
