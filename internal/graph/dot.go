package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format, vertices labelled
// "v<idx>:<label>" and edges annotated with their labels. Intended for
// eyeballing answer sets (e.g. `dot -Tsvg`).
func WriteDOT(w io.Writer, g *Graph, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=circle fontsize=10];\n")
	for v := 0; v < g.Order(); v++ {
		fmt.Fprintf(bw, "  n%d [label=\"v%d:%d\"];\n", v, v, g.VertexLabel(v))
	}
	for _, e := range g.Edges() {
		if e.Label != 0 {
			fmt.Fprintf(bw, "  n%d -- n%d [label=\"%d\"];\n", e.U, e.V, e.Label)
		} else {
			fmt.Fprintf(bw, "  n%d -- n%d;\n", e.U, e.V)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
