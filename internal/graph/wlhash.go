package graph

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// WLHash returns a Weisfeiler–Lehman style hash of the graph after the given
// number of label-refinement rounds (2–3 rounds distinguish most practical
// graphs). Graphs with equal hashes are isomorphic with high probability;
// unequal hashes guarantee non-isomorphism. The hash is used to detect
// duplicate structures when assembling databases and to group answer-set
// members into structural families in the examples.
func (g *Graph) WLHash(rounds int) uint64 {
	if rounds < 0 {
		rounds = 0
	}
	n := g.Order()
	cur := make([]uint64, n)
	for v := 0; v < n; v++ {
		cur[v] = mix(uint64(g.labels[v]) + 0x9e3779b97f4a7c15)
	}
	next := make([]uint64, n)
	neigh := make([]uint64, 0, 8)
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			neigh = neigh[:0]
			for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
				neigh = append(neigh, mix(cur[g.adjTo[i]]^(uint64(g.adjLabel[i])+0x517cc1b727220a95)))
			}
			sort.Slice(neigh, func(i, j int) bool { return neigh[i] < neigh[j] })
			acc := cur[v]
			for _, x := range neigh {
				acc = mix(acc + x)
			}
			next[v] = acc
		}
		cur, next = next, cur
	}
	// Order-independent combination of the final vertex colors.
	sorted := append([]uint64(nil), cur...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(g.Size()))
	h.Write(buf[:])
	for _, x := range sorted {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// mix is a 64-bit finalizer (splitmix64) providing avalanche for WLHash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
