package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testDatabase builds a deterministic heap database: n small random graphs
// with labelled edges and dim features each. Connectivity and degree vary so
// the CSR rows exercise empty, single, and dense adjacency.
func testDatabase(t *testing.T, n, dim int, seed int64) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*Graph, n)
	for i := range graphs {
		order := 1 + rng.Intn(8)
		b := NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(Label(rng.Intn(5)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(u, v, Label(rng.Intn(4)))
				}
			}
		}
		if dim > 0 {
			feats := make([]float64, dim)
			for j := range feats {
				feats[j] = rng.NormFloat64()
			}
			b.SetFeatures(feats)
		}
		g, err := b.Build(ID(i))
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	db, err := NewDatabase(graphs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// saveGRDB serializes db and fails the test on error.
func saveGRDB(t *testing.T, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireGraphEqual compares every read surface of two graphs: structure,
// labels, features, and the derived canonical forms index construction
// consumes (stars, WL hashes, components).
func requireGraphEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.ID() != want.ID() || got.Order() != want.Order() || got.Size() != want.Size() {
		t.Fatalf("graph %d: id/order/size %d/%d/%d, want %d/%d/%d",
			want.ID(), got.ID(), got.Order(), got.Size(), want.ID(), want.Order(), want.Size())
	}
	if !reflect.DeepEqual(append([]Label{}, got.VertexLabels()...), append([]Label{}, want.VertexLabels()...)) {
		t.Fatalf("graph %d: vertex labels differ", want.ID())
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatalf("graph %d: edges %v, want %v", want.ID(), got.Edges(), want.Edges())
	}
	if !reflect.DeepEqual(append([]float64{}, got.Features()...), append([]float64{}, want.Features()...)) {
		t.Fatalf("graph %d: features differ", want.ID())
	}
	for v := 0; v < want.Order(); v++ {
		if got.Degree(v) != want.Degree(v) {
			t.Fatalf("graph %d: degree(%d) = %d, want %d", want.ID(), v, got.Degree(v), want.Degree(v))
		}
	}
	if !reflect.DeepEqual(got.Stars(), want.Stars()) {
		t.Fatalf("graph %d: stars differ", want.ID())
	}
	if got.WLHash(3) != want.WLHash(3) {
		t.Fatalf("graph %d: WL hash %x, want %x", want.ID(), got.WLHash(3), want.WLHash(3))
	}
	if !reflect.DeepEqual(got.Components(), want.Components()) {
		t.Fatalf("graph %d: components differ", want.ID())
	}
}

// TestGRDBRoundTrip checks the central container property: a mapped database
// is indistinguishable from the heap database it was saved from on every read
// path, and re-saving the mapped database reproduces the bytes exactly (the
// offset rebase in SaveDatabase is the round-trip inverse of the mapped
// handles' absolute offsets).
func TestGRDBRoundTrip(t *testing.T) {
	for _, dim := range []int{0, 3} {
		db := testDatabase(t, 40, dim, 7)
		blob := saveGRDB(t, db)
		mapped, err := OpenDatabaseBytes(blob)
		if err != nil {
			t.Fatal(err)
		}
		if err := mapped.EnsureValid(); err != nil {
			t.Fatalf("EnsureValid on a freshly saved container: %v", err)
		}
		if mapped.Len() != db.Len() || mapped.FeatureDim() != db.FeatureDim() {
			t.Fatalf("mapped len/dim %d/%d, want %d/%d", mapped.Len(), mapped.FeatureDim(), db.Len(), db.FeatureDim())
		}
		for i := 0; i < db.Len(); i++ {
			requireGraphEqual(t, db.Graph(ID(i)), mapped.Graph(ID(i)))
			if !reflect.DeepEqual(append([]float64{}, mapped.Features(ID(i))...), append([]float64{}, db.Features(ID(i))...)) {
				t.Fatalf("graph %d: store Features differ", i)
			}
		}
		again := saveGRDB(t, mapped)
		if !bytes.Equal(again, blob) {
			t.Fatalf("dim %d: re-saving the mapped database changed the bytes", dim)
		}
	}
}

// TestGRDBDeterministicBytes checks SaveDatabase is a pure function of the
// corpus.
func TestGRDBDeterministicBytes(t *testing.T) {
	db := testDatabase(t, 25, 2, 3)
	if !bytes.Equal(saveGRDB(t, db), saveGRDB(t, db)) {
		t.Fatal("two saves of the same database differ")
	}
}

// TestGRDBOpenFile exercises the file path with mapping on and off: identical
// content either way, and Close releases the backing without error.
func TestGRDBOpenFile(t *testing.T) {
	db := testDatabase(t, 20, 2, 9)
	blob := saveGRDB(t, db)
	path := filepath.Join(t.TempDir(), "corpus.grdb")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		mapped, err := OpenDatabaseFile(path, disable)
		if err != nil {
			t.Fatalf("disableMmap=%v: %v", disable, err)
		}
		if err := mapped.Validate(); err != nil {
			t.Fatalf("disableMmap=%v: %v", disable, err)
		}
		for i := 0; i < db.Len(); i++ {
			requireGraphEqual(t, db.Graph(ID(i)), mapped.Graph(ID(i)))
		}
		if err := mapped.Close(); err != nil {
			t.Fatalf("disableMmap=%v: close: %v", disable, err)
		}
	}
}

// TestGRDBAppendThaw checks the copy-on-write tail: appending to a mapped
// database lands on the heap, leaves the mapped prefix untouched, and keeps
// both sides readable through one Database.
func TestGRDBAppendThaw(t *testing.T) {
	db := testDatabase(t, 10, 2, 5)
	mapped, err := OpenDatabaseBytes(saveGRDB(t, db))
	if err != nil {
		t.Fatal(err)
	}
	if !mappedBase(mapped) {
		t.Fatal("mapped database does not report a mapped base")
	}
	b := NewBuilder(2)
	b.AddVertex(1)
	b.AddVertex(2)
	b.AddEdge(0, 1, 3)
	b.SetFeatures([]float64{0.5, -0.5})
	g, err := b.Build(ID(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Append(g); err != nil {
		t.Fatal(err)
	}
	if mapped.Len() != 11 {
		t.Fatalf("len %d after append, want 11", mapped.Len())
	}
	if got := mapped.Graph(10); got != g {
		t.Fatal("tail graph is not served as appended")
	}
	requireGraphEqual(t, db.Graph(3), mapped.Graph(3))
	if err := mapped.Validate(); err != nil {
		t.Fatal(err)
	}
}

// mappedBase reports whether db's base store is the mapped implementation
// (Mapped() is false for OpenDatabaseBytes, which has no file backing, so the
// test inspects the store type directly).
func mappedBase(db *Database) bool {
	_, ok := db.snapshot().base.(*mappedStore)
	return ok
}

// TestGRDBRejectsCorruptLayout walks a catalogue of malformed containers
// through OpenDatabaseBytes: every one must fail at open, with no panic.
func TestGRDBRejectsCorruptLayout(t *testing.T) {
	db := testDatabase(t, 8, 1, 2)
	blob := saveGRDB(t, db)
	mutate := func(name string, fn func(b []byte) []byte) {
		b := fn(append([]byte(nil), blob...))
		if _, err := OpenDatabaseBytes(b); err == nil {
			t.Errorf("%s: corrupt container opened cleanly", name)
		}
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("short header", func(b []byte) []byte { return b[:10] })
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-16] })
	mutate("oversized count", func(b []byte) []byte { b[8] = 0xFF; return b })
	mutate("zero count", func(b []byte) []byte {
		for i := 8; i < 16; i++ {
			b[i] = 0
		}
		return b
	})
	mutate("unaligned section", func(b []byte) []byte { b[grdbHeaderLen+8] = 1; return b })
	mutate("dup kind", func(b []byte) []byte {
		copy(b[grdbHeaderLen+grdbDirEntryLen:], b[grdbHeaderLen:grdbHeaderLen+grdbDirEntryLen])
		return b
	})
}

// TestGRDBEnsureValidCatchesContent corrupts section content (which the O(1)
// open deliberately does not read) and checks the deferred scan reports it.
func TestGRDBEnsureValidCatchesContent(t *testing.T) {
	db := testDatabase(t, 8, 1, 4)
	b := saveGRDB(t, db)
	// parseGRDB returns subslices of b, so writing through the section view
	// corrupts the container in place: point the first half-edge at an
	// out-of-range vertex (MaxInt32).
	d, err := parseGRDB(b)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := d.section(grdbAdjTo)
	if err != nil {
		t.Fatal(err)
	}
	if len(sec) == 0 {
		t.Skip("test corpus has no edges")
	}
	sec[0], sec[1], sec[2], sec[3] = 0xFF, 0xFF, 0xFF, 0x7F
	mapped, err := OpenDatabaseBytes(b)
	if err != nil {
		t.Fatalf("content corruption must pass the O(1) open, got %v", err)
	}
	if err := mapped.EnsureValid(); err == nil {
		t.Fatal("EnsureValid accepted an out-of-range neighbor")
	}
	if err := mapped.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-range neighbor")
	}
}

// TestGRDBGolden pins the on-disk format: the committed container must open
// and match a freshly built equivalent database, and saving that database
// must reproduce the committed bytes exactly. A failure means the format
// changed — bump the magic instead of breaking released files. Regenerate
// (after an intentional format change, alongside the magic bump) with
// GRDB_GOLDEN_REWRITE=1 go test -run TestGRDBGolden ./internal/graph/.
func TestGRDBGolden(t *testing.T) {
	const goldenPath = "testdata/golden.grdb"
	db := testDatabase(t, 12, 2, 42)
	blob := saveGRDB(t, db)
	if os.Getenv("GRDB_GOLDEN_REWRITE") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("SaveDatabase output differs from the committed golden container (%d vs %d bytes)", len(blob), len(want))
	}
	mapped, err := OpenDatabaseBytes(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		requireGraphEqual(t, db.Graph(ID(i)), mapped.Graph(ID(i)))
	}
}
