package mtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

func randDB(n int, seed int64) (*graph.Database, metric.Metric) {
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := 2 + rng.Intn(7)
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(graph.Label(rng.Intn(3)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Float64() < 0.35 {
					b.AddEdge(u, v, 0)
				}
			}
		}
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func sortIDs(ids []graph.ID) []graph.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestBuildErrors(t *testing.T) {
	db, m := randDB(5, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(db, m, Options{Branching: 1, LeafSize: 4}, rng); err == nil {
		t.Error("branching=1 accepted")
	}
	if _, err := Build(db, m, Options{Branching: 2, LeafSize: 0}, rng); err == nil {
		t.Error("leafSize=0 accepted")
	}
	empty, _ := graph.NewDatabase(nil)
	if _, err := Build(empty, m, DefaultOptions(), rng); err == nil {
		t.Error("empty db accepted")
	}
}

// Range results must exactly match a linear scan for every query and radius.
func TestRangeMatchesLinearScan(t *testing.T) {
	db, m := randDB(80, 2)
	tree, err := Build(db, m, Options{Branching: 3, LeafSize: 5}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	lin := metric.NewLinearScan(db.Len(), m)
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		center := graph.ID(r.Intn(db.Len()))
		radius := r.Float64() * 12
		got := sortIDs(tree.Range(center, radius))
		want := sortIDs(lin.Range(center, radius))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRangeIncludesSelf(t *testing.T) {
	db, m := randDB(30, 5)
	tree, err := Build(db, m, DefaultOptions(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		found := false
		for _, id := range tree.Range(graph.ID(i), 0) {
			if id == graph.ID(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("graph %d not in its own radius-0 range", i)
		}
	}
}

func TestStatsAndHeight(t *testing.T) {
	db, m := randDB(100, 7)
	tree, err := Build(db, m, Options{Branching: 4, LeafSize: 4}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if tree.BuildDistances() <= 0 {
		t.Error("no build distances recorded")
	}
	if tree.Height() < 1 {
		t.Errorf("height = %d", tree.Height())
	}
}

func TestDuplicateGraphs(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddVertex(1)
	b.AddVertex(1)
	b.AddEdge(0, 1, 0)
	proto, _ := b.Build(0)
	graphs := []*graph.Graph{proto}
	for i := 1; i < 12; i++ {
		g, _ := proto.Clone(graph.ID(i)).Build(graph.ID(i))
		graphs = append(graphs, g)
	}
	db, _ := graph.NewDatabase(graphs)
	m := metric.Star(db)
	tree, err := Build(db, m, Options{Branching: 3, LeafSize: 2}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := tree.Range(0, 0); len(got) != 12 {
		t.Errorf("duplicates: range found %d of 12", len(got))
	}
}
