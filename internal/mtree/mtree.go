// Package mtree implements a metric ball tree with covering-radius range
// queries — the M-tree adaptation that DisC [9] uses as its index substrate
// and one of the nearest-neighbor-style baselines the paper compares NB-Index
// against (Figs. 2(b), 5(i–k), 6).
//
// The tree is bulk-loaded top-down: every node has a pivot and a covering
// radius; internal nodes partition their graphs among up to b pivots chosen
// farthest-first; leaves store member IDs together with their distance to
// the leaf pivot so individual members can be pruned by the triangle
// inequality without an exact distance computation.
package mtree

import (
	"fmt"
	"math"
	"math/rand"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// Options configures construction.
type Options struct {
	// Branching is the fan-out of internal nodes (≥ 2).
	Branching int
	// LeafSize is the maximum number of graphs per leaf (≥ 1).
	LeafSize int
}

// DefaultOptions mirror a memory-resident M-tree configuration.
func DefaultOptions() Options { return Options{Branching: 4, LeafSize: 16} }

// Tree is an immutable metric ball tree over a database. It implements
// metric.RangeSearcher.
type Tree struct {
	m    metric.Metric
	root *node
	// stats
	buildDistances int64
}

type node struct {
	pivot    graph.ID
	radius   float64
	children []*node
	// leaf content; entries[i] pairs a graph with its distance to pivot.
	entries []entry
}

type entry struct {
	id graph.ID
	d  float64
}

// Build bulk-loads a tree over db under metric m.
func Build(db *graph.Database, m metric.Metric, opt Options, rng *rand.Rand) (*Tree, error) {
	if opt.Branching < 2 {
		return nil, fmt.Errorf("mtree: branching %d < 2", opt.Branching)
	}
	if opt.LeafSize < 1 {
		return nil, fmt.Errorf("mtree: leaf size %d < 1", opt.LeafSize)
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("mtree: empty database")
	}
	t := &Tree{m: m}
	ids := make([]graph.ID, db.Len())
	for i := range ids {
		ids[i] = graph.ID(i)
	}
	t.root = t.build(ids, opt, rng)
	return t, nil
}

func (t *Tree) dist(a, b graph.ID) float64 {
	t.buildDistances++
	return t.m.Distance(a, b)
}

func (t *Tree) build(ids []graph.ID, opt Options, rng *rand.Rand) *node {
	pivot := ids[rng.Intn(len(ids))]
	n := &node{pivot: pivot}
	if len(ids) <= opt.LeafSize {
		for _, id := range ids {
			d := t.dist(pivot, id)
			n.entries = append(n.entries, entry{id, d})
			if d > n.radius {
				n.radius = d
			}
		}
		return n
	}
	// Farthest-first pivots, then assign to the closest pivot.
	k := opt.Branching
	if k > len(ids) {
		k = len(ids)
	}
	pivots := []graph.ID{pivot}
	minDist := make([]float64, len(ids))
	assign := make([]int, len(ids))
	for i, id := range ids {
		minDist[i] = t.dist(pivot, id)
		if minDist[i] > n.radius {
			n.radius = minDist[i]
		}
	}
	for len(pivots) < k {
		best, bestD := -1, -1.0
		for i := range ids {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if bestD == 0 {
			break
		}
		p := ids[best]
		pi := len(pivots)
		pivots = append(pivots, p)
		for i, id := range ids {
			if d := t.dist(p, id); d < minDist[i] {
				minDist[i] = d
				assign[i] = pi
			}
		}
	}
	if len(pivots) == 1 {
		// All members coincide with the pivot: emit a flat leaf.
		for _, id := range ids {
			n.entries = append(n.entries, entry{id, 0})
		}
		return n
	}
	for p := range pivots {
		var sub []graph.ID
		for i, id := range ids {
			if assign[i] == p {
				sub = append(sub, id)
			}
		}
		if len(sub) == 0 {
			continue
		}
		n.children = append(n.children, t.build(sub, opt, rng))
	}
	return n
}

// Range implements metric.RangeSearcher: every graph within radius of
// center, center included.
func (t *Tree) Range(center graph.ID, radius float64) []graph.ID {
	var out []graph.ID
	t.search(t.root, center, radius, &out)
	return out
}

func (t *Tree) search(n *node, center graph.ID, radius float64, out *[]graph.ID) {
	dp := t.m.Distance(center, n.pivot)
	if dp > n.radius+radius {
		return // the whole ball is out of range (triangle inequality)
	}
	if n.entries != nil {
		for _, e := range n.entries {
			// Prune by |d(center,pivot) − d(pivot,e)| > radius.
			if math.Abs(dp-e.d) > radius {
				continue
			}
			// Include by d(center,pivot) + d(pivot,e) ≤ radius.
			if dp+e.d <= radius {
				*out = append(*out, e.id)
				continue
			}
			if t.m.Distance(center, e.id) <= radius {
				*out = append(*out, e.id)
			}
		}
		return
	}
	for _, c := range n.children {
		t.search(c, center, radius, out)
	}
}

// BuildDistances reports how many distance computations construction issued.
func (t *Tree) BuildDistances() int64 { return t.buildDistances }

// Height returns the tree height.
func (t *Tree) Height() int { return heightOf(t.root) }

func heightOf(n *node) int {
	h := 0
	for _, c := range n.children {
		if ch := heightOf(c) + 1; ch > h {
			h = ch
		}
	}
	return h
}
