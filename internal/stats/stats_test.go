package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev singleton != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
	// Interpolation between samples.
	if got := Quantile([]float64{0, 10}, 0.75); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("Quantile interp = %v, want 7.5", got)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{6, 1},
		{-6, 0},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("NormalCDF(%v) = %v, want ≈%v", c.x, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 5)
	if h.Total != 10 {
		t.Errorf("Total = %d", h.Total)
	}
	sum := 0
	for i := range h.Counts {
		sum += h.Counts[i]
		if h.Counts[i] != 2 {
			t.Errorf("bin %d = %d, want 2", i, h.Counts[i])
		}
	}
	if sum != 10 {
		t.Errorf("sum = %d", sum)
	}
	if f := h.Fraction(0); f != 0.2 {
		t.Errorf("Fraction(0) = %v", f)
	}
	if c := h.BinCenter(0); math.Abs(c-0.9) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 0.9", c)
	}
	// Degenerate inputs.
	if NewHistogram(nil, 4).Total != 0 {
		t.Error("empty histogram has samples")
	}
	one := NewHistogram([]float64{5, 5, 5}, 0)
	if one.Total != 3 || len(one.Counts) != 1 {
		t.Errorf("degenerate histogram %+v", one)
	}
	if one.Fraction(0) != 1 {
		t.Error("all-equal samples not in single bin")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	if NewECDF(nil).At(1) != 0 {
		t.Error("empty ECDF")
	}
}

// ECDF must be monotone non-decreasing in x: a property test.
func TestECDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -40.0; x <= 40; x += 1.3 {
			cur := e.At(x)
			if cur < prev || cur < 0 || cur > 1 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGaussianFPRBound(t *testing.T) {
	// More vantage points can only lower the bound.
	prev := math.Inf(1)
	for v := 1; v <= 200; v *= 2 {
		b := GaussianFPRBound(10, 25, 8, v)
		if b > prev+1e-15 {
			t.Errorf("bound increased at |V|=%d: %v > %v", v, b, prev)
		}
		if b < 0 || b > 1 {
			t.Errorf("bound out of range: %v", b)
		}
		prev = b
	}
	if GaussianFPRBound(10, 25, 0, 5) != 0 {
		t.Error("sigma=0 should give 0")
	}
}

func TestUniformFPRBound(t *testing.T) {
	if got := UniformFPRBound(2, 1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("UniformFPRBound(2,1) = %v, want 0.25", got)
	}
	if UniformFPRBound(1, 5) != 0 || UniformFPRBound(0.5, 5) != 0 {
		t.Error("m <= 1 should give 0")
	}
	if UniformFPRBound(4, 3) >= UniformFPRBound(4, 2) {
		t.Error("bound must decrease with |V|")
	}
}

func TestMinVPsForFPR(t *testing.T) {
	v := MinVPsForFPR(10, 25, 8, 0.05, 500)
	if v < 1 || v > 500 {
		t.Fatalf("v = %d", v)
	}
	if GaussianFPRBound(10, 25, 8, v) > 0.05 {
		t.Errorf("bound at returned v=%d exceeds target", v)
	}
	if v > 1 && GaussianFPRBound(10, 25, 8, v-1) <= 0.05 {
		t.Errorf("v=%d is not minimal", v)
	}
	// Unreachable target is capped.
	if got := MinVPsForFPR(10, 25, 8, 0, 7); got != 7 {
		t.Errorf("cap = %d, want 7", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String = %q", s.String())
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summary = %+v", z)
	}
}
