// Package stats provides the light statistical machinery the paper's
// analysis needs: summary statistics, empirical histograms and CDFs of
// pairwise distances (Figs. 5(a–e)), the standard normal CDF, and the
// theoretical false-positive-rate bounds for vantage points (Eq. 11 for
// Gaussian metric spaces, Eq. 12 for uniform ones).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear interpolation.
// xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// NormalCDF is φ(x): the CDF of the standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Histogram is a fixed-width-bin histogram over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram bins xs into bins equal-width buckets spanning the data range.
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	width := (h.Max - h.Min) / float64(bins)
	for _, x := range xs {
		i := bins - 1
		if width > 0 {
			i = int((x - h.Min) / width)
			if i >= bins {
				i = bins - 1
			}
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*width
}

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// GaussianFPRBound is Eq. 11 of the paper: an upper bound on the vantage
// false positive rate when pairwise distances are ~ N(mu, sigma²) and
// numVPs vantage points are used at threshold theta.
//
//	FPR ≤ (1 − φ((θ−μ)/σ)) · (2φ(θ/σ) − 1)^|V|
func GaussianFPRBound(theta, mu, sigma float64, numVPs int) float64 {
	if sigma <= 0 {
		return 0
	}
	relevantTail := 1 - NormalCDF((theta-mu)/sigma)
	perVP := 2*NormalCDF(theta/sigma) - 1
	if perVP < 0 {
		perVP = 0
	}
	return relevantTail * math.Pow(perVP, float64(numVPs))
}

// UniformFPRBound is Eq. 12 of the paper: the FPR when distances are
// uniform on [0, m·θ] (m = diameter in units of θ) with numVPs vantage
// points.
//
//	FPR = (m−1)/m · 1/m^|V|
func UniformFPRBound(m float64, numVPs int) float64 {
	if m <= 1 {
		return 0
	}
	return (m - 1) / m / math.Pow(m, float64(numVPs))
}

// MinVPsForFPR returns the smallest number of vantage points for which the
// Gaussian bound (Eq. 11) drops to at most target at threshold theta. It is
// how the experiments choose |V| ("limit the FPR below 5%", §8.2.2). The
// search is capped at maxVPs.
func MinVPsForFPR(theta, mu, sigma, target float64, maxVPs int) int {
	for v := 1; v <= maxVPs; v++ {
		if GaussianFPRBound(theta, mu, sigma, v) <= target {
			return v
		}
	}
	return maxVPs
}

// Summary bundles the distance-distribution statistics reported per dataset.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	if len(xs) > 0 {
		s.Min, s.Max = xs[0], xs[0]
		for _, x := range xs {
			if x < s.Min {
				s.Min = x
			}
			if x > s.Max {
				s.Max = x
			}
		}
	}
	return s
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f max=%.2f", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}
