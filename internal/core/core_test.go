package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphrep/internal/bitset"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// randDB builds a database of random small graphs with 1-D features.
func randDB(t testing.TB, n int, seed int64) (*graph.Database, metric.Metric) {
	if t != nil {
		t.Helper()
	}
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := 2 + rng.Intn(6)
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(graph.Label(rng.Intn(3)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(u, v, 0)
				}
			}
		}
		b.SetFeatures([]float64{rng.Float64()})
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func allRelevant([]float64) bool { return true }

func TestQueryValidate(t *testing.T) {
	ok := Query{Relevance: allRelevant, Theta: 1, K: 3}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	for _, bad := range []Query{
		{Relevance: nil, Theta: 1, K: 1},
		{Relevance: allRelevant, Theta: -1, K: 1},
		{Relevance: allRelevant, Theta: 1, K: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid query accepted: %+v", bad)
		}
	}
}

func TestRelevant(t *testing.T) {
	db, _ := randDB(t, 20, 1)
	rel := Relevant(db, func(f []float64) bool { return f[0] > 0.5 })
	for _, id := range rel {
		if db.Graph(id).Features()[0] <= 0.5 {
			t.Errorf("irrelevant graph %d selected", id)
		}
	}
	if len(Relevant(db, allRelevant)) != 20 {
		t.Error("allRelevant did not select everything")
	}
}

func TestPairwiseNeighborhoodsSymmetricAndReflexive(t *testing.T) {
	db, m := randDB(t, 25, 2)
	rel := Relevant(db, allRelevant)
	nb := PairwiseNeighborhoods(db, m, rel, 4)
	for i := range rel {
		if !nb.Sets[i].Contains(i) {
			t.Errorf("graph %d not in its own neighborhood", i)
		}
		for j := range rel {
			if nb.Sets[i].Contains(j) != nb.Sets[j].Contains(i) {
				t.Errorf("asymmetric neighborhood at (%d,%d)", i, j)
			}
			want := m.Distance(rel[i], rel[j]) <= 4
			if i != j && nb.Sets[i].Contains(j) != want {
				t.Errorf("membership (%d,%d) = %v, want %v", i, j, nb.Sets[i].Contains(j), want)
			}
		}
	}
}

func TestRangeNeighborhoodsMatchPairwise(t *testing.T) {
	db, m := randDB(t, 30, 3)
	rel := Relevant(db, func(f []float64) bool { return f[0] > 0.3 })
	want := PairwiseNeighborhoods(db, m, rel, 5)
	rs := metric.NewLinearScan(db.Len(), m)
	got := RangeNeighborhoods(db, rs, rel, 5)
	for i := range rel {
		if !want.Sets[i].Equal(got.Sets[i]) {
			t.Errorf("neighborhood %d differs: %v vs %v", i, want.Sets[i].Slice(), got.Sets[i].Slice())
		}
	}
}

func TestGreedyEmptyRelevantSet(t *testing.T) {
	db, m := randDB(t, 10, 4)
	res, err := BaselineGreedy(db, m, Query{Relevance: func([]float64) bool { return false }, Theta: 3, K: 5})
	if err != nil {
		t.Fatalf("BaselineGreedy: %v", err)
	}
	if len(res.Answer) != 0 || res.Power != 0 || res.CompressionRatio() != 0 {
		t.Errorf("empty result = %+v", res)
	}
}

func TestGreedyStopsAtFullCoverage(t *testing.T) {
	db, m := randDB(t, 15, 5)
	// Huge θ: the first pick covers everything; greedy must stop at 1.
	res, err := BaselineGreedy(db, m, Query{Relevance: allRelevant, Theta: 1e9, K: 10})
	if err != nil {
		t.Fatalf("BaselineGreedy: %v", err)
	}
	if len(res.Answer) != 1 || res.Power != 1 {
		t.Errorf("res = %+v, want single pick with π=1", res)
	}
	if res.CompressionRatio() != 15 {
		t.Errorf("CR = %v, want 15", res.CompressionRatio())
	}
}

func TestGreedyGainsMonotoneNonIncreasing(t *testing.T) {
	db, m := randDB(t, 60, 6)
	res, err := BaselineGreedy(db, m, Query{Relevance: allRelevant, Theta: 4, K: 20})
	if err != nil {
		t.Fatalf("BaselineGreedy: %v", err)
	}
	for i := 1; i < len(res.Gains); i++ {
		if res.Gains[i] > res.Gains[i-1] {
			t.Errorf("gains increased at pick %d: %v", i, res.Gains)
		}
	}
	if res.Covered > res.Relevant {
		t.Errorf("covered %d > relevant %d", res.Covered, res.Relevant)
	}
	sum := 0
	for _, g := range res.Gains {
		sum += g
	}
	if sum != res.Covered {
		t.Errorf("gain sum %d != covered %d", sum, res.Covered)
	}
}

// The core theoretical guarantee: greedy achieves at least (1 − 1/e) of the
// optimal representative power (Theorem 2 + Nemhauser et al.).
func TestGreedyApproximationGuarantee(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		db, m := randDB(t, 14, 100+seed)
		q := Query{Relevance: allRelevant, Theta: 3.5, K: 3}
		greedy, err := BaselineGreedy(db, m, q)
		if err != nil {
			t.Fatalf("BaselineGreedy: %v", err)
		}
		opt, err := BruteForceOptimal(db, m, q)
		if err != nil {
			t.Fatalf("BruteForceOptimal: %v", err)
		}
		if greedy.Power > opt.Power+1e-12 {
			t.Fatalf("seed %d: greedy %v beats optimum %v", seed, greedy.Power, opt.Power)
		}
		bound := (1 - 1/math.E) * opt.Power
		if greedy.Power < bound-1e-12 {
			t.Fatalf("seed %d: greedy %v below (1-1/e)·OPT = %v", seed, greedy.Power, bound)
		}
	}
}

// Theorem 2: π is submodular. Random S ⊆ T and g must satisfy
// π(S∪{g}) − π(S) ≥ π(T∪{g}) − π(T).
func TestPiSubmodularAndMonotone(t *testing.T) {
	db, m := randDB(t, 25, 7)
	rel := Relevant(db, allRelevant)
	nb := PairwiseNeighborhoods(db, m, rel, 4)
	union := func(ids []int) *bitset.Set {
		s := bitset.New(len(rel))
		for _, i := range ids {
			s.Or(nb.Sets[i])
		}
		return s
	}
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var small, extra []int
		for i := range rel {
			if r.Float64() < 0.2 {
				small = append(small, i)
			} else if r.Float64() < 0.2 {
				extra = append(extra, i)
			}
		}
		large := append(append([]int(nil), small...), extra...)
		g := r.Intn(len(rel))
		cs, cl := union(small), union(large)
		gainSmall := nb.Sets[g].CountAndNot(cs)
		gainLarge := nb.Sets[g].CountAndNot(cl)
		// Submodularity + monotonicity (coverage can only grow).
		return gainSmall >= gainLarge && cl.Count() >= cs.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPowerMatchesGreedyResult(t *testing.T) {
	db, m := randDB(t, 40, 9)
	q := Query{Relevance: func(f []float64) bool { return f[0] > 0.25 }, Theta: 4, K: 5}
	res, err := BaselineGreedy(db, m, q)
	if err != nil {
		t.Fatalf("BaselineGreedy: %v", err)
	}
	rel := Relevant(db, q.Relevance)
	p, covered := Power(db, m, rel, res.Answer, q.Theta)
	if math.Abs(p-res.Power) > 1e-12 || covered != res.Covered {
		t.Errorf("Power = %v/%d, greedy says %v/%d", p, covered, res.Power, res.Covered)
	}
	if p0, c0 := Power(db, m, nil, res.Answer, q.Theta); p0 != 0 || c0 != 0 {
		t.Error("Power with empty relevant set should be 0")
	}
}

func TestTraditionalTopK(t *testing.T) {
	db, _ := randDB(t, 30, 10)
	score := func(f []float64) float64 { return f[0] }
	top := TraditionalTopK(db, score, 5)
	if len(top) != 5 {
		t.Fatalf("len = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if score(db.Graph(top[i]).Features()) > score(db.Graph(top[i-1]).Features()) {
			t.Error("not sorted by score")
		}
	}
	minTop := score(db.Graph(top[4]).Features())
	for _, g := range db.Graphs() {
		in := false
		for _, id := range top {
			if id == g.ID() {
				in = true
			}
		}
		if !in && score(g.Features()) > minTop {
			t.Errorf("graph %d outscores answer set but is excluded", g.ID())
		}
	}
	if got := TraditionalTopK(db, score, 99); len(got) != 30 {
		t.Errorf("k > n returned %d", len(got))
	}
}

func TestFirstQuartileRelevance(t *testing.T) {
	db, _ := randDB(t, 100, 11)
	q := FirstQuartileRelevance(db, nil)
	rel := Relevant(db, q)
	// Top quartile: about 25% of graphs (ties can add a few).
	if len(rel) < 20 || len(rel) > 40 {
		t.Errorf("quartile selected %d of 100", len(rel))
	}
	empty, _ := graph.NewDatabase(nil)
	if FirstQuartileRelevance(empty, nil)([]float64{1}) {
		t.Error("empty-db relevance returned true")
	}
}

func TestDimensionScore(t *testing.T) {
	f := []float64{1, 2, 3, 4}
	if got := DimensionScore(nil)(f); got != 2.5 {
		t.Errorf("all-dims score = %v, want 2.5", got)
	}
	if got := DimensionScore([]int{1, 3})(f); got != 3 {
		t.Errorf("dims score = %v, want 3", got)
	}
	if got := DimensionScore(nil)(nil); got != 0 {
		t.Errorf("empty features score = %v", got)
	}
}

func TestAssignRepresentatives(t *testing.T) {
	db, m := randDB(t, 40, 16)
	q := Query{Relevance: allRelevant, Theta: 4, K: 5}
	res, err := BaselineGreedy(db, m, q)
	if err != nil {
		t.Fatal(err)
	}
	rel := Relevant(db, q.Relevance)
	assign := AssignRepresentatives(db, m, rel, res.Answer, q.Theta)
	if len(assign) != len(res.Answer) {
		t.Fatalf("assign has %d exemplars, want %d", len(assign), len(res.Answer))
	}
	total := 0
	seen := make(map[graph.ID]bool)
	for a, members := range assign {
		for _, g := range members {
			if m.Distance(a, g) > q.Theta {
				t.Errorf("graph %d assigned to %d beyond θ", g, a)
			}
			if seen[g] {
				t.Errorf("graph %d assigned twice", g)
			}
			seen[g] = true
			total++
		}
		// Each exemplar represents itself.
		self := false
		for _, g := range members {
			if g == a {
				self = true
			}
		}
		if !self {
			t.Errorf("exemplar %d does not represent itself", a)
		}
	}
	if total != res.Covered {
		t.Errorf("assigned %d graphs, covered %d", total, res.Covered)
	}
	// Nearest-exemplar property.
	for a, members := range assign {
		for _, g := range members {
			for b := range assign {
				if m.Distance(b, g) < m.Distance(a, g) {
					t.Errorf("graph %d assigned to %d but %d is closer", g, a, b)
				}
			}
		}
	}
}

func TestTopicScoreAndRelevance(t *testing.T) {
	score := TopicScore([]int{0, 2})
	// f = [1, 0, 0.5, 0.3]; t = [1, 0, 1, 0].
	// min-sum = 1 + 0 + 0.5 + 0 = 1.5; max-sum = 1 + 0 + 1 + 0.3 = 2.3.
	f := []float64{1, 0, 0.5, 0.3}
	want := 1.5 / 2.3
	if got := score(f); math.Abs(got-want) > 1e-12 {
		t.Errorf("TopicScore = %v, want %v", got, want)
	}
	// Identical indicator vectors score 1.
	if got := TopicScore([]int{0})([]float64{1, 0}); got != 1 {
		t.Errorf("exact match score = %v", got)
	}
	// Disjoint topics score 0.
	if got := TopicScore([]int{1})([]float64{1, 0}); got != 0 {
		t.Errorf("disjoint score = %v", got)
	}
	// Empty everything scores 0.
	if got := TopicScore(nil)([]float64{0, 0}); got != 0 {
		t.Errorf("empty score = %v", got)
	}
	// Out-of-range topic indexes are ignored.
	if got := TopicScore([]int{99, -1, 0})([]float64{1}); got != 1 {
		t.Errorf("out-of-range topics: %v", got)
	}
	rel := TopicRelevance([]int{0, 2}, 0.7)
	if rel(f) { // score ≈ 0.652 < 0.7
		t.Error("relevance true below tau")
	}
	if !TopicRelevance([]int{0, 2}, 0.6)([]float64{1, 0, 1, 0}) {
		t.Error("relevance false at score 1")
	}
}

func TestWeightedScoreAndRelevance(t *testing.T) {
	w := []float64{3, 2, 1}
	if got := WeightedScore(w)([]float64{1, 1, 1}); got != 6 {
		t.Errorf("WeightedScore = %v, want 6", got)
	}
	// Extra feature dimensions beyond the weights are ignored.
	if got := WeightedScore(w)([]float64{1, 1, 1, 100}); got != 6 {
		t.Errorf("WeightedScore with extra dims = %v, want 6", got)
	}
	// Short feature vectors are fine.
	if got := WeightedScore(w)([]float64{2}); got != 6 {
		t.Errorf("WeightedScore short = %v, want 6", got)
	}
	rel := WeightedRelevance(w, 5)
	if !rel([]float64{1, 1, 1}) || rel([]float64{1, 0, 0}) {
		t.Error("WeightedRelevance thresholds wrong")
	}
}

func TestBruteForceOptimalSmall(t *testing.T) {
	db, m := randDB(t, 8, 12)
	q := Query{Relevance: allRelevant, Theta: 3, K: 2}
	opt, err := BruteForceOptimal(db, m, q)
	if err != nil {
		t.Fatalf("BruteForceOptimal: %v", err)
	}
	// Verify optimality exhaustively via Power.
	rel := Relevant(db, q.Relevance)
	for i := 0; i < len(rel); i++ {
		for j := i + 1; j < len(rel); j++ {
			p, _ := Power(db, m, rel, []graph.ID{rel[i], rel[j]}, q.Theta)
			if p > opt.Power+1e-12 {
				t.Fatalf("pair (%d,%d) has π=%v > optimal %v", rel[i], rel[j], p, opt.Power)
			}
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	db, m := randDB(t, 50, 13)
	q := Query{Relevance: allRelevant, Theta: 4, K: 8}
	a, _ := BaselineGreedy(db, m, q)
	b, _ := BaselineGreedy(db, m, q)
	if !reflect.DeepEqual(a.Answer, b.Answer) {
		t.Errorf("non-deterministic greedy: %v vs %v", a.Answer, b.Answer)
	}
}

func TestRangeGreedyMatchesBaseline(t *testing.T) {
	db, m := randDB(t, 45, 14)
	q := Query{Relevance: allRelevant, Theta: 4, K: 6}
	base, err := BaselineGreedy(db, m, q)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := RangeGreedy(db, metric.NewLinearScan(db.Len(), m), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Answer, rg.Answer) || base.Power != rg.Power {
		t.Errorf("RangeGreedy differs: %v (π=%v) vs %v (π=%v)", rg.Answer, rg.Power, base.Answer, base.Power)
	}
}

func TestInvalidQueriesRejectedEverywhere(t *testing.T) {
	db, m := randDB(t, 5, 15)
	bad := Query{Relevance: nil, Theta: 1, K: 1}
	if _, err := BaselineGreedy(db, m, bad); err == nil {
		t.Error("BaselineGreedy accepted bad query")
	}
	if _, err := RangeGreedy(db, metric.NewLinearScan(db.Len(), m), bad); err == nil {
		t.Error("RangeGreedy accepted bad query")
	}
	if _, err := BruteForceOptimal(db, m, bad); err == nil {
		t.Error("BruteForceOptimal accepted bad query")
	}
}
