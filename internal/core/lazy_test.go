package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphrep/internal/metric"
)

func TestLazyGreedyMatchesGreedyExactly(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		db, m := randDB(t, 70, 70+seed)
		rel := Relevant(db, allRelevant)
		nb := PairwiseNeighborhoods(db, m, rel, 3.5)
		for _, k := range []int{1, 5, 20} {
			want := Greedy(nb, k)
			got, stats := LazyGreedy(nb, k)
			if !reflect.DeepEqual(got.Answer, want.Answer) {
				t.Fatalf("seed %d k %d: lazy %v, want %v", seed, k, got.Answer, want.Answer)
			}
			if got.Power != want.Power || !reflect.DeepEqual(got.Gains, want.Gains) {
				t.Fatalf("seed %d k %d: power/gains differ", seed, k)
			}
			if stats.Evaluations <= 0 {
				t.Fatalf("no evaluations recorded")
			}
		}
	}
}

func TestLazyGreedySavesEvaluations(t *testing.T) {
	db, m := randDB(t, 120, 81)
	rel := Relevant(db, allRelevant)
	nb := PairwiseNeighborhoods(db, m, rel, 4)
	k := 15
	res, stats := LazyGreedy(nb, k)
	// Plain greedy evaluates |L| gains per pick.
	plainEvals := len(rel) * len(res.Answer)
	if stats.Evaluations >= plainEvals {
		t.Errorf("CELF evaluated %d gains, plain greedy would use %d", stats.Evaluations, plainEvals)
	}
	t.Logf("evaluations: CELF=%d plain=%d (%.1fx saved)", stats.Evaluations, plainEvals,
		float64(plainEvals)/float64(stats.Evaluations))
}

// Tri-engine equivalence: all three formulations of the greedy (covered-set,
// CELF-lazy, and literal mutating with and without Theorem 3) must agree on
// random instances — a testing/quick property over seeds.
func TestAllGreedyFormulationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, m := randDB(nil, 20+r.Intn(40), seed)
		rs := metric.NewLinearScan(db.Len(), m)
		theta := 1 + r.Float64()*6
		k := 1 + r.Intn(10)
		rel := Relevant(db, allRelevant)
		nb := PairwiseNeighborhoods(db, m, rel, theta)
		plain := Greedy(nb, k)
		lazy, _ := LazyGreedy(nb, k)
		q := Query{Relevance: allRelevant, Theta: theta, K: k}
		mutFull, _, err := MutatingGreedy(db, m, rs, q, false)
		if err != nil {
			return false
		}
		mutThm3, _, err := MutatingGreedy(db, m, rs, q, true)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(plain.Answer, lazy.Answer) &&
			reflect.DeepEqual(plain.Answer, mutFull.Answer) &&
			reflect.DeepEqual(plain.Answer, mutThm3.Answer) &&
			plain.Power == lazy.Power && plain.Power == mutFull.Power
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestLazyGreedyEmpty(t *testing.T) {
	nb := NewNeighborhoods(0, nil)
	res, stats := LazyGreedy(nb, 5)
	if len(res.Answer) != 0 || stats.Evaluations != 0 {
		t.Errorf("empty: %+v %+v", res, stats)
	}
}
