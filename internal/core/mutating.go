package core

import (
	"graphrep/internal/bitset"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// MutatingGreedy is the literal Alg. 1 of the paper: after each pick g*,
// every remaining neighborhood is updated as N(g) ← N(g) \ N(g*) (lines
// 6–7), and the next pick maximizes |N(g)| directly. With prune2Theta set, a
// range searcher restricts the update to graphs within 2θ of g* — Theorem 3:
// graphs farther away have disjoint neighborhoods with N(g*), so their sets
// cannot change.
//
// The answer is identical to Greedy (which realizes the same iteration with
// an immutable covered set); MutatingGreedy exists to reproduce the paper's
// pseudocode faithfully and to measure the update-step work that Theorem 3
// saves. Stats reports that work.
func MutatingGreedy(db *graph.Database, m metric.Metric, rs metric.RangeSearcher, q Query, prune2Theta bool) (*Result, *MutatingStats, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	rel := Relevant(db, q.Relevance)
	nb := PairwiseNeighborhoods(db, m, rel, q.Theta)
	stats := &MutatingStats{}
	res := &Result{Relevant: len(rel)}
	if len(rel) == 0 {
		return res, stats, nil
	}
	inAnswer := make([]bool, len(rel))
	covered := bitset.New(len(rel))
	for len(res.Answer) < q.K {
		// Line 4: argmax over the *current* (already-subtracted) sets.
		best, bestGain := -1, 0
		for i := range rel {
			if inAnswer[i] {
				continue
			}
			if gain := nb.Sets[i].Count(); gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		inAnswer[best] = true
		res.Answer = append(res.Answer, rel[best])
		res.Gains = append(res.Gains, bestGain)
		picked := nb.Sets[best].Clone()
		covered.Or(picked)
		// Lines 6–7: subtract N(g*) from every remaining neighborhood —
		// all of them, or only those within 2θ of g* (Theorem 3).
		if prune2Theta && rs != nil {
			for _, hit := range rs.Range(rel[best], 2*q.Theta) {
				if p := nb.Pos[hit]; p >= 0 && !inAnswer[p] {
					nb.Sets[p].AndNot(picked)
					stats.UpdatedSets++
				}
			}
		} else {
			for i := range rel {
				if !inAnswer[i] {
					nb.Sets[i].AndNot(picked)
					stats.UpdatedSets++
				}
			}
		}
		nb.Sets[best].Clear()
	}
	res.Covered = covered.Count()
	res.Power = float64(res.Covered) / float64(res.Relevant)
	return res, stats, nil
}

// MutatingStats reports the update-step work of MutatingGreedy.
type MutatingStats struct {
	// UpdatedSets counts neighborhood subtractions performed across all
	// iterations (the quantity Theorem 3 reduces).
	UpdatedSets int
}
