// Package core implements the paper's primary contribution: top-k
// representative queries over graph databases (Definition 1).
//
// Given a query-time relevance function over feature vectors, a distance
// threshold θ and a budget k, the goal is the k-subset A of the relevant
// graphs L_q maximizing the representative power
//
//	π_θ(S) = |∪_{g∈S} N_θ(g)| / |L_q|
//
// The problem is NP-hard (Set Cover) and π is monotone submodular, so the
// greedy algorithm achieves the best possible polynomial-time approximation
// of (1 − 1/e). This package contains the query model, the baseline greedy
// of Alg. 1 with several neighborhood-initialization strategies, a
// brute-force optimum for validation, and the traditional score-only top-k
// the qualitative experiment (Fig. 7) compares against.
//
// The NB-Index-accelerated greedy lives in internal/nbindex.
package core

import (
	"fmt"
	"sort"

	"graphrep/internal/bitset"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// Relevance classifies a graph as relevant from its feature vector: the
// paper's q(·) with {−1, 1} replaced by the idiomatic bool.
type Relevance func(features []float64) bool

// Query is one top-k representative query.
type Query struct {
	Relevance Relevance
	Theta     float64
	K         int
}

// Validate reports whether the query is well-formed.
func (q Query) Validate() error {
	if q.Relevance == nil {
		return fmt.Errorf("core: nil relevance function")
	}
	if q.Theta < 0 {
		return fmt.Errorf("core: negative theta %v", q.Theta)
	}
	if q.K <= 0 {
		return fmt.Errorf("core: non-positive k %d", q.K)
	}
	return nil
}

// Result is the answer to a top-k representative query.
type Result struct {
	// Answer lists the chosen graphs in pick order. It may be shorter than
	// k when every remaining candidate has zero marginal gain (adding such
	// graphs cannot increase π and would only dilute the compression ratio).
	Answer []graph.ID
	// Power is π_θ(Answer).
	Power float64
	// Covered is |∪ N_θ(g)| over the answer set.
	Covered int
	// Relevant is |L_q|.
	Relevant int
	// Gains records the marginal coverage gain of each pick.
	Gains []int
}

// CompressionRatio is |N_θ(A)| / |A| (Table 4). Zero for an empty answer.
func (r *Result) CompressionRatio() float64 {
	if len(r.Answer) == 0 {
		return 0
	}
	return float64(r.Covered) / float64(len(r.Answer))
}

// Relevant returns L_q: the IDs of the graphs classified relevant by q.
func Relevant(db *graph.Database, q Relevance) []graph.ID {
	var out []graph.ID
	for i, n := 0, db.Len(); i < n; i++ {
		if q(db.Features(graph.ID(i))) {
			out = append(out, graph.ID(i))
		}
	}
	return out
}

// Neighborhoods holds the θ-neighborhood bitsets of every relevant graph,
// each over positions in the relevant list. It is the state Alg. 1 operates
// on; how it is initialized (full pairwise scan, metric range index, or
// vantage candidates) is the difference between the baseline engines.
type Neighborhoods struct {
	Rel  []graph.ID // the relevant graphs, ascending
	Pos  []int      // database ID -> position in Rel, or -1
	Sets []*bitset.Set
}

// NewNeighborhoods allocates empty neighborhood state for the relevant set.
func NewNeighborhoods(dbLen int, rel []graph.ID) *Neighborhoods {
	nb := &Neighborhoods{
		Rel:  rel,
		Pos:  make([]int, dbLen),
		Sets: make([]*bitset.Set, len(rel)),
	}
	for i := range nb.Pos {
		nb.Pos[i] = -1
	}
	for i, id := range rel {
		nb.Pos[id] = i
		nb.Sets[i] = bitset.New(len(rel))
		nb.Sets[i].Add(i) // every graph represents itself
	}
	return nb
}

// PairwiseNeighborhoods computes exact θ-neighborhoods with a full pairwise
// scan over the relevant graphs: |L|·(|L|−1)/2 distance computations — the
// quadratic bottleneck of the simple greedy approach (§5).
func PairwiseNeighborhoods(db *graph.Database, m metric.Metric, rel []graph.ID, theta float64) *Neighborhoods {
	nb := NewNeighborhoods(db.Len(), rel)
	for i := range rel {
		for j := i + 1; j < len(rel); j++ {
			if m.Distance(rel[i], rel[j]) <= theta {
				nb.Sets[i].Add(j)
				nb.Sets[j].Add(i)
			}
		}
	}
	return nb
}

// RangeNeighborhoods computes θ-neighborhoods with one range query per
// relevant graph against a metric index (C-tree or M-tree style): the
// strategy of the paper's indexing baselines in Figs. 2(b) and 5(i–k).
func RangeNeighborhoods(db *graph.Database, rs metric.RangeSearcher, rel []graph.ID, theta float64) *Neighborhoods {
	nb := NewNeighborhoods(db.Len(), rel)
	for i, id := range rel {
		for _, hit := range rs.Range(id, theta) {
			if p := nb.Pos[hit]; p >= 0 {
				nb.Sets[i].Add(p)
			}
		}
	}
	return nb
}

// Greedy runs the greedy of Alg. 1 on initialized neighborhoods: repeatedly
// add the graph with the maximum marginal gain in coverage. Ties break
// toward the lower graph ID so results are deterministic. Picks stop early
// when no candidate improves coverage.
func Greedy(nb *Neighborhoods, k int) *Result {
	res := &Result{Relevant: len(nb.Rel)}
	if len(nb.Rel) == 0 {
		return res
	}
	covered := bitset.New(len(nb.Rel))
	inAnswer := make([]bool, len(nb.Rel))
	for len(res.Answer) < k {
		best, bestGain := -1, 0
		for i := range nb.Rel {
			if inAnswer[i] {
				continue
			}
			if gain := nb.Sets[i].CountAndNot(covered); gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		inAnswer[best] = true
		covered.Or(nb.Sets[best])
		res.Answer = append(res.Answer, nb.Rel[best])
		res.Gains = append(res.Gains, bestGain)
	}
	res.Covered = covered.Count()
	res.Power = float64(res.Covered) / float64(res.Relevant)
	return res
}

// BaselineGreedy is the end-to-end simple greedy (Alg. 1): quadratic
// pairwise neighborhood initialization followed by greedy selection.
func BaselineGreedy(db *graph.Database, m metric.Metric, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rel := Relevant(db, q.Relevance)
	nb := PairwiseNeighborhoods(db, m, rel, q.Theta)
	return Greedy(nb, q.K), nil
}

// RangeGreedy is the baseline greedy with neighborhoods initialized through
// a metric range index instead of a pairwise scan.
func RangeGreedy(db *graph.Database, rs metric.RangeSearcher, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rel := Relevant(db, q.Relevance)
	nb := RangeNeighborhoods(db, rs, rel, q.Theta)
	return Greedy(nb, q.K), nil
}

// Power computes π_θ(answer) for an arbitrary answer set, issuing
// |answer|·|L_q| distance computations. Used to evaluate answer sets
// produced by other models (DIV, DisC) under the representative-power
// semantics of Table 4.
func Power(db *graph.Database, m metric.Metric, rel []graph.ID, answer []graph.ID, theta float64) (power float64, covered int) {
	if len(rel) == 0 {
		return 0, 0
	}
	pos := make(map[graph.ID]int, len(rel))
	for i, id := range rel {
		pos[id] = i
	}
	cov := bitset.New(len(rel))
	for _, a := range answer {
		for i, id := range rel {
			if a == id || m.Distance(a, id) <= theta {
				cov.Add(i)
			}
		}
	}
	covered = cov.Count()
	return float64(covered) / float64(len(rel)), covered
}

// BruteForceOptimal enumerates all k-subsets of the relevant graphs and
// returns one maximizing π. Exponential; only for validating the greedy's
// (1 − 1/e) guarantee on small instances.
func BruteForceOptimal(db *graph.Database, m metric.Metric, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rel := Relevant(db, q.Relevance)
	nb := PairwiseNeighborhoods(db, m, rel, q.Theta)
	res := &Result{Relevant: len(rel)}
	if len(rel) == 0 {
		return res, nil
	}
	k := q.K
	if k > len(rel) {
		k = len(rel)
	}
	idx := make([]int, k)
	best := -1
	var bestSet []int
	var rec func(start, depth int, covered *bitset.Set)
	rec = func(start, depth int, covered *bitset.Set) {
		if depth == k {
			if c := covered.Count(); c > best {
				best = c
				bestSet = append(bestSet[:0], idx[:depth]...)
			}
			return
		}
		for i := start; i < len(rel); i++ {
			idx[depth] = i
			next := covered.Clone()
			next.Or(nb.Sets[i])
			rec(i+1, depth+1, next)
		}
	}
	rec(0, 0, bitset.New(len(rel)))
	for _, i := range bestSet {
		res.Answer = append(res.Answer, rel[i])
	}
	res.Covered = best
	res.Power = float64(best) / float64(len(rel))
	return res, nil
}

// AssignRepresentatives explains an answer set: every relevant graph within
// θ of the answer is assigned to its nearest answer member (ties toward the
// earlier member). The result maps each answer member to the sorted graphs
// it stands for (including itself). Costs |answer|·|rel| distance
// computations.
func AssignRepresentatives(db *graph.Database, m metric.Metric, rel []graph.ID, answer []graph.ID, theta float64) map[graph.ID][]graph.ID {
	out := make(map[graph.ID][]graph.ID, len(answer))
	for _, a := range answer {
		out[a] = nil
	}
	for _, g := range rel {
		best := graph.ID(-1)
		bestD := 0.0
		for _, a := range answer {
			d := m.Distance(a, g)
			if d > theta {
				continue
			}
			if best < 0 || d < bestD {
				best, bestD = a, d
			}
		}
		if best >= 0 {
			out[best] = append(out[best], g)
		}
	}
	for a := range out {
		sort.Slice(out[a], func(i, j int) bool { return out[a][i] < out[a][j] })
	}
	return out
}

// Score ranks a graph for traditional top-k queries.
type Score func(features []float64) float64

// TraditionalTopK returns the k highest-scoring graphs — the classical
// formulation whose redundancy motivates the paper (Fig. 1(a), Fig. 7).
// Ties break toward lower IDs.
func TraditionalTopK(db *graph.Database, score Score, k int) []graph.ID {
	type scored struct {
		id graph.ID
		s  float64
	}
	all := make([]scored, 0, db.Len())
	for i, n := 0, db.Len(); i < n; i++ {
		all = append(all, scored{graph.ID(i), score(db.Features(graph.ID(i)))})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]graph.ID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// FirstQuartileRelevance returns the relevance function used throughout the
// paper's experiments (§8.2.1): a graph is relevant when its feature-space
// score falls within the top quartile of database scores. The score is the
// mean of the selected feature dimensions (all dimensions when dims is nil).
func FirstQuartileRelevance(db *graph.Database, dims []int) Relevance {
	score := DimensionScore(dims)
	if db.Len() == 0 {
		return func([]float64) bool { return false }
	}
	scores := make([]float64, db.Len())
	for i := range scores {
		scores[i] = score(db.Features(graph.ID(i)))
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	cut := sorted[len(sorted)*3/4]
	return func(f []float64) bool { return score(f) >= cut }
}

// TopicScore is the query function of Table 1, example 2: the (soft)
// Jaccard similarity between a graph's topic-weight vector and a query
// topic set, Σ min(gᵢ, tᵢ) / Σ max(gᵢ, tᵢ) with t the indicator vector of
// topics. Zero when both sides are empty.
func TopicScore(topics []int) Score {
	return func(f []float64) float64 {
		t := make([]float64, len(f))
		for _, i := range topics {
			if i >= 0 && i < len(t) {
				t[i] = 1
			}
		}
		num, den := 0.0, 0.0
		for i, x := range f {
			if x < t[i] {
				num += x
				den += t[i]
			} else {
				num += t[i]
				den += x
			}
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
}

// TopicRelevance classifies a graph as relevant when its TopicScore against
// the query topics reaches tau — the cascade query of Table 1, example 2.
func TopicRelevance(topics []int, tau float64) Relevance {
	score := TopicScore(topics)
	return func(f []float64) bool { return score(f) >= tau }
}

// WeightedScore is the query function of Table 1, example 3: the weighted
// sum wᵀ·g over the feature vector (e.g. recency-weighted occurrence
// counts). Dimensions beyond len(w) contribute nothing.
func WeightedScore(w []float64) Score {
	return func(f []float64) float64 {
		s := 0.0
		for i, x := range f {
			if i >= len(w) {
				break
			}
			s += w[i] * x
		}
		return s
	}
}

// WeightedRelevance classifies a graph as relevant when its WeightedScore
// reaches tau.
func WeightedRelevance(w []float64, tau float64) Relevance {
	score := WeightedScore(w)
	return func(f []float64) bool { return score(f) >= tau }
}

// DimensionScore scores a feature vector as the mean over the chosen
// dimensions (§8.2.1's Σ g_i / d), or over all dimensions when dims is nil.
func DimensionScore(dims []int) Score {
	return func(f []float64) float64 {
		if len(f) == 0 {
			return 0
		}
		if dims == nil {
			s := 0.0
			for _, x := range f {
				s += x
			}
			return s / float64(len(f))
		}
		s := 0.0
		for _, d := range dims {
			s += f[d]
		}
		return s / float64(len(dims))
	}
}
