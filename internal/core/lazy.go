package core

import (
	"container/heap"

	"graphrep/internal/bitset"
)

// LazyGreedy runs the greedy of Alg. 1 with lazy marginal-gain evaluation
// (the CELF optimization of Leskovec et al.): cached gains from earlier
// iterations upper-bound current gains by submodularity (Theorem 2), so a
// candidate is only re-evaluated when it reaches the top of a priority
// queue. The answer is identical to Greedy — including tie-breaking toward
// lower graph IDs — but large inputs evaluate far fewer gains. Stats
// reports the savings.
func LazyGreedy(nb *Neighborhoods, k int) (*Result, *LazyStats) {
	stats := &LazyStats{}
	res := &Result{Relevant: len(nb.Rel)}
	if len(nb.Rel) == 0 {
		return res, stats
	}
	covered := bitset.New(len(nb.Rel))
	pq := make(lazyHeap, 0, len(nb.Rel))
	for i := range nb.Rel {
		// Initial bounds: |N(g)| (the gain against an empty covered set).
		pq = append(pq, lazyEntry{pos: i, gain: nb.Sets[i].Count(), round: 0})
		stats.Evaluations++
	}
	heap.Init(&pq)
	round := 0
	for len(res.Answer) < k && pq.Len() > 0 {
		round++
		for {
			top := pq[0]
			if top.round == round {
				break // fresh for this round: by submodularity it is the max
			}
			// Stale: re-evaluate against the current coverage and reinsert.
			cur := nb.Sets[top.pos].CountAndNot(covered)
			stats.Evaluations++
			pq[0].gain = cur
			pq[0].round = round
			heap.Fix(&pq, 0)
		}
		best := heap.Pop(&pq).(lazyEntry)
		if best.gain == 0 {
			break
		}
		covered.Or(nb.Sets[best.pos])
		res.Answer = append(res.Answer, nb.Rel[best.pos])
		res.Gains = append(res.Gains, best.gain)
	}
	res.Covered = covered.Count()
	res.Power = float64(res.Covered) / float64(res.Relevant)
	return res, stats
}

// LazyStats reports the work CELF saved.
type LazyStats struct {
	// Evaluations counts marginal-gain computations; plain Greedy performs
	// |L_q| of them per pick.
	Evaluations int
}

type lazyEntry struct {
	pos   int
	gain  int
	round int
}

// lazyHeap is a max-heap on gain; ties break toward the lower relevant
// position (= lower graph ID) so answers match Greedy exactly.
type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].pos < h[j].pos
}
func (h lazyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x any)   { *h = append(*h, x.(lazyEntry)) }
func (h *lazyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
