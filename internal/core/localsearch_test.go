package core

import (
	"testing"

	"graphrep/internal/graph"
)

func TestLocalSearchNeverDecreasesPower(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db, m := randDB(t, 40, 50+seed)
		q := Query{Relevance: allRelevant, Theta: 3.5, K: 4}
		greedy, err := BaselineGreedy(db, m, q)
		if err != nil {
			t.Fatal(err)
		}
		rel := Relevant(db, q.Relevance)
		nb := PairwiseNeighborhoods(db, m, rel, q.Theta)
		improved, swaps := LocalSearchImprove(nb, greedy, 0)
		if improved.Power < greedy.Power-1e-12 {
			t.Fatalf("seed %d: local search lowered π: %v -> %v", seed, greedy.Power, improved.Power)
		}
		if swaps > 0 && improved.Power <= greedy.Power {
			t.Fatalf("seed %d: swap performed without improvement", seed)
		}
		if len(improved.Answer) != len(greedy.Answer) {
			t.Fatalf("seed %d: answer size changed: %d -> %d", seed, len(greedy.Answer), len(improved.Answer))
		}
		// The improved answer must never exceed the optimum.
		opt, err := BruteForceOptimal(db, m, q)
		if err != nil {
			t.Fatal(err)
		}
		if improved.Power > opt.Power+1e-12 {
			t.Fatalf("seed %d: improved π %v exceeds optimum %v", seed, improved.Power, opt.Power)
		}
	}
}

func TestLocalSearchFindsKnownImprovement(t *testing.T) {
	// Construct a case where greedy is suboptimal: the classic set-cover
	// trap. Elements {a..f}; candidate X covers {a,b,c,d} (greedy's first
	// pick), Y covers {a,b,e}, Z covers {c,d,f}. With k=2 greedy picks X
	// then one of Y/Z, covering 5; optimal {Y,Z} covers 6. Local search
	// should swap X away. We emulate the structure directly on bitsets via
	// a hand-built Neighborhoods.
	nb := NewNeighborhoods(9, identityIDs(9)) // 0..8: X=0, Y=1, Z=2, elements 3..8
	set := func(i int, members ...int) {
		for _, m := range members {
			nb.Sets[i].Add(m)
		}
	}
	// Self-membership was added by NewNeighborhoods; add coverage.
	set(0, 3, 4, 5, 6) // X covers a,b,c,d
	set(1, 3, 4, 7)    // Y covers a,b,e
	set(2, 5, 6, 8)    // Z covers c,d,f
	greedy := Greedy(nb, 2)
	improved, swaps := LocalSearchImprove(nb, greedy, 0)
	if improved.Covered <= greedy.Covered {
		t.Fatalf("local search failed to improve: %d -> %d (swaps %d)", greedy.Covered, improved.Covered, swaps)
	}
}

// identityIDs builds the identity relevant list for hand-built fixtures.
func identityIDs(n int) []graph.ID {
	out := make([]graph.ID, n)
	for i := range out {
		out[i] = graph.ID(i)
	}
	return out
}

func TestLocalSearchEdgeCases(t *testing.T) {
	db, m := randDB(t, 10, 60)
	rel := Relevant(db, allRelevant)
	nb := PairwiseNeighborhoods(db, m, rel, 3)
	empty := &Result{Relevant: len(rel)}
	if got, swaps := LocalSearchImprove(nb, empty, 0); swaps != 0 || got != empty {
		t.Error("empty answer should be returned unchanged")
	}
	// maxRounds bounds the swaps.
	res, err := BaselineGreedy(db, m, Query{Relevance: allRelevant, Theta: 3, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, swaps := LocalSearchImprove(nb, res, 1)
	if swaps > 1 {
		t.Errorf("maxRounds=1 performed %d swaps", swaps)
	}
}
