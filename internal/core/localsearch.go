package core

import "graphrep/internal/bitset"

// LocalSearchImprove post-optimizes a greedy answer by single-element swaps:
// while some answer member can be replaced by a non-member that strictly
// increases coverage, perform the best such swap. Swap local search on
// monotone submodular objectives cannot loop (coverage strictly increases)
// and often closes part of the greedy-to-optimal gap; it is an extension
// beyond the paper, available when answer quality matters more than the last
// milliseconds. maxRounds bounds the work (0 = no bound). Returns the
// improved result and the number of swaps performed.
func LocalSearchImprove(nb *Neighborhoods, res *Result, maxRounds int) (*Result, int) {
	if len(res.Answer) == 0 || len(nb.Rel) == 0 {
		return res, 0
	}
	// Current answer positions.
	inAnswer := make([]bool, len(nb.Rel))
	answer := make([]int, 0, len(res.Answer))
	for _, id := range res.Answer {
		p := nb.Pos[id]
		if p < 0 {
			continue
		}
		inAnswer[p] = true
		answer = append(answer, p)
	}
	coverage := func(skip int) *bitset.Set {
		c := bitset.New(len(nb.Rel))
		for _, p := range answer {
			if p != skip {
				c.Or(nb.Sets[p])
			}
		}
		return c
	}
	full := coverage(-1)
	swaps := 0
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		bestGain, bestOut, bestIn := 0, -1, -1
		for ai, out := range answer {
			without := coverage(out)
			baseline := full.Count()
			for in := range nb.Rel {
				if inAnswer[in] {
					continue
				}
				if gain := nb.Sets[in].CountAndNot(without) + without.Count() - baseline; gain > bestGain {
					bestGain, bestOut, bestIn = gain, ai, in
				}
			}
		}
		if bestOut < 0 {
			break
		}
		inAnswer[answer[bestOut]] = false
		inAnswer[bestIn] = true
		answer[bestOut] = bestIn
		full = coverage(-1)
		swaps++
	}
	if swaps == 0 {
		return res, 0
	}
	out := &Result{Relevant: res.Relevant}
	for _, p := range answer {
		out.Answer = append(out.Answer, nb.Rel[p])
	}
	out.Covered = full.Count()
	out.Power = float64(out.Covered) / float64(out.Relevant)
	return out, swaps
}
