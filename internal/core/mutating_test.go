package core

import (
	"reflect"
	"testing"

	"graphrep/internal/metric"
)

func TestMutatingGreedyMatchesGreedy(t *testing.T) {
	db, m := randDB(t, 60, 40)
	rs := metric.NewLinearScan(db.Len(), m)
	q := Query{Relevance: allRelevant, Theta: 4, K: 8}
	want, err := BaselineGreedy(db, m, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, prune := range []bool{false, true} {
		got, stats, err := MutatingGreedy(db, m, rs, q, prune)
		if err != nil {
			t.Fatalf("MutatingGreedy(prune=%v): %v", prune, err)
		}
		if !reflect.DeepEqual(got.Answer, want.Answer) {
			t.Fatalf("prune=%v: answer %v, want %v", prune, got.Answer, want.Answer)
		}
		if got.Power != want.Power || !reflect.DeepEqual(got.Gains, want.Gains) {
			t.Fatalf("prune=%v: power/gains differ", prune)
		}
		if len(got.Answer) > 1 && stats.UpdatedSets == 0 {
			t.Errorf("prune=%v: no update work recorded", prune)
		}
	}
}

// Theorem 3's point: the 2θ-restricted update touches no more sets than the
// full update, and at small θ far fewer.
func TestTheorem3ReducesUpdateWork(t *testing.T) {
	db, m := randDB(t, 80, 41)
	rs := metric.NewLinearScan(db.Len(), m)
	q := Query{Relevance: allRelevant, Theta: 2, K: 10}
	_, full, err := MutatingGreedy(db, m, rs, q, false)
	if err != nil {
		t.Fatal(err)
	}
	_, pruned, err := MutatingGreedy(db, m, rs, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.UpdatedSets > full.UpdatedSets {
		t.Errorf("Theorem 3 increased update work: %d > %d", pruned.UpdatedSets, full.UpdatedSets)
	}
	t.Logf("update work: full=%d thm3=%d", full.UpdatedSets, pruned.UpdatedSets)
}

func TestMutatingGreedyEdgeCases(t *testing.T) {
	db, m := randDB(t, 10, 42)
	rs := metric.NewLinearScan(db.Len(), m)
	if _, _, err := MutatingGreedy(db, m, rs, Query{Relevance: nil, Theta: 1, K: 1}, true); err == nil {
		t.Error("invalid query accepted")
	}
	res, stats, err := MutatingGreedy(db, m, rs, Query{Relevance: func([]float64) bool { return false }, Theta: 1, K: 1}, true)
	if err != nil || len(res.Answer) != 0 || stats.UpdatedSets != 0 {
		t.Errorf("empty relevant: %+v %+v %v", res, stats, err)
	}
	// nil range searcher falls back to the unpruned update.
	res2, _, err := MutatingGreedy(db, m, nil, Query{Relevance: allRelevant, Theta: 3, K: 2}, true)
	if err != nil || len(res2.Answer) == 0 {
		t.Errorf("nil searcher: %+v %v", res2, err)
	}
}
