package telemetry

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.MustGauge("g", "help")
	g.Inc()
	g.Add(10)
	g.Dec()
	if got := g.Value(); got != 10 {
		t.Errorf("gauge = %d, want 10", got)
	}
	g.Set(-2)
	if got := g.Value(); got != -2 {
		t.Errorf("gauge = %d, want -2", got)
	}
}

func TestRegistryDuplicateNames(t *testing.T) {
	r := NewRegistry()
	if _, err := r.NewCounter("dup", ""); err != nil {
		t.Fatal(err)
	}
	// A second registration under the same name fails regardless of kind.
	if _, err := r.NewCounter("dup", ""); !errors.Is(err, ErrDuplicate) {
		t.Errorf("counter dup: err = %v, want ErrDuplicate", err)
	}
	if _, err := r.NewGauge("dup", ""); !errors.Is(err, ErrDuplicate) {
		t.Errorf("gauge dup: err = %v, want ErrDuplicate", err)
	}
	if _, err := r.NewHistogram("dup", "", []float64{1}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("histogram dup: err = %v, want ErrDuplicate", err)
	}
	if err := r.NewCounterFunc("dup", "", func() int64 { return 0 }); !errors.Is(err, ErrDuplicate) {
		t.Errorf("counterfunc dup: err = %v, want ErrDuplicate", err)
	}
	// Distinct names still register fine afterwards.
	if _, err := r.NewCounter("dup2", ""); err != nil {
		t.Errorf("dup2: %v", err)
	}
}

func TestRegistryInvalidNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "has space", "dash-ed", "ünïcode"} {
		if _, err := r.NewCounter(bad, ""); err == nil {
			t.Errorf("name %q accepted, want error", bad)
		}
	}
	for _, good := range []string{"a", "_x", "ns:sub_total", "Counter9"} {
		if _, err := r.NewCounter(good, ""); err != nil {
			t.Errorf("name %q rejected: %v", good, err)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("h", "", []float64{1, 2, 4})
	// Prometheus buckets are ≤-inclusive: a value exactly on a bound lands
	// in that bound's bucket.
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []int64{2, 4, 5, 7} // ≤1: {0.5,1}; ≤2: +{1.0000001,2}; ≤4: +{4}; +Inf: +{4.5,100}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+2+4+4.5+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.NewHistogram("bad1", "", nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := r.NewHistogram("bad2", "", []float64{1, 1}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := r.NewHistogram("bad3", "", []float64{2, 1}); err == nil {
		t.Error("descending bounds accepted")
	}
	// A trailing +Inf is tolerated (collapsed into the implicit bucket).
	h, err := r.NewHistogram("okinf", "", []float64{1, math.Inf(1)})
	if err != nil {
		t.Fatalf("trailing +Inf rejected: %v", err)
	}
	if got := len(h.Bounds()); got != 1 {
		t.Errorf("bounds = %d, want 1", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("linear = %v", lin)
	}
	exp := ExponentialBuckets(1, 4, 4)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 || exp[3] != 64 {
		t.Errorf("exponential = %v", exp)
	}
}

// Concurrent increments must neither race (checked by -race) nor lose
// updates.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("c_total", "")
	g := r.MustGauge("g", "")
	h := r.MustHistogram("h", "", ExponentialBuckets(1, 2, 8))
	vec := r.MustCounterVec("v_total", "", "worker")
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%2))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i % 300))
				vec.With(lbl).Inc()
			}
		}(w)
	}
	// Concurrent scrapes must be safe too.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	wantSum := float64(workers) * float64(iters/300*((299*300)/2)+(iters%300-1)*(iters%300)/2)
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
	if got := vec.With("a").Value() + vec.With("b").Value(); got != workers*iters {
		t.Errorf("vec total = %d, want %d", got, workers*iters)
	}
}

// Golden test: the full exposition output of a small registry, byte for
// byte. Families are sorted by name; vec children by label value.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("app_ops_total", "Operations completed.")
	c.Add(42)
	g := r.MustGauge("app_inflight", "In-flight requests.")
	g.Set(3)
	h := r.MustHistogram("app_latency_seconds", "Request latency.", []float64{0.25, 0.5})
	h.Observe(0.1)
	h.Observe(0.5)
	h.Observe(2)
	v := r.MustCounterVec("app_requests_total", "Requests by endpoint.", "endpoint")
	v.With("/query").Add(7)
	v.With("/insert").Inc()
	if err := r.NewGaugeFunc("app_ratio", "A computed ratio.", func() float64 { return 0.75 }); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_inflight In-flight requests.
# TYPE app_inflight gauge
app_inflight 3
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.25"} 1
app_latency_seconds_bucket{le="0.5"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 2.6
app_latency_seconds_count 3
# HELP app_ops_total Operations completed.
# TYPE app_ops_total counter
app_ops_total 42
# HELP app_ratio A computed ratio.
# TYPE app_ratio gauge
app_ratio 0.75
# HELP app_requests_total Requests by endpoint.
# TYPE app_requests_total counter
app_requests_total{endpoint="/insert"} 1
app_requests_total{endpoint="/query"} 7
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.MustHistogramVec("lat", "", "ep", []float64{1})
	v.With("/a").Observe(0.5)
	v.With("/a").Observe(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`lat_bucket{ep="/a",le="1"} 1`,
		`lat_bucket{ep="/a",le="+Inf"} 2`,
		`lat_sum{ep="/a"} 3.5`,
		`lat_count{ep="/a"} 2`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("esc_total", "line1\nline2 with \\ backslash")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `# HELP esc_total line1\nline2 with \\ backslash`; !strings.Contains(sb.String(), want) {
		t.Errorf("help not escaped:\n%s", sb.String())
	}
}
