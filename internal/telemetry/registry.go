package telemetry

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrDuplicate is returned (wrapped) when a metric name is registered twice.
var ErrDuplicate = errors.New("duplicate metric name")

// Registry collects named instruments and renders them in the Prometheus
// text exposition format. Metric names follow the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*) and must be unique per registry.
type Registry struct {
	mu      sync.RWMutex
	names   map[string]bool
	entries []entry // in registration order; sorted at export
}

// entry is one registered metric family.
type entry struct {
	name, help string
	kind       string                  // "counter", "gauge", "histogram"
	write      func(w io.Writer) error // body lines (no HELP/TYPE)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name, help, kind string, write func(io.Writer) error) error {
	if err := checkName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		return fmt.Errorf("telemetry: %w: %q", ErrDuplicate, name)
	}
	r.names[name] = true
	r.entries = append(r.entries, entry{name: name, help: help, kind: kind, write: write})
	return nil
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) (*Counter, error) {
	c := &Counter{}
	err := r.register(name, help, "counter", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
		return err
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for components that already keep their own atomic
// counts (metric.Counter, metric.Cache).
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) error {
	return r.register(name, help, "counter", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, fn())
		return err
	})
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) (*Gauge, error) {
	g := &Gauge{}
	err := r.register(name, help, "gauge", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, g.Value())
		return err
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) error {
	return r.register(name, help, "gauge", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
		return err
	})
}

// NewHistogram registers and returns a histogram with the given ascending
// bucket upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) (*Histogram, error) {
	h, err := newHistogram(bounds)
	if err != nil {
		return nil, err
	}
	err = r.register(name, help, "histogram", func(w io.Writer) error {
		return writeHistogram(w, name, "", "", h)
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// NewCounterVec registers and returns a counter family keyed by one label.
func (r *Registry) NewCounterVec(name, help, label string) (*CounterVec, error) {
	if err := checkName(label); err != nil {
		return nil, err
	}
	v := &CounterVec{label: label, children: map[string]*Counter{}}
	err := r.register(name, help, "counter", func(w io.Writer) error {
		v.mu.RLock()
		defer v.mu.RUnlock()
		for _, val := range sortedKeys(v.children) {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, val, v.children[val].Value()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// NewGaugeVec registers and returns a gauge family keyed by one label.
// Children are float64-valued (FloatGauge), fitting non-integral gauges such
// as per-shard build seconds.
func (r *Registry) NewGaugeVec(name, help, label string) (*GaugeVec, error) {
	if err := checkName(label); err != nil {
		return nil, err
	}
	v := &GaugeVec{label: label, children: map[string]*FloatGauge{}}
	err := r.register(name, help, "gauge", func(w io.Writer) error {
		v.mu.RLock()
		defer v.mu.RUnlock()
		for _, val := range sortedKeys(v.children) {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, val, formatFloat(v.children[val].Value())); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// NewHistogramVec registers and returns a histogram family keyed by one
// label, all children sharing the bucket bounds.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) (*HistogramVec, error) {
	if err := checkName(label); err != nil {
		return nil, err
	}
	if _, err := newHistogram(bounds); err != nil { // validate once up front
		return nil, err
	}
	v := &HistogramVec{label: label, bounds: append([]float64(nil), bounds...), children: map[string]*Histogram{}}
	err := r.register(name, help, "histogram", func(w io.Writer) error {
		v.mu.RLock()
		defer v.mu.RUnlock()
		for _, val := range sortedKeys(v.children) {
			if err := writeHistogram(w, name, label, val, v.children[val]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// MustCounter is NewCounter, panicking on error. Use for statically named
// metrics registered once at startup.
func (r *Registry) MustCounter(name, help string) *Counter {
	c, err := r.NewCounter(name, help)
	if err != nil {
		panic(err)
	}
	return c
}

// MustGauge is NewGauge, panicking on error.
func (r *Registry) MustGauge(name, help string) *Gauge {
	g, err := r.NewGauge(name, help)
	if err != nil {
		panic(err)
	}
	return g
}

// MustHistogram is NewHistogram, panicking on error.
func (r *Registry) MustHistogram(name, help string, bounds []float64) *Histogram {
	h, err := r.NewHistogram(name, help, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// MustGaugeVec is NewGaugeVec, panicking on error.
func (r *Registry) MustGaugeVec(name, help, label string) *GaugeVec {
	v, err := r.NewGaugeVec(name, help, label)
	if err != nil {
		panic(err)
	}
	return v
}

// MustCounterVec is NewCounterVec, panicking on error.
func (r *Registry) MustCounterVec(name, help, label string) *CounterVec {
	v, err := r.NewCounterVec(name, help, label)
	if err != nil {
		panic(err)
	}
	return v
}

// MustHistogramVec is NewHistogramVec, panicking on error.
func (r *Registry) MustHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v, err := r.NewHistogramVec(name, help, label, bounds)
	if err != nil {
		panic(err)
	}
	return v
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name for
// deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	entries := make([]entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, escapeHelp(e.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
			return err
		}
		if err := e.write(w); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the _bucket/_sum/_count lines of one histogram,
// optionally tagged with label=value.
func writeHistogram(w io.Writer, name, label, value string, h *Histogram) error {
	cum := h.Cumulative()
	tag := func(le string) string {
		if label == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s=%q,le=%q}", label, value, le)
	}
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf("{%s=%q}", label, value)
	}
	for i, b := range h.Bounds() {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, tag(formatFloat(b)), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, tag("+Inf"), cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid metric name %q", name)
		}
	}
	return nil
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
